#!/usr/bin/env python3
"""Reference Python client for the stencild daemon wire protocol.

One frame = one JSON object on one line over a Unix-domain socket
(serve/wire.hpp). The client pipelines --repeat copies of one request,
reads the matching responses in order, prints each response as a JSON
line on stdout, and applies the --expect-* assertions to every response.

CI's daemon-smoke job is the primary caller:

  daemon_client.py --socket /tmp/stencild.sock --benchmark Jacobi-2D \\
      --expect-status ok                  # cold synthesis over the wire
  daemon_client.py --socket /tmp/stencild.sock --benchmark Jacobi-2D \\
      --expect-status ok --expect-warm    # replay must hit the store

Exit status: 0 all assertions held, 1 an assertion failed, 2 usage or
connection error.
"""

import argparse
import json
import socket
import sys


def build_request(args, request_id):
    request = {"id": request_id, "tenant": args.tenant}
    if args.benchmark:
        request["benchmark"] = args.benchmark
    else:
        with open(args.stencil, encoding="utf-8") as handle:
            request["stencil_text"] = handle.read()
    if args.iterations > 0:
        request["iterations"] = args.iterations
    if args.priority != 0:
        request["priority"] = args.priority
    if args.timeout_ms > 0:
        request["timeout_ms"] = args.timeout_ms
    return request


def check(response, args):
    """Returns a list of assertion-failure strings for one response."""
    failures = []
    if args.expect_status and response.get("status") != args.expect_status:
        failures.append(
            f"expected status {args.expect_status!r}, got "
            f"{response.get('status')!r} "
            f"(error: {response.get('error', '')!r})")
    if args.expect_warm and not response.get("from_cache"):
        failures.append("expected from_cache=true (a warm store hit)")
    if args.expect_memory and not response.get("from_memory"):
        failures.append("expected from_memory=true (a hot-tier hit)")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="send requests to a running stencild daemon")
    parser.add_argument("--socket", required=True,
                        help="path of the daemon's Unix-domain socket")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--benchmark",
                        help="paper-suite benchmark name (e.g. Jacobi-2D)")
    source.add_argument("--stencil",
                        help="path of a .stencil source file to submit")
    parser.add_argument("--tenant", default="default")
    parser.add_argument("--iterations", type=int, default=0)
    parser.add_argument("--priority", type=int, default=0)
    parser.add_argument("--timeout-ms", type=int, default=0)
    parser.add_argument("--repeat", type=int, default=1,
                        help="pipeline N copies of the request (default 1)")
    parser.add_argument("--recv-timeout", type=float, default=120.0,
                        help="seconds to wait for each response")
    parser.add_argument("--expect-status",
                        help="fail unless every response has this status")
    parser.add_argument("--expect-warm", action="store_true",
                        help="fail unless every response was a store hit")
    parser.add_argument("--expect-memory", action="store_true",
                        help="fail unless every response hit the hot tier")
    args = parser.parse_args()
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")

    try:
        connection = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        connection.settimeout(args.recv_timeout)
        connection.connect(args.socket)
    except OSError as error:
        print(f"error: cannot connect to {args.socket}: {error}",
              file=sys.stderr)
        return 2

    failures = []
    with connection, connection.makefile("rwb") as stream:
        for request_id in range(1, args.repeat + 1):
            frame = json.dumps(build_request(args, request_id))
            stream.write(frame.encode("utf-8") + b"\n")
        stream.flush()
        for request_id in range(1, args.repeat + 1):
            line = stream.readline()
            if not line:
                print("error: daemon closed the connection before "
                      f"response {request_id}", file=sys.stderr)
                return 1
            response = json.loads(line)
            print(json.dumps(response, sort_keys=True))
            if response.get("id") != request_id:
                failures.append(
                    f"response id {response.get('id')} out of order "
                    f"(expected {request_id})")
            failures.extend(check(response, args))

    if failures:
        for failure in failures:
            print(f"assertion failed: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
