#!/usr/bin/env bash
# Analyzer-clean gate: the full static verifier — including the pass-4
# kernel-IR dataflow analysis (SCL4xx) — must report zero error
# diagnostics for every bundled benchmark on every supported device, and
# for every bundled .stencil example. `stencil_compiler --analyze` exits
# nonzero when any error-severity diagnostic fires, so this script is a
# pure fan-out; CI runs it as the `analyzer-clean` job.
#
# Beyond the DSE optimum that --analyze verifies by default, --deep-ir
# re-runs the kernel-IR analysis over every candidate configuration the
# optimizer evaluates, so near-optimal candidates (the ones a future
# heuristic tweak might promote) are covered too — that is the "sampled
# candidates" half of the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

COMPILER=build/examples/stencil_compiler
if [ ! -x "$COMPILER" ]; then
  echo "error: $COMPILER is missing; build the repo first" >&2
  exit 1
fi

BENCHMARKS=(Jacobi-1D Jacobi-2D Jacobi-3D HotSpot-2D HotSpot-3D FDTD-2D FDTD-3D)
# The device matrix spans both memory systems: three single-channel DDR
# boards, plus the HBM parts (xcu280, s10mx) whose multi-bank model
# opens the spatial-replication axis — their DSE winners routinely carry
# R > 1, so the replicated emission paths are verified at the optimum.
DEVICES=(xc7vx690t xc7vx485t xcku115 xcu280 s10mx)
STENCIL_FILES=(examples/highorder.stencil)

for f in "${STENCIL_FILES[@]}"; do
  if [ ! -f "$f" ]; then
    echo "error: expected stencil input '$f' is missing" >&2
    exit 1
  fi
done

checked=0
for device in "${DEVICES[@]}"; do
  for input in "${BENCHMARKS[@]}" "${STENCIL_FILES[@]}"; do
    echo "analyze $input on $device"
    "$COMPILER" "$input" --device "$device" --analyze --no-sim > /dev/null
    checked=$((checked + 1))
  done
done

# Family matrix on the default device: force each design family so BOTH
# architectures' emitted kernels are verified for every benchmark — the
# auto policy above only ever checks the predicted winner.
for family in pipe-tiling temporal-shift; do
  for input in "${BENCHMARKS[@]}"; do
    echo "family-matrix: $input --family $family"
    "$COMPILER" "$input" --family "$family" --analyze --no-sim > /dev/null
    checked=$((checked + 1))
  done
done

# Replication leg: the per-device loop above verifies whatever design
# wins on each part, but nothing guarantees BOTH families' replicated
# emission paths (R pipe-wired kernel texts; link-time compute units
# with the wave-structured multi-queue host) get exercised on an HBM
# part. Force each family on one multi-bank device so the R > 1
# emitters are held to the zero-diagnostic bar every run.
for family in pipe-tiling temporal-shift; do
  for input in "${BENCHMARKS[@]}"; do
    echo "replication-matrix: $input --device xcu280 --family $family"
    "$COMPILER" "$input" --device xcu280 --family "$family" --analyze \
      --no-sim > /dev/null
    checked=$((checked + 1))
  done
done

# Deep candidate sweep on one device: every evaluated DSE candidate's
# emitted kernels go through the kernel-IR analysis, not just the
# optimum. One device keeps the job inside CI budget; the per-device
# loop above already covers device-dependent codegen at the optimum.
for input in "${BENCHMARKS[@]}"; do
  echo "deep-ir candidate sweep: $input"
  "$COMPILER" "$input" --analyze --deep-ir --no-sim > /dev/null
  checked=$((checked + 1))
done

echo "analyzer-clean: $checked configuration(s) verified, zero errors"
