#!/usr/bin/env python3
"""CI performance-regression gate over the BENCH_*.json baselines.

Compares the JSONL rows a fresh bench run produced against the committed
baseline rows and fails when a tracked metric regressed by more than the
threshold (default 25%). Tracked metrics:

  bench=dse      key (kernel, threads, mode, family[, device])
                                              metric candidates_per_sec
                 plus, for rows with threads > 1, a second gated metric
                 speedup_vs_serial under the same key + "/speedup" — a
                 multi-thread run that silently collapses to serial-level
                 throughput fails even if absolute candidates/sec still
                 clears the ratchet
  bench=service  key (threads, mode)          metric warm_speedup

The mode suffix ("", "/warm") distinguishes bench_dse's cold rows (fresh
eval cache) from warm replays (fully cached); rows without a mode field
are treated as cold, so pre-refactor baselines keep their keys. The
family suffix works the same way: pipe-tiling rows (and rows predating
the design-family split, which were all pipe-tiling) keep the
historical key, temporal-shift rows append "/temporal-shift". Service
rows use the suffix the same way: batch rows carry no mode and keep
their historical key, daemon-over-the-wire rows append "/daemon".

Rows carrying a "device" field (the HBM device-matrix legs bench_dse
emits for multi-bank parts) append "/<device>" to the key and are
DEVICE-PINNED: a baseline row with a device suffix that is missing from
the current run fails the gate unconditionally — even when its baseline
wall time sits below the noise floor — because a vanished device leg
means a supported part silently dropped out of the matrix, which is a
coverage regression rather than a timing artifact. Rows without the
field keep their historical keys, so pre-HBM baselines gate new runs
unchanged.

All metrics are higher-is-better; a row counts as a regression when

  current < baseline * (1 - threshold)

Rows whose wall_seconds (on either side) falls below --min-wall (default
0.02 s) are reported but never gated: at sub-floor wall times the metric
is timer noise, not throughput. Rows are JSONL (one object per line, '#'
comments and blank lines ignored); when a key appears more than once the
LAST occurrence wins, matching the append-mode trajectory files
bench_dse writes by default. A key present in the baseline but missing
from the current run fails the gate (a silently-skipped benchmark must
not pass) unless its baseline wall was sub-floor; keys only present in
the current run are reported but never fail.

Usage:
  perf_gate.py [--threshold 0.25] [--min-wall 0.02] \\
      --pair <baseline.json> <current.json> ...

The delta table goes to stdout and, when $GITHUB_STEP_SUMMARY is set, to
the job summary as well. Exit status: 0 pass, 1 regression/missing key,
2 usage or unreadable input.
"""

import argparse
import json
import os
import sys


def read_rows(path):
    """Parses a JSONL file into a list of row dicts."""
    rows = []
    try:
        with open(path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as error:
                    raise SystemExit(
                        f"error: {path}:{number}: bad JSON row: {error}")
                if isinstance(row, dict):
                    rows.append(row)
    except OSError as error:
        raise SystemExit(f"error: cannot read {path}: {error}")
    return rows


def keyed_metrics(rows):
    """Maps (display key) -> (metric name, value, wall_seconds or None,
    device_pinned); last occurrence wins."""
    metrics = {}
    for row in rows:
        bench = row.get("bench")
        wall = row.get("wall_seconds")
        wall = float(wall) if wall is not None else None
        if bench == "dse":
            key = f"dse/{row.get('kernel')}/t{row.get('threads')}"
            # Rows without a mode predate the cold/warm split and were
            # always cold; keeping their key unsuffixed lets old
            # baselines gate new runs.
            mode = row.get("mode", "cold")
            if mode != "cold":
                key = f"{key}/{mode}"
            # Rows without a family predate the design-family split and
            # were all pipe-tiling; same unsuffixed-key compatibility.
            family = row.get("family", "pipe-tiling")
            if family != "pipe-tiling":
                key = f"{key}/{family}"
            # Device-matrix rows: the suffix keys each part's leg, and
            # the pin makes its absence a hard failure (a device that
            # dropped out of the matrix, not timer noise).
            device = row.get("device")
            pinned = bool(device)
            if device:
                key = f"{key}/{device}"
            value = row.get("candidates_per_sec")
            if value is not None:
                metrics[key] = (
                    "candidates_per_sec", float(value), wall, pinned)
            speedup = row.get("speedup_vs_serial")
            threads = row.get("threads")
            if (speedup is not None and isinstance(threads, int)
                    and threads > 1):
                metrics[f"{key}/speedup"] = (
                    "speedup_vs_serial", float(speedup), wall, pinned)
        elif bench == "service":
            key = f"service/t{row.get('threads')}"
            # Batch rows predate the daemon split and carry no mode;
            # their key stays unsuffixed so old baselines gate new runs.
            mode = row.get("mode")
            if mode:
                key = f"{key}/{mode}"
            value = row.get("warm_speedup")
            if value is not None:
                metrics[key] = ("warm_speedup", float(value), wall, False)
    return metrics


def format_value(value):
    return f"{value:,.1f}" if value >= 100 else f"{value:.3f}"


def gate(pairs, threshold, min_wall):
    lines = [
        "| benchmark | metric | baseline | current | delta | status |",
        "|---|---|---:|---:|---:|---|",
    ]
    failures = []
    for baseline_path, current_path in pairs:
        baseline = keyed_metrics(read_rows(baseline_path))
        current = keyed_metrics(read_rows(current_path))
        if not baseline:
            raise SystemExit(
                f"error: {baseline_path} holds no gated bench rows")
        for key in sorted(baseline):
            metric, base_value, base_wall, pinned = baseline[key]
            base_subfloor = base_wall is not None and base_wall < min_wall
            if key not in current:
                # Device-pinned rows never get the sub-floor pass: a
                # missing device leg is a coverage hole, not noise.
                if base_subfloor and not pinned:
                    lines.append(
                        f"| {key} | {metric} | {format_value(base_value)} "
                        f"| *missing* | — | skip (wall < floor) |")
                    continue
                reason = " (device leg dropped)" if pinned else ""
                failures.append(
                    f"{key}: missing from {current_path}{reason}")
                lines.append(
                    f"| {key} | {metric} | {format_value(base_value)} "
                    f"| *missing* | — | FAIL |")
                continue
            _, cur_value, cur_wall, _ = current[key]
            delta = ((cur_value - base_value) / base_value
                     if base_value != 0 else 0.0)
            if (base_subfloor
                    or (cur_wall is not None and cur_wall < min_wall)):
                lines.append(
                    f"| {key} | {metric} | {format_value(base_value)} "
                    f"| {format_value(cur_value)} | {delta:+.1%} "
                    f"| skip (wall < floor) |")
                continue
            regressed = cur_value < base_value * (1.0 - threshold)
            status = "FAIL" if regressed else "ok"
            if regressed:
                failures.append(
                    f"{key}: {metric} {format_value(cur_value)} vs baseline "
                    f"{format_value(base_value)} ({delta:+.1%})")
            lines.append(
                f"| {key} | {metric} | {format_value(base_value)} "
                f"| {format_value(cur_value)} | {delta:+.1%} | {status} |")
        for key in sorted(set(current) - set(baseline)):
            metric, cur_value, _, _ = current[key]
            lines.append(
                f"| {key} | {metric} | *new* "
                f"| {format_value(cur_value)} | — | ok |")
    return lines, failures


def main():
    parser = argparse.ArgumentParser(
        description="fail CI when bench metrics regress past the threshold")
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed fractional regression (default 0.25 = 25%%)")
    parser.add_argument(
        "--min-wall", type=float, default=0.02,
        help="wall-seconds floor below which a row is timer noise and "
             "is reported but not gated (default 0.02 s)")
    parser.add_argument(
        "--pair", nargs=2, action="append", required=True,
        metavar=("BASELINE", "CURRENT"),
        help="baseline JSONL and the fresh run to compare against it")
    args = parser.parse_args()
    if not 0.0 <= args.threshold < 1.0:
        parser.error("--threshold must be in [0, 1)")
    if args.min_wall < 0.0:
        parser.error("--min-wall must be >= 0")

    lines, failures = gate(args.pair, args.threshold, args.min_wall)

    title = (f"## Performance gate "
             f"(threshold {args.threshold:.0%} regression)")
    report = "\n".join([title, ""] + lines) + "\n"
    print(report)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as summary:
            summary.write(report)

    if failures:
        print("performance gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("performance gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
