#!/usr/bin/env bash
# Full verification: configure, build (warnings as errors), test, analyze
# every bundled stencil through the design verifier, run every bench
# harness, and exercise the batched synthesis service cold and warm.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja -DSTENCILCL_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure

# The static design verifier must report zero errors for every bundled
# example and benchmark (stencil_compiler --analyze exits nonzero on
# error diagnostics). Inputs are enumerated explicitly: a missing file is
# a loud failure here, not a glob that silently matches nothing.
STENCIL_FILES=(
  examples/highorder.stencil
)
for f in "${STENCIL_FILES[@]}"; do
  if [ ! -f "$f" ]; then
    echo "error: expected stencil input '$f' is missing" >&2
    exit 1
  fi
  echo "analyze $f"
  ./build/examples/stencil_compiler "$f" --analyze
done
for b in Jacobi-1D Jacobi-2D Jacobi-3D HotSpot-2D HotSpot-3D FDTD-2D FDTD-3D; do
  echo "analyze $b"
  ./build/examples/stencil_compiler "$b" --analyze
done

# Table/figure regenerators, enumerated explicitly: a bench binary that
# failed to build must fail the check, not be skipped.
BENCHES=(
  bench_table2 bench_table3 bench_fig1 bench_fig6 bench_fig7
  bench_ablation bench_devices bench_dse bench_service
)
for b in "${BENCHES[@]}"; do
  bin="build/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "error: bench binary '$bin' is missing or not executable" >&2
    exit 1
  fi
  echo "bench $b"
  "$bin"
done
echo "bench bench_micro"
./build/bench/bench_micro --benchmark_min_time=0.01

# Batched service smoke: synthesize the paper suite cold into a fresh
# artifact store, then replay it — the second pass must be served
# entirely from the store.
store="$(mktemp -d)"
trap 'rm -rf "$store"' EXIT
echo "stencild cold pass"
./build/examples/stencild --suite --store "$store" --quiet
echo "stencild warm pass"
./build/examples/stencild --suite --store "$store" --require-warm --quiet
echo "check.sh: all green"
