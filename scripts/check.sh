#!/usr/bin/env bash
# Full verification: configure, build (warnings as errors), test, bench.
set -euo pipefail
cd "$(dirname "$0")"
cmake -B build -G Ninja -DSTENCILCL_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do
  [ -x "$b" ] && "$b"
done
