#!/usr/bin/env bash
# Full verification: configure, build (warnings as errors), test, analyze
# every bundled stencil through the design verifier, bench.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja -DSTENCILCL_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure

# The static design verifier must report zero errors for every bundled
# example and benchmark (stencil_compiler --analyze exits nonzero on
# error diagnostics).
for f in examples/*.stencil; do
  echo "analyze $f"
  ./build/examples/stencil_compiler "$f" --analyze
done
for b in Jacobi-1D Jacobi-2D Jacobi-3D HotSpot-2D HotSpot-3D FDTD-2D FDTD-3D; do
  echo "analyze $b"
  ./build/examples/stencil_compiler "$b" --analyze
done

for b in build/bench/*; do
  [ -x "$b" ] && "$b"
done
