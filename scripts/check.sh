#!/usr/bin/env bash
# Full verification: configure, build (warnings as errors), test, analyze
# every bundled stencil through the design verifier, smoke the
# observability outputs, run every bench harness, and exercise the
# batched synthesis service cold and warm.
#
#   --quick   configure + build + ctest + analyzer + observability smoke
#             only (skips the bench harnesses and the stencild cold/warm
#             passes); what CI runs as a required step on every build.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "usage: check.sh [--quick]" >&2; exit 2 ;;
  esac
done

# Reuse an existing build tree's generator; otherwise prefer Ninja when
# available (CI may have configured with Make — forcing -G Ninja onto an
# existing cache is a hard CMake error).
if [ -f build/CMakeCache.txt ]; then
  cmake -B build -DSTENCILCL_WERROR=ON
elif command -v ninja >/dev/null 2>&1; then
  cmake -B build -G Ninja -DSTENCILCL_WERROR=ON
else
  cmake -B build -DSTENCILCL_WERROR=ON
fi
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure --timeout 300 -j "$(nproc)"

# The static design verifier must report zero errors for every bundled
# example and benchmark (stencil_compiler --analyze exits nonzero on
# error diagnostics). Inputs are enumerated explicitly: a missing file is
# a loud failure here, not a glob that silently matches nothing.
STENCIL_FILES=(
  examples/highorder.stencil
)
for f in "${STENCIL_FILES[@]}"; do
  if [ ! -f "$f" ]; then
    echo "error: expected stencil input '$f' is missing" >&2
    exit 1
  fi
  echo "analyze $f"
  ./build/examples/stencil_compiler "$f" --analyze
done
for b in Jacobi-1D Jacobi-2D Jacobi-3D HotSpot-2D HotSpot-3D FDTD-2D FDTD-3D; do
  echo "analyze $b"
  ./build/examples/stencil_compiler "$b" --analyze
done

# Observability smoke: --trace-out must emit valid Chrome trace JSON with
# spans from every pipeline layer, and --metrics-out a parseable
# Prometheus-style exposition.
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT
echo "observability smoke (trace + metrics)"
./build/examples/stencil_compiler Jacobi-2D --no-sim \
  --trace-out "$obs_dir/trace.json" --metrics-out "$obs_dir/metrics.txt" \
  > /dev/null
python3 - "$obs_dir/trace.json" "$obs_dir/metrics.txt" <<'PY'
import json, sys
trace_path, metrics_path = sys.argv[1], sys.argv[2]
trace = json.load(open(trace_path))
events = trace["traceEvents"]
assert events, "trace has no events"
names = {event["name"] for event in events}
for needed in ("compiler/parse", "dse/baseline", "codegen/emit",
               "analysis/verify_design"):
    assert needed in names, f"trace lacks span {needed}: {sorted(names)}"
assert any(event["args"]["depth"] > 0 for event in events), "no nesting"
families = set()
for line in open(metrics_path):
    line = line.strip()
    if line.startswith("# TYPE "):
        name, kind = line.split()[2:4]
        assert kind in ("counter", "gauge", "histogram"), line
        families.add(name)
    elif line and not line.startswith("#"):
        float(line.split()[-1])  # every sample line ends in a number
assert "scl_dse_candidates_total" in families, sorted(families)
print(f"observability smoke ok: {len(events)} span(s), "
      f"{len(families)} metric families")
PY

if [ "$QUICK" -eq 1 ]; then
  echo "check.sh --quick: all green"
  exit 0
fi

# Table/figure regenerators, enumerated explicitly: a bench binary that
# failed to build must fail the check, not be skipped.
BENCHES=(
  bench_table2 bench_table3 bench_fig1 bench_fig6 bench_fig7
  bench_ablation bench_devices bench_dse bench_service
)
for b in "${BENCHES[@]}"; do
  bin="build/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "error: bench binary '$bin' is missing or not executable" >&2
    exit 1
  fi
  echo "bench $b"
  "$bin"
done
echo "bench bench_micro"
./build/bench/bench_micro --benchmark_min_time=0.01

# Batched service smoke: synthesize the paper suite cold into a fresh
# artifact store, then replay it — the second pass must be served
# entirely from the store.
store="$(mktemp -d)"
trap 'rm -rf "$store" "$obs_dir"' EXIT
echo "stencild cold pass"
./build/examples/stencild --suite --store "$store" --quiet
echo "stencild warm pass"
./build/examples/stencild --suite --store "$store" --require-warm --quiet \
  --metrics-out "$store/metrics.txt"
grep -q "^scl_serve_store_hits 7$" "$store/metrics.txt" || {
  echo "error: warm pass exposition does not report 7 store hits" >&2
  exit 1
}
echo "check.sh: all green"
