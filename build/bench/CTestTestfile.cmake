# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_bench_table2 "/root/repo/build/bench/bench_table2")
set_tests_properties(smoke_bench_table2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_table3 "/root/repo/build/bench/bench_table3")
set_tests_properties(smoke_bench_table3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig1 "/root/repo/build/bench/bench_fig1")
set_tests_properties(smoke_bench_fig1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig6 "/root/repo/build/bench/bench_fig6")
set_tests_properties(smoke_bench_fig6 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig7 "/root/repo/build/bench/bench_fig7")
set_tests_properties(smoke_bench_fig7 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ablation "/root/repo/build/bench/bench_ablation")
set_tests_properties(smoke_bench_ablation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_devices "/root/repo/build/bench/bench_devices")
set_tests_properties(smoke_bench_devices PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_micro "/root/repo/build/bench/bench_micro" "--benchmark_min_time=0.01")
set_tests_properties(smoke_bench_micro PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
