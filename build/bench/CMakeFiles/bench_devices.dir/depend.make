# Empty dependencies file for bench_devices.
# This may be replaced when dependencies are built.
