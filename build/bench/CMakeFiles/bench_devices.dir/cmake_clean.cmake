file(REMOVE_RECURSE
  "CMakeFiles/bench_devices.dir/bench_devices.cpp.o"
  "CMakeFiles/bench_devices.dir/bench_devices.cpp.o.d"
  "bench_devices"
  "bench_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
