file(REMOVE_RECURSE
  "CMakeFiles/codegen_bounds_test.dir/codegen_bounds_test.cpp.o"
  "CMakeFiles/codegen_bounds_test.dir/codegen_bounds_test.cpp.o.d"
  "codegen_bounds_test"
  "codegen_bounds_test.pdb"
  "codegen_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
