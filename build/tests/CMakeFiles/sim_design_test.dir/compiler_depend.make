# Empty compiler generated dependencies file for sim_design_test.
# This may be replaced when dependencies are built.
