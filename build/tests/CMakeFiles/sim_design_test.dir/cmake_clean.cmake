file(REMOVE_RECURSE
  "CMakeFiles/sim_design_test.dir/sim_design_test.cpp.o"
  "CMakeFiles/sim_design_test.dir/sim_design_test.cpp.o.d"
  "sim_design_test"
  "sim_design_test.pdb"
  "sim_design_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
