# Empty dependencies file for sim_geometry_test.
# This may be replaced when dependencies are built.
