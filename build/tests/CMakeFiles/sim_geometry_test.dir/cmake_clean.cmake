file(REMOVE_RECURSE
  "CMakeFiles/sim_geometry_test.dir/sim_geometry_test.cpp.o"
  "CMakeFiles/sim_geometry_test.dir/sim_geometry_test.cpp.o.d"
  "sim_geometry_test"
  "sim_geometry_test.pdb"
  "sim_geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
