# Empty compiler generated dependencies file for opencl_suite_test.
# This may be replaced when dependencies are built.
