file(REMOVE_RECURSE
  "CMakeFiles/opencl_suite_test.dir/opencl_suite_test.cpp.o"
  "CMakeFiles/opencl_suite_test.dir/opencl_suite_test.cpp.o.d"
  "opencl_suite_test"
  "opencl_suite_test.pdb"
  "opencl_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opencl_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
