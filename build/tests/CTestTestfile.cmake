# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/grid_test[1]_include.cmake")
include("/root/repo/build/tests/program_test[1]_include.cmake")
include("/root/repo/build/tests/reference_test[1]_include.cmake")
include("/root/repo/build/tests/fpga_test[1]_include.cmake")
include("/root/repo/build/tests/ocl_test[1]_include.cmake")
include("/root/repo/build/tests/sim_design_test[1]_include.cmake")
include("/root/repo/build/tests/sim_executor_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/formula_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/random_property_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/sim_geometry_test[1]_include.cmake")
include("/root/repo/build/tests/extras_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_bounds_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/opencl_suite_test[1]_include.cmake")
