file(REMOVE_RECURSE
  "CMakeFiles/codegen_inspect.dir/codegen_inspect.cpp.o"
  "CMakeFiles/codegen_inspect.dir/codegen_inspect.cpp.o.d"
  "codegen_inspect"
  "codegen_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
