# Empty compiler generated dependencies file for codegen_inspect.
# This may be replaced when dependencies are built.
