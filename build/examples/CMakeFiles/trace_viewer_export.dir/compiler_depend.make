# Empty compiler generated dependencies file for trace_viewer_export.
# This may be replaced when dependencies are built.
