file(REMOVE_RECURSE
  "CMakeFiles/trace_viewer_export.dir/trace_viewer_export.cpp.o"
  "CMakeFiles/trace_viewer_export.dir/trace_viewer_export.cpp.o.d"
  "trace_viewer_export"
  "trace_viewer_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_viewer_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
