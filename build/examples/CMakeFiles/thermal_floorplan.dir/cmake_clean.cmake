file(REMOVE_RECURSE
  "CMakeFiles/thermal_floorplan.dir/thermal_floorplan.cpp.o"
  "CMakeFiles/thermal_floorplan.dir/thermal_floorplan.cpp.o.d"
  "thermal_floorplan"
  "thermal_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
