# Empty compiler generated dependencies file for thermal_floorplan.
# This may be replaced when dependencies are built.
