file(REMOVE_RECURSE
  "CMakeFiles/stencil_compiler.dir/stencil_compiler.cpp.o"
  "CMakeFiles/stencil_compiler.dir/stencil_compiler.cpp.o.d"
  "stencil_compiler"
  "stencil_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
