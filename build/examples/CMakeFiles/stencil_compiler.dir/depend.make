# Empty dependencies file for stencil_compiler.
# This may be replaced when dependencies are built.
