# Empty dependencies file for wave_propagation.
# This may be replaced when dependencies are built.
