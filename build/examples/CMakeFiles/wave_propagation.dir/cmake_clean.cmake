file(REMOVE_RECURSE
  "CMakeFiles/wave_propagation.dir/wave_propagation.cpp.o"
  "CMakeFiles/wave_propagation.dir/wave_propagation.cpp.o.d"
  "wave_propagation"
  "wave_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
