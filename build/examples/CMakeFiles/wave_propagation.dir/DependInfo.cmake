
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/wave_propagation.cpp" "examples/CMakeFiles/wave_propagation.dir/wave_propagation.cpp.o" "gcc" "examples/CMakeFiles/wave_propagation.dir/wave_propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/scl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/scl_model.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/scl_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/scl_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/scl_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/scl_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/scl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
