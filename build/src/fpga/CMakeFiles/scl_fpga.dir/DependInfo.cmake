
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/device.cpp" "src/fpga/CMakeFiles/scl_fpga.dir/device.cpp.o" "gcc" "src/fpga/CMakeFiles/scl_fpga.dir/device.cpp.o.d"
  "/root/repo/src/fpga/hls.cpp" "src/fpga/CMakeFiles/scl_fpga.dir/hls.cpp.o" "gcc" "src/fpga/CMakeFiles/scl_fpga.dir/hls.cpp.o.d"
  "/root/repo/src/fpga/power.cpp" "src/fpga/CMakeFiles/scl_fpga.dir/power.cpp.o" "gcc" "src/fpga/CMakeFiles/scl_fpga.dir/power.cpp.o.d"
  "/root/repo/src/fpga/resource_model.cpp" "src/fpga/CMakeFiles/scl_fpga.dir/resource_model.cpp.o" "gcc" "src/fpga/CMakeFiles/scl_fpga.dir/resource_model.cpp.o.d"
  "/root/repo/src/fpga/resources.cpp" "src/fpga/CMakeFiles/scl_fpga.dir/resources.cpp.o" "gcc" "src/fpga/CMakeFiles/scl_fpga.dir/resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/scl_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/scl_stencil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
