file(REMOVE_RECURSE
  "CMakeFiles/scl_fpga.dir/device.cpp.o"
  "CMakeFiles/scl_fpga.dir/device.cpp.o.d"
  "CMakeFiles/scl_fpga.dir/hls.cpp.o"
  "CMakeFiles/scl_fpga.dir/hls.cpp.o.d"
  "CMakeFiles/scl_fpga.dir/power.cpp.o"
  "CMakeFiles/scl_fpga.dir/power.cpp.o.d"
  "CMakeFiles/scl_fpga.dir/resource_model.cpp.o"
  "CMakeFiles/scl_fpga.dir/resource_model.cpp.o.d"
  "CMakeFiles/scl_fpga.dir/resources.cpp.o"
  "CMakeFiles/scl_fpga.dir/resources.cpp.o.d"
  "libscl_fpga.a"
  "libscl_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scl_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
