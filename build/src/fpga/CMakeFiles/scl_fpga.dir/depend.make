# Empty dependencies file for scl_fpga.
# This may be replaced when dependencies are built.
