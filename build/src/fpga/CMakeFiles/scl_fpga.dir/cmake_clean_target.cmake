file(REMOVE_RECURSE
  "libscl_fpga.a"
)
