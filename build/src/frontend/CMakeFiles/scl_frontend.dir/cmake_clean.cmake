file(REMOVE_RECURSE
  "CMakeFiles/scl_frontend.dir/lexer.cpp.o"
  "CMakeFiles/scl_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/scl_frontend.dir/ocl_import.cpp.o"
  "CMakeFiles/scl_frontend.dir/ocl_import.cpp.o.d"
  "libscl_frontend.a"
  "libscl_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scl_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
