file(REMOVE_RECURSE
  "libscl_frontend.a"
)
