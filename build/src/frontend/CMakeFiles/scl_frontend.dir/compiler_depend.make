# Empty compiler generated dependencies file for scl_frontend.
# This may be replaced when dependencies are built.
