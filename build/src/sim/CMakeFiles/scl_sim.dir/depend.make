# Empty dependencies file for scl_sim.
# This may be replaced when dependencies are built.
