file(REMOVE_RECURSE
  "libscl_sim.a"
)
