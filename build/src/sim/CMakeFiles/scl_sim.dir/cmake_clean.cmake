file(REMOVE_RECURSE
  "CMakeFiles/scl_sim.dir/design.cpp.o"
  "CMakeFiles/scl_sim.dir/design.cpp.o.d"
  "CMakeFiles/scl_sim.dir/executor.cpp.o"
  "CMakeFiles/scl_sim.dir/executor.cpp.o.d"
  "CMakeFiles/scl_sim.dir/region.cpp.o"
  "CMakeFiles/scl_sim.dir/region.cpp.o.d"
  "CMakeFiles/scl_sim.dir/tile_task.cpp.o"
  "CMakeFiles/scl_sim.dir/tile_task.cpp.o.d"
  "CMakeFiles/scl_sim.dir/timeline.cpp.o"
  "CMakeFiles/scl_sim.dir/timeline.cpp.o.d"
  "CMakeFiles/scl_sim.dir/trace.cpp.o"
  "CMakeFiles/scl_sim.dir/trace.cpp.o.d"
  "libscl_sim.a"
  "libscl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
