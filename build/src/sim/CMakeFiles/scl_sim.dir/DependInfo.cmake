
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/design.cpp" "src/sim/CMakeFiles/scl_sim.dir/design.cpp.o" "gcc" "src/sim/CMakeFiles/scl_sim.dir/design.cpp.o.d"
  "/root/repo/src/sim/executor.cpp" "src/sim/CMakeFiles/scl_sim.dir/executor.cpp.o" "gcc" "src/sim/CMakeFiles/scl_sim.dir/executor.cpp.o.d"
  "/root/repo/src/sim/region.cpp" "src/sim/CMakeFiles/scl_sim.dir/region.cpp.o" "gcc" "src/sim/CMakeFiles/scl_sim.dir/region.cpp.o.d"
  "/root/repo/src/sim/tile_task.cpp" "src/sim/CMakeFiles/scl_sim.dir/tile_task.cpp.o" "gcc" "src/sim/CMakeFiles/scl_sim.dir/tile_task.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "src/sim/CMakeFiles/scl_sim.dir/timeline.cpp.o" "gcc" "src/sim/CMakeFiles/scl_sim.dir/timeline.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/scl_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/scl_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/scl_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/scl_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/scl_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/scl_ocl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
