# Empty compiler generated dependencies file for scl_codegen.
# This may be replaced when dependencies are built.
