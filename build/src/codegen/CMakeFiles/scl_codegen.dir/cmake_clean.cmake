file(REMOVE_RECURSE
  "CMakeFiles/scl_codegen.dir/boundary_gen.cpp.o"
  "CMakeFiles/scl_codegen.dir/boundary_gen.cpp.o.d"
  "CMakeFiles/scl_codegen.dir/context.cpp.o"
  "CMakeFiles/scl_codegen.dir/context.cpp.o.d"
  "CMakeFiles/scl_codegen.dir/fused_op_gen.cpp.o"
  "CMakeFiles/scl_codegen.dir/fused_op_gen.cpp.o.d"
  "CMakeFiles/scl_codegen.dir/opencl_emitter.cpp.o"
  "CMakeFiles/scl_codegen.dir/opencl_emitter.cpp.o.d"
  "CMakeFiles/scl_codegen.dir/pipe_gen.cpp.o"
  "CMakeFiles/scl_codegen.dir/pipe_gen.cpp.o.d"
  "CMakeFiles/scl_codegen.dir/validator.cpp.o"
  "CMakeFiles/scl_codegen.dir/validator.cpp.o.d"
  "libscl_codegen.a"
  "libscl_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scl_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
