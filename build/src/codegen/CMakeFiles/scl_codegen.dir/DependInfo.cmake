
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/boundary_gen.cpp" "src/codegen/CMakeFiles/scl_codegen.dir/boundary_gen.cpp.o" "gcc" "src/codegen/CMakeFiles/scl_codegen.dir/boundary_gen.cpp.o.d"
  "/root/repo/src/codegen/context.cpp" "src/codegen/CMakeFiles/scl_codegen.dir/context.cpp.o" "gcc" "src/codegen/CMakeFiles/scl_codegen.dir/context.cpp.o.d"
  "/root/repo/src/codegen/fused_op_gen.cpp" "src/codegen/CMakeFiles/scl_codegen.dir/fused_op_gen.cpp.o" "gcc" "src/codegen/CMakeFiles/scl_codegen.dir/fused_op_gen.cpp.o.d"
  "/root/repo/src/codegen/opencl_emitter.cpp" "src/codegen/CMakeFiles/scl_codegen.dir/opencl_emitter.cpp.o" "gcc" "src/codegen/CMakeFiles/scl_codegen.dir/opencl_emitter.cpp.o.d"
  "/root/repo/src/codegen/pipe_gen.cpp" "src/codegen/CMakeFiles/scl_codegen.dir/pipe_gen.cpp.o" "gcc" "src/codegen/CMakeFiles/scl_codegen.dir/pipe_gen.cpp.o.d"
  "/root/repo/src/codegen/validator.cpp" "src/codegen/CMakeFiles/scl_codegen.dir/validator.cpp.o" "gcc" "src/codegen/CMakeFiles/scl_codegen.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/scl_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/scl_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/scl_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/scl_ocl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
