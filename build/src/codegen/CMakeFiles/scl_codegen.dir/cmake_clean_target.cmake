file(REMOVE_RECURSE
  "libscl_codegen.a"
)
