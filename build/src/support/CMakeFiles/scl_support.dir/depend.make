# Empty dependencies file for scl_support.
# This may be replaced when dependencies are built.
