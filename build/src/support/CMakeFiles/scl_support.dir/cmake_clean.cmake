file(REMOVE_RECURSE
  "CMakeFiles/scl_support.dir/error.cpp.o"
  "CMakeFiles/scl_support.dir/error.cpp.o.d"
  "CMakeFiles/scl_support.dir/log.cpp.o"
  "CMakeFiles/scl_support.dir/log.cpp.o.d"
  "CMakeFiles/scl_support.dir/math.cpp.o"
  "CMakeFiles/scl_support.dir/math.cpp.o.d"
  "CMakeFiles/scl_support.dir/strings.cpp.o"
  "CMakeFiles/scl_support.dir/strings.cpp.o.d"
  "CMakeFiles/scl_support.dir/table.cpp.o"
  "CMakeFiles/scl_support.dir/table.cpp.o.d"
  "libscl_support.a"
  "libscl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
