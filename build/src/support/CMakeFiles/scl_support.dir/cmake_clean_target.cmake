file(REMOVE_RECURSE
  "libscl_support.a"
)
