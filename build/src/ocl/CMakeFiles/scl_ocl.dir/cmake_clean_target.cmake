file(REMOVE_RECURSE
  "libscl_ocl.a"
)
