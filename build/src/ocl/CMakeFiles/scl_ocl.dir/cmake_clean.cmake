file(REMOVE_RECURSE
  "CMakeFiles/scl_ocl.dir/pipe.cpp.o"
  "CMakeFiles/scl_ocl.dir/pipe.cpp.o.d"
  "CMakeFiles/scl_ocl.dir/runtime.cpp.o"
  "CMakeFiles/scl_ocl.dir/runtime.cpp.o.d"
  "libscl_ocl.a"
  "libscl_ocl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scl_ocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
