# Empty dependencies file for scl_ocl.
# This may be replaced when dependencies are built.
