
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stencil/formula.cpp" "src/stencil/CMakeFiles/scl_stencil.dir/formula.cpp.o" "gcc" "src/stencil/CMakeFiles/scl_stencil.dir/formula.cpp.o.d"
  "/root/repo/src/stencil/geometry.cpp" "src/stencil/CMakeFiles/scl_stencil.dir/geometry.cpp.o" "gcc" "src/stencil/CMakeFiles/scl_stencil.dir/geometry.cpp.o.d"
  "/root/repo/src/stencil/kernels.cpp" "src/stencil/CMakeFiles/scl_stencil.dir/kernels.cpp.o" "gcc" "src/stencil/CMakeFiles/scl_stencil.dir/kernels.cpp.o.d"
  "/root/repo/src/stencil/parser.cpp" "src/stencil/CMakeFiles/scl_stencil.dir/parser.cpp.o" "gcc" "src/stencil/CMakeFiles/scl_stencil.dir/parser.cpp.o.d"
  "/root/repo/src/stencil/program.cpp" "src/stencil/CMakeFiles/scl_stencil.dir/program.cpp.o" "gcc" "src/stencil/CMakeFiles/scl_stencil.dir/program.cpp.o.d"
  "/root/repo/src/stencil/reference.cpp" "src/stencil/CMakeFiles/scl_stencil.dir/reference.cpp.o" "gcc" "src/stencil/CMakeFiles/scl_stencil.dir/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/scl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
