file(REMOVE_RECURSE
  "libscl_stencil.a"
)
