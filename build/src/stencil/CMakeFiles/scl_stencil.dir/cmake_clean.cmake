file(REMOVE_RECURSE
  "CMakeFiles/scl_stencil.dir/formula.cpp.o"
  "CMakeFiles/scl_stencil.dir/formula.cpp.o.d"
  "CMakeFiles/scl_stencil.dir/geometry.cpp.o"
  "CMakeFiles/scl_stencil.dir/geometry.cpp.o.d"
  "CMakeFiles/scl_stencil.dir/kernels.cpp.o"
  "CMakeFiles/scl_stencil.dir/kernels.cpp.o.d"
  "CMakeFiles/scl_stencil.dir/parser.cpp.o"
  "CMakeFiles/scl_stencil.dir/parser.cpp.o.d"
  "CMakeFiles/scl_stencil.dir/program.cpp.o"
  "CMakeFiles/scl_stencil.dir/program.cpp.o.d"
  "CMakeFiles/scl_stencil.dir/reference.cpp.o"
  "CMakeFiles/scl_stencil.dir/reference.cpp.o.d"
  "libscl_stencil.a"
  "libscl_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scl_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
