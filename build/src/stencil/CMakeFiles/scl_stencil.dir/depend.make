# Empty dependencies file for scl_stencil.
# This may be replaced when dependencies are built.
