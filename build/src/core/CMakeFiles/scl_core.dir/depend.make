# Empty dependencies file for scl_core.
# This may be replaced when dependencies are built.
