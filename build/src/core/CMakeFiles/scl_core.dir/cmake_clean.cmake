file(REMOVE_RECURSE
  "CMakeFiles/scl_core.dir/features.cpp.o"
  "CMakeFiles/scl_core.dir/features.cpp.o.d"
  "CMakeFiles/scl_core.dir/framework.cpp.o"
  "CMakeFiles/scl_core.dir/framework.cpp.o.d"
  "CMakeFiles/scl_core.dir/optimizer.cpp.o"
  "CMakeFiles/scl_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/scl_core.dir/report.cpp.o"
  "CMakeFiles/scl_core.dir/report.cpp.o.d"
  "CMakeFiles/scl_core.dir/resource_estimator.cpp.o"
  "CMakeFiles/scl_core.dir/resource_estimator.cpp.o.d"
  "libscl_core.a"
  "libscl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
