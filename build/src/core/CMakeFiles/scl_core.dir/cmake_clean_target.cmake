file(REMOVE_RECURSE
  "libscl_core.a"
)
