# Empty dependencies file for scl_model.
# This may be replaced when dependencies are built.
