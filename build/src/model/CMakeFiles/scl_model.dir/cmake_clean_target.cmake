file(REMOVE_RECURSE
  "libscl_model.a"
)
