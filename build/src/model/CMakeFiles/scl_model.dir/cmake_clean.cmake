file(REMOVE_RECURSE
  "CMakeFiles/scl_model.dir/perf_model.cpp.o"
  "CMakeFiles/scl_model.dir/perf_model.cpp.o.d"
  "libscl_model.a"
  "libscl_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scl_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
