#include "ocl/runtime.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace scl::ocl {

void Runtime::add_task(std::shared_ptr<KernelTask> task) {
  SCL_CHECK(task != nullptr, "null task");
  tasks_.push_back(std::move(task));
}

void Runtime::run_all() {
  std::vector<bool> done(tasks_.size(), false);
  std::size_t remaining = tasks_.size();
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      if (done[i]) continue;
      // Step until this task blocks or completes, so each scheduler round
      // costs O(tasks) bookkeeping rather than O(operations).
      while (true) {
        const KernelTask::StepResult r = tasks_[i]->step();
        ++steps_taken_;
        if (r == KernelTask::StepResult::kDone) {
          done[i] = true;
          --remaining;
          progressed = true;
          break;
        }
        if (r == KernelTask::StepResult::kBlocked) break;
        progressed = true;
      }
    }
    if (!progressed && remaining > 0) {
      std::vector<std::string> blocked;
      for (std::size_t i = 0; i < tasks_.size(); ++i) {
        if (!done[i]) blocked.push_back(tasks_[i]->name());
      }
      throw DeadlockError(
          str_cat("pipe deadlock: ", remaining, " kernels blocked (",
                  join(blocked, ", "), ")"));
    }
  }
  finished_ = true;
}

std::int64_t Runtime::completion_cycles() const {
  SCL_CHECK(finished_, "completion_cycles before run_all finished");
  std::int64_t worst = 0;
  for (const auto& task : tasks_) {
    worst = std::max(worst, task->clock());
  }
  return worst;
}

}  // namespace scl::ocl
