#include "ocl/pipe.hpp"

#include <algorithm>

namespace scl::ocl {

Pipe::Pipe(std::string name, std::int64_t capacity,
           std::int64_t cycles_per_element)
    : name_(std::move(name)),
      capacity_(capacity),
      cycles_per_element_(cycles_per_element),
      never_used_slots_(capacity) {
  SCL_CHECK(capacity_ > 0, "pipe capacity must be positive");
  SCL_CHECK(cycles_per_element_ >= 0, "C_pipe cannot be negative");
}

std::int64_t Pipe::claim_slots(std::int64_t count) {
  std::int64_t latest = 0;
  const std::int64_t fresh = std::min(count, never_used_slots_);
  never_used_slots_ -= fresh;
  std::int64_t remaining = count - fresh;
  while (remaining > 0) {
    SCL_CHECK(!freed_.empty(), "slot accounting out of sync");
    Credit& credit = freed_.front();
    latest = std::max(latest, credit.freed_at);
    const std::int64_t take = std::min(remaining, credit.count);
    credit.count -= take;
    remaining -= take;
    if (credit.count == 0) freed_.pop_front();
  }
  return latest;
}

Pipe::WriteResult Pipe::write_impl(const std::vector<float>* values,
                                   std::size_t offset, std::int64_t count,
                                   std::int64_t writer_clock) {
  const std::int64_t n = std::min(count, free_slots());
  if (n <= 0) return WriteResult{0, writer_clock};
  // The batch cannot start entering before the slots it reuses are free;
  // each element then costs C_pipe of producer time.
  const std::int64_t start = std::max(writer_clock, claim_slots(n));
  Run run;
  run.count = n;
  run.first_ready = start + cycles_per_element_;
  if (values != nullptr) {
    run.data.assign(values->begin() + static_cast<std::ptrdiff_t>(offset),
                    values->begin() +
                        static_cast<std::ptrdiff_t>(offset) + n);
  }
  runs_.push_back(std::move(run));
  size_ += n;
  total_written_ += n;
  max_occupancy_ = std::max(max_occupancy_, size_);
  return WriteResult{n, start + n * cycles_per_element_};
}

Pipe::WriteResult Pipe::write(const std::vector<float>& values,
                              std::size_t offset, std::int64_t writer_clock) {
  SCL_CHECK(offset <= values.size(), "write offset beyond data");
  return write_impl(&values, offset,
                    static_cast<std::int64_t>(values.size() - offset),
                    writer_clock);
}

Pipe::WriteResult Pipe::write_counted(std::int64_t count,
                                      std::int64_t writer_clock) {
  SCL_CHECK(count >= 0, "negative write count");
  return write_impl(nullptr, 0, count, writer_clock);
}

Pipe::ReadResult Pipe::read_impl(std::int64_t count,
                                 std::int64_t reader_clock, bool with_data) {
  SCL_CHECK(count >= 0, "negative read count");
  SCL_CHECK(count <= size_, "pipe underflow: read more than available");
  ReadResult out;
  if (with_data) out.values.reserve(static_cast<std::size_t>(count));
  std::int64_t clock = reader_clock;
  std::int64_t remaining = count;
  while (remaining > 0) {
    Run& run = runs_.front();
    const std::int64_t take = std::min(remaining, run.count);
    // Availability of the last element taken from this run.
    clock = std::max(clock,
                     run.first_ready + (take - 1) * cycles_per_element_);
    if (with_data && !run.data.empty()) {
      const auto begin = run.data.begin() +
                         static_cast<std::ptrdiff_t>(run.data_offset);
      out.values.insert(out.values.end(), begin, begin + take);
    }
    run.data_offset += static_cast<std::size_t>(take);
    run.count -= take;
    run.first_ready += take * cycles_per_element_;
    remaining -= take;
    if (run.count == 0) runs_.pop_front();
  }
  size_ -= count;
  if (count > 0) {
    if (!freed_.empty() && freed_.back().freed_at == clock) {
      freed_.back().count += count;
    } else {
      freed_.push_back(Credit{clock, count});
    }
  }
  out.reader_clock = clock;
  return out;
}

Pipe::ReadResult Pipe::read(std::int64_t count, std::int64_t reader_clock) {
  return read_impl(count, reader_clock, /*with_data=*/true);
}

Pipe::ReadResult Pipe::read_counted(std::int64_t count,
                                    std::int64_t reader_clock) {
  return read_impl(count, reader_clock, /*with_data=*/false);
}

}  // namespace scl::ocl
