// Cooperative kernel scheduler — the OpenCL command-queue model.
//
// Kernels synthesized onto the fabric all run concurrently in hardware; the
// model expresses each as a KernelTask that makes incremental progress and
// may block on pipe operations. The Runtime round-robins the tasks until
// all complete, detecting deadlock (every unfinished task blocked) — the
// failure mode a mis-generated pipe protocol would exhibit on the board.
//
// Virtual time is per task: each task advances its own cycle clock as it
// executes, and pipes/barriers propagate clock constraints between tasks.
// SDAccel launches the kernels of one region sequentially, so task k starts
// no earlier than k * kernel_launch_cycles (paper §5.6).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace scl::ocl {

class KernelTask {
 public:
  enum class StepResult {
    kProgress,  ///< did useful work; call again
    kBlocked,   ///< waiting on a pipe peer; retry after others run
    kDone,      ///< finished
  };

  virtual ~KernelTask() = default;

  /// Attempts to make progress. Must be callable repeatedly after kDone
  /// (returning kDone).
  virtual StepResult step() = 0;

  /// The task's current virtual clock in cycles.
  virtual std::int64_t clock() const = 0;

  /// Display name for diagnostics.
  virtual const std::string& name() const = 0;
};

class Runtime {
 public:
  /// Adds a task. Tasks are stepped in registration order.
  void add_task(std::shared_ptr<KernelTask> task);

  std::size_t task_count() const { return tasks_.size(); }

  /// Runs all tasks to completion. Throws scl::DeadlockError when a full
  /// round makes no progress while unfinished tasks remain.
  void run_all();

  /// Max task clock after run_all() — the region's completion time.
  std::int64_t completion_cycles() const;

  /// Total scheduler steps taken (for tests/diagnostics).
  std::int64_t steps_taken() const { return steps_taken_; }

 private:
  std::vector<std::shared_ptr<KernelTask>> tasks_;
  std::int64_t steps_taken_ = 0;
  bool finished_ = false;
};

}  // namespace scl::ocl
