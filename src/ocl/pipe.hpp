// OpenCL 2.0 pipe model: a bounded FIFO between two kernels.
//
// On the FPGA a pipe synthesizes to a BRAM/SRL FIFO. The model carries
// virtual-time availability stamps so the discrete-event simulator can
// charge the paper's C_pipe cost per transferred element (Eq. 10),
// propagate producer->consumer availability times, and model backpressure:
// a write into a full FIFO cannot complete before the consumer frees the
// slots it needs.
//
// Contents are stored as *runs*: a contiguous batch written in one call
// shares an affine stamp sequence (first_ready, first_ready + C_pipe, ...),
// so moving a thousand-element boundary strip costs O(1) bookkeeping
// instead of a thousand deque operations. Functional payloads ride along
// per run; timing-only callers use the `*_counted` variants and never
// materialize per-element data.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace scl::ocl {

class Pipe {
 public:
  /// `capacity` is the synthesized FIFO depth in elements;
  /// `cycles_per_element` is the paper's C_pipe.
  Pipe(std::string name, std::int64_t capacity,
       std::int64_t cycles_per_element);

  const std::string& name() const { return name_; }
  std::int64_t capacity() const { return capacity_; }
  std::int64_t cycles_per_element() const { return cycles_per_element_; }
  std::int64_t size() const { return size_; }
  std::int64_t free_slots() const { return capacity_ - size_; }

  struct WriteResult {
    std::int64_t written = 0;
    std::int64_t writer_clock = 0;
  };

  /// Pushes up to values.size()-offset elements starting at producer time
  /// `writer_clock`, limited by free capacity. Each element costs C_pipe
  /// of producer time, and the batch cannot enter the FIFO before the
  /// slots it occupies were freed by the consumer.
  WriteResult write(const std::vector<float>& values, std::size_t offset,
                    std::int64_t writer_clock);

  /// Timing-only write: identical accounting, no payloads.
  WriteResult write_counted(std::int64_t count, std::int64_t writer_clock);

  struct ReadResult {
    std::vector<float> values;  ///< empty for counted reads
    std::int64_t reader_clock = 0;
  };

  /// Pops exactly `count` elements (caller must check size() first). The
  /// consumer cannot proceed before the last popped element's availability
  /// time; freed slots are credited at the returned clock.
  ReadResult read(std::int64_t count, std::int64_t reader_clock);

  /// Timing-only read: identical accounting, no payloads.
  ReadResult read_counted(std::int64_t count, std::int64_t reader_clock);

  // --- statistics for the timeline reports ---
  std::int64_t total_written() const { return total_written_; }
  std::int64_t max_occupancy() const { return max_occupancy_; }

 private:
  struct Run {
    std::int64_t count;
    std::int64_t first_ready;   ///< availability of the run's first element
    std::vector<float> data;    ///< empty for counted writes
    std::size_t data_offset = 0;  ///< consumed prefix of `data`
  };
  struct Credit {
    std::int64_t freed_at;
    std::int64_t count;
  };

  /// Latest free time among the next `count` slots (consuming credits).
  std::int64_t claim_slots(std::int64_t count);
  ReadResult read_impl(std::int64_t count, std::int64_t reader_clock,
                       bool with_data);
  WriteResult write_impl(const std::vector<float>* values, std::size_t offset,
                         std::int64_t count, std::int64_t writer_clock);

  std::string name_;
  std::int64_t capacity_;
  std::int64_t cycles_per_element_;
  std::deque<Run> runs_;
  std::int64_t size_ = 0;
  std::deque<Credit> freed_;
  std::int64_t never_used_slots_;
  std::int64_t total_written_ = 0;
  std::int64_t max_occupancy_ = 0;
};

}  // namespace scl::ocl
