// Global (off-chip DDR) memory channel model.
//
// Burst transfers are coalesced and the peak bandwidth is shared evenly
// among the kernels transferring concurrently (paper §4.2: BW/K). Each
// burst additionally pays a fixed setup latency (AXI address/handshake),
// which the analytical model omits — one of the reasons it underestimates
// measured latency (paper §5.6).
#pragma once

#include <algorithm>
#include <cstdint>

#include "fpga/device.hpp"
#include "support/error.hpp"

namespace scl::ocl {

class GlobalMemory {
 public:
  explicit GlobalMemory(const fpga::DeviceSpec& device,
                        std::int64_t burst_setup_cycles = 120)
      : GlobalMemory(device.mem_bytes_per_cycle,
                     device.mem_port_bytes_per_cycle, burst_setup_cycles) {}

  /// Explicit channel capacity, for modeling a slice of a banked memory
  /// system (one replica's disjoint bank group).
  GlobalMemory(double bytes_per_cycle, double port_bytes_per_cycle,
               std::int64_t burst_setup_cycles = 120)
      : bytes_per_cycle_(bytes_per_cycle),
        port_bytes_per_cycle_(port_bytes_per_cycle),
        burst_setup_cycles_(burst_setup_cycles) {
    SCL_CHECK(bytes_per_cycle_ > 0, "device has no memory bandwidth");
    SCL_CHECK(port_bytes_per_cycle_ > 0, "device has no port bandwidth");
  }

  /// Cycles to move `bytes` when `sharers` kernels use the channel
  /// simultaneously: each kernel gets the fair DDR share, capped by its
  /// own AXI master's ceiling.
  std::int64_t transfer_cycles(std::int64_t bytes, int sharers) const {
    SCL_CHECK(bytes >= 0, "negative transfer size");
    SCL_CHECK(sharers >= 1, "at least one sharer");
    if (bytes == 0) return 0;
    const double share =
        std::min(port_bytes_per_cycle_, bytes_per_cycle_ / sharers);
    const double cycles = static_cast<double>(bytes) / share;
    return burst_setup_cycles_ + static_cast<std::int64_t>(cycles + 0.999999);
  }

  std::int64_t burst_setup_cycles() const { return burst_setup_cycles_; }

  // --- statistics ---
  void record_transfer(std::int64_t bytes) { total_bytes_ += bytes; }
  std::int64_t total_bytes() const { return total_bytes_; }

 private:
  double bytes_per_cycle_;
  double port_bytes_per_cycle_;
  std::int64_t burst_setup_cycles_;
  std::int64_t total_bytes_ = 0;
};

}  // namespace scl::ocl
