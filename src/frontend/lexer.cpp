#include "frontend/lexer.hpp"

#include <cctype>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::frontend {

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = source.size();

  auto peek = [&](std::size_t ahead = 0) {
    return i + ahead < n ? source[i + ahead] : '\0';
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < n && !(source[i] == '*' && peek(1) == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i >= n) throw Error(str_cat("unterminated comment at line ", line));
      i += 2;
      continue;
    }
    if (c == '#') {  // preprocessor line: skip (continuations unsupported)
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Token t;
      t.kind = TokenKind::kIdentifier;
      t.line = line;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        t.text.push_back(source[i++]);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      Token t;
      t.kind = TokenKind::kNumber;
      t.line = line;
      bool seen_exp = false;
      while (i < n) {
        const char d = source[i];
        if (std::isdigit(static_cast<unsigned char>(d)) || d == '.') {
          t.text.push_back(d);
          ++i;
        } else if (d == 'e' || d == 'E') {
          seen_exp = true;
          t.text.push_back(d);
          ++i;
          if (i < n && (source[i] == '+' || source[i] == '-')) {
            t.text.push_back(source[i++]);
          }
        } else if (d == 'f' || d == 'F') {
          t.text.push_back(d);
          ++i;
          break;
        } else {
          break;
        }
      }
      (void)seen_exp;
      out.push_back(std::move(t));
      continue;
    }
    // Two-character operators the guard expressions use.
    static const char* kTwoChar[] = {"&&", "||", "<=", ">=", "==", "!="};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (c == op[0] && peek(1) == op[1]) {
        out.push_back(Token{TokenKind::kPunct, op, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingles = "()[]{},;=+-*/<>!&|?:%";
    if (kSingles.find(c) != std::string::npos) {
      out.push_back(Token{TokenKind::kPunct, std::string(1, c), line});
      ++i;
      continue;
    }
    throw Error(str_cat("unexpected character '", std::string(1, c),
                        "' at line ", line));
  }
  out.push_back(Token{TokenKind::kEnd, "", line});
  return out;
}

}  // namespace scl::frontend
