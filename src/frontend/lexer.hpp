// Tokenizer for the OpenCL-C front end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scl::frontend {

enum class TokenKind {
  kIdentifier,  // names, keywords, qualifiers
  kNumber,      // integer or float literal (verbatim spelling)
  kPunct,       // one of ()[]{},;=+-*/<>!&| and two-char ops
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 0;

  bool is(const char* s) const { return text == s; }
};

/// Tokenizes OpenCL-C source. Strips // and /* */ comments and
/// preprocessor lines (#...). Throws scl::Error on unterminated comments
/// or unexpected characters.
std::vector<Token> tokenize(const std::string& source);

}  // namespace scl::frontend
