#include "frontend/ocl_import.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "frontend/lexer.hpp"
#include "stencil/formula.hpp"
#include "stencil/parser.hpp"
#include "support/error.hpp"
#include "support/observability/observability.hpp"
#include "support/strings.hpp"

namespace scl::frontend {

using scl::stencil::Offset;
using scl::stencil::StencilProgram;

namespace {

// ---------------------------------------------------------------------------
// Expression AST (value expressions and affine index expressions share it).
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

struct Expr {
  enum class Kind { kNumber, kVar, kRead, kUnary, kBinary } kind;
  std::string spelling;          // kNumber: literal as written
  std::string var;               // kVar: identifier
  std::string array;             // kRead
  ExprPtr index;                 // kRead: index expression
  char op = 0;                   // kUnary('-') / kBinary(+ - * /)
  ExprPtr lhs, rhs;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct ArrayArg {
  std::string name;
  bool is_const = false;
};

struct KernelDef {
  std::string name;
  int line = 0;
  std::vector<ArrayArg> arrays;
  std::vector<std::string> int_params;
  std::map<std::string, int> ivars;  // induction var -> dimension
  std::map<std::string, ExprPtr> temporaries;
  std::string out_array;
  ExprPtr out_index;
  ExprPtr value;
};

class Parser {
 public:
  explicit Parser(const std::vector<Token>& tokens) : tokens_(tokens) {}

  std::vector<KernelDef> parse_translation_unit() {
    std::vector<KernelDef> kernels;
    while (!peek().is("") || peek().kind != TokenKind::kEnd) {
      if (peek().kind == TokenKind::kEnd) break;
      kernels.push_back(parse_kernel());
    }
    if (kernels.empty()) fail("no __kernel function found");
    return kernels;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error(str_cat("OpenCL import error at line ", peek().line, ": ",
                        why));
  }

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool accept(const char* text) {
    if (peek().is(text)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(const char* text) {
    if (!accept(text)) {
      fail(str_cat("expected '", text, "', found '", peek().text, "'"));
    }
  }
  std::string expect_identifier(const char* what) {
    if (peek().kind != TokenKind::kIdentifier) {
      fail(str_cat("expected ", what, ", found '", peek().text, "'"));
    }
    return advance().text;
  }

  KernelDef parse_kernel() {
    // qualifiers before `void` (e.g. __kernel, attributes are unsupported)
    while (peek().is("__kernel") || peek().is("kernel")) advance();
    expect("void");
    KernelDef k;
    k.line = peek().line;
    k.name = expect_identifier("kernel name");
    expect("(");
    if (!peek().is(")")) {
      do {
        parse_param(&k);
      } while (accept(","));
    }
    expect(")");
    expect("{");
    parse_block(&k);
    return k;
  }

  void parse_param(KernelDef* k) {
    bool is_const = false;
    bool is_float = false;
    bool is_int = false;
    while (peek().kind == TokenKind::kIdentifier) {
      const std::string t = peek().text;
      if (t == "__global" || t == "global" || t == "restrict" ||
          t == "__restrict") {
        advance();
      } else if (t == "const") {
        is_const = true;
        advance();
      } else if (t == "float") {
        is_float = true;
        advance();
      } else if (t == "int" || t == "uint" || t == "size_t") {
        is_int = true;
        advance();
      } else {
        break;
      }
    }
    if (is_float) {
      const bool pointer = accept("*");
      while (peek().is("restrict") || peek().is("__restrict") ||
             peek().is("const")) {
        advance();
      }
      const std::string name = expect_identifier("parameter name");
      if (!pointer) fail("float scalar parameters are not supported");
      k->arrays.push_back(ArrayArg{name, is_const});
      return;
    }
    if (is_int) {
      k->int_params.push_back(expect_identifier("parameter name"));
      return;
    }
    fail(str_cat("unsupported parameter type near '", peek().text, "'"));
  }

  void parse_block(KernelDef* k) {
    while (!accept("}")) {
      if (peek().kind == TokenKind::kEnd) fail("unexpected end of input");
      parse_statement(k);
    }
  }

  void parse_statement(KernelDef* k) {
    if (accept("int")) {
      // int <v> = get_global_id(<d>);
      const std::string name = expect_identifier("variable name");
      expect("=");
      const std::string fn = expect_identifier("get_global_id");
      if (fn != "get_global_id") {
        fail("int locals may only be initialized from get_global_id()");
      }
      expect("(");
      if (peek().kind != TokenKind::kNumber) fail("dimension literal");
      const int dim = static_cast<int>(std::stoll(advance().text));
      expect(")");
      expect(";");
      if (dim < 0 || dim > 2) fail("get_global_id dimension must be 0..2");
      k->ivars[name] = dim;
      return;
    }
    if (accept("float")) {
      // float <t> = <expr>;
      const std::string name = expect_identifier("temporary name");
      expect("=");
      ExprPtr value = parse_expr(k);
      expect(";");
      if (k->temporaries.count(name) != 0) {
        fail(str_cat("temporary '", name, "' assigned twice"));
      }
      k->temporaries[name] = std::move(value);
      return;
    }
    if (accept("if")) {
      // The guard re-derives from the stencil radii; skip it verbatim.
      expect("(");
      int depth = 1;
      while (depth > 0) {
        if (peek().kind == TokenKind::kEnd) fail("unterminated guard");
        if (peek().is("(")) ++depth;
        if (peek().is(")")) --depth;
        advance();
      }
      if (accept("{")) {
        parse_block(k);
      } else {
        parse_statement(k);
      }
      return;
    }
    if (accept("return") || accept(";")) {
      accept(";");
      return;
    }
    // Array store: <ident>[<expr>] = <expr>;
    if (peek().kind == TokenKind::kIdentifier && peek(1).is("[")) {
      const std::string array = advance().text;
      expect("[");
      ExprPtr index = parse_expr(k);
      expect("]");
      expect("=");
      ExprPtr value = parse_expr(k);
      expect(";");
      if (!k->out_array.empty()) {
        fail("a kernel may contain exactly one array store");
      }
      k->out_array = array;
      k->out_index = std::move(index);
      k->value = std::move(value);
      return;
    }
    fail(str_cat("unsupported statement near '", peek().text, "'"));
  }

  ExprPtr parse_expr(KernelDef* k) { return parse_additive(k); }

  ExprPtr parse_additive(KernelDef* k) {
    ExprPtr lhs = parse_multiplicative(k);
    while (peek().is("+") || peek().is("-")) {
      const char op = advance().text[0];
      auto node = std::make_shared<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = op;
      node->lhs = std::move(lhs);
      node->rhs = parse_multiplicative(k);
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_multiplicative(KernelDef* k) {
    ExprPtr lhs = parse_factor(k);
    while (peek().is("*") || peek().is("/")) {
      const char op = advance().text[0];
      auto node = std::make_shared<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = op;
      node->lhs = std::move(lhs);
      node->rhs = parse_factor(k);
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_factor(KernelDef* k) {
    if (accept("-")) {
      auto node = std::make_shared<Expr>();
      node->kind = Expr::Kind::kUnary;
      node->op = '-';
      node->lhs = parse_factor(k);
      return node;
    }
    if (accept("(")) {
      ExprPtr inner = parse_expr(k);
      expect(")");
      return inner;
    }
    if (peek().kind == TokenKind::kNumber) {
      auto node = std::make_shared<Expr>();
      node->kind = Expr::Kind::kNumber;
      node->spelling = advance().text;
      return node;
    }
    if (peek().kind == TokenKind::kIdentifier) {
      const std::string name = advance().text;
      if (accept("[")) {
        auto node = std::make_shared<Expr>();
        node->kind = Expr::Kind::kRead;
        node->array = name;
        node->index = parse_expr(k);
        expect("]");
        return node;
      }
      auto node = std::make_shared<Expr>();
      node->kind = Expr::Kind::kVar;
      node->var = name;
      return node;
    }
    fail(str_cat("unsupported expression near '", peek().text, "'"));
  }

  const std::vector<Token>& tokens_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Affine-index recovery
// ---------------------------------------------------------------------------

/// Integer evaluation of an index expression under a variable binding.
std::int64_t eval_index(const Expr& e,
                        const std::map<std::string, std::int64_t>& env,
                        int line) {
  switch (e.kind) {
    case Expr::Kind::kNumber: {
      if (e.spelling.find('.') != std::string::npos ||
          e.spelling.find('f') != std::string::npos ||
          e.spelling.find('F') != std::string::npos) {
        throw Error(str_cat("OpenCL import error at line ", line,
                            ": float literal in array index"));
      }
      return std::stoll(e.spelling);
    }
    case Expr::Kind::kVar: {
      auto it = env.find(e.var);
      if (it == env.end()) {
        throw Error(str_cat("OpenCL import error at line ", line,
                            ": unknown identifier '", e.var,
                            "' in array index"));
      }
      return it->second;
    }
    case Expr::Kind::kUnary:
      return -eval_index(*e.lhs, env, line);
    case Expr::Kind::kBinary: {
      const std::int64_t a = eval_index(*e.lhs, env, line);
      const std::int64_t b = eval_index(*e.rhs, env, line);
      switch (e.op) {
        case '+':
          return a + b;
        case '-':
          return a - b;
        case '*':
          return a * b;
        case '/':
          throw Error(str_cat("OpenCL import error at line ", line,
                              ": division in array index"));
      }
      return 0;
    }
    case Expr::Kind::kRead:
      throw Error(str_cat("OpenCL import error at line ", line,
                          ": array read inside an array index"));
  }
  return 0;
}

/// Recovers the constant offset vector of an affine row-major index.
Offset recover_offsets(const Expr& index, const KernelDef& kernel,
                       const std::map<std::string, std::int64_t>& params,
                       int dims, const std::array<std::int64_t, 3>& extents) {
  // Row-major strides over the active dimensions.
  std::array<std::int64_t, 3> stride{1, 1, 1};
  for (int d = dims - 2; d >= 0; --d) {
    stride[static_cast<std::size_t>(d)] =
        stride[static_cast<std::size_t>(d + 1)] *
        extents[static_cast<std::size_t>(d + 1)];
  }

  auto eval_at = [&](const std::array<std::int64_t, 3>& iv) {
    std::map<std::string, std::int64_t> env = params;
    for (const auto& [name, dim] : kernel.ivars) {
      env[name] = iv[static_cast<std::size_t>(dim)];
    }
    return eval_index(index, env, kernel.line);
  };

  const std::int64_t base = eval_at({0, 0, 0});
  // Affinity + stride check: moving one cell along dimension d must move
  // the flat index by exactly the row-major stride, from two anchors.
  for (int d = 0; d < dims; ++d) {
    std::array<std::int64_t, 3> unit{0, 0, 0};
    unit[static_cast<std::size_t>(d)] = 1;
    const std::int64_t delta = eval_at(unit) - base;
    if (delta != stride[static_cast<std::size_t>(d)]) {
      throw Error(str_cat(
          "OpenCL import error at line ", kernel.line, ": index in kernel '",
          kernel.name, "' is not row-major affine (stride along dim ", d,
          " is ", delta, ", expected ", stride[static_cast<std::size_t>(d)],
          "; integer size arguments bind to the grid extents by position)"));
    }
    std::array<std::int64_t, 3> two{1, 1, 1};
    two[static_cast<std::size_t>(d)] = 2;
    const std::int64_t affine_check =
        eval_at(two) - eval_at({1, 1, 1});
    if (affine_check != delta) {
      throw Error(str_cat("OpenCL import error at line ", kernel.line,
                          ": non-affine array index in kernel '", kernel.name,
                          "'"));
    }
  }

  // Unflatten the base value into small per-dimension offsets.
  Offset off{0, 0, 0};
  std::int64_t rest = base;
  for (int d = 0; d < dims; ++d) {
    const std::int64_t s = stride[static_cast<std::size_t>(d)];
    const auto q = static_cast<std::int64_t>(std::llround(
        static_cast<double>(rest) / static_cast<double>(s)));
    if (std::abs(q) > 8) {
      throw Error(str_cat("OpenCL import error at line ", kernel.line,
                          ": stencil offset ", q, " along dim ", d,
                          " is implausibly large"));
    }
    off[static_cast<std::size_t>(d)] = static_cast<int>(q);
    rest -= q * s;
  }
  if (rest != 0) {
    throw Error(str_cat("OpenCL import error at line ", kernel.line,
                        ": array index has a constant remainder ", rest,
                        " that is not a stencil offset"));
  }
  return off;
}

// ---------------------------------------------------------------------------
// Formula rendering
// ---------------------------------------------------------------------------

std::string offsets_text(const Offset& off, int dims) {
  std::vector<std::string> parts;
  for (int d = 0; d < dims; ++d) {
    parts.push_back(std::to_string(off[static_cast<std::size_t>(d)]));
  }
  return "(" + join(parts, ",") + ")";
}

/// Renders a value expression as stencilcl formula text, resolving
/// temporaries and mapping array reads through `logical_name`.
std::string render_value(const Expr& e, const KernelDef& kernel,
                         const std::map<std::string, std::int64_t>& params,
                         int dims, const std::array<std::int64_t, 3>& extents,
                         const std::map<std::string, std::string>& logical) {
  switch (e.kind) {
    case Expr::Kind::kNumber:
      return e.spelling;
    case Expr::Kind::kVar: {
      auto temp = kernel.temporaries.find(e.var);
      if (temp != kernel.temporaries.end()) {
        return "(" + render_value(*temp->second, kernel, params, dims,
                                  extents, logical) +
               ")";
      }
      throw Error(str_cat("OpenCL import error at line ", kernel.line,
                          ": identifier '", e.var,
                          "' is not a temporary or array read"));
    }
    case Expr::Kind::kRead: {
      auto name = logical.find(e.array);
      if (name == logical.end()) {
        throw Error(str_cat("OpenCL import error at line ", kernel.line,
                            ": read of unknown array '", e.array, "'"));
      }
      const Offset off =
          recover_offsets(*e.index, kernel, params, dims, extents);
      return "$" + name->second + offsets_text(off, dims);
    }
    case Expr::Kind::kUnary:
      return "(-" + render_value(*e.lhs, kernel, params, dims, extents,
                                 logical) +
             ")";
    case Expr::Kind::kBinary:
      return "(" +
             render_value(*e.lhs, kernel, params, dims, extents, logical) +
             " " + std::string(1, e.op) + " " +
             render_value(*e.rhs, kernel, params, dims, extents, logical) +
             ")";
  }
  return "";
}

void collect_reads(const Expr& e, const KernelDef& kernel,
                   std::map<std::string, int>* read_counts) {
  switch (e.kind) {
    case Expr::Kind::kRead:
      ++(*read_counts)[e.array];
      return;
    case Expr::Kind::kVar: {
      auto temp = kernel.temporaries.find(e.var);
      if (temp != kernel.temporaries.end()) {
        collect_reads(*temp->second, kernel, read_counts);
      }
      return;
    }
    case Expr::Kind::kUnary:
      collect_reads(*e.lhs, kernel, read_counts);
      return;
    case Expr::Kind::kBinary:
      collect_reads(*e.lhs, kernel, read_counts);
      collect_reads(*e.rhs, kernel, read_counts);
      return;
    case Expr::Kind::kNumber:
      return;
  }
}

}  // namespace

StencilProgram import_opencl(const std::string& source,
                             const OpenClImportOptions& options) {
  const auto span =
      support::obs::tracer().span("frontend/import_opencl", "frontend");
  if (support::obs::enabled()) {
    static auto& imports = support::obs::metrics().counter(
        "scl_ocl_imports_total", "naive OpenCL kernels imported");
    imports.increment();
  }
  const std::vector<Token> tokens = tokenize(source);
  Parser parser(tokens);
  const std::vector<KernelDef> kernels = parser.parse_translation_unit();

  // Dimensionality: max get_global_id dimension used anywhere.
  int dims = options.dims;
  if (dims == 0) {
    for (const KernelDef& k : kernels) {
      for (const auto& [name, dim] : k.ivars) {
        dims = std::max(dims, dim + 1);
      }
    }
  }
  if (dims < 1 || dims > 3) {
    throw Error("OpenCL import: could not infer dimensionality (no "
                "get_global_id uses?)");
  }

  // Validate per-kernel structure and gather read/write sets.
  std::set<std::string> written;
  std::map<std::string, int> total_reads;
  for (const KernelDef& k : kernels) {
    if (k.out_array.empty()) {
      throw Error(str_cat("OpenCL import: kernel '", k.name,
                          "' has no array store"));
    }
    if (static_cast<int>(k.ivars.size()) < dims) {
      throw Error(str_cat("OpenCL import: kernel '", k.name,
                          "' uses fewer induction variables than the ",
                          dims, "-D grid"));
    }
    if (written.count(k.out_array) != 0) {
      throw Error(str_cat("OpenCL import: array '", k.out_array,
                          "' is written by more than one kernel"));
    }
    written.insert(k.out_array);
    collect_reads(*k.value, k, &total_reads);
  }

  // Ping-pong unification: a kernel writing W while reading a never-written
  // array R (and not reading W itself) is the host-swapped double-buffer
  // pattern; W and R collapse into the logical field R. The unified read
  // array is the one with the most distinct accesses in that kernel.
  std::map<std::string, std::string> logical;  // physical array -> field
  for (const KernelDef& k : kernels) {
    std::map<std::string, int> kernel_reads;
    collect_reads(*k.value, k, &kernel_reads);
    if (kernel_reads.count(k.out_array) != 0) {
      logical[k.out_array] = k.out_array;  // in-place stage
      continue;
    }
    const std::string* best = nullptr;
    int best_count = 0;
    bool tie = false;
    for (const auto& [array, count] : kernel_reads) {
      if (written.count(array) != 0) continue;  // another stage's output
      if (count > best_count) {
        best = &array;
        best_count = count;
        tie = false;
      } else if (count == best_count) {
        tie = true;
      }
    }
    if (best == nullptr) {
      throw Error(str_cat(
          "OpenCL import: kernel '", k.name, "' writes '", k.out_array,
          "' but reads no never-written array to unify the ping-pong with"));
    }
    if (tie) {
      throw Error(str_cat("OpenCL import: ambiguous ping-pong pair for "
                          "kernel '",
                          k.name, "' (several candidate input arrays)"));
    }
    logical[k.out_array] = *best;
    logical[*best] = *best;
  }
  // Everything else read keeps its own name (constant fields included).
  for (const auto& [array, count] : total_reads) {
    if (logical.count(array) == 0) logical[array] = array;
  }

  // Field order: argument order of the kernels, first appearance wins.
  std::vector<std::string> field_names;
  auto add_field = [&](const std::string& physical) {
    auto it = logical.find(physical);
    if (it == logical.end()) return;
    if (std::find(field_names.begin(), field_names.end(), it->second) ==
        field_names.end()) {
      field_names.push_back(it->second);
    }
  };
  for (const KernelDef& k : kernels) {
    for (const ArrayArg& a : k.arrays) add_field(a.name);
  }

  std::vector<scl::stencil::Field> fields;
  for (const std::string& name : field_names) {
    auto spec = options.init_specs.find(name);
    fields.push_back(scl::stencil::make_field(
        name,
        spec != options.init_specs.end() ? spec->second
                                         : options.default_init));
  }

  // Build the stages in source order.
  std::vector<scl::stencil::Stage> stages;
  for (const KernelDef& k : kernels) {
    // Integer size parameters bind to the grid extents by position.
    std::map<std::string, std::int64_t> params;
    for (std::size_t i = 0; i < k.int_params.size(); ++i) {
      if (i >= 3) {
        throw Error(str_cat("OpenCL import: kernel '", k.name,
                            "' has more than three integer parameters"));
      }
      params[k.int_params[i]] = options.extents[i];
    }
    const Offset out_off =
        recover_offsets(*k.out_index, k, params, dims, options.extents);
    if (out_off != Offset{0, 0, 0}) {
      throw Error(str_cat("OpenCL import: kernel '", k.name,
                          "' stores at a shifted location; only "
                          "OUT[center] stores are supported"));
    }
    const std::string formula = render_value(*k.value, k, params, dims,
                                             options.extents, logical);
    const std::string& out_field = logical.at(k.out_array);
    const auto field_pos =
        std::find(field_names.begin(), field_names.end(), out_field);
    stages.push_back(scl::stencil::make_stage(
        k.name, static_cast<int>(field_pos - field_names.begin()), formula,
        field_names, dims));
  }

  return StencilProgram(
      options.name.empty() ? kernels.front().name : options.name, dims,
      options.extents, options.iterations, std::move(fields),
      std::move(stages));
}

}  // namespace scl::frontend
