// OpenCL-C front end (the paper's input: "an original stencil algorithm
// written in OpenCL").
//
// Imports a restricted but idiomatic subset of naive NDRange stencil
// kernels — the form PolyBench/Rodinia OpenCL ports and the paper's
// Figure 3 use — and recovers a StencilProgram:
//
//     __kernel void jacobi2d(__global const float* A,
//                            __global float* Anext, const int N) {
//       int i = get_global_id(0);
//       int j = get_global_id(1);
//       if (i >= 1 && i < N - 1 && j >= 1 && j < N - 1) {
//         Anext[i * N + j] = 0.2f * (A[i * N + j] + A[i * N + (j - 1)]
//             + A[i * N + (j + 1)] + A[(i - 1) * N + j] + A[(i + 1) * N + j]);
//       }
//     }
//
// Accepted shape per kernel:
//   * float-pointer arguments are arrays; integer arguments are size
//     symbols bound from the provided grid extents;
//   * `int <v> = get_global_id(<d>);` declarations define the induction
//     variables (one per dimension, in dimension order);
//   * an optional `if (<guard>)` (the Dirichlet-border test — its bounds
//     are re-derived from the stencil radii, not parsed);
//   * optional single-assignment `float t = <expr>;` temporaries;
//   * exactly one array store `OUT[<affine index>] = <expr>;` whose reads
//     are affine in the induction variables with constant offsets.
//
// Multiple kernels become the iteration's stages in source order. A
// kernel that writes an array it never reads, while reading a matching
// array nobody writes (the classic A/Anext ping-pong the host swaps each
// iteration) has the pair unified into one logical double-buffered field.
// Arrays only ever read become constant fields (e.g. HotSpot's power).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "stencil/program.hpp"

namespace scl::frontend {

struct OpenClImportOptions {
  /// Grid extents per dimension (also bind the kernels' integer size
  /// arguments, outermost dimension first: for `(const int N, const int M)`
  /// N = extent of dim 0).
  std::array<std::int64_t, 3> extents{1, 1, 1};
  int dims = 0;  ///< 0 = infer from get_global_id uses
  std::int64_t iterations = 1;

  /// Initial-condition spec per logical field name (see
  /// stencil::make_initializer); fields not listed get `default_init`.
  std::map<std::string, std::string> init_specs;
  std::string default_init = "wave 0.25";

  /// Program name; empty = first kernel's name.
  std::string name;
};

/// Imports OpenCL-C kernels into a StencilProgram. Throws scl::Error with
/// a line-anchored message on anything outside the supported subset.
scl::stencil::StencilProgram import_opencl(const std::string& source,
                                           const OpenClImportOptions& options);

}  // namespace scl::frontend
