#include "sim/timeline.hpp"

#include "support/strings.hpp"

namespace scl::sim {

namespace {
std::string line(const char* label, std::int64_t cycles, std::int64_t total) {
  const double pct =
      total > 0 ? 100.0 * static_cast<double>(cycles) /
                      static_cast<double>(total)
                : 0.0;
  return str_cat("  ", label, ": ", format_thousands(cycles), " (",
                 format_fixed(pct, 1), "%)\n");
}
}  // namespace

std::string PhaseBreakdown::to_string() const {
  const std::int64_t t = total();
  std::string out = str_cat("total kernel cycles: ", format_thousands(t), "\n");
  out += line("launch", launch, t);
  out += line("mem_read", mem_read, t);
  out += line("mem_write", mem_write, t);
  out += line("compute_own", compute_own, t);
  out += line("compute_redundant", compute_redundant, t);
  out += line("pipe_transfer", pipe_transfer, t);
  out += line("pipe_stall", pipe_stall, t);
  out += line("barrier_wait", barrier_wait, t);
  return out;
}

}  // namespace scl::sim
