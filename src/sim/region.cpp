#include "sim/region.hpp"

#include "support/error.hpp"
#include "support/math.hpp"

namespace scl::sim {

using scl::stencil::Index;
using scl::stencil::StencilProgram;

RegionGrid::RegionGrid(const StencilProgram& program,
                       const DesignConfig& config)
    : program_(&program), config_(config) {
  config.validate(program);

  const Box grid = program.grid_box();
  regions_per_pass_ = 1;
  for (int d = 0; d < 3; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    const std::int64_t w = grid.extent(d);
    const std::int64_t r = config.region_extent(d);
    const std::int64_t n = ceil_div(w, r);
    region_counts_[ds] = n;
    regions_per_pass_ *= n;

    // Build segment classes, merging segments that behave identically. A
    // segment's timing depends on the grid border when anything the
    // region computes can be clipped by it: the cone margins reach
    // iter_radii * h beyond the region, and compute boxes are clipped by
    // the updatable region, which is inset by up to the stage read radius.
    // Segments farther than that "reach" from both borders and with equal
    // extent are interchangeable; everything nearer gets its own class.
    std::vector<SegmentClass>& classes = classes_[ds];
    auto extent_at = [&](std::int64_t i) {
      return std::min(r, w - i * r);
    };
    const std::int64_t reach_low =
        program.iter_radii()[ds][0] * config.fused_iterations +
        program.max_stage_radii()[ds][0];
    const std::int64_t reach_high =
        program.iter_radii()[ds][1] * config.fused_iterations +
        program.max_stage_radii()[ds][1];
    std::int64_t generic_count = 0;
    std::int64_t generic_lo = -1;
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t lo = i * r;
      const std::int64_t extent = extent_at(i);
      const bool generic =
          lo >= reach_low && lo + extent <= w - reach_high && extent == r;
      if (generic) {
        ++generic_count;
        if (generic_lo < 0) generic_lo = lo;
      } else {
        classes.push_back({lo, extent, 1, lo == 0, lo + extent >= w});
      }
    }
    if (generic_count > 0) {
      classes.push_back({generic_lo, r, generic_count, false, false});
    }
  }

  passes_ = ceil_div(program.iterations(), config.fused_iterations);
  last_pass_iterations_ =
      program.iterations() - config.fused_iterations * (passes_ - 1);
}

RegionPlan RegionGrid::make_region(
    const std::array<std::int64_t, 3>& lo,
    const std::array<std::int64_t, 3>& extent) const {
  RegionPlan plan;
  const Box grid = program_->grid_box();
  for (int d = 0; d < 3; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    plan.box.lo[ds] = lo[ds];
    plan.box.hi[ds] = lo[ds] + extent[ds];
    plan.at_grid_edge[ds][0] = lo[ds] == grid.lo[ds];
    plan.at_grid_edge[ds][1] = lo[ds] + extent[ds] >= grid.hi[ds];
  }

  // Partition the region among the K_d x K_d x K_d tile grid using the
  // balanced extents, clipping at the region end (remainder regions can
  // leave trailing tiles empty).
  std::array<std::vector<std::int64_t>, 3> starts;
  std::array<std::vector<std::int64_t>, 3> ends;
  for (int d = 0; d < 3; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    const auto extents = config_.tile_extents(d);
    std::int64_t cursor = plan.box.lo[ds];
    for (const std::int64_t e : extents) {
      starts[ds].push_back(std::min(cursor, plan.box.hi[ds]));
      cursor += e;
      ends[ds].push_back(std::min(cursor, plan.box.hi[ds]));
    }
  }

  int kernel_index = 0;
  for (int t0 = 0; t0 < config_.parallelism[0]; ++t0) {
    for (int t1 = 0; t1 < config_.parallelism[1]; ++t1) {
      for (int t2 = 0; t2 < config_.parallelism[2]; ++t2) {
        TilePlacement tile;
        tile.coord = {t0, t1, t2};
        tile.kernel_index = kernel_index++;
        const std::array<int, 3> coords{t0, t1, t2};
        for (int d = 0; d < 3; ++d) {
          const auto ds = static_cast<std::size_t>(d);
          const auto c = static_cast<std::size_t>(coords[ds]);
          tile.box.lo[ds] = starts[ds][c];
          tile.box.hi[ds] = ends[ds][c];
          // A face is exterior when it lies on the region boundary — by
          // tile coordinate, or because clipping in a remainder region
          // left no sibling beyond it to feed the halo pipes.
          tile.exterior[ds][0] = coords[ds] == 0 ||
                                 tile.box.lo[ds] <= plan.box.lo[ds];
          tile.exterior[ds][1] = coords[ds] == config_.parallelism[ds] - 1 ||
                                 tile.box.hi[ds] >= plan.box.hi[ds];
        }
        if (tile.box.empty()) {
          // An empty tile exchanges nothing; marking every face exterior
          // keeps the pipe wiring symmetric with its clipped neighbors.
          for (auto& flags : tile.exterior) flags = {true, true};
        }
        plan.tiles.push_back(tile);
      }
    }
  }
  return plan;
}

std::vector<RegionPlan> RegionGrid::all_regions() const {
  std::vector<RegionPlan> out;
  out.reserve(static_cast<std::size_t>(regions_per_pass_));
  const Box grid = program_->grid_box();
  for (std::int64_t i0 = 0; i0 < region_counts_[0]; ++i0) {
    for (std::int64_t i1 = 0; i1 < region_counts_[1]; ++i1) {
      for (std::int64_t i2 = 0; i2 < region_counts_[2]; ++i2) {
        std::array<std::int64_t, 3> lo;
        std::array<std::int64_t, 3> extent;
        const std::array<std::int64_t, 3> idx{i0, i1, i2};
        for (int d = 0; d < 3; ++d) {
          const auto ds = static_cast<std::size_t>(d);
          const std::int64_t r = config_.region_extent(d);
          lo[ds] = idx[ds] * r;
          extent[ds] = std::min(r, grid.extent(d) - lo[ds]);
        }
        out.push_back(make_region(lo, extent));
      }
    }
  }
  return out;
}

std::vector<RegionGrid::ShapeCount> RegionGrid::distinct_shapes() const {
  std::vector<ShapeCount> out;
  for (const SegmentClass& c0 : classes_[0]) {
    for (const SegmentClass& c1 : classes_[1]) {
      for (const SegmentClass& c2 : classes_[2]) {
        ShapeCount sc;
        sc.count = c0.count * c1.count * c2.count;
        sc.plan = make_region({c0.lo, c1.lo, c2.lo},
                              {c0.extent, c1.extent, c2.extent});
        out.push_back(std::move(sc));
      }
    }
  }
  return out;
}

}  // namespace scl::sim
