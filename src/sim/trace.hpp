// Per-kernel event traces of one region execution.
//
// Every clock-advancing step of every tile kernel (launch slot, burst
// read, each stage's independent/dependent compute, exposed pipe traffic,
// halo waits, burst write) is recorded as a time interval. The trace
// renders to CSV or to the Chrome-tracing JSON format
// (chrome://tracing, https://ui.perfetto.dev), which makes the pipeline
// interplay between adjacent kernels — the essence of the paper's design —
// directly visible on a timeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scl::sim {

struct TraceEvent {
  std::string kernel;  ///< tile kernel name, e.g. "tile(0,1,0)"
  std::string phase;   ///< e.g. "mem_read", "compute s0 it3", "halo_wait"
  std::int64_t begin = 0;  ///< cycles
  std::int64_t end = 0;
};

struct RegionTrace {
  std::vector<TraceEvent> events;
  std::int64_t region_cycles = 0;

  /// Chrome-tracing/Perfetto JSON ("traceEvents" array of X events; the
  /// microsecond timestamps carry cycles verbatim).
  std::string to_chrome_json() const;

  /// kernel,phase,begin,end rows.
  std::string to_csv() const;

  /// Total traced cycles of one kernel (for cross-checks against the
  /// PhaseBreakdown accounting).
  std::int64_t kernel_busy_cycles(const std::string& kernel) const;
};

}  // namespace scl::sim
