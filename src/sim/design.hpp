// Accelerator design points.
//
// A DesignConfig fixes everything the code generator, the analytical model
// and the simulator need to know about one synthesized accelerator:
//
//   * kind       — Baseline reproduces Nacci et al. [DAC'13]: independent
//                  per-tile cones with overlapped (redundant) halos.
//                  Heterogeneous is the paper's proposal: pipe-shared
//                  boundaries plus workload-balanced tile sizes.
//   * fused_iterations (h) — cone depth: iterations executed on-chip
//                  between global-memory synchronizations.
//   * parallelism (K_d) — tiles per region along each dimension; the
//                  product is the paper's K (kernels running in parallel).
//   * tile_size (w_d) — nominal tile extent per dimension.
//   * edge_shrink — workload balancing: cells removed from each
//                  region-edge tile per dimension and redistributed to the
//                  interior tiles (0 for unbalanced designs). Edge tiles
//                  still compute the shrinking cone toward region-exterior
//                  faces, so shrinking them equalizes per-pass work.
//   * unroll (N_PE) — processing elements per kernel.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/family.hpp"
#include "stencil/program.hpp"

namespace scl::sim {

enum class DesignKind { kBaseline, kHeterogeneous };

const char* to_string(DesignKind kind);

/// Canonical identity of a DesignConfig: every field that influences the
/// analytical model, the resource estimate, the simulator and codegen,
/// packed into one lexicographically comparable tuple. Two configs with
/// equal keys evaluate identically, which is what makes the key usable
/// both as the eval-cache key and as the final tie-breaker of the
/// deterministic design ordering.
struct DesignKey {
  std::array<std::int64_t, 14> v{};

  friend bool operator==(const DesignKey&, const DesignKey&) = default;
  friend auto operator<=>(const DesignKey&, const DesignKey&) = default;
};

/// Hash functor for DesignKey (FNV-1a over the packed words), for
/// unordered containers.
struct DesignKeyHash {
  std::size_t operator()(const DesignKey& key) const;
};

struct DesignConfig {
  /// Architecture family (arch/family.hpp). kPipeTiling interprets the
  /// fields exactly as documented above. kTemporalShift reuses them with
  /// the temporal family's meaning: kind stays kBaseline, parallelism is
  /// {1,1,1} (one deep pipeline), tile_size[dims-1] is the strip width w
  /// (full grid extent elsewhere), fused_iterations is the temporal
  /// degree T (must divide the iteration count: a fixed-depth cascade
  /// cannot execute a partial pass), and unroll is the vector width V.
  arch::DesignFamily family = arch::DesignFamily::kPipeTiling;
  DesignKind kind = DesignKind::kBaseline;
  std::int64_t fused_iterations = 1;
  std::array<int, 3> parallelism{1, 1, 1};
  std::array<std::int64_t, 3> tile_size{1, 1, 1};
  std::array<std::int64_t, 3> edge_shrink{0, 0, 0};
  int unroll = 1;

  /// Spatial replication factor R: independent PE groups, each a full copy
  /// of the design (K kernels for pipe-tiling, one cascade for
  /// temporal-shift), bound to disjoint global-memory bank groups. A
  /// pass's regions are strip-partitioned across the replicas; replicas
  /// never communicate (regions within a pass are independent). R = 1 is
  /// today's single-copy design on every DDR device.
  int replication = 1;

  /// Total kernels per replica and per region (the paper's K).
  std::int64_t total_kernels() const {
    return static_cast<std::int64_t>(parallelism[0]) * parallelism[1] *
           parallelism[2];
  }

  /// Kernels instantiated on the device: R replicas of K kernels.
  std::int64_t replicated_kernels() const {
    return total_kernels() * replication;
  }

  /// The balanced tile extents along dimension d, low to high. Edge tiles
  /// lose `edge_shrink[d]` cells each; interior tiles gain them as evenly
  /// as possible (lower-indexed interior tiles take the remainder).
  std::vector<std::int64_t> tile_extents(int d) const;

  /// Region extent along d: sum of the balanced tile extents.
  std::int64_t region_extent(int d) const;

  /// The paper's balancing factor f_d^k = extent_k / w_d.
  double balance_factor(int d, int k) const;

  /// Throws scl::Error if the configuration is malformed for `program`
  /// (non-positive sizes, balancing on kind=Baseline or on K_d<=2, shrink
  /// that empties a tile, h exceeding the program iteration count, ...).
  void validate(const scl::stencil::StencilProgram& program) const;

  /// Short human-readable description, e.g. "128x128 tiles, 4x4 CUs, h=32".
  std::string summary(int dims) const;

  /// Canonical identity (see DesignKey).
  DesignKey key() const;

  /// 64-bit FNV-1a hash of key(); stable across runs and platforms with
  /// 64-bit std::int64_t.
  std::uint64_t hash() const;

  friend bool operator==(const DesignConfig&, const DesignConfig&) = default;
};

}  // namespace scl::sim
