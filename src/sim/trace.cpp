#include "sim/trace.hpp"

#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace scl::sim {

std::string RegionTrace::to_chrome_json() const {
  support::JsonWriter json(support::JsonStyle::kCompact);
  json.begin_object();
  json.key("traceEvents").begin_array();
  for (const TraceEvent& e : events) {
    json.begin_object();
    json.member("name", e.phase);
    json.member("cat", "kernel");
    json.member("ph", "X");
    json.member("ts", e.begin);
    json.member("dur", e.end - e.begin);
    json.member("pid", 1);
    json.member("tid", e.kernel);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.take();
}

std::string RegionTrace::to_csv() const {
  TableWriter table({"kernel", "phase", "begin", "end"});
  for (const TraceEvent& e : events) {
    table.add_row({e.kernel, e.phase, std::to_string(e.begin),
                   std::to_string(e.end)});
  }
  return table.to_csv();
}

std::int64_t RegionTrace::kernel_busy_cycles(const std::string& kernel) const {
  std::int64_t total = 0;
  for (const TraceEvent& e : events) {
    if (e.kernel == kernel) total += e.end - e.begin;
  }
  return total;
}

}  // namespace scl::sim
