#include "sim/trace.hpp"

#include "support/strings.hpp"
#include "support/table.hpp"

namespace scl::sim {

std::string RegionTrace::to_chrome_json() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",\n";
    first = false;
    out += str_cat("{\"name\":\"", e.phase, "\",\"cat\":\"kernel\",",
                   "\"ph\":\"X\",\"ts\":", e.begin,
                   ",\"dur\":", e.end - e.begin, ",\"pid\":1,\"tid\":\"",
                   e.kernel, "\"}");
  }
  out += "\n]}\n";
  return out;
}

std::string RegionTrace::to_csv() const {
  TableWriter table({"kernel", "phase", "begin", "end"});
  for (const TraceEvent& e : events) {
    table.add_row({e.kernel, e.phase, std::to_string(e.begin),
                   std::to_string(e.end)});
  }
  return table.to_csv();
}

std::int64_t RegionTrace::kernel_busy_cycles(const std::string& kernel) const {
  std::int64_t total = 0;
  for (const TraceEvent& e : events) {
    if (e.kernel == kernel) total += e.end - e.begin;
  }
  return total;
}

}  // namespace scl::sim
