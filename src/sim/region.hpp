// Region decomposition (paper §4.1).
//
// The input grid is covered by regions; one region holds the K = prod(K_d)
// tiles processed concurrently by the K synthesized kernels, and regions
// are processed sequentially. The time dimension is cut into passes of h
// fused iterations (the last pass may be shorter when h does not divide H).
//
// For timing simulation the decomposition also exposes the *distinct*
// region shapes: two regions behave identically iff they have the same
// extents and the same grid-edge adjacency (a region flush against the
// grid border has its cone expansions clipped, so it does less work).
// Simulating one representative per shape and multiplying by the count is
// what makes paper-scale inputs (1024^3 cells, 1024 iterations) tractable.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/design.hpp"
#include "stencil/geometry.hpp"
#include "stencil/program.hpp"

namespace scl::sim {

using scl::stencil::Box;
using scl::stencil::Face;

/// One tile (= one OpenCL kernel's workload) inside a region.
struct TilePlacement {
  std::array<int, 3> coord{0, 0, 0};  ///< position in the K_d tile grid
  int kernel_index = 0;               ///< launch order within the region
  Box box;                            ///< owned cells; may be empty in
                                      ///< remainder regions
  /// exterior[d][side]: this face borders the region boundary (cone
  /// expansion) rather than a sibling tile (pipe exchange).
  std::array<std::array<bool, 2>, 3> exterior{};

  bool face_is_exterior(const Face& f) const {
    return exterior[static_cast<std::size_t>(f.dim)][f.dir < 0 ? 0 : 1];
  }
};

/// A region and its tile partition.
struct RegionPlan {
  Box box;
  std::vector<TilePlacement> tiles;
  /// True per dim/side when the region touches the grid border there.
  std::array<std::array<bool, 2>, 3> at_grid_edge{};
};

class RegionGrid {
 public:
  RegionGrid(const scl::stencil::StencilProgram& program,
             const DesignConfig& config);

  /// Spatial regions per pass.
  std::int64_t regions_per_pass() const { return regions_per_pass_; }

  /// Temporal passes: ceil(H / h).
  std::int64_t passes() const { return passes_; }

  /// Fused iterations in the final pass (== h when h divides H).
  std::int64_t last_pass_iterations() const { return last_pass_iterations_; }

  /// Total region executions over the whole run (paper's N_region).
  std::int64_t total_region_executions() const {
    return regions_per_pass_ * passes_;
  }

  /// Every spatial region, row-major. Intended for functional simulation
  /// at small scale.
  std::vector<RegionPlan> all_regions() const;

  /// Distinct region shapes with multiplicities (for timing simulation).
  struct ShapeCount {
    RegionPlan plan;
    std::int64_t count = 0;
  };
  std::vector<ShapeCount> distinct_shapes() const;

 private:
  /// One class of identical segments along a dimension.
  struct SegmentClass {
    std::int64_t lo = 0;  ///< representative start coordinate
    std::int64_t extent = 0;
    std::int64_t count = 0;
    bool touches_low = false;
    bool touches_high = false;
  };

  RegionPlan make_region(const std::array<std::int64_t, 3>& lo,
                         const std::array<std::int64_t, 3>& extent) const;

  const scl::stencil::StencilProgram* program_;
  DesignConfig config_;
  std::array<std::int64_t, 3> region_counts_{1, 1, 1};
  std::array<std::vector<SegmentClass>, 3> classes_;
  std::int64_t regions_per_pass_ = 0;
  std::int64_t passes_ = 0;
  std::int64_t last_pass_iterations_ = 0;
};

}  // namespace scl::sim
