#include "sim/executor.hpp"

#include <chrono>
#include <cmath>
#include <map>
#include <memory>

#include "arch/temporal_layout.hpp"
#include "fpga/hls.hpp"
#include "ocl/memory.hpp"
#include "ocl/pipe.hpp"
#include "ocl/runtime.hpp"
#include "support/error.hpp"
#include "support/observability/observability.hpp"
#include "support/strings.hpp"

namespace scl::sim {

using scl::stencil::Face;
using scl::stencil::FieldSet;
using scl::stencil::StencilProgram;

Executor::RegionOutcome Executor::run_region(
    const StencilProgram& program, const DesignConfig& config,
    const RegionPlan& plan, std::int64_t pass_iterations, SimMode mode,
    const FieldSet* global_in, FieldSet* global_out,
    std::vector<TraceEvent>* trace) const {
  // One region is executed by one replica; its memory channel is the
  // replica's share of the (possibly banked) device bandwidth. Exact
  // no-op at R=1 on single-bank parts.
  ocl::GlobalMemory memory(device_.replica_bytes_per_cycle(config.replication),
                           device_.mem_port_bytes_per_cycle);
  std::vector<double> stage_cel;
  std::vector<std::int64_t> stage_depth;
  for (int s = 0; s < program.stage_count(); ++s) {
    const fpga::HlsEstimate est =
        fpga::estimate_stage(program.stage(s), config.unroll);
    stage_cel.push_back(fpga::cycles_per_element(est, config.unroll));
    stage_depth.push_back(est.depth);
  }

  // The baseline design has no pipes: every tile computes an independent
  // overlapped cone, so all faces behave as region-exterior.
  std::vector<TilePlacement> tiles = plan.tiles;
  if (config.kind == DesignKind::kBaseline) {
    for (TilePlacement& t : tiles) {
      for (auto& dim_flags : t.exterior) dim_flags = {true, true};
    }
  }

  // Index tiles by coordinate for neighbor lookup.
  auto coord_key = [&](int c0, int c1, int c2) {
    return (c0 * config.parallelism[1] + c1) * config.parallelism[2] + c2;
  };
  std::vector<const TilePlacement*> by_coord(
      static_cast<std::size_t>(config.total_kernels()), nullptr);
  for (const TilePlacement& t : tiles) {
    by_coord[static_cast<std::size_t>(
        coord_key(t.coord[0], t.coord[1], t.coord[2]))] = &t;
  }

  // Create pipe pairs for every interior face (heterogeneous design only).
  // One directed pipe per (tile, face); FIFOs are sized to hold at least
  // the widest strip so the symmetric send phases cannot deadlock.
  std::vector<std::unique_ptr<ocl::Pipe>> pipes;
  std::map<std::pair<int, int>, ocl::Pipe*> out_pipe_of;  // (kernel, face id)
  auto face_id = [](int d, int side) { return d * 2 + side; };
  if (config.kind == DesignKind::kHeterogeneous) {
    for (const TilePlacement& t : tiles) {
      for (int d = 0; d < program.dims(); ++d) {
        const auto ds = static_cast<std::size_t>(d);
        for (int side = 0; side < 2; ++side) {
          if (t.exterior[ds][static_cast<std::size_t>(side)]) continue;
          std::array<int, 3> nc = t.coord;
          nc[ds] += side == 0 ? -1 : +1;
          const TilePlacement& nb =
              *by_coord[static_cast<std::size_t>(coord_key(nc[0], nc[1], nc[2]))];
          const Face face{d, side == 0 ? -1 : +1};
          const std::int64_t strip =
              max_face_strip_elements(program, t, nb, face, pass_iterations);
          const std::int64_t depth =
              std::max(device_.pipe_fifo_depth, strip);
          pipes.push_back(std::make_unique<ocl::Pipe>(
              str_cat("pipe_k", t.kernel_index, "_d", d, side == 0 ? "n" : "p"),
              depth, device_.pipe_cycles_per_element));
          out_pipe_of[{t.kernel_index, face_id(d, side)}] = pipes.back().get();
        }
      }
    }
  }

  ocl::Runtime runtime;
  std::vector<std::shared_ptr<TileTask>> tasks;
  for (const TilePlacement& t : tiles) {
    TileTaskParams params;
    params.program = &program;
    params.mode = mode;
    params.kind = config.kind;
    params.tile = t;
    params.fused_iterations = pass_iterations;
    params.stage_cycles_per_element = stage_cel;
    params.stage_depth = stage_depth;
    params.launch_offset =
        (t.kernel_index + 1) * device_.kernel_launch_cycles;
    params.memory = &memory;
    params.memory_sharers = static_cast<int>(config.total_kernels());
    params.latency_hiding = tuning_.latency_hiding;
    params.trace = trace;
    params.global_in = global_in;
    params.global_out = global_out;
    if (config.kind == DesignKind::kHeterogeneous) {
      for (int d = 0; d < program.dims(); ++d) {
        const auto ds = static_cast<std::size_t>(d);
        for (int side = 0; side < 2; ++side) {
          if (t.exterior[ds][static_cast<std::size_t>(side)]) continue;
          std::array<int, 3> nc = t.coord;
          nc[ds] += side == 0 ? -1 : +1;
          const TilePlacement& nb =
              *by_coord[static_cast<std::size_t>(coord_key(nc[0], nc[1], nc[2]))];
          params.neighbors[ds][static_cast<std::size_t>(side)] = nb;
          params.out_pipes[ds][static_cast<std::size_t>(side)] =
              out_pipe_of.at({t.kernel_index, face_id(d, side)});
          // My incoming pipe across this face is the neighbor's outgoing
          // pipe across the mirrored face.
          params.in_pipes[ds][static_cast<std::size_t>(side)] =
              out_pipe_of.at({nb.kernel_index, face_id(d, side == 0 ? 1 : 0)});
        }
      }
    }
    auto task = std::make_shared<TileTask>(std::move(params));
    tasks.push_back(task);
    runtime.add_task(task);
  }

  runtime.run_all();

  RegionOutcome outcome;
  outcome.cycles = runtime.completion_cycles();
  for (const auto& task : tasks) {
    PhaseBreakdown p = task->phases();
    p.barrier_wait = outcome.cycles - task->clock();
    outcome.phases += p;
    outcome.cells_owned += task->cells_owned();
    outcome.cells_redundant += task->cells_redundant();
  }
  for (const auto& pipe : pipes) {
    outcome.pipe_elements += pipe->total_written();
  }
  outcome.bytes = memory.total_bytes();
  return outcome;
}

SimResult Executor::run_temporal(const StencilProgram& program,
                                 const DesignConfig& config,
                                 SimMode mode) const {
  const arch::TemporalLayout layout =
      arch::make_temporal_layout(program, config);
  const RegionGrid grid(program, config);
  SimResult result;
  result.region_executions = grid.total_region_executions();

  // Walk timing. The cascade's stage groups are separate pipeline
  // stations, so the walk advances at the *max* per-stage II; V cells
  // enter per tick. The emitted kernel walks the full padded strip no
  // matter how the grid clipped the strip's owned box (stores clamp into
  // the owned box instead of shortening the loop), so compute and
  // transfer volumes are identical for every region execution.
  std::int64_t ii_walk = 1;
  for (int s = 0; s < program.stage_count(); ++s) {
    ii_walk = std::max(
        ii_walk, fpga::estimate_stage(program.stage(s), config.unroll).ii);
  }
  const std::int64_t fill_drain =
      fpga::estimate_program(program, config.unroll).depth;
  const std::int64_t comp =
      ii_walk * (ceil_div(layout.cells,
                          static_cast<std::int64_t>(layout.vector_width)) +
                 layout.max_store_delay);
  const double bw_share =
      std::min(device_.mem_port_bytes_per_cycle,
               device_.replica_bytes_per_cycle(config.replication));
  const std::int64_t read_bytes =
      layout.cells * program.field_count() * StencilProgram::element_bytes();
  const std::int64_t write_bytes = layout.owned_cells *
                                   program.mutable_field_count() *
                                   StencilProgram::element_bytes();
  const auto mem = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(read_bytes + write_bytes) / bw_share));
  const std::int64_t region_cycles =
      device_.kernel_launch_cycles + std::max(comp, mem) + fill_drain;

  for (const auto& shape : grid.distinct_shapes()) {
    const std::int64_t owned_clip = shape.plan.box.volume();
    const std::int64_t times = shape.count * grid.passes();
    // R replica cascades strip-partition each pass's regions; wall-clock
    // follows the most-loaded replica while work totals stay exact.
    const std::int64_t critical =
        ceil_div(shape.count, static_cast<std::int64_t>(config.replication)) *
        grid.passes();
    result.total_cycles += region_cycles * critical;
    result.cells_owned += owned_clip * times;
    result.cells_redundant += (layout.cells - owned_clip) * times;
    result.global_memory_bytes += (read_bytes + write_bytes) * times;

    PhaseBreakdown phases;
    phases.launch = device_.kernel_launch_cycles;
    const std::int64_t walk = comp + fill_drain;
    phases.compute_own =
        layout.cells > 0 ? walk * owned_clip / layout.cells : walk;
    phases.compute_redundant = walk - phases.compute_own;
    const std::int64_t exposed = std::max<std::int64_t>(0, mem - comp);
    phases.mem_read =
        exposed * read_bytes / std::max<std::int64_t>(1, read_bytes +
                                                             write_bytes);
    phases.mem_write = exposed - phases.mem_read;
    result.phases += phases * critical;
  }

  if (mode == SimMode::kFunctional) {
    // The cascade applies exactly the reference update schedule (taps read
    // the previous committed state, boundary cells pass through), so the
    // spatial twin — a single-tile baseline over the same strips — yields
    // bit-identical field contents.
    SimResult twin = run(program, arch::spatial_twin(config), mode);
    result.fields = std::move(twin.fields);
  }
  result.total_ms =
      device_.cycles_to_ms(static_cast<double>(result.total_cycles));
  return result;
}

RegionTrace Executor::trace_region(const StencilProgram& program,
                                   const DesignConfig& config) const {
  SCL_CHECK(config.family == arch::DesignFamily::kPipeTiling,
            "trace_region models the pipe-tiling family; the temporal "
            "cascade has no per-kernel event timeline");
  const RegionGrid grid(program, config);
  // Prefer the most common shape (the interior, full-size region).
  const auto shapes = grid.distinct_shapes();
  SCL_CHECK(!shapes.empty(), "no regions to trace");
  const RegionGrid::ShapeCount* pick = &shapes.front();
  for (const auto& shape : shapes) {
    if (shape.count > pick->count) pick = &shape;
  }
  RegionTrace trace;
  const RegionOutcome outcome =
      run_region(program, config, pick->plan, config.fused_iterations,
                 SimMode::kTimingOnly, nullptr, nullptr, &trace.events);
  trace.region_cycles = outcome.cycles;
  return trace;
}

SimResult Executor::run(const StencilProgram& program,
                        const DesignConfig& config, SimMode mode) const {
  const auto span = support::obs::tracer().span("sim/run", "sim");
  if (config.family == arch::DesignFamily::kTemporalShift) {
    return run_temporal(program, config, mode);
  }
  const auto sim_start = std::chrono::steady_clock::now();
  const RegionGrid grid(program, config);
  SimResult result;
  result.region_executions = grid.total_region_executions();

  // `times` counts region executions (work totals); `critical_times` is
  // the longest per-replica share of them when R replicas sweep regions
  // of a pass concurrently. At R=1 the two coincide.
  auto accumulate = [&result](const RegionOutcome& o, std::int64_t times,
                              std::int64_t critical_times) {
    result.total_cycles += o.cycles * critical_times;
    result.phases += o.phases * critical_times;
    result.cells_owned += o.cells_owned * times;
    result.cells_redundant += o.cells_redundant * times;
    result.pipe_elements += o.pipe_elements * times;
    result.global_memory_bytes += o.bytes * times;
  };

  if (mode == SimMode::kFunctional) {
    FieldSet current =
        scl::stencil::make_initial_state(program, program.grid_box());
    FieldSet next = current;
    const std::vector<RegionPlan> regions = grid.all_regions();
    for (std::int64_t pass = 0; pass < grid.passes(); ++pass) {
      const std::int64_t h = pass + 1 == grid.passes()
                                 ? grid.last_pass_iterations()
                                 : config.fused_iterations;
      for (const RegionPlan& plan : regions) {
        accumulate(run_region(program, config, plan, h, mode, &current, &next),
                   1, 1);
      }
      std::swap(current, next);
    }
    result.fields = std::move(current);
  } else {
    // One representative per (region shape, pass length).
    const auto shapes = grid.distinct_shapes();
    const std::int64_t full_passes =
        grid.last_pass_iterations() == config.fused_iterations
            ? grid.passes()
            : grid.passes() - 1;
    for (const auto& shape : shapes) {
      const std::int64_t critical_count = ceil_div(
          shape.count, static_cast<std::int64_t>(config.replication));
      if (full_passes > 0) {
        accumulate(run_region(program, config, shape.plan,
                              config.fused_iterations, mode, nullptr, nullptr),
                   shape.count * full_passes, critical_count * full_passes);
      }
      if (full_passes != grid.passes()) {
        accumulate(run_region(program, config, shape.plan,
                              grid.last_pass_iterations(), mode, nullptr,
                              nullptr),
                   shape.count, critical_count);
      }
    }
  }

  result.total_ms = device_.cycles_to_ms(static_cast<double>(result.total_cycles));
  if (support::obs::enabled()) {
    // Simulator wall time next to the modeled device cycles: the gap
    // between "how long the simulation took" and "how long the design
    // would run" is the simulator's own overhead, the analogue of the
    // paper's predicted-vs-measured comparison for our pipeline.
    static auto& runs = support::obs::metrics().counter(
        "scl_sim_runs_total", "device simulations executed");
    static auto& modeled = support::obs::metrics().counter(
        "scl_sim_modeled_cycles_total",
        "device cycles accumulated by the discrete-event simulation");
    static auto& wall = support::obs::metrics().histogram(
        "scl_sim_wall_ms", support::obs::default_latency_ms_buckets(),
        "host wall time of one simulation run");
    runs.increment();
    modeled.add(result.total_cycles);
    wall.observe(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - sim_start)
                     .count());
  }
  return result;
}

}  // namespace scl::sim
