// Per-phase cycle accounting (the data behind the paper's Figure 6).
#pragma once

#include <cstdint>
#include <string>

namespace scl::sim {

/// Cycles a kernel spent in each activity. Summed over kernels and regions
/// this is the execution-time breakdown the paper's Figure 6 plots.
struct PhaseBreakdown {
  std::int64_t launch = 0;             ///< sequential kernel-launch delay
  std::int64_t mem_read = 0;           ///< burst reads from global memory
  std::int64_t mem_write = 0;          ///< burst writes to global memory
  std::int64_t compute_own = 0;        ///< updates of cells the tile owns
  std::int64_t compute_redundant = 0;  ///< cone-overlap updates (discarded)
  std::int64_t pipe_transfer = 0;      ///< pushing boundary data into pipes
  std::int64_t pipe_stall = 0;         ///< waiting on pipe data/backpressure
  std::int64_t barrier_wait = 0;       ///< idle at the end-of-region barrier

  std::int64_t total() const {
    return launch + mem_read + mem_write + compute_own + compute_redundant +
           pipe_transfer + pipe_stall + barrier_wait;
  }

  PhaseBreakdown& operator+=(const PhaseBreakdown& o) {
    launch += o.launch;
    mem_read += o.mem_read;
    mem_write += o.mem_write;
    compute_own += o.compute_own;
    compute_redundant += o.compute_redundant;
    pipe_transfer += o.pipe_transfer;
    pipe_stall += o.pipe_stall;
    barrier_wait += o.barrier_wait;
    return *this;
  }

  PhaseBreakdown operator*(std::int64_t n) const {
    PhaseBreakdown out = *this;
    out.launch *= n;
    out.mem_read *= n;
    out.mem_write *= n;
    out.compute_own *= n;
    out.compute_redundant *= n;
    out.pipe_transfer *= n;
    out.pipe_stall *= n;
    out.barrier_wait *= n;
    return out;
  }

  /// Multi-line human-readable rendering with percentages.
  std::string to_string() const;
};

}  // namespace scl::sim
