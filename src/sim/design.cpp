#include "sim/design.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::sim {

const char* to_string(DesignKind kind) {
  switch (kind) {
    case DesignKind::kBaseline:
      return "Baseline";
    case DesignKind::kHeterogeneous:
      return "Heterogeneous";
  }
  return "?";
}

std::vector<std::int64_t> DesignConfig::tile_extents(int d) const {
  SCL_CHECK(d >= 0 && d < 3, "bad dimension");
  const int k = parallelism[static_cast<std::size_t>(d)];
  const std::int64_t w = tile_size[static_cast<std::size_t>(d)];
  const std::int64_t shrink = edge_shrink[static_cast<std::size_t>(d)];
  std::vector<std::int64_t> extents(static_cast<std::size_t>(k), w);
  if (k >= 3 && shrink > 0) {
    extents.front() -= shrink;
    extents.back() -= shrink;
    const std::int64_t released = 2 * shrink;
    const int interior = k - 2;
    const std::int64_t each = released / interior;
    std::int64_t remainder = released % interior;
    for (int i = 1; i < k - 1; ++i) {
      extents[static_cast<std::size_t>(i)] += each + (remainder > 0 ? 1 : 0);
      if (remainder > 0) --remainder;
    }
  }
  return extents;
}

std::int64_t DesignConfig::region_extent(int d) const {
  std::int64_t total = 0;
  for (const std::int64_t e : tile_extents(d)) total += e;
  return total;
}

double DesignConfig::balance_factor(int d, int k) const {
  const auto extents = tile_extents(d);
  SCL_CHECK(k >= 0 && k < static_cast<int>(extents.size()), "bad tile index");
  return static_cast<double>(extents[static_cast<std::size_t>(k)]) /
         static_cast<double>(tile_size[static_cast<std::size_t>(d)]);
}

void DesignConfig::validate(const scl::stencil::StencilProgram& program) const {
  if (unroll < 1) throw Error("unroll (N_PE) must be >= 1");
  if (replication < 1) throw Error("replication (R) must be >= 1");
  if (fused_iterations < 1) throw Error("fused iteration depth must be >= 1");
  if (fused_iterations > program.iterations()) {
    throw Error(str_cat("fused depth ", fused_iterations,
                        " exceeds program iterations ",
                        program.iterations()));
  }
  if (family == arch::DesignFamily::kTemporalShift) {
    // The temporal family is one deep pipeline walking full-extent strips:
    // the pipe-tiling knobs (kind, K_d, balancing) have no meaning and are
    // pinned so the spatial twin of every temporal config is a valid
    // single-tile baseline design.
    if (kind != DesignKind::kBaseline) {
      throw Error("temporal-shift designs fix kind = Baseline");
    }
    if (parallelism != std::array<int, 3>{1, 1, 1}) {
      throw Error("temporal-shift designs run one pipeline (K = 1x1x1)");
    }
    if (edge_shrink != std::array<std::int64_t, 3>{0, 0, 0}) {
      throw Error("temporal-shift designs have no workload balancing");
    }
    if (program.iterations() % fused_iterations != 0) {
      throw Error(str_cat("temporal degree ", fused_iterations,
                          " must divide the iteration count ",
                          program.iterations(),
                          ": the fixed-depth cascade cannot execute a "
                          "partial pass"));
    }
    for (int d = 0; d < program.dims() - 1; ++d) {
      const auto ds = static_cast<std::size_t>(d);
      if (tile_size[ds] != program.grid_box().extent(d)) {
        throw Error(str_cat("temporal-shift strips keep the full grid "
                            "extent along dimension ", d));
      }
    }
    const int sd = program.dims() - 1;
    if (tile_size[static_cast<std::size_t>(sd)] >
        program.grid_box().extent(sd)) {
      throw Error("temporal-shift strip width exceeds the grid");
    }
  }
  for (int d = 0; d < 3; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    const bool active = d < program.dims();
    if (!active) {
      if (parallelism[ds] != 1 || tile_size[ds] != 1 || edge_shrink[ds] != 0) {
        throw Error(str_cat("dimension ", d,
                            " is inactive and must keep K=1, w=1, shrink=0"));
      }
      continue;
    }
    if (parallelism[ds] < 1) throw Error("parallelism must be >= 1");
    if (tile_size[ds] < 1) throw Error("tile size must be >= 1");
    if (edge_shrink[ds] < 0) throw Error("edge shrink cannot be negative");
    if (edge_shrink[ds] > 0) {
      if (kind == DesignKind::kBaseline) {
        throw Error("the baseline design has no workload balancing");
      }
      if (parallelism[ds] <= 2) {
        throw Error(str_cat(
            "balancing along dimension ", d, " needs K_d >= 3 (got ",
            parallelism[ds], "): with two or fewer tiles there is no "
            "interior tile to absorb the released cells"));
      }
      if (edge_shrink[ds] >= tile_size[ds]) {
        throw Error("edge shrink would empty the edge tile");
      }
    }
  }
}

DesignKey DesignConfig::key() const {
  // The family word leads: the lexicographic DesignKey order (the DSE's
  // final tie-breaker) sorts all pipe-tiling designs before all
  // temporal-shift designs, which is the cross-family enumeration-order
  // contract candidate_space.hpp documents.
  DesignKey k;
  k.v[0] = static_cast<std::int64_t>(family);
  k.v[1] = static_cast<std::int64_t>(kind);
  k.v[2] = fused_iterations;
  for (std::size_t d = 0; d < 3; ++d) {
    k.v[3 + d] = parallelism[d];
    k.v[6 + d] = tile_size[d];
    k.v[9 + d] = edge_shrink[d];
  }
  k.v[12] = unroll;
  k.v[13] = replication;
  return k;
}

namespace {

std::uint64_t fnv1a(const DesignKey& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const std::int64_t word : key.v) {
    auto u = static_cast<std::uint64_t>(word);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (u >> (8 * byte)) & 0xffULL;
      h *= 0x100000001b3ULL;  // FNV prime
    }
  }
  return h;
}

}  // namespace

std::uint64_t DesignConfig::hash() const { return fnv1a(key()); }

std::size_t DesignKeyHash::operator()(const DesignKey& key) const {
  return static_cast<std::size_t>(fnv1a(key));
}

std::string DesignConfig::summary(int dims) const {
  std::vector<std::string> tiles;
  std::vector<std::string> cus;
  for (int d = 0; d < dims; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    tiles.push_back(std::to_string(tile_size[ds]));
    cus.push_back(std::to_string(parallelism[ds]));
  }
  const std::string rep =
      replication > 1 ? str_cat(", R=", replication) : std::string();
  if (family == arch::DesignFamily::kTemporalShift) {
    return str_cat("TemporalShift: T=", fused_iterations, ", strip ",
                   join(tiles, "x"), ", V=", unroll, rep);
  }
  return str_cat(to_string(kind), ": h=", fused_iterations, ", tile ",
                 join(tiles, "x"), ", CUs ", join(cus, "x"), ", N_PE=",
                 unroll, rep);
}

}  // namespace scl::sim
