// TileTask: one synthesized stencil kernel executing one tile's workload
// for one region pass.
//
// The task walks a state machine (read burst -> h fused iterations of
// staged compute with pipe-based halo exchange -> write burst) under the
// cooperative ocl::Runtime. It runs in two modes:
//
//  * Functional — compute steps evaluate the stencil update on real field
//    buffers, strips carry real values, and the owned output is written to
//    the pass's global output field set. Used at small scale to prove the
//    tiling designs bit-exact against the ReferenceExecutor.
//  * TimingOnly — the identical state machine and geometry, but no data is
//    touched: compute charges cycles from cell counts, strips carry
//    zero payloads of the right size. Used at paper-scale inputs.
//
// Latency hiding (paper §3.1). Within each stage the cells are split into
// the *independent* group (no halo data needed) and the *dependent* group
// (within the stage's read radius of a pipe-shared face). The kernel
// computes the independent group first, then applies exactly the neighbor
// strips the dependent group requires — strips that have been in flight
// since the neighbor's matching stage — then computes the dependent group
// and pushes its own boundary strips. Incoming strips are also drained
// from the FIFOs opportunistically whenever a send backpressures, but they
// are *applied* to the halo only at their protocol position, so a kernel
// racing ahead can never leak a too-new value into a neighbor's update.
//
// Compute-box calculus. The task tracks, per field, the box over which the
// field's *latest* version is valid inside the tile buffer. A stage's
// compute box starts from the field's updatable region, is clipped to the
// tile edge on faces shared with sibling tiles, and on region-exterior
// faces extends as far as every read field's validity allows — with a
// margin "pinned" once validity reaches the Dirichlet boundary region,
// whose cells never change. This yields the shrinking overlapped cone of
// the baseline design and the exterior-face-only cone of the heterogeneous
// design from a single implementation.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "ocl/memory.hpp"
#include "ocl/pipe.hpp"
#include "ocl/runtime.hpp"
#include "sim/design.hpp"
#include "sim/region.hpp"
#include "sim/timeline.hpp"
#include "sim/trace.hpp"
#include "stencil/grid.hpp"
#include "stencil/program.hpp"
#include "stencil/state.hpp"

namespace scl::sim {

enum class SimMode { kFunctional, kTimingOnly };

/// `placement`'s box grown by iter_radii * (h - i) on its region-exterior
/// faces and clipped to the grid: the cells that must be correct after
/// fused iteration `i` (of `h`) for the final owned output to be exact.
Box extended_tile_box(const scl::stencil::StencilProgram& program,
                      const TilePlacement& placement, std::int64_t h,
                      std::int64_t i);

/// The strip of field `f` that crosses `face` into `receiver`'s halo during
/// fused iteration `i`: the receiver-side halo of width
/// field_read_radii(f), clipped to the sender's extended box. Sender and
/// receiver compute the identical box, which is what keeps the FIFO
/// protocol self-synchronizing.
Box halo_strip_box(const scl::stencil::StencilProgram& program,
                   const TilePlacement& receiver, const TilePlacement& sender,
                   const Face& face, int f, std::int64_t h, std::int64_t i);

/// Widest strip (elements) ever exchanged in either direction across the
/// face between `a` and `b` (`face` is from `a`'s perspective). Pipes must
/// be at least this deep or the symmetric send phases deadlock.
std::int64_t max_face_strip_elements(
    const scl::stencil::StencilProgram& program, const TilePlacement& a,
    const TilePlacement& b, const Face& face, std::int64_t h);

/// Per-face pipe endpoints (index [dim][side]); null when the face is
/// region-exterior or has no neighbor.
using FacePipes = std::array<std::array<ocl::Pipe*, 2>, 3>;

struct TileTaskParams {
  const scl::stencil::StencilProgram* program = nullptr;
  SimMode mode = SimMode::kTimingOnly;
  DesignKind kind = DesignKind::kBaseline;

  TilePlacement tile;
  /// Placement of the face-adjacent sibling tile, indexed [dim][side];
  /// only meaningful where tile.exterior is false.
  std::array<std::array<TilePlacement, 2>, 3> neighbors{};

  std::int64_t fused_iterations = 1;  ///< h for this pass

  // Timing parameters (one entry per program stage).
  std::vector<double> stage_cycles_per_element;  ///< II_s / N_PE per stage
  std::vector<std::int64_t> stage_depth;  ///< pipeline fill/drain per stage
  std::int64_t launch_offset = 0;    ///< start clock (sequential launches)
  ocl::GlobalMemory* memory = nullptr;
  int memory_sharers = 1;            ///< kernels sharing DDR bandwidth (K)

  FacePipes out_pipes{};  ///< strips this tile sends
  FacePipes in_pipes{};   ///< strips this tile receives

  /// §3.1 latency hiding; off = pipe writes fully exposed (ablation).
  bool latency_hiding = true;

  /// Optional event sink; every clock-advancing step is appended.
  std::vector<TraceEvent>* trace = nullptr;

  // Functional-mode global state (pass input / pass output).
  const scl::stencil::FieldSet* global_in = nullptr;
  scl::stencil::FieldSet* global_out = nullptr;
};

class TileTask final : public ocl::KernelTask {
 public:
  explicit TileTask(TileTaskParams params);

  StepResult step() override;
  std::int64_t clock() const override { return clock_; }
  const std::string& name() const override { return name_; }

  const PhaseBreakdown& phases() const { return phases_; }
  std::int64_t cells_owned() const { return cells_owned_; }
  std::int64_t cells_redundant() const { return cells_redundant_; }

  /// The tile buffer box (tile + cone margins + halos), useful for
  /// resource sizing and tests.
  const Box& buffer_box() const { return buffer_box_; }

 private:
  enum class State {
    kLaunch,
    kRead,
    kStageIndependent,  ///< compute cells needing no halo data
    kApplyHalo,         ///< blocking: apply strips the dependent cells need
    kStageDependent,    ///< compute boundary-adjacent cells
    kSend,              ///< push this stage's boundary strips
    kWrite,
    kDone,
  };

  /// Protocol position of a strip: lexicographic (iteration, stage).
  struct StripKey {
    std::int64_t iter = 0;
    int stage = 0;
    friend auto operator<=>(const StripKey&, const StripKey&) = default;
  };

  /// One boundary strip expected from (or owed by) a neighbor.
  struct Strip {
    StripKey key;
    int field = 0;
    Face face{0, -1};
    Box box;
    std::vector<float> data;
    std::size_t progress = 0;      ///< elements drained/sent so far
    std::int64_t ready_clock = 0;  ///< availability time of drained data

    std::int64_t volume() const { return box.volume(); }
    bool complete() const {
      return static_cast<std::int64_t>(progress) >= volume();
    }
  };

  // --- geometry helpers ---
  Box extended_box(const TilePlacement& placement, std::int64_t i) const;
  /// Compute box of `stage` at fused iteration `i` from current validity.
  Box compute_box(int stage, std::int64_t i) const;
  /// Splits `c` into the independent core and the dependent strips along
  /// pipe-shared faces (using the stage's read radii).
  void split_compute_box(int stage, const Box& c, Box* independent,
                         std::vector<Box>* dependent) const;

  // --- state-machine steps ---
  void do_launch();
  void do_read();
  void do_stage_independent();
  bool do_apply_halo();
  void do_stage_dependent();
  bool do_send();
  void do_write();
  void advance_stage();

  void evaluate_chunk(const Box& chunk);
  void commit_stage_output();
  /// Charges the stage's cycles for `box` and returns them.
  std::int64_t charge_compute(const Box& box, bool with_depth);
  /// Appends [begin, clock_) to the trace sink (no-op without one).
  void record(const std::string& phase, std::int64_t begin);
  /// Moves available FIFO data into pending strip buffers without applying
  /// it (safe at any time; called opportunistically on send backpressure).
  void drain_face(int d, int side);
  /// Highest strip key stage (iter_, stage_) depends on across `face`,
  /// or nullopt when the stage reads nothing across it.
  std::optional<StripKey> needed_key(int d, int side) const;

  /// True if some stage after `stage` reads `field` into a halo on
  /// `halo_side` (0 = low, 1 = high) of dimension `d` — i.e. whether the
  /// strip emitted after `stage` in the final fused iteration would ever
  /// be consumed. Sender and receiver apply the same predicate so the
  /// pipes never accumulate strips nobody reads.
  bool strip_is_consumed(int field, int d, int halo_side, int stage,
                         std::int64_t iter) const;

  const scl::stencil::StencilProgram& program() const {
    return *params_.program;
  }
  bool face_is_shared(int d, int side) const {
    return params_.kind == DesignKind::kHeterogeneous &&
           !params_.tile.exterior[static_cast<std::size_t>(d)]
                                 [static_cast<std::size_t>(side)];
  }

  TileTaskParams params_;
  std::string name_;
  State state_ = State::kLaunch;
  std::int64_t clock_ = 0;
  PhaseBreakdown phases_;

  Box buffer_box_;
  std::vector<Box> valid_;  ///< per-field latest-version validity box

  // Functional-mode storage.
  std::optional<scl::stencil::FieldSet> fields_;
  std::optional<scl::stencil::Grid<float>> shadow_;

  // Iteration/stage cursor.
  std::int64_t iter_ = 1;  // 1-based fused iteration
  int stage_ = 0;

  // Current stage work decomposition.
  Box current_box_;
  Box independent_box_;
  std::vector<Box> dependent_boxes_;

  // Outgoing strips of the current stage.
  std::vector<Strip> sends_;
  std::size_t send_cursor_ = 0;
  /// Independent-compute cycles of the current stage still available to
  /// hide pipe-write time behind (paper §3.1 latency hiding).
  std::int64_t overlap_budget_ = 0;

  // Incoming strips, per face, in protocol order. Front entries fill as
  // FIFOs drain; entries are applied (written to the halo) only when a
  // dependent compute requires their key.
  std::array<std::array<std::deque<Strip>, 2>, 3> incoming_;

  std::int64_t cells_owned_ = 0;
  std::int64_t cells_redundant_ = 0;
};

}  // namespace scl::sim
