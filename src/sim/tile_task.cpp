#include "sim/tile_task.hpp"

#include <algorithm>
#include <cmath>

#include "stencil/reference.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::sim {

using scl::stencil::Box;
using scl::stencil::Face;
using scl::stencil::FieldSet;
using scl::stencil::Grid;
using scl::stencil::Index;
using scl::stencil::Stage;
using scl::stencil::StencilProgram;

Box extended_tile_box(const StencilProgram& program,
                      const TilePlacement& placement, std::int64_t h,
                      std::int64_t i) {
  Box box = placement.box;
  const std::int64_t remaining = h - i;
  for (int d = 0; d < program.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    for (int side = 0; side < 2; ++side) {
      if (!placement.exterior[ds][static_cast<std::size_t>(side)]) continue;
      const Face face{d, side == 0 ? -1 : +1};
      box = box.grown(
          face, program.iter_radii()[ds][static_cast<std::size_t>(side)] *
                    remaining);
    }
  }
  return box.intersect(program.grid_box());
}

Box halo_strip_box(const StencilProgram& program,
                   const TilePlacement& receiver, const TilePlacement& sender,
                   const Face& face, int f, std::int64_t h, std::int64_t i) {
  const auto ds = static_cast<std::size_t>(face.dim);
  const auto side = static_cast<std::size_t>(face.dir < 0 ? 0 : 1);
  const std::int64_t width = program.field_read_radii(f)[ds][side];
  if (width == 0) return Box{};
  const Box mine = extended_tile_box(program, receiver, h, i);
  const Box theirs = extended_tile_box(program, sender, h, i);
  return mine.halo_strip(face, width).intersect(theirs);
}

std::int64_t max_face_strip_elements(const StencilProgram& program,
                                     const TilePlacement& a,
                                     const TilePlacement& b, const Face& face,
                                     std::int64_t h) {
  // A directed pipe can hold strips of every mutable field of the current
  // iteration plus deferred strips of the previous one while the consumer
  // works ahead of its apply points; the FIFO must hold them all or the
  // producer backpressures every stage.
  std::int64_t per_iteration = 0;
  const Face mirrored{face.dim, -face.dir};
  for (int f = 0; f < program.field_count(); ++f) {
    if (program.is_constant_field(f)) continue;
    per_iteration +=
        std::max(halo_strip_box(program, a, b, face, f, h, 1).volume(),
                 halo_strip_box(program, b, a, mirrored, f, h, 1).volume());
  }
  return 2 * per_iteration;
}

TileTask::TileTask(TileTaskParams params) : params_(std::move(params)) {
  SCL_CHECK(params_.program != nullptr, "tile task needs a program");
  SCL_CHECK(params_.memory != nullptr, "tile task needs a memory channel");
  SCL_CHECK(params_.fused_iterations >= 1, "pass needs >= 1 iterations");
  const TilePlacement& tile = params_.tile;
  name_ = str_cat("tile(", tile.coord[0], ",", tile.coord[1], ",",
                  tile.coord[2], ")");

  if (tile.box.empty()) {
    // Remainder regions can leave trailing tiles without cells; the kernel
    // is still enqueued (and charged its launch slot) but does nothing.
    clock_ = params_.launch_offset;
    phases_.launch = params_.launch_offset;
    state_ = State::kDone;
    return;
  }

  const StencilProgram& prog = program();
  buffer_box_ = tile.box;
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    for (int side = 0; side < 2; ++side) {
      const Face face{d, side == 0 ? -1 : +1};
      const std::int64_t margin =
          face_is_shared(d, side)
              ? prog.max_stage_radii()[ds][static_cast<std::size_t>(side)]
              : prog.iter_radii()[ds][static_cast<std::size_t>(side)] *
                    params_.fused_iterations;
      buffer_box_ = buffer_box_.grown(face, margin);
    }
  }
  buffer_box_ = buffer_box_.intersect(prog.grid_box());
  valid_.assign(static_cast<std::size_t>(prog.field_count()), Box{});

  if (params_.mode == SimMode::kFunctional) {
    SCL_CHECK(params_.global_in != nullptr && params_.global_out != nullptr,
              "functional mode needs global field sets");
  }
}

Box TileTask::extended_box(const TilePlacement& placement,
                           std::int64_t i) const {
  // The baseline design treats every face as exterior (the executor sets
  // the placement flags accordingly), so this covers both designs.
  return extended_tile_box(program(), placement, params_.fused_iterations, i);
}

Box TileTask::compute_box(int stage, std::int64_t i) const {
  const StencilProgram& prog = program();
  const Stage& st = prog.stage(stage);
  Box c = prog.updated_box(st.output_field);
  const TilePlacement& tile = params_.tile;

  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    for (int side = 0; side < 2; ++side) {
      if (face_is_shared(d, side)) {
        // Pipes provide the halo: compute exactly up to the tile edge.
        if (side == 0) {
          c.lo[ds] = std::max(c.lo[ds], tile.box.lo[ds]);
        } else {
          c.hi[ds] = std::min(c.hi[ds], tile.box.hi[ds]);
        }
        continue;
      }
      // Region-exterior face: extend as far as every read field's validity
      // allows. Once validity reaches the Dirichlet region (whose cells
      // never change) the margin is pinned and stops shrinking.
      for (const auto& read : st.reads) {
        if (prog.is_constant_field(read.field)) continue;
        const Box& v = valid_[static_cast<std::size_t>(read.field)];
        const Box ub = prog.updated_box(read.field);
        if (side == 0) {
          const std::int64_t shift =
              std::max<std::int64_t>(0, -read.offset[ds]);
          if (v.lo[ds] > ub.lo[ds]) {
            c.lo[ds] = std::max(c.lo[ds], v.lo[ds] + shift);
          }
        } else {
          const std::int64_t shift =
              std::max<std::int64_t>(0, read.offset[ds]);
          if (v.hi[ds] < ub.hi[ds]) {
            c.hi[ds] = std::min(c.hi[ds], v.hi[ds] - shift);
          }
        }
      }
    }
  }
  // Bound the cone by what the final output can still depend on (this is
  // the loop bound a generated kernel would use; without it, multi-stage
  // programs with lazily-shrinking fields would compute far-out scratch
  // cells that cannot influence the owned result).
  Box bound = params_.tile.box;
  const std::int64_t remaining = params_.fused_iterations - (i - 1);
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    for (int side = 0; side < 2; ++side) {
      if (face_is_shared(d, side)) continue;
      const Face face{d, side == 0 ? -1 : +1};
      bound = bound.grown(
          face, prog.iter_radii()[ds][static_cast<std::size_t>(side)] *
                    remaining);
    }
  }
  return c.intersect(bound.intersect(prog.grid_box()));
}

void TileTask::split_compute_box(int stage, const Box& c, Box* independent,
                                 std::vector<Box>* dependent) const {
  const StencilProgram& prog = program();
  const auto& radii = prog.stage_radii(stage);
  Box rem = c;
  dependent->clear();
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    for (int side = 0; side < 2; ++side) {
      if (!face_is_shared(d, side)) continue;
      const std::int64_t rho = radii[ds][static_cast<std::size_t>(side)];
      if (rho == 0 || rem.empty()) continue;
      Box strip = rem;
      if (side == 0) {
        const std::int64_t cut =
            std::min(rem.hi[ds], params_.tile.box.lo[ds] + rho);
        if (cut <= rem.lo[ds]) continue;
        strip.hi[ds] = cut;
        rem.lo[ds] = cut;
      } else {
        const std::int64_t cut =
            std::max(rem.lo[ds], params_.tile.box.hi[ds] - rho);
        if (cut >= rem.hi[ds]) continue;
        strip.lo[ds] = cut;
        rem.hi[ds] = cut;
      }
      if (!strip.empty()) dependent->push_back(strip);
    }
  }
  *independent = rem;
}

void TileTask::record(const std::string& phase, std::int64_t begin) {
  if (params_.trace != nullptr && clock_ > begin) {
    params_.trace->push_back(TraceEvent{name_, phase, begin, clock_});
  }
}

std::int64_t TileTask::charge_compute(const Box& box, bool with_depth) {
  const std::int64_t cells = box.volume();
  if (cells == 0) return 0;
  const auto ss = static_cast<std::size_t>(stage_);
  const std::int64_t own = box.intersect(params_.tile.box).volume();
  const std::int64_t cycles =
      static_cast<std::int64_t>(
          std::ceil(static_cast<double>(cells) *
                    params_.stage_cycles_per_element.at(ss))) +
      (with_depth ? params_.stage_depth.at(ss) : 0);
  clock_ += cycles;
  const std::int64_t own_cycles = static_cast<std::int64_t>(
      std::llround(static_cast<double>(cycles) * static_cast<double>(own) /
                   static_cast<double>(cells)));
  phases_.compute_own += own_cycles;
  phases_.compute_redundant += cycles - own_cycles;
  cells_owned_ += own;
  cells_redundant_ += cells - own;
  record(str_cat("compute s", stage_, " it", iter_), clock_ - cycles);
  return cycles;
}

void TileTask::evaluate_chunk(const Box& chunk) {
  if (params_.mode != SimMode::kFunctional || chunk.empty()) return;
  const StencilProgram& prog = program();
  const Stage& st = prog.stage(stage_);
  FieldSet& fields = *fields_;
  Grid<float>& out = fields[static_cast<std::size_t>(st.output_field)];
  if (prog.stage_needs_double_buffer(stage_)) {
    if (!shadow_.has_value()) shadow_.emplace(buffer_box_);
    Grid<float>& shadow = *shadow_;
    scl::stencil::evaluate_stage(
        prog, stage_, fields, chunk,
        [&](const Index& p, float v) { shadow.at(p) = v; });
  } else {
    scl::stencil::evaluate_stage(
        prog, stage_, fields, chunk,
        [&](const Index& p, float v) { out.at(p) = v; });
  }
}

void TileTask::commit_stage_output() {
  const StencilProgram& prog = program();
  if (params_.mode == SimMode::kFunctional &&
      prog.stage_needs_double_buffer(stage_) && !current_box_.empty()) {
    (*fields_)[static_cast<std::size_t>(prog.stage(stage_).output_field)]
        .copy_box_from(*shadow_, current_box_);
  }
  valid_[static_cast<std::size_t>(prog.stage(stage_).output_field)] =
      current_box_;
}

void TileTask::do_launch() {
  clock_ = params_.launch_offset;
  phases_.launch = params_.launch_offset;
  record("launch", 0);
  state_ = State::kRead;
}

void TileTask::do_read() {
  const StencilProgram& prog = program();
  if (params_.mode == SimMode::kFunctional) {
    FieldSet fields;
    fields.reserve(static_cast<std::size_t>(prog.field_count()));
    for (int f = 0; f < prog.field_count(); ++f) {
      Grid<float> g(buffer_box_);
      g.copy_box_from((*params_.global_in)[static_cast<std::size_t>(f)],
                      buffer_box_);
      fields.push_back(std::move(g));
    }
    fields_ = std::move(fields);
  }
  for (Box& v : valid_) v = buffer_box_;

  const std::int64_t bytes = prog.field_count() * buffer_box_.volume() *
                             StencilProgram::element_bytes();
  const std::int64_t cycles =
      params_.memory->transfer_cycles(bytes, params_.memory_sharers);
  params_.memory->record_transfer(bytes);
  clock_ += cycles;
  phases_.mem_read += cycles;
  record("mem_read", clock_ - cycles);
  state_ = State::kStageIndependent;
}

void TileTask::do_stage_independent() {
  const StencilProgram& prog = program();
  const int f = prog.stage(stage_).output_field;

  current_box_ = compute_box(stage_, iter_);
  split_compute_box(stage_, current_box_, &independent_box_,
                    &dependent_boxes_);

  // Register the strips the neighbors will send for this (iteration,
  // stage) so FIFO drains have a place to land.
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    for (int side = 0; side < 2; ++side) {
      if (!face_is_shared(d, side)) continue;
      if (!strip_is_consumed(f, d, side, stage_, iter_)) continue;
      const Face face{d, side == 0 ? -1 : +1};
      const Box box =
          halo_strip_box(prog, params_.tile, params_.neighbors[ds][side],
                         face, f, params_.fused_iterations, iter_);
      if (box.empty()) continue;
      Strip strip;
      strip.key = {iter_, stage_};
      strip.field = f;
      strip.face = face;
      strip.box = box;
      strip.data.reserve(static_cast<std::size_t>(box.volume()));
      incoming_[ds][static_cast<std::size_t>(side)].push_back(
          std::move(strip));
    }
  }

  const std::int64_t indep_cycles =
      charge_compute(independent_box_, /*with_depth=*/true);
  overlap_budget_ = params_.latency_hiding ? indep_cycles : 0;
  evaluate_chunk(independent_box_);
  state_ = State::kApplyHalo;
}

void TileTask::drain_face(int d, int side) {
  const auto ds = static_cast<std::size_t>(d);
  const auto ss = static_cast<std::size_t>(side);
  ocl::Pipe* pipe = params_.in_pipes[ds][ss];
  if (pipe == nullptr) return;
  auto& queue = incoming_[ds][ss];
  for (Strip& strip : queue) {
    if (pipe->size() == 0) return;
    if (strip.complete()) continue;
    const std::int64_t want =
        strip.volume() - static_cast<std::int64_t>(strip.progress);
    const std::int64_t take = std::min(pipe->size(), want);
    // Drain with the current clock but do not advance it: the kernel is
    // not waiting here. The availability time is remembered and charged
    // when the strip is applied.
    if (params_.mode == SimMode::kFunctional) {
      const auto r = pipe->read(take, clock_);
      strip.ready_clock = std::max(strip.ready_clock, r.reader_clock);
      strip.data.insert(strip.data.end(), r.values.begin(), r.values.end());
    } else {
      const auto r = pipe->read_counted(take, clock_);
      strip.ready_clock = std::max(strip.ready_clock, r.reader_clock);
    }
    strip.progress += static_cast<std::size_t>(take);
  }
}

bool TileTask::strip_is_consumed(int field, int d, int halo_side, int stage,
                                 std::int64_t iter) const {
  if (iter < params_.fused_iterations) return true;  // next iteration reads it
  const StencilProgram& prog = program();
  for (int s = stage + 1; s < prog.stage_count(); ++s) {
    for (const auto& read : prog.stage(s).reads) {
      if (read.field != field) continue;
      const int off = read.offset[static_cast<std::size_t>(d)];
      if ((halo_side == 0 && off < 0) || (halo_side == 1 && off > 0)) {
        return true;
      }
    }
  }
  return false;
}

std::optional<TileTask::StripKey> TileTask::needed_key(int d, int side) const {
  const StencilProgram& prog = program();
  const Stage& st = prog.stage(stage_);
  std::optional<StripKey> needed;
  for (const auto& read : st.reads) {
    if (prog.is_constant_field(read.field)) continue;
    const int off = read.offset[static_cast<std::size_t>(d)];
    if ((side == 0 && off >= 0) || (side == 1 && off <= 0)) continue;
    const int writer = prog.writing_stage(read.field);
    StripKey key = writer < stage_ ? StripKey{iter_, writer}
                                   : StripKey{iter_ - 1, writer};
    if (key.iter < 1) continue;  // pre-pass halo came with the global read
    if (!needed.has_value() || *needed < key) needed = key;
  }
  return needed;
}

bool TileTask::do_apply_halo() {
  const StencilProgram& prog = program();
  bool progressed = false;
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    for (int side = 0; side < 2; ++side) {
      if (!face_is_shared(d, side)) continue;
      const std::optional<StripKey> needed = needed_key(d, side);
      if (!needed.has_value()) continue;
      auto& queue = incoming_[ds][static_cast<std::size_t>(side)];
      while (!queue.empty() && queue.front().key <= *needed) {
        Strip& strip = queue.front();
        if (!strip.complete()) {
          const std::size_t before = strip.progress;
          drain_face(d, side);
          progressed |= strip.progress != before;
          if (!strip.complete()) return progressed;
        }
        // Charge the wait: the dependent cells cannot start before the
        // strip's last element arrived.
        if (strip.ready_clock > clock_) {
          phases_.pipe_stall += strip.ready_clock - clock_;
          const std::int64_t begin = clock_;
          clock_ = strip.ready_clock;
          record("halo_wait", begin);
        }
        if (params_.mode == SimMode::kFunctional && strip.volume() > 0) {
          (*fields_)[static_cast<std::size_t>(strip.field)].write_box(
              strip.box, strip.data);
        }
        queue.pop_front();
        progressed = true;
      }
    }
  }
  state_ = State::kStageDependent;
  return true;
}

void TileTask::do_stage_dependent() {
  for (const Box& chunk : dependent_boxes_) {
    charge_compute(chunk, /*with_depth=*/false);
    evaluate_chunk(chunk);
  }
  commit_stage_output();

  // Queue this stage's outgoing boundary strips.
  const StencilProgram& prog = program();
  const int f = prog.stage(stage_).output_field;
  sends_.clear();
  send_cursor_ = 0;
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    for (int side = 0; side < 2; ++side) {
      if (!face_is_shared(d, side)) continue;
      // The receiver's halo lies on the opposite side of the dimension.
      if (!strip_is_consumed(f, d, side == 0 ? 1 : 0, stage_, iter_)) continue;
      const Face face{d, side == 0 ? -1 : +1};
      const Box box = halo_strip_box(
          prog, params_.neighbors[ds][side], params_.tile, Face{d, -face.dir},
          f, params_.fused_iterations, iter_);
      if (box.empty()) continue;
      Strip strip;
      strip.key = {iter_, stage_};
      strip.field = f;
      strip.face = face;
      strip.box = box;
      if (params_.mode == SimMode::kFunctional) {
        strip.data = (*fields_)[static_cast<std::size_t>(f)].read_box(box);
      }
      sends_.push_back(std::move(strip));
    }
  }
  state_ = State::kSend;
}

bool TileTask::do_send() {
  bool progressed = false;
  while (send_cursor_ < sends_.size()) {
    Strip& strip = sends_[send_cursor_];
    const auto ds = static_cast<std::size_t>(strip.face.dim);
    const auto ss = static_cast<std::size_t>(strip.face.dir < 0 ? 0 : 1);
    ocl::Pipe* pipe = params_.out_pipes[ds][ss];
    SCL_CHECK(pipe != nullptr, "shared face without an outgoing pipe");
    const auto w =
        params_.mode == SimMode::kFunctional
            ? pipe->write(strip.data, strip.progress, clock_)
            : pipe->write_counted(
                  strip.volume() - static_cast<std::int64_t>(strip.progress),
                  clock_);
    if (w.written > 0) {
      progressed = true;
      // Pipe writes interleave with the stage's independent computation
      // (§3.1): the transfer cost is hidden up to that budget, and only
      // the excess — plus any backpressure wait — lands on the clock.
      const std::int64_t charged = w.writer_clock - clock_;
      const std::int64_t ideal = w.written * pipe->cycles_per_element();
      const std::int64_t backpressure =
          std::max<std::int64_t>(0, charged - ideal);
      const std::int64_t hidden = std::min(ideal, overlap_budget_);
      overlap_budget_ -= hidden;
      phases_.pipe_transfer += ideal - hidden;
      phases_.pipe_stall += backpressure;
      clock_ += (ideal - hidden) + backpressure;
      record("pipe_send", clock_ - (ideal - hidden) - backpressure);
      strip.progress += static_cast<std::size_t>(w.written);
    }
    if (!strip.complete()) {
      // FIFO full. Opportunistically drain our own inboxes so the
      // neighbor's symmetric send can complete, then yield.
      const StencilProgram& prog = program();
      for (int d = 0; d < prog.dims(); ++d) {
        for (int side = 0; side < 2; ++side) {
          if (face_is_shared(d, side)) drain_face(d, side);
        }
      }
      return progressed;
    }
    ++send_cursor_;
    progressed = true;
  }
  advance_stage();
  return true;
}

void TileTask::advance_stage() {
  ++stage_;
  if (stage_ >= program().stage_count()) {
    stage_ = 0;
    ++iter_;
    if (iter_ > params_.fused_iterations) {
      state_ = State::kWrite;
      return;
    }
  }
  state_ = State::kStageIndependent;
}

void TileTask::do_write() {
  const StencilProgram& prog = program();
  std::int64_t bytes = 0;
  for (int f = 0; f < prog.field_count(); ++f) {
    if (prog.is_constant_field(f)) continue;
    const Box owned = params_.tile.box.intersect(prog.updated_box(f));
    if (owned.empty()) continue;
    bytes += owned.volume() * StencilProgram::element_bytes();
    if (params_.mode == SimMode::kFunctional) {
      (*params_.global_out)[static_cast<std::size_t>(f)].copy_box_from(
          (*fields_)[static_cast<std::size_t>(f)], owned);
    }
  }
  const std::int64_t cycles =
      params_.memory->transfer_cycles(bytes, params_.memory_sharers);
  params_.memory->record_transfer(bytes);
  clock_ += cycles;
  phases_.mem_write += cycles;
  record("mem_write", clock_ - cycles);
  state_ = State::kDone;
}

TileTask::StepResult TileTask::step() {
  switch (state_) {
    case State::kLaunch:
      do_launch();
      return StepResult::kProgress;
    case State::kRead:
      do_read();
      return StepResult::kProgress;
    case State::kStageIndependent:
      do_stage_independent();
      return StepResult::kProgress;
    case State::kApplyHalo: {
      const bool progressed = do_apply_halo();
      if (state_ != State::kApplyHalo) return StepResult::kProgress;
      return progressed ? StepResult::kProgress : StepResult::kBlocked;
    }
    case State::kStageDependent:
      do_stage_dependent();
      return StepResult::kProgress;
    case State::kSend: {
      const bool progressed = do_send();
      if (state_ != State::kSend) return StepResult::kProgress;
      return progressed ? StepResult::kProgress : StepResult::kBlocked;
    }
    case State::kWrite:
      do_write();
      return StepResult::kProgress;
    case State::kDone:
      return StepResult::kDone;
  }
  return StepResult::kDone;
}

}  // namespace scl::sim
