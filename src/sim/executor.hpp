// Whole-application discrete-event simulation (the "measured" side of the
// reproduction — the stand-in for running the bitstream under SDAccel).
//
// Functional mode runs every region of every pass with real data against a
// pair of ping-ponged global field sets, exactly as the synthesized system
// double-buffers its DDR arrays between fused passes, and returns the final
// fields for comparison with the golden ReferenceExecutor.
//
// Timing-only mode exploits that regions with identical shape and grid-edge
// adjacency behave identically: it simulates one representative region per
// distinct shape (and per distinct pass length) and multiplies.
#pragma once

#include <cstdint>
#include <optional>

#include "fpga/device.hpp"
#include "sim/design.hpp"
#include "sim/region.hpp"
#include "sim/tile_task.hpp"
#include "sim/timeline.hpp"
#include "stencil/program.hpp"
#include "stencil/state.hpp"

namespace scl::sim {

struct SimResult {
  std::int64_t total_cycles = 0;
  double total_ms = 0.0;
  /// Per-phase cycles summed over every kernel of every region execution.
  PhaseBreakdown phases;
  std::int64_t region_executions = 0;
  std::int64_t cells_owned = 0;
  std::int64_t cells_redundant = 0;
  std::int64_t pipe_elements = 0;
  std::int64_t global_memory_bytes = 0;
  /// Final field contents (functional mode only).
  std::optional<scl::stencil::FieldSet> fields;

  /// Fraction of updated cells that were redundant cone overlap.
  double redundancy_ratio() const {
    const double total =
        static_cast<double>(cells_owned + cells_redundant);
    return total > 0 ? static_cast<double>(cells_redundant) / total : 0.0;
  }
};

/// Simulator knobs for ablation studies; the defaults model the paper's
/// proposed design.
struct SimTuning {
  /// §3.1 communication-latency hiding: pipe writes overlap the stage's
  /// independent computation. Off = every transferred element lands on
  /// the producer's critical path (λ = 1 in the paper's terms).
  bool latency_hiding = true;
};

/// Re-entrancy contract: an Executor holds only the immutable device spec
/// and tuning knobs; run() and trace_region() build all simulation state
/// (region grids, tile tasks, pipes, field sets) on the stack per call.
/// Concurrent timing-only runs on one instance — or on per-worker
/// instances, as the parallel DSE path uses them — are safe without
/// locking as long as the shared program and device are not mutated.
class Executor {
 public:
  explicit Executor(fpga::DeviceSpec device, SimTuning tuning = SimTuning{})
      : device_(std::move(device)), tuning_(tuning) {}

  const fpga::DeviceSpec& device() const { return device_; }

  /// Simulates `config` running `program` on the device. Functional mode
  /// is intended for small instances (it touches every cell of every
  /// region); timing-only handles the paper-scale inputs.
  SimResult run(const scl::stencil::StencilProgram& program,
                const DesignConfig& config, SimMode mode) const;

  /// Simulates one representative (interior, full-size) region pass and
  /// returns its per-kernel event trace. Timing-only.
  RegionTrace trace_region(const scl::stencil::StencilProgram& program,
                           const DesignConfig& config) const;

 private:
  struct RegionOutcome {
    std::int64_t cycles = 0;
    PhaseBreakdown phases;
    std::int64_t cells_owned = 0;
    std::int64_t cells_redundant = 0;
    std::int64_t pipe_elements = 0;
    std::int64_t bytes = 0;
  };

  RegionOutcome run_region(const scl::stencil::StencilProgram& program,
                           const DesignConfig& config, const RegionPlan& plan,
                           std::int64_t pass_iterations, SimMode mode,
                           const scl::stencil::FieldSet* global_in,
                           scl::stencil::FieldSet* global_out,
                           std::vector<TraceEvent>* trace = nullptr) const;

  /// Temporal-shift family (arch/family.hpp): models the single-kernel
  /// deep pipeline — per strip, one walk of the padded strip through the
  /// T-deep cascade at the walk II, overlapped with the streaming
  /// global-memory traffic, plus launch and pipeline fill/drain. No
  /// pipes, no barriers. Functional mode executes the design's spatial
  /// twin for bit-exact field contents (the cascade computes the same
  /// update schedule) while the timing numbers stay the cascade's.
  SimResult run_temporal(const scl::stencil::StencilProgram& program,
                         const DesignConfig& config, SimMode mode) const;

  fpga::DeviceSpec device_;
  SimTuning tuning_;
};

}  // namespace scl::sim
