// Design families: the top-level architecture discriminator of the
// candidate space.
//
// PR 1..8 explored one architecture — the paper's pipe-connected spatial
// tiling (DAC'17), where K kernels cooperate on a region and exchange
// boundary layers through on-chip pipes. The literature shows that is one
// point in a larger space: Zohouri et al. (FPGA'18, arXiv 1802.00438)
// combine spatial vectorization with *temporal blocking* over
// shift-register line buffers, and StencilStream ships two executor
// families (monotile vs tiling) selected per problem size. DesignFamily
// makes that architectural choice a first-class DSE axis:
//
//   * kPipeTiling    — the paper's family. K_d tiles per region, fused
//                      iterations walk a shrinking cone, halos exchanged
//                      through pipes (or recomputed redundantly for the
//                      Baseline kind).
//   * kTemporalShift — a single deep pipeline. The grid is cut into
//                      strips along the innermost dimension; each strip
//                      streams once through T chained shift-register
//                      stage groups, executing T time steps per pass with
//                      no inter-kernel pipes and no barriers. Vector
//                      width V cells enter the pipeline per cycle.
//
// Enumeration-order contract (relied on by the deterministic DSE
// tie-break, see core/candidate_space.hpp): the family word leads the
// DesignKey, and kPipeTiling (0) orders before kTemporalShift (1), so a
// pipe-tiling design always precedes a temporal design of equal cost no
// matter which thread evaluated it first.
#pragma once

namespace scl::arch {

enum class DesignFamily {
  kPipeTiling = 0,
  kTemporalShift = 1,
};

inline const char* to_string(DesignFamily family) {
  switch (family) {
    case DesignFamily::kPipeTiling:
      return "pipe-tiling";
    case DesignFamily::kTemporalShift:
      return "temporal-shift";
  }
  return "?";
}

}  // namespace scl::arch
