// Temporal-blocked shift-register pipeline layout (family kTemporalShift).
//
// The grid is cut into strips along the innermost (stride-1) dimension;
// every other dimension keeps its full extent, so the strip is a
// contiguous slab of rows. One pass streams each strip — padded by
// T x radius of redundant halo along the strip dimension — through a
// single deep pipeline of T chained stage groups, executing T fused time
// steps with no inter-kernel pipes, no barriers and no __local tile
// buffer: all reuse lives in per-(field, time-state) shift registers.
//
// Walk-tick calculus. The kernel is one loop over walk ticks p. At tick
// p the input streams (state 0) are fed cell p of the padded strip. The
// stage group computing fused step t, stage s emits its carrier for cell
// p - D(t, s), where the compute delay is
//
//     D(t, s) = (t - 1) * step_delay + sum_{s' <= s} stage_span[s']
//
// and stage_span[s] = max(0, max forward linearized read offset of stage
// s). A span of P ticks is exactly what stage s must wait after its
// newest input arrives before the farthest-forward neighbor of its cell
// is available; summing spans over the stage list and steps gives the
// admissible schedule with the shortest registers. The last store drains
// max_store_delay = max_f D(T, writing_stage(f)) ticks after the final
// feed, so one walk runs cells + max_store_delay ticks.
//
// Registers. Stream (field f, state k) holds the step-k values of f in
// flight (state 0 = the global-memory feed). Its head is fed at delay
// head_delay(k, f) — 0 for state 0, D(k, writing_stage(f)) otherwise —
// and a reader at (t, s) accessing offset `off` taps
//
//     depth = D(t, s) - head_delay - linear_offset(off)
//
// elements behind the head (provably >= 0 given the span definition).
// A register is materialized iff it has at least one reader; the
// boundary passthrough (a cell outside its field's updatable region
// carries the previous state forward unchanged) reads (f, t-1) at offset
// 0, which keeps states 0..T-1 of every mutable field alive. The
// register lengths here are the single source of truth shared by the
// OpenCL emitter (codegen/temporal_gen), the resource model, the
// analyzer's pass-3 recomputation and the simulator.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "sim/design.hpp"
#include "stencil/program.hpp"
#include "support/error.hpp"
#include "support/math.hpp"

namespace scl::arch {

/// One materialized shift-register stream: state-`state` values of field
/// `field` (state 0 = input feed, state k >= 1 = output of fused step k).
struct TemporalReg {
  int field = 0;
  int state = 0;
  std::int64_t head_delay = 0;  ///< walk tick offset at which cell 0 is fed
  std::int64_t len = 0;         ///< array length (max tap depth + 1)
};

struct TemporalLayout {
  int dims = 1;
  int temporal_degree = 1;  ///< T: fused time steps per pass
  int vector_width = 1;     ///< V: cells entering the pipeline per cycle
  int strip_dim = 0;        ///< always dims - 1 (the stride-1 dimension)

  std::array<std::int64_t, 3> strip{1, 1, 1};   ///< owned strip extents
  std::array<std::int64_t, 3> pad_lo{0, 0, 0};  ///< halo below (T * radius)
  std::array<std::int64_t, 3> pad_hi{0, 0, 0};  ///< halo above
  std::array<std::int64_t, 3> ext{1, 1, 1};     ///< padded walk extents

  std::int64_t cells = 0;        ///< padded strip cells = one walk's feeds
  std::int64_t owned_cells = 0;  ///< cells the strip owns and stores

  std::vector<std::int64_t> stage_span;  ///< P_s per stage, in walk ticks
  std::int64_t step_delay = 0;           ///< sum of stage spans
  std::int64_t max_store_delay = 0;      ///< drain after the last feed
  std::int64_t walk_ticks = 0;           ///< cells + max_store_delay

  std::vector<TemporalReg> regs;  ///< materialized registers only
  std::int64_t sr_elements = 0;   ///< total shift-register floats

  std::int64_t n_strips = 0;  ///< strips per pass: ceil(N / strip width)
  std::int64_t n_passes = 0;  ///< global-memory passes: ceil(H / T)

  /// Walk-order stride of dimension d over the padded strip.
  std::int64_t stride(int d) const {
    std::int64_t s = 1;
    for (int d2 = d + 1; d2 < dims; ++d2) s *= ext[static_cast<std::size_t>(d2)];
    return s;
  }

  /// Linearized walk-tick distance of a stencil offset (negative = behind).
  std::int64_t linear_offset(const stencil::Offset& off) const {
    std::int64_t l = 0;
    for (int d = 0; d < dims; ++d) l += off[static_cast<std::size_t>(d)] * stride(d);
    return l;
  }

  /// Compute delay D(t, s) of fused step t (1-based), stage s (0-based).
  std::int64_t compute_delay(int t, int s) const {
    std::int64_t d = static_cast<std::int64_t>(t - 1) * step_delay;
    for (int s2 = 0; s2 <= s; ++s2) d += stage_span[static_cast<std::size_t>(s2)];
    return d;
  }

  /// Time state a reader in fused step t, stage s sees for field g: the
  /// latest committed value under the in-order stage schedule.
  int source_state(int t, int s, const stencil::StencilProgram& program,
                   int g) const {
    const int wg = program.writing_stage(g);
    if (wg < 0) return 0;                // constant field: the input feed
    return wg < s ? t : t - 1;           // own/later output: previous step
  }

  /// Tap depth behind the head of a stream with the given head delay for
  /// a reader at (t, s) accessing offset `off`. Always >= 0 for modeled
  /// programs.
  std::int64_t tap_depth(int t, int s, std::int64_t head_delay,
                         const stencil::Offset& off) const {
    return compute_delay(t, s) - head_delay - linear_offset(off);
  }

  /// Index into regs of stream (field, state), or -1 if not materialized.
  int reg_index(int field, int state) const {
    for (std::size_t i = 0; i < regs.size(); ++i) {
      if (regs[i].field == field && regs[i].state == state)
        return static_cast<int>(i);
    }
    return -1;
  }
};

/// The spatial-tiling view of a temporal config: identical geometry
/// fields with family kPipeTiling. Because a temporal config constrains
/// kind = kBaseline, parallelism {1,1,1} and no edge balancing, the twin
/// is a valid single-tile baseline design covering the same region — the
/// functional simulator executes it for bit-exact field results, and the
/// analyzer's pipe/bounds passes (which see codegen's tile placements,
/// not the emitted text) verify the temporal design through it.
inline sim::DesignConfig spatial_twin(const sim::DesignConfig& config) {
  sim::DesignConfig twin = config;
  twin.family = DesignFamily::kPipeTiling;
  return twin;
}

/// Derives the full walk/register layout of a validated kTemporalShift
/// config. Throws ContractError on a config of the wrong family.
inline TemporalLayout make_temporal_layout(
    const stencil::StencilProgram& program, const sim::DesignConfig& config) {
  if (config.family != DesignFamily::kTemporalShift)
    throw ContractError("make_temporal_layout: config is not temporal-shift");

  TemporalLayout lay;
  lay.dims = program.dims();
  lay.temporal_degree = static_cast<int>(config.fused_iterations);
  lay.vector_width = config.unroll;
  lay.strip_dim = lay.dims - 1;

  const auto& radii = program.iter_radii();
  for (int d = 0; d < 3; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    lay.strip[ds] = d < lay.dims ? config.tile_size[ds] : 1;
    if (d == lay.strip_dim) {
      lay.pad_lo[ds] = lay.temporal_degree * radii[ds][0];
      lay.pad_hi[ds] = lay.temporal_degree * radii[ds][1];
    }
    lay.ext[ds] = lay.strip[ds] + lay.pad_lo[ds] + lay.pad_hi[ds];
  }
  lay.cells = lay.ext[0] * lay.ext[1] * lay.ext[2];
  lay.owned_cells = lay.strip[0] * lay.strip[1] * lay.strip[2];

  // Stage spans and the per-step delay.
  const int stage_count = program.stage_count();
  lay.stage_span.resize(static_cast<std::size_t>(stage_count), 0);
  for (int s = 0; s < stage_count; ++s) {
    std::int64_t span = 0;
    for (const auto& read : program.stage(s).reads)
      span = std::max(span, lay.linear_offset(read.offset));
    lay.stage_span[static_cast<std::size_t>(s)] = span;
  }
  lay.step_delay = 0;
  for (const auto p : lay.stage_span) lay.step_delay += p;

  const int t_deg = lay.temporal_degree;
  lay.max_store_delay = 0;
  for (int f = 0; f < program.field_count(); ++f) {
    const int wf = program.writing_stage(f);
    if (wf < 0) continue;
    lay.max_store_delay =
        std::max(lay.max_store_delay, lay.compute_delay(t_deg, wf));
  }
  lay.walk_ticks = lay.cells + lay.max_store_delay;

  // Register materialization: walk every reader (the declared stage reads
  // plus the boundary passthrough of each stage's output field) and grow
  // the source stream to cover the deepest tap.
  const auto head_delay_of = [&](int field, int state) -> std::int64_t {
    if (state == 0) return 0;
    return lay.compute_delay(state, program.writing_stage(field));
  };
  struct Len {
    bool used = false;
    std::int64_t max_depth = 0;
  };
  std::vector<Len> lens(static_cast<std::size_t>(program.field_count() *
                                                 (t_deg + 1)));
  const auto slot = [&](int field, int state) -> Len& {
    return lens[static_cast<std::size_t>(field * (t_deg + 1) + state)];
  };
  const auto record = [&](int t, int s, int field,
                          const stencil::Offset& off) {
    const int state = lay.source_state(t, s, program, field);
    const std::int64_t depth =
        lay.tap_depth(t, s, head_delay_of(field, state), off);
    if (depth < 0)
      throw ContractError("temporal layout: negative tap depth");
    Len& l = slot(field, state);
    l.used = true;
    l.max_depth = std::max(l.max_depth, depth);
  };
  const stencil::Offset zero{0, 0, 0};
  for (int t = 1; t <= t_deg; ++t) {
    for (int s = 0; s < stage_count; ++s) {
      for (const auto& read : program.stage(s).reads)
        record(t, s, read.field, read.offset);
      record(t, s, program.stage(s).output_field, zero);  // passthrough
    }
  }

  lay.sr_elements = 0;
  for (int f = 0; f < program.field_count(); ++f) {
    for (int k = 0; k <= t_deg; ++k) {
      const Len& l = slot(f, k);
      if (!l.used) continue;
      TemporalReg reg;
      reg.field = f;
      reg.state = k;
      reg.head_delay = head_delay_of(f, k);
      reg.len = l.max_depth + 1;
      lay.sr_elements += reg.len;
      lay.regs.push_back(reg);
    }
  }

  const auto sd = static_cast<std::size_t>(lay.strip_dim);
  lay.n_strips = ceil_div(program.grid_box().extent(lay.strip_dim),
                          lay.strip[sd]);
  lay.n_passes = ceil_div(program.iterations(),
                          static_cast<std::int64_t>(t_deg));
  return lay;
}

}  // namespace scl::arch
