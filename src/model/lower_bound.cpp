#include "model/lower_bound.hpp"

#include <algorithm>

#include "fpga/hls.hpp"
#include "support/math.hpp"

namespace scl::model {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;
using scl::stencil::StencilProgram;

LowerBoundModel::LowerBoundModel(const StencilProgram& program,
                                 fpga::DeviceSpec device)
    : program_(&program),
      device_(device),
      resource_model_(std::move(device)) {
  for (int u = 1; u < static_cast<int>(ii_sum_by_unroll_.size()); ++u) {
    double sum = 0.0;
    for (int s = 0; s < program.stage_count(); ++s) {
      sum += static_cast<double>(fpga::estimate_stage(program.stage(s), u).ii);
    }
    ii_sum_by_unroll_[static_cast<std::size_t>(u)] = sum;
  }
  for (int s = 0; s < program.stage_count(); ++s) {
    if (program.stage_needs_double_buffer(s)) ++shadow_stages_;
  }
}

double LowerBoundModel::ii_max(int unroll) const {
  double m = 1.0;
  for (int s = 0; s < program_->stage_count(); ++s) {
    m = std::max(m, static_cast<double>(
                        fpga::estimate_stage(program_->stage(s), unroll).ii));
  }
  return m;
}

double LowerBoundModel::ii_sum(int unroll) const {
  if (unroll >= 1 && unroll < static_cast<int>(ii_sum_by_unroll_.size())) {
    return ii_sum_by_unroll_[static_cast<std::size_t>(unroll)];
  }
  double sum = 0.0;
  for (int s = 0; s < program_->stage_count(); ++s) {
    sum += static_cast<double>(
        fpga::estimate_stage(program_->stage(s), unroll).ii);
  }
  return sum;
}

LowerBound LowerBoundModel::bound(const DesignConfig& config) const {
  const StencilProgram& prog = *program_;
  if (config.family == scl::arch::DesignFamily::kTemporalShift) {
    return temporal_bound(config);
  }
  const double h = static_cast<double>(config.fused_iterations);
  const double k = static_cast<double>(config.total_kernels());
  const auto& radii = prog.iter_radii();

  // Eq. 2 exactly: tile_extents() conserves the region extent K_d * w_d
  // no matter how the edge shrink redistributes, so this term needs no
  // bounding at all. The replica split mirrors PerfModel::predict exactly
  // (ceil over the spatial regions), so it stays exact too.
  std::int64_t spatial_regions = 1;
  for (int d = 0; d < prog.dims(); ++d) {
    spatial_regions *=
        ceil_div(prog.grid_box().extent(d), config.region_extent(d));
  }
  const std::int64_t n_region =
      ceil_div(prog.iterations(), config.fused_iterations) *
      ceil_div(spatial_regions, static_cast<std::int64_t>(config.replication));

  // The smallest balanced tile extent per dimension: edge tiles lose the
  // shrink, interior tiles only gain (see DesignConfig::tile_extents) —
  // computed directly to keep bound() allocation-free.
  double cells_min = 1.0;
  double padded_min = 1.0;
  const bool baseline = config.kind == DesignKind::kBaseline;
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    std::int64_t e_min = config.tile_size[ds];
    if (config.parallelism[ds] >= 3 && config.edge_shrink[ds] > 0) {
      e_min -= config.edge_shrink[ds];
    }
    cells_min *= static_cast<double>(e_min);
    // Baseline kernels buffer the whole cone footprint; heterogeneous
    // kernels at least the tile itself (shared-face halos are >= 0).
    double padded = static_cast<double>(e_min);
    if (baseline) {
      padded += static_cast<double>(radii[ds][0] + radii[ds][1]) * h;
    }
    padded_min *= padded;
  }

  // Eqs. 4-6 lower bound: tile cells only, margins dropped. The bandwidth
  // share is the exact value the perf model charges (not a bound), so
  // admissibility is untouched by the bank split.
  const double bw_share =
      std::min(device_.mem_port_bytes_per_cycle,
               device_.replica_bytes_per_cycle(config.replication) / k);
  const double bytes = StencilProgram::element_bytes();
  const double l_mem_lb =
      cells_min *
      static_cast<double>(prog.field_count() + prog.mutable_field_count()) *
      bytes / bw_share;

  // Eqs. 7-10 lower bound: every iteration walks at least the tile cells
  // per stage at the stage's II; exposed pipe waits (Eq. 11) are >= 0.
  const double l_comp_lb = h * cells_min * ii_sum(config.unroll) /
                           static_cast<double>(config.unroll);

  LowerBound lb;
  lb.cycles = static_cast<double>(n_region) * (l_mem_lb + l_comp_lb);

  // BRAM: K kernels, each holding at least the padded tile for every
  // field plus shadow copies; bram_blocks_for is monotone, pipe FIFO
  // blocks only add.
  const auto elements_lb = static_cast<std::int64_t>(
      padded_min * static_cast<double>(prog.field_count() + shadow_stages_));
  lb.bram18 = config.replicated_kernels() *
              resource_model_.bram_blocks_for(
                  std::max<std::int64_t>(elements_lb, 1));
  return lb;
}

LowerBound LowerBoundModel::temporal_bound(const DesignConfig& config) const {
  const StencilProgram& prog = *program_;
  const std::int64_t t_deg = config.fused_iterations;
  const auto& radii = prog.iter_radii();
  const int strip_dim = prog.dims() - 1;

  // N_region is exact for this family too: passes x strips, with the
  // pass's strips split ceil-wise across the R replica cascades.
  std::int64_t spatial_regions = 1;
  for (int d = 0; d < prog.dims(); ++d) {
    spatial_regions *=
        ceil_div(prog.grid_box().extent(d), config.region_extent(d));
  }
  const std::int64_t n_region =
      ceil_div(prog.iterations(), t_deg) *
      ceil_div(spatial_regions, static_cast<std::int64_t>(config.replication));

  // Owned strip cells only: the exact model walks the padded strip
  // (>= owned) and adds the store drain (>= 0); memory moves at least the
  // owned cells once in each direction (the feed covers the halo too).
  double owned = 1.0;
  std::array<std::int64_t, 3> ext{1, 1, 1};
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    owned *= static_cast<double>(config.tile_size[ds]);
    ext[ds] = config.tile_size[ds];
    if (d == strip_dim) ext[ds] += t_deg * (radii[ds][0] + radii[ds][1]);
  }
  const double l_comp_lb = ii_max(config.unroll) * owned /
                           static_cast<double>(config.unroll);
  const double bw_share =
      std::min(device_.mem_port_bytes_per_cycle,
               device_.replica_bytes_per_cycle(config.replication));
  const double l_mem_lb =
      owned *
      static_cast<double>(prog.field_count() + prog.mutable_field_count()) *
      StencilProgram::element_bytes() / bw_share;

  LowerBound lb;
  lb.cycles =
      static_cast<double>(n_region) * std::max(l_comp_lb, l_mem_lb);

  // BRAM: every mutable field keeps states 1..T-1 in registers of length
  // >= step_delay + 1 (the boundary passthrough taps each state one full
  // step behind its head) plus at least the state-0 head element; the
  // pooled rounding bram_blocks_for(sum) never exceeds the layout's
  // per-register total. step_delay is recomputed allocation-free here.
  std::int64_t step_delay = 0;
  for (int s = 0; s < prog.stage_count(); ++s) {
    std::int64_t span = 0;
    for (const auto& read : prog.stage(s).reads) {
      std::int64_t lin = 0;
      for (int d = 0; d < prog.dims(); ++d) {
        std::int64_t stride = 1;
        for (int d2 = d + 1; d2 < prog.dims(); ++d2) {
          stride *= ext[static_cast<std::size_t>(d2)];
        }
        lin += read.offset[static_cast<std::size_t>(d)] * stride;
      }
      span = std::max(span, lin);
    }
    step_delay += span;
  }
  const std::int64_t elements_lb =
      prog.mutable_field_count() * ((t_deg - 1) * (step_delay + 1) + 1);
  lb.bram18 =
      config.replication *
      resource_model_.bram_blocks_for(std::max<std::int64_t>(elements_lb, 1));
  return lb;
}

}  // namespace scl::model
