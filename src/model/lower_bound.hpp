// Admissible lower bounds on a design's latency and BRAM footprint,
// derived from the same analytical model as PerfModel (paper Eqs. 1–11)
// by dropping every term that can only add cost.
//
// The bound must never exceed the exact model's value for the same
// config — that is what lets the Optimizer's branch-and-bound skip a
// candidate whose bound already exceeds the incumbent without ever
// changing the reported optimum. Derivation (see DESIGN.md §5 for the
// equation-by-equation mapping):
//
//   * N_region (Eq. 2) is exact: ceil(H/h) × Π_d ceil(N_d / (K_d·w_d)).
//     tile_extents() redistributes the edge shrink but conserves the
//     region extent, so no bounding is needed.
//   * L_mem (Eqs. 4–6): every kernel reads at least its own tile cells
//     for every field and writes them for every mutable field; halo and
//     cone margins only add. With e_min_d the smallest balanced tile
//     extent along d, L_mem ≥ Π e_min × (F + M) × bytes / bw_share,
//     where bw_share = min(port ceiling, DDR share / K) is exact.
//   * L_comp (Eqs. 7–10): iteration i walks at least Π e_min cells per
//     stage at the stage's II (cone expansion only widens the extent;
//     exposed pipe waits, Eq. 11, are ≥ 0), so
//     L_comp ≥ h × Π e_min × (Σ_s II_s) / N_PE.
//   * Eq. 1 takes max_k over kernels and every kernel's extents dominate
//     e_min, so N_region × (L_mem_lb + L_comp_lb) bounds the total for
//     both cone modes (kPaperExact only inflates extents further).
//   * BRAM: each kernel buffers at least its padded tile for every field
//     (plus the shadow copies of double-buffered stages); pipe FIFO
//     blocks only add. bram_blocks_for() is monotone in elements, so
//     K × bram_blocks_for(padded_min_cells × (F + shadows)) bounds the
//     design total, which lets the search discard configs that cannot
//     possibly fit the budget without pricing them exactly.
#pragma once

#include <array>
#include <cstdint>

#include "fpga/device.hpp"
#include "fpga/resource_model.hpp"
#include "sim/design.hpp"
#include "stencil/program.hpp"

namespace scl::model {

struct LowerBound {
  /// Admissible latency bound in cycles: bound(c).cycles <= exact
  /// PerfModel::predict(c).total_cycles for every valid config c.
  double cycles = 0.0;
  /// Admissible bound on the design's total BRAM18 blocks.
  std::int64_t bram18 = 0;
};

/// Re-entrant like PerfModel: all state is immutable after construction,
/// so concurrent bound() calls need no locking.
class LowerBoundModel {
 public:
  LowerBoundModel(const scl::stencil::StencilProgram& program,
                  fpga::DeviceSpec device);

  /// Bounds for one (valid) candidate config. Costs O(dims) — no vector
  /// allocation, no per-iteration loop — which is what makes bounding
  /// the whole candidate space cheaper than evaluating a fraction of it.
  LowerBound bound(const sim::DesignConfig& config) const;

  // Temporal-shift bounds (same admissibility contract): the walk covers
  // at least the strip's owned cells at II_max/V; memory moves at least
  // the owned cells once per direction; every mutable field keeps states
  // 1..T-1 alive at length >= step_delay + 1 (the boundary passthrough
  // reads each state one full step after it is produced) plus the state-0
  // head — all three are dropped-term relaxations of the exact temporal
  // model/estimator, so the branch-and-bound optimum stays bit-identical
  // with pruning on or off.

 private:
  double ii_sum(int unroll) const;
  double ii_max(int unroll) const;
  LowerBound temporal_bound(const sim::DesignConfig& config) const;

  const scl::stencil::StencilProgram* program_;
  fpga::DeviceSpec device_;
  fpga::ResourceModel resource_model_;
  /// Σ_s II_s precomputed per unroll factor (II is bank-scaled, hence
  /// unroll-invariant today, but the table keeps the bound honest if the
  /// HLS estimator ever changes that).
  std::array<double, 33> ii_sum_by_unroll_{};
  std::int64_t shadow_stages_ = 0;
};

}  // namespace scl::model
