// Analytical performance model (paper §4, Eqs. 1–11).
//
// Predicts the execution latency of a design in clock cycles from the
// region count, burst global-memory transfers under evenly-shared
// bandwidth, per-iteration compute with C_element = II / N_PE, and the
// pipe-transfer latency partially hidden behind independent computation
// (the overlap ratio λ).
//
// Following the paper (§5.6), the model deliberately omits the sequential
// kernel-launch delay, burst setup latency, and barrier-wait dynamics the
// discrete-event simulator charges — so it *underestimates* the measured
// latency while ranking designs the same way. Reproducing that bias is
// part of reproducing Figure 7.
//
// Two evaluation modes:
//  * kRefined (default): per-kernel geometry — each kernel's own balanced
//    tile extents, and cone expansion only on its region-exterior faces.
//  * kPaperExact: Eq. 8/10 verbatim — the slowest kernel is modeled with
//    the maximum balancing factor and the full Δw expansion in every
//    dimension. Kept for ablation; it is distinctly more conservative.
#pragma once

#include <cstdint>
#include <vector>

#include "fpga/device.hpp"
#include "sim/design.hpp"
#include "stencil/program.hpp"

namespace scl::model {

enum class ConeMode { kRefined, kPaperExact };

/// Predicted latency and its per-region decomposition for the slowest
/// kernel (all values in clock cycles, fractional).
struct Prediction {
  double total_cycles = 0.0;
  double total_ms = 0.0;
  std::int64_t n_region = 0;     ///< paper Eq. 2 (with the H/h fix)
  double l_mem = 0.0;            ///< Eq. 4: slowest kernel, one region
  double l_comp = 0.0;           ///< Eq. 7 with per-iteration overlap
  double l_share_exposed = 0.0;  ///< pipe time not hidden by computation
  double lambda = 0.0;           ///< average exposed-overlap ratio (Eq. 11)
  double l_tile = 0.0;           ///< slowest kernel's region latency
};

/// Re-entrancy contract: PerfModel holds only read-only references (the
/// program, the device spec, the mode) and predict() keeps all working
/// state on the stack — concurrent predict() calls on one instance, or on
/// per-worker instances sharing the same program, need no locking. The
/// parallel design-space exploration (core::EvaluationEngine) relies on
/// this; do not add mutable caches here without a lock (memoization
/// belongs in core::EvalCache).
class PerfModel {
 public:
  PerfModel(const scl::stencil::StencilProgram& program,
            fpga::DeviceSpec device, ConeMode mode = ConeMode::kRefined);

  /// Predicts the latency of `config` (Eq. 1: N_region * max_k L_tile_k).
  /// Pure and re-entrant (see the class contract above).
  Prediction predict(const sim::DesignConfig& config) const;

  /// Convenience: predicted cycles only.
  double predict_cycles(const sim::DesignConfig& config) const {
    return predict(config).total_cycles;
  }

  ConeMode mode() const { return mode_; }

 private:
  struct KernelGeometry;
  /// Eq. 3 components for one kernel. `stage_ii` carries the per-stage
  /// initiation intervals, hoisted by predict() — they depend only on
  /// (stage, unroll), never on the kernel position, so computing them
  /// once per prediction instead of once per kernel×iteration is a pure
  /// (bit-identical) speedup of the DSE hot path.
  void accumulate_kernel(const sim::DesignConfig& config,
                         const KernelGeometry& geo,
                         const std::vector<double>& stage_ii,
                         Prediction* out) const;

  const scl::stencil::StencilProgram* program_;
  fpga::DeviceSpec device_;
  ConeMode mode_;
};

}  // namespace scl::model
