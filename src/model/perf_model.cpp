#include "model/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "arch/temporal_layout.hpp"
#include "fpga/hls.hpp"
#include "support/error.hpp"
#include "support/math.hpp"

namespace scl::model {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;
using scl::stencil::StencilProgram;

/// Static per-kernel geometry: balanced tile extents plus which sides see
/// cone expansion (exterior) vs pipe halos (shared).
struct PerfModel::KernelGeometry {
  std::array<double, 3> extent{1.0, 1.0, 1.0};
  /// Per dim/side: cone radius on that side (0 for pipe-shared sides).
  std::array<std::array<double, 2>, 3> cone_radius{};
  /// Per dim/side: true when the side exchanges strips through a pipe.
  std::array<std::array<bool, 2>, 3> shared{};
};

PerfModel::PerfModel(const StencilProgram& program, fpga::DeviceSpec device,
                     ConeMode mode)
    : program_(&program), device_(std::move(device)), mode_(mode) {}

void PerfModel::accumulate_kernel(const DesignConfig& config,
                                  const KernelGeometry& geo,
                                  const std::vector<double>& stage_ii,
                                  Prediction* out) const {
  const StencilProgram& prog = *program_;
  // C_element over a full iteration: every stage touches every cell once,
  // so the per-cell cost is the sum of the per-stage IIs over N_PE. The
  // per-stage IIs arrive precomputed in `stage_ii` (see predict()).
  const double h = static_cast<double>(config.fused_iterations);
  const double k = static_cast<double>(config.total_kernels());
  // Fair share of the replica's bank-group bandwidth, capped by the
  // kernel's own AXI-master ceiling. At R = 1 on a single-bank device
  // replica_bytes_per_cycle is exactly mem_bytes_per_cycle, so the DDR
  // expression is unchanged bit for bit.
  const double bw_share =
      std::min(device_.mem_port_bytes_per_cycle,
               device_.replica_bytes_per_cycle(config.replication) / k);
  const double bytes = StencilProgram::element_bytes();
  const double cpipe = static_cast<double>(device_.pipe_cycles_per_element);

  // --- Eq. 5/6: burst global-memory transfers -----------------------------
  double read_cells = 1.0;
  double write_cells = 1.0;
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    double margin = 0.0;
    for (int side = 0; side < 2; ++side) {
      const auto ss = static_cast<std::size_t>(side);
      margin += geo.cone_radius[ds][ss] * h;
      if (geo.shared[ds][ss]) {
        margin += static_cast<double>(prog.max_stage_radii()[ds][ss]);
      }
    }
    read_cells *= geo.extent[ds] + margin;
    write_cells *= geo.extent[ds];
  }
  const double l_read =
      read_cells * static_cast<double>(prog.field_count()) * bytes / bw_share;
  const double l_write = write_cells *
                         static_cast<double>(prog.mutable_field_count()) *
                         bytes / bw_share;
  const double l_mem = l_read + l_write;

  // --- Eq. 7-11: fused compute with pipe overlap ---------------------------
  //
  // Per-stage accounting: every stage walks the iteration's cells once at
  // its own II, receives the boundary strips its dependent cells read
  // (waiting for the last element of the slowest pipe, less the stage's
  // own independent computation that runs meanwhile), and pushes its
  // output strips (hidden behind the same computation, Eq. 11).
  double l_comp = 0.0;
  double l_share_exposed = 0.0;
  double l_iter_sum = 0.0;
  for (std::int64_t i = 1; i <= config.fused_iterations; ++i) {
    const double remaining = h - static_cast<double>(i);
    std::array<double, 3> iter_extent{1.0, 1.0, 1.0};
    for (int d = 0; d < prog.dims(); ++d) {
      const auto ds = static_cast<std::size_t>(d);
      iter_extent[ds] =
          geo.extent[ds] + (geo.cone_radius[ds][0] + geo.cone_radius[ds][1]) *
                               remaining;
    }
    double cells = 1.0;
    for (int d = 0; d < prog.dims(); ++d) {
      cells *= iter_extent[static_cast<std::size_t>(d)];
    }

    auto tangential_area = [&](int d) {
      double area = 1.0;
      for (int t = 0; t < prog.dims(); ++t) {
        if (t != d) area *= iter_extent[static_cast<std::size_t>(t)];
      }
      return area;
    };

    for (int s = 0; s < prog.stage_count(); ++s) {
      const scl::stencil::Stage& stage = prog.stage(s);
      const double ii_s = stage_ii[static_cast<std::size_t>(s)];
      const double comp_s =
          ii_s / static_cast<double>(config.unroll) * cells;

      // Receive tail: per shared face, the strips this stage's dependent
      // cells wait for arrive serialized at C_pipe per element; different
      // faces use different pipes, so the waits overlap (max).
      double recv_tail = 0.0;
      // Send volume: this stage's output strips (one per shared face).
      double send_elems = 0.0;
      const int out_field = stage.output_field;
      for (int d = 0; d < prog.dims(); ++d) {
        const auto ds = static_cast<std::size_t>(d);
        for (int side = 0; side < 2; ++side) {
          const auto ss = static_cast<std::size_t>(side);
          if (!geo.shared[ds][ss]) continue;
          double face_elems = 0.0;
          for (int f = 0; f < prog.field_count(); ++f) {
            if (prog.is_constant_field(f)) continue;
            bool read_toward = false;
            for (const auto& read : stage.reads) {
              if (read.field != f) continue;
              const int off = read.offset[ds];
              if ((side == 0 && off < 0) || (side == 1 && off > 0)) {
                read_toward = true;
                break;
              }
            }
            if (!read_toward) continue;
            face_elems +=
                static_cast<double>(prog.field_read_radii(f)[ds][ss]) *
                tangential_area(d);
          }
          recv_tail = std::max(recv_tail, cpipe * face_elems);
          const auto opp = static_cast<std::size_t>(side == 0 ? 1 : 0);
          send_elems +=
              static_cast<double>(prog.field_read_radii(out_field)[ds][opp]) *
              tangential_area(d);
        }
      }
      const double exposed = std::max(0.0, recv_tail - comp_s) +
                             std::max(0.0, cpipe * send_elems - comp_s);
      l_comp += comp_s + exposed;
      l_share_exposed += exposed;
      l_iter_sum += comp_s;
    }
  }

  const double l_tile = l_mem + l_comp;  // Eq. 3 with L_launch = 0 (§5.6)
  if (l_tile > out->l_tile) {
    out->l_tile = l_tile;
    out->l_mem = l_mem;
    out->l_comp = l_comp;
    out->l_share_exposed = l_share_exposed;
    out->lambda =
        l_iter_sum > 0.0 ? l_share_exposed / l_iter_sum : 0.0;  // Eq. 11
  }
}

Prediction PerfModel::predict(const DesignConfig& config) const {
  const StencilProgram& prog = *program_;
  config.validate(prog);

  Prediction out;
  // Eq. 2 with the H/h fix: passes times spatial regions. With spatial
  // replication the pass's regions are strip-partitioned across the R
  // independent replicas, so the critical path sees ceil(regions/R) of
  // them (exact at R = 1: ceil_div(s, 1) == s).
  std::int64_t spatial_regions = 1;
  for (int d = 0; d < prog.dims(); ++d) {
    spatial_regions *= ceil_div(prog.grid_box().extent(d),
                                config.region_extent(d));
  }
  out.n_region = ceil_div(prog.iterations(), config.fused_iterations) *
                 ceil_div(spatial_regions,
                          static_cast<std::int64_t>(config.replication));

  if (config.family == arch::DesignFamily::kTemporalShift) {
    // Temporal-shift family (Zohouri FPGA'18): one strip streams through
    // the T-deep cascade per region execution. The stage groups are
    // separate hardware stations of one pipeline, so the walk's II is the
    // *max* per-stage II, not the sum — that is the family's compute
    // advantage — and memory transfers overlap the walk (streaming), so
    // the region latency is max(L_comp, L_mem), not the sum. The walk
    // always covers the full padded strip (redundant T x radius halo),
    // which is the family's redundant-compute cost, plus the drain of the
    // deepest store.
    const arch::TemporalLayout layout =
        arch::make_temporal_layout(prog, config);
    double ii_walk = 1.0;
    for (int s = 0; s < prog.stage_count(); ++s) {
      ii_walk = std::max(
          ii_walk, static_cast<double>(
                       fpga::estimate_stage(prog.stage(s), config.unroll).ii));
    }
    const std::int64_t v = layout.vector_width;
    out.l_comp = ii_walk * static_cast<double>(ceil_div(layout.cells, v) +
                                               layout.max_store_delay);
    const double bw_share =
        std::min(device_.mem_port_bytes_per_cycle,
                 device_.replica_bytes_per_cycle(config.replication));
    const double bytes = StencilProgram::element_bytes();
    out.l_mem =
        (static_cast<double>(layout.cells * prog.field_count()) +
         static_cast<double>(layout.owned_cells *
                             prog.mutable_field_count())) *
        bytes / bw_share;
    out.l_tile = std::max(out.l_comp, out.l_mem);
    out.total_cycles = static_cast<double>(out.n_region) * out.l_tile;
    out.total_ms = device_.cycles_to_ms(out.total_cycles);
    return out;
  }

  // Per-stage IIs depend only on (stage, unroll): hoist them out of the
  // kernel-position × iteration loops in accumulate_kernel.
  std::vector<double> stage_ii(static_cast<std::size_t>(prog.stage_count()));
  for (int s = 0; s < prog.stage_count(); ++s) {
    stage_ii[static_cast<std::size_t>(s)] = static_cast<double>(
        fpga::estimate_stage(prog.stage(s), config.unroll).ii);
  }

  const auto& radii = prog.iter_radii();
  if (mode_ == ConeMode::kPaperExact) {
    // Eq. 8/10 verbatim: one representative "slowest" kernel with the
    // maximum balancing factor and the full Δw expansion per dimension.
    KernelGeometry geo;
    for (int d = 0; d < prog.dims(); ++d) {
      const auto ds = static_cast<std::size_t>(d);
      double fmax = 1.0;
      for (int t = 0; t < config.parallelism[ds]; ++t) {
        fmax = std::max(fmax, config.balance_factor(d, t));
      }
      geo.extent[ds] =
          static_cast<double>(config.tile_size[ds]) * fmax;
      geo.cone_radius[ds][0] = static_cast<double>(radii[ds][0]);
      geo.cone_radius[ds][1] = static_cast<double>(radii[ds][1]);
      if (config.kind == DesignKind::kHeterogeneous &&
          config.parallelism[ds] > 1) {
        geo.shared[ds][0] = geo.shared[ds][1] = true;
      }
    }
    accumulate_kernel(config, geo, stage_ii, &out);
  } else {
    // Refined: evaluate kernel positions with their own balanced extents
    // and exterior faces, and keep the slowest (Eq. 1's max_k). Interior
    // positions beyond the first are never slower than position 1 (which
    // holds the largest balanced extent), so per dimension only the two
    // corners and the widest interior position need evaluation — this is
    // what keeps the model cheap enough to drive the design-space search.
    std::array<std::vector<std::int64_t>, 3> extents;
    std::array<std::vector<int>, 3> positions;
    for (int d = 0; d < 3; ++d) {
      const auto ds = static_cast<std::size_t>(d);
      extents[ds] = config.tile_extents(d);
      positions[ds].push_back(0);
      if (config.parallelism[ds] > 2) positions[ds].push_back(1);
      if (config.parallelism[ds] > 1) {
        positions[ds].push_back(config.parallelism[ds] - 1);
      }
    }
    for (const int c0 : positions[0]) {
      for (const int c1 : positions[1]) {
        for (const int c2 : positions[2]) {
          const std::array<int, 3> coord{c0, c1, c2};
          KernelGeometry geo;
          for (int d = 0; d < prog.dims(); ++d) {
            const auto ds = static_cast<std::size_t>(d);
            geo.extent[ds] = static_cast<double>(
                extents[ds][static_cast<std::size_t>(coord[ds])]);
            const bool low_edge = coord[ds] == 0;
            const bool high_edge = coord[ds] == config.parallelism[ds] - 1;
            const bool pipes = config.kind == DesignKind::kHeterogeneous;
            geo.shared[ds][0] = pipes && !low_edge;
            geo.shared[ds][1] = pipes && !high_edge;
            geo.cone_radius[ds][0] =
                geo.shared[ds][0] ? 0.0 : static_cast<double>(radii[ds][0]);
            geo.cone_radius[ds][1] =
                geo.shared[ds][1] ? 0.0 : static_cast<double>(radii[ds][1]);
          }
          accumulate_kernel(config, geo, stage_ii, &out);
        }
      }
    }
  }

  out.total_cycles = static_cast<double>(out.n_region) * out.l_tile;
  out.total_ms = device_.cycles_to_ms(out.total_cycles);
  return out;
}

}  // namespace scl::model
