// Shared code-generation context.
//
// Code is generated for one *nominal* region: tile origins are expressed
// relative to the runtime region origin (kernel arguments r0/r1/r2), so the
// same binary serves every region of the sweep; grid clipping happens in
// the emitted bounds via max()/min() against the grid extents.
#pragma once

#include <string>
#include <vector>

#include "fpga/device.hpp"
#include "sim/design.hpp"
#include "sim/region.hpp"
#include "stencil/program.hpp"

namespace scl::codegen {

struct GenContext {
  const scl::stencil::StencilProgram* program = nullptr;
  sim::DesignConfig config;
  fpga::DeviceSpec device;
  /// Nominal tiles with region-origin-relative boxes, R replicas of the
  /// K-kernel arrangement back to back (replica r owns kernel indices
  /// [r*K, (r+1)*K)); every replica has identical geometry. For the
  /// baseline design every face is exterior (independent overlapped
  /// cones).
  std::vector<sim::TilePlacement> tiles;

  static GenContext create(const scl::stencil::StencilProgram& program,
                           const sim::DesignConfig& config,
                           const fpga::DeviceSpec& device);

  const sim::TilePlacement& tile(int k) const {
    return tiles.at(static_cast<std::size_t>(k));
  }
  int kernel_count() const { return static_cast<int>(tiles.size()); }

  /// The sibling across `tile`'s face (d, side); kernel index or -1.
  int neighbor_index(const sim::TilePlacement& tile, int d, int side) const;

  // --- naming helpers ---
  /// C identifier of a field's local buffer, e.g. "buf_temp".
  std::string buffer_name(int field) const;
  /// Global-memory argument names, e.g. "temp_in" / "temp_out".
  std::string global_in_name(int field) const;
  std::string global_out_name(int field) const;
  /// Directed pipe between two kernels, e.g. "p_k0_k1".
  std::string pipe_name(int from_kernel, int to_kernel) const;
  /// Runtime region-origin variable for dimension d ("r0").
  std::string region_origin(int d) const;
};

}  // namespace scl::codegen
