// Fused stencil operation generator (paper §5.2, "Fused Stencil Operation
// Generator").
//
// Renders the body of one fused iteration for one tile kernel: per stage,
// the interior (independent) compute loop, the boundary (dependent) loops,
// the shadow-buffer commit for double-buffered stages, and the symmetric
// per-stage pipe exchange of the stage's output strips.
#pragma once

#include <string>

#include "codegen/context.hpp"
#include "codegen/pipe_gen.hpp"

namespace scl::codegen {

/// Renders the complete `for (it ...)` fused-iteration loop of kernel `k`,
/// indented for inclusion in the kernel body.
std::string render_fused_iterations(const GenContext& ctx, int k);

/// Index macro name of kernel `k`, e.g. "K0_IDX".
std::string index_macro(const GenContext& ctx, int k);

}  // namespace scl::codegen
