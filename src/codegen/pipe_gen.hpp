// Data-sharing pipe generator (paper §5.2, "Data Sharing Pipe Generator").
//
// Pipes are one-directional, so every pair of face-adjacent kernels gets
// two: a read pipe and a write pipe. FIFO depths follow the simulator's
// sizing rule (all mutable-field strips of two iterations in flight),
// rounded up to a power of two as the Xilinx attribute requires.
#pragma once

#include <string>
#include <vector>

#include "codegen/context.hpp"

namespace scl::codegen {

struct PipeDecl {
  int from_kernel = 0;
  int to_kernel = 0;
  std::string name;
  std::int64_t depth = 0;  ///< FIFO depth in elements (power of two)
};

/// All directed pipes of the design (empty for the baseline).
std::vector<PipeDecl> enumerate_pipes(const GenContext& ctx);

/// OpenCL 2.0 declarations block, one line per pipe.
std::string render_pipe_declarations(const std::vector<PipeDecl>& pipes);

}  // namespace scl::codegen
