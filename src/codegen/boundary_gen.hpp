// Stencil boundary generator (paper §5.2, "Stencil Boundary Generator").
//
// Emits the loop-bound expressions of a tile kernel as C source over the
// runtime variables `r0..r2` (region origin), `it` (current fused
// iteration, 1-based) and `pass_h` (fused depth of this pass). The bounds
// encode, per dimension and side:
//
//   * pipe-shared faces   -> clip at the tile edge (the halo arrives by pipe),
//   * region-exterior faces -> the shrinking cone
//       tile_edge -/+ (iter_radius * (pass_h - it) + stage_residual),
//     where the residual widens stages whose output shrinks less than the
//     full iteration radius (multi-stage programs),
//   * everywhere          -> clamped to the field's updatable region
//     (Dirichlet border cells are never written).
#pragma once

#include <array>
#include <string>

#include "codegen/context.hpp"

namespace scl::codegen {

struct LoopBounds {
  std::array<std::string, 3> lo;
  std::array<std::string, 3> hi;
};

/// Bounds of stage `stage` of kernel `k`'s compute loop at iteration `it`.
LoopBounds stage_compute_bounds(const GenContext& ctx, int k, int stage);

/// Bounds of the kernel's local-buffer box (tile + max margins), used for
/// the burst read; static except for the region origin.
LoopBounds buffer_bounds(const GenContext& ctx, int k);

/// Bounds of the kernel's owned output region for field `field`
/// (tile intersect updatable region), used for the burst write.
LoopBounds owned_bounds(const GenContext& ctx, int k, int field);

/// The C expression for a tile edge coordinate, e.g. "(r0 + 120)".
std::string tile_edge_expr(const GenContext& ctx, int k, int d, int side);

}  // namespace scl::codegen
