#include "codegen/validator.hpp"

#include <map>
#include <set>

#include "support/strings.hpp"

namespace scl::codegen {

namespace {

void check_balance(const std::string& src, std::vector<ValidationIssue>* out,
                   char open, char close, const char* what) {
  std::int64_t depth = 0;
  std::int64_t line = 1;
  for (const char c : src) {
    if (c == '\n') ++line;
    if (c == open) ++depth;
    if (c == close) {
      --depth;
      if (depth < 0) {
        out->push_back({str_cat("unbalanced ", what, ": extra '", close,
                                "' at line ", line)});
        return;
      }
    }
  }
  if (depth != 0) {
    out->push_back({str_cat("unbalanced ", what, ": ", depth, " unclosed '",
                            open, "'")});
  }
}

void check_placeholders(const std::string& src,
                        std::vector<ValidationIssue>* out) {
  const std::size_t pos = src.find('$');
  if (pos != std::string::npos) {
    out->push_back({str_cat("unexpanded formula placeholder at offset ", pos)});
  }
}

/// Extracts every identifier following `prefix(`-style usage, e.g.
/// occurrences of "read_pipe_block(" capture the first argument token.
std::set<std::string> pipe_arguments(const std::string& src,
                                     const std::string& call) {
  std::set<std::string> out;
  std::size_t pos = 0;
  while ((pos = src.find(call, pos)) != std::string::npos) {
    pos += call.size();
    std::string name;
    while (pos < src.size() &&
           (std::isalnum(static_cast<unsigned char>(src[pos])) ||
            src[pos] == '_')) {
      name.push_back(src[pos++]);
    }
    if (!name.empty()) out.insert(name);
  }
  return out;
}

}  // namespace

std::vector<ValidationIssue> validate_kernel_source(const std::string& src) {
  std::vector<ValidationIssue> issues;
  check_balance(src, &issues, '{', '}', "braces");
  check_balance(src, &issues, '(', ')', "parentheses");
  check_balance(src, &issues, '[', ']', "brackets");
  check_placeholders(src, &issues);

  // Every declared pipe must be both written and read exactly once each
  // way (pipes are point-to-point); every used pipe must be declared.
  std::set<std::string> declared;
  for (const std::string& line : split(src, '\n')) {
    const std::string trimmed = trim(line);
    if (starts_with(trimmed, "pipe float ")) {
      std::string name;
      for (std::size_t i = 11; i < trimmed.size(); ++i) {
        const char c = trimmed[i];
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
          name.push_back(c);
        } else {
          break;
        }
      }
      if (!name.empty()) declared.insert(name);
    }
  }
  const std::set<std::string> written = pipe_arguments(src, "write_pipe_block(");
  const std::set<std::string> read = pipe_arguments(src, "read_pipe_block(");
  for (const std::string& p : declared) {
    if (!written.count(p)) {
      issues.push_back({str_cat("pipe '", p, "' declared but never written")});
    }
    if (!read.count(p)) {
      issues.push_back({str_cat("pipe '", p, "' declared but never read")});
    }
  }
  for (const std::string& p : written) {
    if (!declared.count(p)) {
      issues.push_back({str_cat("pipe '", p, "' written but not declared")});
    }
  }
  for (const std::string& p : read) {
    if (!declared.count(p)) {
      issues.push_back({str_cat("pipe '", p, "' read but not declared")});
    }
  }
  return issues;
}

std::vector<ValidationIssue> validate_host_source(const std::string& src) {
  std::vector<ValidationIssue> issues;
  check_balance(src, &issues, '{', '}', "braces");
  check_balance(src, &issues, '(', ')', "parentheses");
  check_placeholders(src, &issues);
  return issues;
}

}  // namespace scl::codegen
