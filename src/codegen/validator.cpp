#include "codegen/validator.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <utility>

#include "support/strings.hpp"

namespace scl::codegen {

using support::Diagnostic;
using support::Severity;

namespace {

Diagnostic make_error(std::string code, std::string message, int line = -1) {
  Diagnostic diag;
  diag.code = std::move(code);
  diag.severity = Severity::kError;
  diag.message = std::move(message);
  diag.location = {"source", "", line};
  return diag;
}

void check_balance(const std::string& src, std::vector<Diagnostic>* out,
                   char open, char close, const char* what) {
  std::int64_t depth = 0;
  int line = 1;
  for (const char c : src) {
    if (c == '\n') ++line;
    if (c == open) ++depth;
    if (c == close) {
      --depth;
      if (depth < 0) {
        out->push_back(make_error(
            "SCL001",
            str_cat("unbalanced ", what, ": extra '", close, "'"), line));
        return;
      }
    }
  }
  if (depth != 0) {
    out->push_back(make_error(
        "SCL001",
        str_cat("unbalanced ", what, ": ", depth, " unclosed '", open, "'")));
  }
}

void check_placeholders(const std::string& src,
                        std::vector<Diagnostic>* out) {
  const std::size_t pos = src.find('$');
  if (pos != std::string::npos) {
    const int line = 1 + static_cast<int>(
                             std::count(src.begin(),
                                        src.begin() + static_cast<std::ptrdiff_t>(pos),
                                        '\n'));
    out->push_back(make_error(
        "SCL002", str_cat("unexpanded formula placeholder at offset ", pos),
        line));
  }
}

std::string identifier_at(const std::string& src, std::size_t pos) {
  std::string name;
  while (pos < src.size() &&
         (std::isalnum(static_cast<unsigned char>(src[pos])) ||
          src[pos] == '_')) {
    name.push_back(src[pos++]);
  }
  return name;
}

/// Per-kernel pipe usage: which kernels write and read each pipe. Pipes
/// used outside any kernel body are attributed to the pseudo-kernel
/// "<global>".
struct PipeUsage {
  std::set<std::string> writers;
  std::set<std::string> readers;
};

std::map<std::string, PipeUsage> collect_pipe_usage(const std::string& src) {
  std::map<std::string, PipeUsage> usage;
  std::string current = "<global>";
  // The emitter puts the __kernel attribute line and the `void name(`
  // line separately, so remember seeing __kernel until the name arrives.
  bool awaiting_name = false;
  for (const std::string& raw : split(src, '\n')) {
    const std::string line = trim(raw);
    std::size_t void_pos = std::string::npos;
    const std::size_t kernel_pos = line.find("__kernel");
    if (kernel_pos != std::string::npos) {
      awaiting_name = true;
      void_pos = line.find("void", kernel_pos);
    } else if (awaiting_name && starts_with(line, "void")) {
      void_pos = 0;
    }
    if (awaiting_name && void_pos != std::string::npos) {
      std::size_t name_pos = void_pos + 4;
      while (name_pos < line.size() &&
             std::isspace(static_cast<unsigned char>(line[name_pos]))) {
        ++name_pos;
      }
      const std::string name = identifier_at(line, name_pos);
      if (!name.empty()) {
        current = name;
        awaiting_name = false;
      }
    }
    for (const auto& [call, is_write] :
         {std::pair{std::string("write_pipe_block("), true},
          std::pair{std::string("read_pipe_block("), false}}) {
      std::size_t pos = 0;
      while ((pos = line.find(call, pos)) != std::string::npos) {
        pos += call.size();
        const std::string pipe = identifier_at(line, pos);
        if (pipe.empty()) continue;
        if (is_write) {
          usage[pipe].writers.insert(current);
        } else {
          usage[pipe].readers.insert(current);
        }
      }
    }
  }
  return usage;
}

std::string join_kernels(const std::set<std::string>& kernels) {
  std::string out;
  for (const std::string& k : kernels) {
    if (!out.empty()) out += ", ";
    out += k;
  }
  return out;
}

}  // namespace

std::vector<Diagnostic> validate_kernel_source(const std::string& src) {
  std::vector<Diagnostic> issues;
  check_balance(src, &issues, '{', '}', "braces");
  check_balance(src, &issues, '(', ')', "parentheses");
  check_balance(src, &issues, '[', ']', "brackets");
  check_placeholders(src, &issues);

  std::set<std::string> declared;
  for (const std::string& line : split(src, '\n')) {
    const std::string trimmed = trim(line);
    if (starts_with(trimmed, "pipe float ")) {
      const std::string name = identifier_at(trimmed, 11);
      if (!name.empty()) declared.insert(name);
    }
  }

  // Pipes are point-to-point channels: exactly one kernel writes each,
  // exactly one *other* kernel reads each. Usage is attributed per
  // enclosing kernel, so a same-kernel read/write pair no longer passes
  // as "used both ways".
  const std::map<std::string, PipeUsage> usage = collect_pipe_usage(src);
  auto pipe_diag = [&](std::string code, std::string message,
                       const std::string& pipe) {
    Diagnostic diag = make_error(std::move(code), std::move(message));
    diag.location = {"pipe", pipe, -1};
    issues.push_back(std::move(diag));
  };
  for (const std::string& p : declared) {
    const auto it = usage.find(p);
    const bool written = it != usage.end() && !it->second.writers.empty();
    const bool read = it != usage.end() && !it->second.readers.empty();
    if (!written) {
      pipe_diag("SCL010", str_cat("pipe '", p, "' declared but never written"),
                p);
    }
    if (!read) {
      pipe_diag("SCL011", str_cat("pipe '", p, "' declared but never read"),
                p);
    }
    if (it == usage.end()) continue;
    if (it->second.writers.size() > 1) {
      pipe_diag("SCL014",
                str_cat("pipe '", p, "' written by multiple kernels: ",
                        join_kernels(it->second.writers)),
                p);
    }
    if (it->second.readers.size() > 1) {
      pipe_diag("SCL015",
                str_cat("pipe '", p, "' read by multiple kernels: ",
                        join_kernels(it->second.readers)),
                p);
    }
    for (const std::string& k : it->second.writers) {
      if (it->second.readers.count(k) != 0) {
        pipe_diag("SCL016",
                  str_cat("pipe '", p, "' read and written by the same "
                          "kernel '", k, "'"),
                  p);
      }
    }
  }
  for (const auto& [p, use] : usage) {
    if (declared.count(p) != 0) continue;
    if (!use.writers.empty()) {
      pipe_diag("SCL012", str_cat("pipe '", p, "' written but not declared"),
                p);
    }
    if (!use.readers.empty()) {
      pipe_diag("SCL013", str_cat("pipe '", p, "' read but not declared"), p);
    }
  }
  return issues;
}

std::vector<Diagnostic> validate_host_source(const std::string& src) {
  std::vector<Diagnostic> issues;
  check_balance(src, &issues, '{', '}', "braces");
  check_balance(src, &issues, '(', ')', "parentheses");
  check_placeholders(src, &issues);
  return issues;
}

}  // namespace scl::codegen
