#include "codegen/pipe_gen.hpp"

#include "sim/tile_task.hpp"
#include "support/strings.hpp"

namespace scl::codegen {

using scl::sim::DesignKind;
using scl::sim::TilePlacement;
using scl::stencil::Face;

std::vector<PipeDecl> enumerate_pipes(const GenContext& ctx) {
  std::vector<PipeDecl> out;
  if (ctx.config.kind != DesignKind::kHeterogeneous) return out;
  for (const TilePlacement& tile : ctx.tiles) {
    for (int d = 0; d < ctx.program->dims(); ++d) {
      const auto ds = static_cast<std::size_t>(d);
      for (int side = 0; side < 2; ++side) {
        if (tile.exterior[ds][static_cast<std::size_t>(side)]) continue;
        const int nb = ctx.neighbor_index(tile, d, side);
        if (nb < 0) continue;
        PipeDecl decl;
        decl.from_kernel = tile.kernel_index;
        decl.to_kernel = nb;
        decl.name = ctx.pipe_name(tile.kernel_index, nb);
        const Face face{d, side == 0 ? -1 : +1};
        std::int64_t depth = sim::max_face_strip_elements(
            *ctx.program, tile, ctx.tile(nb), face,
            ctx.config.fused_iterations);
        depth = std::max<std::int64_t>(depth, ctx.device.pipe_fifo_depth);
        std::int64_t pow2 = 1;
        while (pow2 < depth) pow2 *= 2;
        decl.depth = pow2;
        out.push_back(std::move(decl));
      }
    }
  }
  return out;
}

std::string render_pipe_declarations(const std::vector<PipeDecl>& pipes) {
  std::string out;
  for (const PipeDecl& p : pipes) {
    out += str_cat("pipe float ", p.name,
                   " __attribute__((xcl_reqd_pipe_depth(", p.depth, ")));\n");
  }
  return out;
}

}  // namespace scl::codegen
