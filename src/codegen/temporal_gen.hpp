// Temporal-blocked shift-register kernel generator (family
// kTemporalShift, see arch/temporal_layout.hpp).
//
// Emits the single deep-pipeline kernel of the temporal family: one walk
// loop over the padded strip in which every (field, time-state) shift
// register advances by one cell, the state-0 streams are fed from global
// memory, each of the T fused steps computes its stage carriers from
// constant-depth taps, and the final-state carriers drain to the output
// arrays. The kernel keeps the exact signature of the pipe-tiling
// family's stencil_k0 (per-field globals, r0..r2, pass_h), so the
// generated host program, region sweep and build script are shared.
//
// Everything emitted stays inside the kernel-IR analyzable subset
// (analysis/ir/lower): counted loops, `float` carriers, flat array
// stores, and index expressions over +,-,*,/,%,min,max with the
// constant-divisor strip decomposition.
#pragma once

#include <string>

#include "codegen/context.hpp"

namespace scl::codegen {

/// Renders the complete cascade kernel (defines + __kernel function) for
/// a validated kTemporalShift config. Throws scl::Error when a stage
/// lacks a symbolic formula.
std::string render_temporal_kernel(const GenContext& ctx);

}  // namespace scl::codegen
