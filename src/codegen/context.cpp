#include "codegen/context.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::codegen {

using scl::sim::DesignKind;
using scl::sim::TilePlacement;

GenContext GenContext::create(const scl::stencil::StencilProgram& program,
                              const sim::DesignConfig& config,
                              const fpga::DeviceSpec& device) {
  config.validate(program);
  GenContext ctx;
  ctx.program = &program;
  ctx.config = config;
  ctx.device = device;

  std::array<std::vector<std::int64_t>, 3> extents;
  std::array<std::vector<std::int64_t>, 3> starts;
  for (int d = 0; d < 3; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    extents[ds] = config.tile_extents(d);
    std::int64_t cursor = 0;
    for (const std::int64_t e : extents[ds]) {
      starts[ds].push_back(cursor);
      cursor += e;
    }
  }

  // R spatial replicas, each a full copy of the K-tile arrangement. The
  // tile geometry is identical per replica (the same nominal region shape
  // is swept from replica-specific host offsets); kernel indices continue
  // across replicas, so replica r owns indices [r*K, (r+1)*K).
  int kernel_index = 0;
  for (int rep = 0; rep < config.replication; ++rep) {
    for (int c0 = 0; c0 < config.parallelism[0]; ++c0) {
      for (int c1 = 0; c1 < config.parallelism[1]; ++c1) {
        for (int c2 = 0; c2 < config.parallelism[2]; ++c2) {
          TilePlacement tile;
          tile.coord = {c0, c1, c2};
          tile.kernel_index = kernel_index++;
          const std::array<int, 3> coord{c0, c1, c2};
          for (int d = 0; d < 3; ++d) {
            const auto ds = static_cast<std::size_t>(d);
            const auto c = static_cast<std::size_t>(coord[ds]);
            tile.box.lo[ds] = starts[ds][c];
            tile.box.hi[ds] = starts[ds][c] + extents[ds][c];
            const bool low = coord[ds] == 0;
            const bool high = coord[ds] == config.parallelism[ds] - 1;
            tile.exterior[ds][0] =
                config.kind == DesignKind::kBaseline || low;
            tile.exterior[ds][1] =
                config.kind == DesignKind::kBaseline || high;
          }
          ctx.tiles.push_back(tile);
        }
      }
    }
  }
  return ctx;
}

int GenContext::neighbor_index(const TilePlacement& t, int d, int side) const {
  std::array<int, 3> nc = t.coord;
  nc[static_cast<std::size_t>(d)] += side == 0 ? -1 : +1;
  for (int i = 0; i < 3; ++i) {
    if (nc[static_cast<std::size_t>(i)] < 0 ||
        nc[static_cast<std::size_t>(i)] >=
            config.parallelism[static_cast<std::size_t>(i)]) {
      return -1;
    }
  }
  // Pipes never cross replicas: the neighbor lives in the same replica's
  // index block as `t`.
  const auto per_replica = static_cast<int>(config.total_kernels());
  const int replica_base = (t.kernel_index / per_replica) * per_replica;
  return replica_base +
         (nc[0] * config.parallelism[1] + nc[1]) * config.parallelism[2] +
         nc[2];
}

std::string GenContext::buffer_name(int field) const {
  return "buf_" + program->field(field).name;
}

std::string GenContext::global_in_name(int field) const {
  return program->field(field).name + "_in";
}

std::string GenContext::global_out_name(int field) const {
  return program->field(field).name + "_out";
}

std::string GenContext::pipe_name(int from_kernel, int to_kernel) const {
  return str_cat("p_k", from_kernel, "_k", to_kernel);
}

std::string GenContext::region_origin(int d) const {
  return str_cat("r", d);
}

}  // namespace scl::codegen
