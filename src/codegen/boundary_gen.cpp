#include "codegen/boundary_gen.hpp"

#include "support/strings.hpp"

namespace scl::codegen {

using scl::sim::TilePlacement;
using scl::stencil::SideRadii;

std::string tile_edge_expr(const GenContext& ctx, int k, int d, int side) {
  const TilePlacement& tile = ctx.tile(k);
  const auto ds = static_cast<std::size_t>(d);
  const std::int64_t offset =
      side == 0 ? tile.box.lo[ds] : tile.box.hi[ds];
  return str_cat("(", ctx.region_origin(d), " + ", offset, ")");
}

namespace {

/// max()/min() clamp helpers in OpenCL C.
std::string cmax(const std::string& a, const std::string& b) {
  return str_cat("max(", a, ", ", b, ")");
}
std::string cmin(const std::string& a, const std::string& b) {
  return str_cat("min(", a, ", ", b, ")");
}

}  // namespace

LoopBounds stage_compute_bounds(const GenContext& ctx, int k, int stage) {
  const auto& prog = *ctx.program;
  const TilePlacement& tile = ctx.tile(k);
  const scl::stencil::Box updated =
      prog.updated_box(prog.stage(stage).output_field);
  const SideRadii& radii = prog.iter_radii();
  const SideRadii& shrink = prog.stage_shrink(stage);

  LoopBounds out;
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    // Low side.
    {
      std::string expr = tile_edge_expr(ctx, k, d, 0);
      if (tile.exterior[ds][0]) {
        const std::int64_t residual = radii[ds][0] - shrink[ds][0];
        expr = str_cat(expr, " - (", radii[ds][0], " * (pass_h - it) + ",
                       residual, ")");
      }
      out.lo[ds] = cmax(expr, std::to_string(updated.lo[ds]));
    }
    // High side.
    {
      std::string expr = tile_edge_expr(ctx, k, d, 1);
      if (tile.exterior[ds][1]) {
        const std::int64_t residual = radii[ds][1] - shrink[ds][1];
        expr = str_cat(expr, " + (", radii[ds][1], " * (pass_h - it) + ",
                       residual, ")");
      }
      // The updatable region's high bound is grid-extent relative; emit the
      // numeric bound directly (the grid size is compile-time constant).
      out.hi[ds] = cmin(expr, std::to_string(updated.hi[ds]));
    }
  }
  for (int d = prog.dims(); d < 3; ++d) {
    out.lo[static_cast<std::size_t>(d)] = "0";
    out.hi[static_cast<std::size_t>(d)] = "1";
  }
  return out;
}

LoopBounds buffer_bounds(const GenContext& ctx, int k) {
  const auto& prog = *ctx.program;
  const TilePlacement& tile = ctx.tile(k);
  LoopBounds out;
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    const std::int64_t lo_margin =
        tile.exterior[ds][0]
            ? prog.iter_radii()[ds][0] * ctx.config.fused_iterations
            : prog.max_stage_radii()[ds][0];
    const std::int64_t hi_margin =
        tile.exterior[ds][1]
            ? prog.iter_radii()[ds][1] * ctx.config.fused_iterations
            : prog.max_stage_radii()[ds][1];
    out.lo[ds] = cmax(str_cat(tile_edge_expr(ctx, k, d, 0), " - ", lo_margin),
                      "0");
    out.hi[ds] = cmin(str_cat(tile_edge_expr(ctx, k, d, 1), " + ", hi_margin),
                      std::to_string(prog.grid_box().hi[ds]));
  }
  for (int d = prog.dims(); d < 3; ++d) {
    out.lo[static_cast<std::size_t>(d)] = "0";
    out.hi[static_cast<std::size_t>(d)] = "1";
  }
  return out;
}

LoopBounds owned_bounds(const GenContext& ctx, int k, int field) {
  const auto& prog = *ctx.program;
  const scl::stencil::Box updated = prog.updated_box(field);
  LoopBounds out;
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    out.lo[ds] = cmax(tile_edge_expr(ctx, k, d, 0),
                      std::to_string(updated.lo[ds]));
    out.hi[ds] = cmin(tile_edge_expr(ctx, k, d, 1),
                      std::to_string(updated.hi[ds]));
  }
  for (int d = prog.dims(); d < 3; ++d) {
    out.lo[static_cast<std::size_t>(d)] = "0";
    out.hi[static_cast<std::size_t>(d)] = "1";
  }
  return out;
}

}  // namespace scl::codegen
