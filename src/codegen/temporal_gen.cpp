#include "codegen/temporal_gen.hpp"

#include <vector>

#include "arch/temporal_layout.hpp"
#include "stencil/formula.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::codegen {

using scl::arch::TemporalLayout;
using scl::arch::TemporalReg;
using scl::stencil::Offset;
using scl::stencil::Stage;

namespace {

/// Register array name of stream (field, state), e.g. "sr_temp_1".
std::string reg_name(const GenContext& ctx, const TemporalReg& reg) {
  return str_cat("sr_", ctx.program->field(reg.field).name, "_", reg.state);
}

/// Carrier scalar of fused step t, stage s.
std::string carrier_name(int t, int s) { return str_cat("y_", t, "_", s); }

/// The clamped linear walk cell a delayed consumer sees at tick p:
/// min(max(p - delay, 0), cells - 1). Out-of-range ticks replicate an
/// end cell; every consumer is predicated on the unclamped range, so the
/// replicated coordinates only keep the index arithmetic in bounds.
std::string linear_cell(std::int64_t delay, std::int64_t cells) {
  if (delay == 0) return str_cat("min(p, ", cells - 1, ")");
  return str_cat("min(max(p - ", delay, ", 0), ", cells - 1, ")");
}

/// Local (padded-strip) coordinate of linear cell `q` along dim d, via
/// the constant-stride decomposition q / stride % extent.
std::string local_coord(const TemporalLayout& lay, const std::string& q,
                        int d) {
  const auto ds = static_cast<std::size_t>(d);
  std::string expr = str_cat("(", q, ")");
  const std::int64_t stride = lay.stride(d);
  if (stride > 1) expr = str_cat(expr, " / ", stride);
  if (d > 0) expr = str_cat("(", expr, ") % ", lay.ext[ds]);
  return expr;
}

/// Unclamped global coordinate along dim d of linear cell `q`: region
/// origin minus the strip-dimension pad plus the local coordinate.
std::string global_coord(const GenContext& ctx, const TemporalLayout& lay,
                         const std::string& q, int d) {
  const auto ds = static_cast<std::size_t>(d);
  const std::string lc = local_coord(lay, q, d);
  if (lay.pad_lo[ds] > 0) {
    return str_cat(ctx.region_origin(d), " - ", lay.pad_lo[ds], " + ", lc);
  }
  return str_cat(ctx.region_origin(d), " + ", lc);
}

/// GIDX(...) over per-dimension coordinate expressions.
std::string gidx(const GenContext& ctx, const std::vector<std::string>& coords) {
  (void)ctx;
  return str_cat("GIDX(", join(coords, ", "), ")");
}

/// The formula of stage s at fused step t with every read replaced by a
/// constant-depth shift-register tap.
std::string stage_expression(const GenContext& ctx, const TemporalLayout& lay,
                             int t, int s) {
  const Stage& stage = ctx.program->stage(s);
  if (!stage.formula) {
    throw Error(str_cat("stage '", stage.name,
                        "' has no symbolic formula; build it with "
                        "make_stage() to enable code generation"));
  }
  return stage.formula->render([&](int field, const Offset& off) {
    const int state = lay.source_state(t, s, *ctx.program, field);
    const int ri = lay.reg_index(field, state);
    if (ri < 0) {
      throw Error(str_cat("temporal codegen: stream (",
                          ctx.program->field(field).name, ", state ", state,
                          ") was never materialized"));
    }
    const TemporalReg& reg = lay.regs[static_cast<std::size_t>(ri)];
    const std::int64_t depth = lay.tap_depth(t, s, reg.head_delay, off);
    return str_cat(reg_name(ctx, reg), "[", reg.len - 1 - depth, "]");
  });
}

/// The boundary passthrough tap of stage s at step t: its output field's
/// previous state at offset zero.
std::string passthrough_tap(const GenContext& ctx, const TemporalLayout& lay,
                            int t, int s) {
  const int field = ctx.program->stage(s).output_field;
  const int ri = lay.reg_index(field, t - 1);
  if (ri < 0) {
    throw Error("temporal codegen: passthrough stream missing");
  }
  const TemporalReg& reg = lay.regs[static_cast<std::size_t>(ri)];
  const std::int64_t depth =
      lay.tap_depth(t, s, reg.head_delay, Offset{0, 0, 0});
  return str_cat(reg_name(ctx, reg), "[", reg.len - 1 - depth, "]");
}

/// `p`-range plus per-dimension updated-box membership of the cell a
/// stage computes at tick p (delay D): only these cells apply the update
/// formula; everything else carries its previous state forward.
std::string update_predicate(const GenContext& ctx, const TemporalLayout& lay,
                             int field, std::int64_t delay,
                             const std::string& q) {
  const auto& prog = *ctx.program;
  const stencil::Box updated = prog.updated_box(field);
  std::string pred =
      str_cat("p >= ", delay, " && p < ", delay + lay.cells);
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    const std::string g = global_coord(ctx, lay, q, d);
    pred += str_cat(" && ", g, " >= ", updated.lo[ds], " && ", g, " < ",
                    updated.hi[ds]);
  }
  return pred;
}

}  // namespace

std::string render_temporal_kernel(const GenContext& ctx) {
  const auto& prog = *ctx.program;
  const TemporalLayout lay = arch::make_temporal_layout(prog, ctx.config);
  const int dims = prog.dims();
  std::string out;

  out += str_cat(
      "// temporal-blocked shift-register cascade: T = ", lay.temporal_degree,
      " fused steps, strip width ",
      lay.strip[static_cast<std::size_t>(lay.strip_dim)],
      " along dim ", lay.strip_dim, ", vector width ", lay.vector_width,
      "\n// padded walk: ", lay.cells, " cells + ", lay.max_store_delay,
      " drain ticks, ", lay.sr_elements, " shift-register elements\n");

  // Signature: identical to the pipe-tiling family's stencil_k0 so the
  // generated host program drives both families unchanged. pass_h is
  // unused — the cascade's fused depth T is baked into the delays.
  std::vector<std::string> args;
  for (int f = 0; f < prog.field_count(); ++f) {
    args.push_back(
        str_cat("__global const float* restrict ", ctx.global_in_name(f)));
    if (!prog.is_constant_field(f)) {
      args.push_back(
          str_cat("__global float* restrict ", ctx.global_out_name(f)));
    }
  }
  for (int d = 0; d < dims; ++d) {
    args.push_back(str_cat("const int ", ctx.region_origin(d)));
  }
  args.push_back("const int pass_h");
  out += str_cat("__kernel __attribute__((reqd_work_group_size(1, 1, 1)))\n",
                 "void stencil_k0(", join(args, ",\n               "),
                 ") {\n");

  // One shift register per materialized (field, time-state) stream.
  for (const TemporalReg& reg : lay.regs) {
    out += str_cat("  __local float ", reg_name(ctx, reg), "[", reg.len,
                   "];  // ", prog.field(reg.field).name, " state ",
                   reg.state, ", head delay ", reg.head_delay, "\n");
  }

  out += str_cat("  for (int p = 0; p < ", lay.walk_ticks, "; ++p) {\n");

  // 1. Advance every stream by one cell.
  out += "    // advance every stream by one cell\n";
  for (const TemporalReg& reg : lay.regs) {
    if (reg.len < 2) continue;
    const std::string name = reg_name(ctx, reg);
    out += str_cat("    for (int w = 0; w < ", reg.len - 1, "; ++w) {\n",
                   "      ", name, "[w] = ", name, "[w + 1];\n",
                   "    }\n");
  }

  // 2. Feed the state-0 streams from global memory. Coordinates clamp to
  // the grid: strip halo that hangs over a grid edge replicates the edge
  // cell, and those cells are boundary passthrough in every fused step.
  out += "    // feed the input streams with the next padded-strip cell\n";
  const std::string q0 = linear_cell(0, lay.cells);
  for (const TemporalReg& reg : lay.regs) {
    if (reg.state != 0) continue;
    std::vector<std::string> coords;
    for (int d = 0; d < dims; ++d) {
      coords.push_back(
          str_cat("min(max(", global_coord(ctx, lay, q0, d), ", 0), ",
                  prog.grid_box().extent(d) - 1, ")"));
    }
    out += str_cat("    ", reg_name(ctx, reg), "[", reg.len - 1, "] = ",
                   ctx.global_in_name(reg.field), "[", gidx(ctx, coords),
                   "];\n");
  }

  // 3. The T fused steps, stages in program order. Each carrier applies
  // the update formula inside the field's updated box and carries the
  // previous state through elsewhere (Dirichlet boundary and strip halo
  // beyond the grid).
  for (int t = 1; t <= lay.temporal_degree; ++t) {
    for (int s = 0; s < prog.stage_count(); ++s) {
      const Stage& stage = prog.stage(s);
      const std::int64_t delay = lay.compute_delay(t, s);
      const std::string q = linear_cell(delay, lay.cells);
      out += str_cat("    // fused step ", t, ", stage ", s, ": ", stage.name,
                     " (delay ", delay, ")\n");
      out += str_cat("    float ", carrier_name(t, s), " = (",
                     update_predicate(ctx, lay, stage.output_field, delay, q),
                     ") ? ", stage_expression(ctx, lay, t, s), " : ",
                     passthrough_tap(ctx, lay, t, s), ";\n");
      const int ri = lay.reg_index(stage.output_field, t);
      if (ri >= 0) {
        const TemporalReg& reg = lay.regs[static_cast<std::size_t>(ri)];
        out += str_cat("    ", reg_name(ctx, reg), "[", reg.len - 1, "] = ",
                       carrier_name(t, s), ";\n");
      }
    }
  }

  // 4. Drain the final-state carriers to global memory. The target index
  // clamps into the strip's owned slice of the updated box, and the
  // rewrite is an identity outside the store predicate, so clipped and
  // draining ticks never corrupt a neighbor strip or a boundary cell.
  out += "    // store the step-T results of the owned cells\n";
  for (int f = 0; f < prog.field_count(); ++f) {
    const int wf = prog.writing_stage(f);
    if (wf < 0) continue;
    const std::int64_t delay = lay.compute_delay(lay.temporal_degree, wf);
    const std::string q = linear_cell(delay, lay.cells);
    const stencil::Box updated = prog.updated_box(f);
    std::vector<std::string> coords;
    std::string pred = str_cat("p >= ", delay, " && p < ", delay + lay.cells);
    for (int d = 0; d < dims; ++d) {
      const auto ds = static_cast<std::size_t>(d);
      const std::string g = global_coord(ctx, lay, q, d);
      const std::string lo =
          str_cat("max(", ctx.region_origin(d), ", ", updated.lo[ds], ")");
      const std::string hi = str_cat("min(", ctx.region_origin(d), " + ",
                                     lay.strip[ds], ", ", updated.hi[ds], ")");
      coords.push_back(
          str_cat("min(max(", g, ", ", lo, "), ", hi, " - 1)"));
      pred += str_cat(" && ", g, " >= ", lo, " && ", g, " < ", hi);
    }
    const std::string target =
        str_cat(ctx.global_out_name(f), "[", gidx(ctx, coords), "]");
    out += str_cat("    ", target, " = (", pred, ") ? ",
                   carrier_name(lay.temporal_degree, wf), " : ", target,
                   ";\n");
  }

  out += "  }\n}\n";
  return out;
}

}  // namespace scl::codegen
