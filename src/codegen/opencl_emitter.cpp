#include "codegen/opencl_emitter.hpp"

#include "codegen/boundary_gen.hpp"
#include "codegen/fused_op_gen.hpp"
#include "codegen/pipe_gen.hpp"
#include "codegen/temporal_gen.hpp"
#include "support/observability/observability.hpp"
#include "support/strings.hpp"

namespace scl::codegen {

using scl::sim::DesignKind;
using scl::sim::TilePlacement;
using scl::stencil::StencilProgram;

namespace {

/// Static padded buffer extent of kernel `k` along dimension `d` (worst
/// case, ignoring grid clipping — local arrays need compile-time sizes).
std::int64_t buffer_extent(const GenContext& ctx, int k, int d) {
  const auto& prog = *ctx.program;
  const TilePlacement& tile = ctx.tile(k);
  const auto ds = static_cast<std::size_t>(d);
  std::int64_t extent = tile.box.hi[ds] - tile.box.lo[ds];
  for (int side = 0; side < 2; ++side) {
    const auto ss = static_cast<std::size_t>(side);
    extent += tile.exterior[ds][ss]
                  ? prog.iter_radii()[ds][ss] * ctx.config.fused_iterations
                  : prog.max_stage_radii()[ds][ss];
  }
  return extent;
}

std::string render_kernel_defines(const GenContext& ctx, int k) {
  const auto& prog = *ctx.program;
  std::string out;
  // Buffer origin (runtime, clamped to the grid) and static extents.
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    const TilePlacement& tile = ctx.tile(k);
    const std::int64_t lo_margin =
        tile.exterior[ds][0]
            ? prog.iter_radii()[ds][0] * ctx.config.fused_iterations
            : prog.max_stage_radii()[ds][0];
    out += str_cat("#define K", k, "_B", d, "_LO max(",
                   tile_edge_expr(ctx, k, d, 0), " - ", lo_margin, ", 0)\n");
    out += str_cat("#define K", k, "_B", d, "_EXT ", buffer_extent(ctx, k, d),
                   "\n");
  }
  // Flattened local index macro.
  std::vector<std::string> params;
  std::string expr;
  for (int d = 0; d < prog.dims(); ++d) {
    params.push_back(str_cat("i", d));
    if (d == 0) {
      expr = str_cat("((i0) - K", k, "_B0_LO)");
    } else {
      expr = str_cat("(", expr, " * K", k, "_B", d, "_EXT + ((i", d, ") - K",
                     k, "_B", d, "_LO))");
    }
  }
  out += str_cat("#define ", index_macro(ctx, k), "(", join(params, ", "),
                 ") ", expr, "\n");
  return out;
}

std::string render_global_index_macro(const GenContext& ctx) {
  const auto& prog = *ctx.program;
  std::string out = "#define GIDX(";
  std::vector<std::string> params;
  std::string expr;
  for (int d = 0; d < prog.dims(); ++d) {
    params.push_back(str_cat("i", d));
    if (d == 0) {
      // The flat index is computed in 64 bits: at paper-scale grids the
      // row-major product exceeds INT32_MAX and OpenCL `int` wraps on the
      // device (caught by the SCL405 kernel-IR check).
      expr = "((long)(i0))";
    } else {
      expr = str_cat("(", expr, " * ", prog.grid_box().extent(d), " + (i", d,
                     "))");
    }
  }
  out += join(params, ", ") + ") " + expr + "\n";
  return out;
}

std::string render_loop_nest(const GenContext& ctx, const LoopBounds& bounds,
                             const std::string& body, int indent) {
  const int dims = ctx.program->dims();
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out;
  for (int d = 0; d < dims; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    out += str_cat(pad, std::string(static_cast<std::size_t>(2 * d), ' '),
                   "for (int i", d, " = ", bounds.lo[ds], "; i", d, " < ",
                   bounds.hi[ds], "; ++i", d, ")",
                   d + 1 == dims ? " {\n" : "\n");
  }
  const std::string inner =
      pad + std::string(static_cast<std::size_t>(2 * dims), ' ');
  for (const std::string& line : split(body, '\n')) {
    if (!line.empty()) out += inner + line + "\n";
  }
  out += pad + std::string(static_cast<std::size_t>(2 * (dims - 1)), ' ') +
         "}\n";
  return out;
}

std::string render_kernel(const GenContext& ctx, int k) {
  const auto& prog = *ctx.program;
  std::string out;
  out += render_kernel_defines(ctx, k);

  // Signature: per-field global in (all fields) / out (mutable fields),
  // region origin, and the fused depth of this pass.
  std::vector<std::string> args;
  for (int f = 0; f < prog.field_count(); ++f) {
    args.push_back(
        str_cat("__global const float* restrict ", ctx.global_in_name(f)));
    if (!prog.is_constant_field(f)) {
      args.push_back(
          str_cat("__global float* restrict ", ctx.global_out_name(f)));
    }
  }
  for (int d = 0; d < prog.dims(); ++d) {
    args.push_back(str_cat("const int ", ctx.region_origin(d)));
  }
  args.push_back("const int pass_h");

  out += str_cat("__kernel __attribute__((reqd_work_group_size(1, 1, 1)))\n",
                 "void stencil_k", k, "(", join(args, ",\n               "),
                 ") {\n");

  // Local buffers (plus shadow copies for double-buffered stages).
  std::string size_expr;
  for (int d = 0; d < prog.dims(); ++d) {
    if (d > 0) size_expr += " * ";
    size_expr += str_cat("K", k, "_B", d, "_EXT");
  }
  for (int f = 0; f < prog.field_count(); ++f) {
    out += str_cat("  __local float ", ctx.buffer_name(f), "[", size_expr,
                   "];\n");
  }
  for (int s = 0; s < prog.stage_count(); ++s) {
    if (prog.stage_needs_double_buffer(s)) {
      out += str_cat("  __local float ",
                     ctx.buffer_name(prog.stage(s).output_field), "_new[",
                     size_expr, "];\n");
    }
  }

  // Burst read of the full buffer footprint.
  out += "  // burst read from global memory\n";
  const LoopBounds buf = buffer_bounds(ctx, k);
  for (int f = 0; f < prog.field_count(); ++f) {
    std::vector<std::string> ivars;
    for (int d = 0; d < prog.dims(); ++d) ivars.push_back(str_cat("i", d));
    const std::string body = str_cat(
        ctx.buffer_name(f), "[", index_macro(ctx, k), "(", join(ivars, ", "),
        ")] = ", ctx.global_in_name(f), "[GIDX(", join(ivars, ", "), ")];");
    out += render_loop_nest(ctx, buf, body, 2);
  }
  out += "  barrier(CLK_LOCAL_MEM_FENCE);\n\n";

  out += render_fused_iterations(ctx, k);

  // Burst write of the owned cells.
  out += "\n  // burst write back to global memory\n";
  for (int f = 0; f < prog.field_count(); ++f) {
    if (prog.is_constant_field(f)) continue;
    const LoopBounds owned = owned_bounds(ctx, k, f);
    std::vector<std::string> ivars;
    for (int d = 0; d < prog.dims(); ++d) ivars.push_back(str_cat("i", d));
    const std::string body = str_cat(
        ctx.global_out_name(f), "[GIDX(", join(ivars, ", "), ")] = ",
        ctx.buffer_name(f), "[", index_macro(ctx, k), "(", join(ivars, ", "),
        ")];");
    out += render_loop_nest(ctx, owned, body, 2);
  }
  out += "}\n";
  return out;
}

/// The dimension whose region rows are strip-partitioned across replicas:
/// the one with the most regions (ties break toward dimension 0), so the
/// partition has the most rows to hand out.
int replication_dim(const GenContext& ctx) {
  const auto& prog = *ctx.program;
  int best = 0;
  std::int64_t best_count = 0;
  for (int d = 0; d < prog.dims(); ++d) {
    const std::int64_t count =
        (prog.grid_box().extent(d) + ctx.config.region_extent(d) - 1) /
        ctx.config.region_extent(d);
    if (count > best_count) {
      best = d;
      best_count = count;
    }
  }
  return best;
}

/// Kernel-function name of text-kernel `k` within replica `rep`. The
/// temporal cascade is one kernel text whose compute units are replicated
/// at link time (--nk stencil_k0:R), so every replica binds "stencil_k0";
/// pipe-tiling replicas own distinct kernel texts.
std::string kernel_fn_name(const GenContext& ctx, int rep, int k) {
  if (ctx.config.family == arch::DesignFamily::kTemporalShift) {
    return "stencil_k0";
  }
  return str_cat("stencil_k",
                 rep * static_cast<int>(ctx.config.total_kernels()) + k);
}

/// Host program for R > 1: per-replica command queues, the region sweep's
/// rows along one dimension strip-partitioned into R contiguous blocks,
/// swept wave by wave (one region per replica per wave) so the replicas
/// run concurrently while every region still ends with a queue barrier.
std::string render_host_replicated(const GenContext& ctx,
                                   const std::vector<PipeDecl>& pipes) {
  const auto& prog = *ctx.program;
  const auto& cfg = ctx.config;
  const int replicas = cfg.replication;
  const bool temporal = cfg.family == arch::DesignFamily::kTemporalShift;
  const int per_replica =
      temporal ? 1 : static_cast<int>(cfg.total_kernels());
  const int rd = replication_dim(ctx);
  const std::int64_t rows =
      (prog.grid_box().extent(rd) + cfg.region_extent(rd) - 1) /
      cfg.region_extent(rd);
  const std::int64_t waves = (rows + replicas - 1) / replicas;

  std::string out;
  out += str_cat(
      "// Host program generated by stencilcl for ", prog.name(), "\n",
      "// Design: ", cfg.summary(prog.dims()), " (", pipes.size(),
      " pipes, ", replicas, " replicas)\n",
      "#include <CL/cl.h>\n#include <cstdio>\n#include <cstdlib>\n"
      "#include <vector>\n\n"
      "#define CHECK(err)                                         \\\n"
      "  if ((err) != CL_SUCCESS) {                               \\\n"
      "    std::fprintf(stderr, \"OpenCL error %d at line %d\\n\", \\\n"
      "                 (err), __LINE__);                         \\\n"
      "    std::exit(1);                                          \\\n"
      "  }\n\n");

  std::int64_t grid_cells = 1;
  for (int d = 0; d < prog.dims(); ++d) grid_cells *= prog.grid_box().extent(d);
  out += str_cat("static const size_t kGridCells = ", grid_cells, ";\n");
  out += str_cat("static const int kPassH = ", cfg.fused_iterations, ";\n");
  out += str_cat("static const int kIterations = ", prog.iterations(), ";\n");
  for (int d = 0; d < prog.dims(); ++d) {
    out += str_cat("static const int kRegionExtent", d, " = ",
                   cfg.region_extent(d), ";\n");
    out += str_cat("static const int kGridExtent", d, " = ",
                   prog.grid_box().extent(d), ";\n");
  }
  out += str_cat("static const int kReplicas = ", replicas,
                 ";  // spatial PEs on disjoint HBM bank groups\n");
  out += str_cat("static const int kStripWaves = ", waves,
                 ";  // region rows along dim ", rd, " per replica\n");

  out += R"(
int main() {
  cl_int err = CL_SUCCESS;
  cl_platform_id platform;
  CHECK(clGetPlatformIDs(1, &platform, nullptr));
  cl_device_id device;
  CHECK(clGetDeviceIDs(platform, CL_DEVICE_TYPE_ACCELERATOR, 1, &device,
                       nullptr));
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  CHECK(err);
  // One out-of-order queue per replica: replicas sweep their strips
  // concurrently, each queue still orders its own region barrier.
  cl_command_queue queues[kReplicas];
  for (int q = 0; q < kReplicas; ++q) {
    queues[q] = clCreateCommandQueue(
        context, device, CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE, &err);
    CHECK(err);
  }

  // Load the xclbin produced by the SDAccel compile of the generated
  // kernels (xocc -t hw stencil_kernels.cl).
  // ... clCreateProgramWithBinary elided: platform specific ...
  cl_program program = nullptr;  // created from the xclbin
)";

  for (int f = 0; f < prog.field_count(); ++f) {
    const std::string n = prog.field(f).name;
    out += str_cat("  std::vector<float> host_", n, "(kGridCells);\n");
    out += str_cat("  cl_mem ", n,
                   "_a = clCreateBuffer(context, CL_MEM_READ_WRITE,\n"
                   "      kGridCells * sizeof(float), nullptr, &err);\n"
                   "  CHECK(err);\n");
    if (!prog.is_constant_field(f)) {
      out += str_cat("  cl_mem ", n,
                     "_b = clCreateBuffer(context, CL_MEM_READ_WRITE,\n"
                     "      kGridCells * sizeof(float), nullptr, &err);\n"
                     "  CHECK(err);\n");
    }
  }

  out += "\n  // one kernel object per synthesized compute unit\n";
  for (int rep = 0; rep < replicas; ++rep) {
    for (int k = 0; k < per_replica; ++k) {
      const int idx = rep * per_replica + k;
      out += str_cat("  cl_kernel k", idx, " = clCreateKernel(program, \"",
                     kernel_fn_name(ctx, rep, k), "\", &err);\n  CHECK(err);\n");
    }
  }

  out += R"(
  int pass_parity = 0;
  for (int t = 0; t < kIterations; t += kPassH) {
    const int pass_h = t + kPassH <= kIterations ? kPassH : kIterations - t;
)";
  // Wave loop along the replicated dimension, plain sweeps elsewhere.
  std::string indent = "    ";
  out += str_cat(indent, "for (int w = 0; w < kStripWaves; ++w) {\n");
  indent += "  ";
  for (int d = 0; d < prog.dims(); ++d) {
    if (d == rd) continue;
    out += str_cat(indent, "for (int r", d, " = 0; r", d, " < kGridExtent", d,
                   "; r", d, " += kRegionExtent", d, ") {\n");
    indent += "  ";
  }
  out += str_cat(indent, "// one region per replica per wave: replica p "
                         "owns wave rows p*kStripWaves .. "
                         "p*kStripWaves + kStripWaves - 1\n");
  for (int rep = 0; rep < replicas; ++rep) {
    out += str_cat(indent, "{\n");
    out += str_cat(indent, "  const int r", rd, " = (", rep,
                   " * kStripWaves + w) * kRegionExtent", rd, ";\n");
    out += str_cat(indent, "  if (r", rd, " < kGridExtent", rd, ") {\n");
    const std::string inner = indent + "    ";
    for (int k = 0; k < per_replica; ++k) {
      const int idx = rep * per_replica + k;
      out += str_cat(inner, "{\n");
      out += str_cat(inner, "  int arg = 0;\n");
      for (int f = 0; f < prog.field_count(); ++f) {
        const std::string n = prog.field(f).name;
        if (prog.is_constant_field(f)) {
          out += str_cat(inner, "  CHECK(clSetKernelArg(k", idx,
                         ", arg++, sizeof(cl_mem), &", n, "_a));\n");
        } else {
          out += str_cat(inner, "  cl_mem ", n,
                         "_src = pass_parity == 0 ? ", n, "_a : ", n, "_b;\n");
          out += str_cat(inner, "  cl_mem ", n,
                         "_dst = pass_parity == 0 ? ", n, "_b : ", n, "_a;\n");
          out += str_cat(inner, "  CHECK(clSetKernelArg(k", idx,
                         ", arg++, sizeof(cl_mem), &", n, "_src));\n");
          out += str_cat(inner, "  CHECK(clSetKernelArg(k", idx,
                         ", arg++, sizeof(cl_mem), &", n, "_dst));\n");
        }
      }
      for (int d = 0; d < prog.dims(); ++d) {
        out += str_cat(inner, "  CHECK(clSetKernelArg(k", idx,
                       ", arg++, sizeof(int), &r", d, "));\n");
      }
      out += str_cat(inner, "  CHECK(clSetKernelArg(k", idx,
                     ", arg++, sizeof(int), &pass_h));\n");
      out += str_cat(inner, "  CHECK(clEnqueueTask(queues[", rep, "], k", idx,
                     ", 0, nullptr, nullptr));\n");
      out += str_cat(inner, "}\n");
    }
    out += str_cat(indent, "  }\n");
    out += str_cat(indent, "}\n");
  }
  out += str_cat(indent,
                 "for (int q = 0; q < kReplicas; ++q) {\n", indent,
                 "  CHECK(clFinish(queues[q]));  // per-replica region "
                 "barrier\n", indent, "}\n");
  for (int d = prog.dims() - 1; d >= 0; --d) {
    if (d == rd) continue;
    indent = indent.substr(0, indent.size() - 2);
    out += indent + "}\n";
  }
  indent = indent.substr(0, indent.size() - 2);
  out += indent + "}\n";
  out += R"(    pass_parity ^= 1;
  }

  // read back the final state (elided: clEnqueueReadBuffer per field)
  for (int q = 0; q < kReplicas; ++q) {
    clReleaseCommandQueue(queues[q]);
  }
  clReleaseContext(context);
  return 0;
}
)";
  return out;
}

std::string render_host(const GenContext& ctx,
                        const std::vector<PipeDecl>& pipes) {
  if (ctx.config.replication > 1) return render_host_replicated(ctx, pipes);
  const auto& prog = *ctx.program;
  const auto& cfg = ctx.config;
  std::string out;
  out += str_cat(
      "// Host program generated by stencilcl for ", prog.name(), "\n",
      "// Design: ", cfg.summary(prog.dims()), " (", pipes.size(),
      " pipes)\n",
      "#include <CL/cl.h>\n#include <cstdio>\n#include <cstdlib>\n"
      "#include <vector>\n\n"
      "#define CHECK(err)                                         \\\n"
      "  if ((err) != CL_SUCCESS) {                               \\\n"
      "    std::fprintf(stderr, \"OpenCL error %d at line %d\\n\", \\\n"
      "                 (err), __LINE__);                         \\\n"
      "    std::exit(1);                                          \\\n"
      "  }\n\n");

  std::int64_t grid_cells = 1;
  for (int d = 0; d < prog.dims(); ++d) grid_cells *= prog.grid_box().extent(d);
  out += str_cat("static const size_t kGridCells = ", grid_cells, ";\n");
  out += str_cat("static const int kPassH = ", cfg.fused_iterations, ";\n");
  out += str_cat("static const int kIterations = ", prog.iterations(), ";\n");
  for (int d = 0; d < prog.dims(); ++d) {
    out += str_cat("static const int kRegionExtent", d, " = ",
                   cfg.region_extent(d), ";\n");
    out += str_cat("static const int kGridExtent", d, " = ",
                   prog.grid_box().extent(d), ";\n");
  }

  out += R"(
int main() {
  cl_int err = CL_SUCCESS;
  cl_platform_id platform;
  CHECK(clGetPlatformIDs(1, &platform, nullptr));
  cl_device_id device;
  CHECK(clGetDeviceIDs(platform, CL_DEVICE_TYPE_ACCELERATOR, 1, &device,
                       nullptr));
  cl_context context =
      clCreateContext(nullptr, 1, &device, nullptr, nullptr, &err);
  CHECK(err);
  cl_command_queue queue = clCreateCommandQueue(
      context, device, CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE, &err);
  CHECK(err);

  // Load the xclbin produced by the SDAccel compile of the generated
  // kernels (xocc -t hw stencil_kernels.cl).
  // ... clCreateProgramWithBinary elided: platform specific ...
  cl_program program = nullptr;  // created from the xclbin
)";

  // Buffers: ping-pong pairs per mutable field, single buffer for
  // constant fields.
  for (int f = 0; f < prog.field_count(); ++f) {
    const std::string n = prog.field(f).name;
    out += str_cat("  std::vector<float> host_", n, "(kGridCells);\n");
    out += str_cat("  cl_mem ", n,
                   "_a = clCreateBuffer(context, CL_MEM_READ_WRITE,\n"
                   "      kGridCells * sizeof(float), nullptr, &err);\n"
                   "  CHECK(err);\n");
    if (!prog.is_constant_field(f)) {
      out += str_cat("  cl_mem ", n,
                     "_b = clCreateBuffer(context, CL_MEM_READ_WRITE,\n"
                     "      kGridCells * sizeof(float), nullptr, &err);\n"
                     "  CHECK(err);\n");
    }
  }

  out += "\n  // one kernel object per synthesized compute unit\n";
  for (int k = 0; k < ctx.kernel_count(); ++k) {
    out += str_cat("  cl_kernel k", k, " = clCreateKernel(program, \"stencil_k",
                   k, "\", &err);\n  CHECK(err);\n");
  }

  // Region sweep.
  out += R"(
  int pass_parity = 0;
  for (int t = 0; t < kIterations; t += kPassH) {
    const int pass_h = t + kPassH <= kIterations ? kPassH : kIterations - t;
)";
  std::string indent = "    ";
  for (int d = 0; d < prog.dims(); ++d) {
    out += str_cat(indent, "for (int r", d, " = 0; r", d, " < kGridExtent", d,
                   "; r", d, " += kRegionExtent", d, ") {\n");
    indent += "  ";
  }
  out += str_cat(indent,
                 "// bind ping-pong buffers and enqueue the region's ",
                 ctx.kernel_count(), " kernels\n");
  for (int k = 0; k < ctx.kernel_count(); ++k) {
    out += str_cat(indent, "{\n");
    out += str_cat(indent, "  int arg = 0;\n");
    for (int f = 0; f < prog.field_count(); ++f) {
      const std::string n = prog.field(f).name;
      if (prog.is_constant_field(f)) {
        out += str_cat(indent, "  CHECK(clSetKernelArg(k", k,
                       ", arg++, sizeof(cl_mem), &", n, "_a));\n");
      } else {
        out += str_cat(indent, "  cl_mem ", n,
                       "_src = pass_parity == 0 ? ", n, "_a : ", n, "_b;\n");
        out += str_cat(indent, "  cl_mem ", n,
                       "_dst = pass_parity == 0 ? ", n, "_b : ", n, "_a;\n");
        out += str_cat(indent, "  CHECK(clSetKernelArg(k", k,
                       ", arg++, sizeof(cl_mem), &", n, "_src));\n");
        out += str_cat(indent, "  CHECK(clSetKernelArg(k", k,
                       ", arg++, sizeof(cl_mem), &", n, "_dst));\n");
      }
    }
    for (int d = 0; d < prog.dims(); ++d) {
      out += str_cat(indent, "  CHECK(clSetKernelArg(k", k,
                     ", arg++, sizeof(int), &r", d, "));\n");
    }
    out += str_cat(indent, "  CHECK(clSetKernelArg(k", k,
                   ", arg++, sizeof(int), &pass_h));\n");
    out += str_cat(indent, "  CHECK(clEnqueueTask(queue, k", k,
                   ", 0, nullptr, nullptr));\n");
    out += str_cat(indent, "}\n");
  }
  out += str_cat(indent,
                 "CHECK(clFinish(queue));  // inter-kernel synchronization "
                 "barrier\n");
  for (int d = prog.dims() - 1; d >= 0; --d) {
    indent = indent.substr(0, indent.size() - 2);
    out += indent + "}\n";
  }
  out += R"(    pass_parity ^= 1;
  }

  // read back the final state (elided: clEnqueueReadBuffer per field)
  clReleaseCommandQueue(queue);
  clReleaseContext(context);
  return 0;
}
)";
  return out;
}

}  // namespace

GeneratedCode generate_opencl(const StencilProgram& program,
                              const sim::DesignConfig& config,
                              const fpga::DeviceSpec& device) {
  const auto span =
      scl::support::obs::tracer().span("codegen/emit", "codegen");
  const GenContext ctx = GenContext::create(program, config, device);
  const std::vector<PipeDecl> pipes = enumerate_pipes(ctx);

  GeneratedCode out;
  // Distinct kernel functions in the emitted source: the temporal cascade
  // is one text whose R compute units are stamped at link time (--nk),
  // while pipe-tiling replicas own distinct pipe-wired kernel texts.
  out.kernel_count =
      config.family == arch::DesignFamily::kTemporalShift
          ? 1
          : ctx.kernel_count();
  out.pipe_count = static_cast<int>(pipes.size());

  std::string src;
  src += str_cat("// Generated by stencilcl — ", program.name(), "\n// ",
                 config.summary(program.dims()), "\n// Target device: ",
                 device.name, "\n\n");
  src += render_global_index_macro(ctx);
  if (config.family == arch::DesignFamily::kTemporalShift) {
    // Single pipe-free cascade kernel; the host sweep is unchanged.
    src += "\n";
    src += render_temporal_kernel(ctx);
    src += "\n";
  } else {
    src += "\n// data-sharing pipes (one read + one write pipe per adjacent "
           "kernel pair)\n";
    src += render_pipe_declarations(pipes);
    src += "\n";
    for (int k = 0; k < ctx.kernel_count(); ++k) {
      src += render_kernel(ctx, k);
      src += "\n";
    }
  }
  out.kernel_source = std::move(src);
  out.host_source = render_host(ctx, pipes);

  std::string script;
  script += str_cat(
      "#!/usr/bin/env bash\n"
      "# SDAccel build for the generated ", program.name(),
      " accelerator (", device.name, ", ",
      static_cast<int>(device.clock_mhz), " MHz).\n"
      "set -euo pipefail\n\n"
      "PLATFORM=${PLATFORM:-xilinx_adm-pcie-7v3_1ddr_3_0}\n\n"
      "xocc -t hw --platform \"$PLATFORM\" \\\n"
      "  --kernel_frequency ", static_cast<int>(device.clock_mhz), " \\\n");
  if (config.family == arch::DesignFamily::kTemporalShift) {
    // Pipe-free cascade: compute-unit replication at link time is safe
    // (no channel endpoints to disambiguate) and serves all R replicas.
    script += str_cat("  --nk stencil_k0:", config.replication, " \\\n");
  } else {
    for (int k = 0; k < ctx.kernel_count(); ++k) {
      script += str_cat("  --nk stencil_k", k, ":1 \\\n");
    }
  }
  script +=
      "  -o stencil.xclbin stencil_kernels.cl\n\n"
      "g++ -std=c++17 -O2 stencil_host.cpp -lOpenCL -o stencil_host\n";
  out.build_script = std::move(script);
  if (scl::support::obs::enabled()) {
    static auto& emits = scl::support::obs::metrics().counter(
        "scl_codegen_emits_total", "generated OpenCL source bundles");
    static auto& bytes = scl::support::obs::metrics().counter(
        "scl_codegen_source_bytes_total",
        "bytes of generated kernel + host source");
    emits.increment();
    bytes.add(static_cast<std::int64_t>(out.kernel_source.size() +
                                        out.host_source.size()));
  }
  return out;
}

}  // namespace scl::codegen
