#include "codegen/fused_op_gen.hpp"

#include "codegen/boundary_gen.hpp"
#include "stencil/formula.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::codegen {

using scl::sim::TilePlacement;
using scl::stencil::Offset;
using scl::stencil::Stage;

std::string index_macro(const GenContext& ctx, int k) {
  (void)ctx;
  return str_cat("K", k, "_IDX");
}

namespace {

/// Renders nested for-loops over `bounds` and places `body` inside.
std::string render_loop_nest(const GenContext& ctx, const LoopBounds& bounds,
                             const std::string& body, int indent) {
  const int dims = ctx.program->dims();
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out;
  for (int d = 0; d < dims; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    out += str_cat(pad, std::string(static_cast<std::size_t>(2 * d), ' '),
                   "for (int i", d, " = ", bounds.lo[ds], "; i", d, " < ",
                   bounds.hi[ds], "; ++i", d, ")",
                   d + 1 == dims ? " {\n" : "\n");
  }
  const std::string inner_pad =
      pad + std::string(static_cast<std::size_t>(2 * dims), ' ');
  for (const std::string& line : split(body, '\n')) {
    if (!line.empty()) out += inner_pad + line + "\n";
  }
  out += pad + std::string(static_cast<std::size_t>(2 * (dims - 1)), ' ') +
         "}\n";
  return out;
}

/// "buf_A[K0_IDX(i0 + 1, i1)]" style access for a read at `off`.
std::string buffer_access(const GenContext& ctx, int k, int field,
                          const Offset& off) {
  std::vector<std::string> args;
  for (int d = 0; d < ctx.program->dims(); ++d) {
    const int o = off[static_cast<std::size_t>(d)];
    if (o == 0) {
      args.push_back(str_cat("i", d));
    } else if (o > 0) {
      args.push_back(str_cat("i", d, " + ", o));
    } else {
      args.push_back(str_cat("i", d, " - ", -o));
    }
  }
  return str_cat(ctx.buffer_name(field), "[", index_macro(ctx, k), "(",
                 join(args, ", "), ")]");
}

/// "K0_IDX(i0, i1)" for the loop's current cell.
std::string cell_index(const GenContext& ctx, int k) {
  std::vector<std::string> args;
  for (int d = 0; d < ctx.program->dims(); ++d) {
    args.push_back(str_cat("i", d));
  }
  return str_cat(index_macro(ctx, k), "(", join(args, ", "), ")");
}

std::string self_access(const GenContext& ctx, int k, int field) {
  return buffer_access(ctx, k, field, Offset{0, 0, 0});
}

/// The compute statement of one stage.
std::string stage_statement(const GenContext& ctx, int k, int stage_index) {
  const Stage& stage = ctx.program->stage(stage_index);
  if (!stage.formula) {
    throw Error(str_cat("stage '", stage.name,
                        "' has no symbolic formula; build it with "
                        "make_stage() to enable code generation"));
  }
  const std::string expr = stage.formula->render(
      [&](int field, const Offset& off) {
        return buffer_access(ctx, k, field, off);
      });
  const bool shadow = ctx.program->stage_needs_double_buffer(stage_index);
  const std::string target =
      shadow ? ctx.buffer_name(stage.output_field) + "_new"
             : ctx.buffer_name(stage.output_field);
  return str_cat(target, "[", cell_index(ctx, k), "] = ", expr, ";");
}

/// Bounds of the strip of width `w` just inside (`inside`=true) or just
/// outside the tile edge across face (d, side), tangentially following
/// `base` bounds.
LoopBounds strip_bounds(const GenContext& ctx, int k, const LoopBounds& base,
                        int d, int side, std::int64_t w, bool inside) {
  LoopBounds out = base;
  const auto ds = static_cast<std::size_t>(d);
  const std::string edge = tile_edge_expr(ctx, k, d, side);
  if (side == 0) {
    if (inside) {
      out.lo[ds] = edge;
      out.hi[ds] = str_cat("(", edge, " + ", w, ")");
    } else {
      out.lo[ds] = str_cat("(", edge, " - ", w, ")");
      out.hi[ds] = edge;
    }
  } else {
    if (inside) {
      out.lo[ds] = str_cat("(", edge, " - ", w, ")");
      out.hi[ds] = edge;
    } else {
      out.lo[ds] = edge;
      out.hi[ds] = str_cat("(", edge, " + ", w, ")");
    }
  }
  return out;
}

}  // namespace

std::string render_fused_iterations(const GenContext& ctx, int k) {
  const auto& prog = *ctx.program;
  const TilePlacement& tile = ctx.tile(k);
  std::string out;
  out += "  for (int it = 1; it <= pass_h; ++it) {\n";

  for (int s = 0; s < prog.stage_count(); ++s) {
    const Stage& stage = prog.stage(s);
    const LoopBounds bounds = stage_compute_bounds(ctx, k, s);
    const std::string statement = stage_statement(ctx, k, s);
    out += str_cat("    // ---- stage ", s, ": ", stage.name, " ----\n");

    // Interior (independent) cells first: bounds inset by the stage's
    // read radius on pipe-shared faces, so no cell below touches a halo
    // that is still in flight (paper SS3.1 latency hiding).
    LoopBounds interior = bounds;
    bool has_dependent = false;
    for (int d = 0; d < prog.dims(); ++d) {
      const auto ds = static_cast<std::size_t>(d);
      for (int side = 0; side < 2; ++side) {
        if (tile.exterior[ds][static_cast<std::size_t>(side)]) continue;
        const std::int64_t rho =
            prog.stage_radii(s)[ds][static_cast<std::size_t>(side)];
        if (rho == 0) continue;
        has_dependent = true;
        const std::string edge = tile_edge_expr(ctx, k, d, side);
        if (side == 0) {
          interior.lo[ds] = str_cat("(", edge, " + ", rho, ")");
        } else {
          interior.hi[ds] = str_cat("(", edge, " - ", rho, ")");
        }
      }
    }
    out += "    // independent cells\n";
    out += render_loop_nest(ctx, interior, statement, 4);

    // Dependent cells: one strip per inset face.
    if (has_dependent) {
      out += "    // dependent (boundary) cells\n";
      LoopBounds rem = bounds;
      for (int d = 0; d < prog.dims(); ++d) {
        const auto ds = static_cast<std::size_t>(d);
        for (int side = 0; side < 2; ++side) {
          if (tile.exterior[ds][static_cast<std::size_t>(side)]) continue;
          const std::int64_t rho =
              prog.stage_radii(s)[ds][static_cast<std::size_t>(side)];
          if (rho == 0) continue;
          const LoopBounds strip =
              strip_bounds(ctx, k, rem, d, side, rho, /*inside=*/true);
          out += render_loop_nest(ctx, strip, statement, 4);
          const std::string edge = tile_edge_expr(ctx, k, d, side);
          if (side == 0) {
            rem.lo[ds] = str_cat("(", edge, " + ", rho, ")");
          } else {
            rem.hi[ds] = str_cat("(", edge, " - ", rho, ")");
          }
        }
      }
    }

    // Commit the shadow copy for double-buffered stages.
    if (prog.stage_needs_double_buffer(s)) {
      out += "    // commit double-buffered output\n";
      const std::string idx = cell_index(ctx, k);
      const std::string commit =
          str_cat(ctx.buffer_name(stage.output_field), "[", idx, "] = ",
                  ctx.buffer_name(stage.output_field), "_new[", idx, "];");
      out += render_loop_nest(ctx, bounds, commit, 4);
    }

    // Symmetric per-stage pipe exchange of the stage output's boundary
    // strips: push ours, then pull the neighbor's into the halo.
    const int f = stage.output_field;
    for (int d = 0; d < prog.dims(); ++d) {
      const auto ds = static_cast<std::size_t>(d);
      for (int side = 0; side < 2; ++side) {
        if (tile.exterior[ds][static_cast<std::size_t>(side)]) continue;
        const int nb = ctx.neighbor_index(tile, d, side);
        const auto opp = static_cast<std::size_t>(side == 0 ? 1 : 0);
        const std::int64_t w_send = prog.field_read_radii(f)[ds][opp];
        if (w_send > 0) {
          out += str_cat("    // send ", prog.field(f).name,
                         " boundary to kernel ", nb, "\n");
          const LoopBounds strip =
              strip_bounds(ctx, k, bounds, d, side, w_send, /*inside=*/true);
          const std::string body =
              str_cat("float v = ", self_access(ctx, k, f),
                      ";\nwrite_pipe_block(",
                      ctx.pipe_name(tile.kernel_index, nb), ", &v);");
          out += render_loop_nest(ctx, strip, body, 4);
        }
        const std::int64_t w_recv = prog.field_read_radii(f)[ds][side];
        if (w_recv > 0) {
          out += str_cat("    // receive ", prog.field(f).name,
                         " halo from kernel ", nb, "\n");
          const LoopBounds strip = strip_bounds(ctx, k, bounds, d, side,
                                                w_recv, /*inside=*/false);
          const std::string body =
              str_cat("float v;\nread_pipe_block(",
                      ctx.pipe_name(nb, tile.kernel_index), ", &v);\n",
                      self_access(ctx, k, f), " = v;");
          out += render_loop_nest(ctx, strip, body, 4);
        }
      }
    }
  }

  out += "  }\n";
  return out;
}

}  // namespace scl::codegen
