// Structural validator for generated sources.
//
// Not a compiler: a fast token-level checker that catches the classes of
// generator bugs that matter — unbalanced delimiters, unexpanded formula
// placeholders, pipes that are declared but never used (or used but never
// declared), and mismatched read/write pipe pairing.
#pragma once

#include <string>
#include <vector>

namespace scl::codegen {

struct ValidationIssue {
  std::string message;
};

/// Checks a generated kernel translation unit. Returns the list of
/// problems found (empty = clean).
std::vector<ValidationIssue> validate_kernel_source(const std::string& src);

/// Checks generated host source (delimiters and placeholders only).
std::vector<ValidationIssue> validate_host_source(const std::string& src);

}  // namespace scl::codegen
