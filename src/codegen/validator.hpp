// Structural validator for generated sources.
//
// Not a compiler: a fast token-level checker that catches the classes of
// generator bugs that matter — unbalanced delimiters, unexpanded formula
// placeholders, pipes that are declared but never used (or used but never
// declared), and broken point-to-point pipe pairing (a pipe must be
// written by exactly one kernel and read by exactly one *other* kernel).
//
// Problems are reported as support::Diagnostic entries with SCL0xx codes:
//
//   SCL001  unbalanced delimiters          SCL002  unexpanded placeholder
//   SCL010  pipe declared, never written   SCL011  pipe declared, never read
//   SCL012  pipe written, not declared     SCL013  pipe read, not declared
//   SCL014  pipe written by >1 kernel      SCL015  pipe read by >1 kernel
//   SCL016  pipe read and written by the same kernel
#pragma once

#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace scl::codegen {

/// Checks a generated kernel translation unit. Returns the list of
/// problems found (empty = clean).
std::vector<support::Diagnostic> validate_kernel_source(
    const std::string& src);

/// Checks generated host source (delimiters and placeholders only).
std::vector<support::Diagnostic> validate_host_source(const std::string& src);

}  // namespace scl::codegen
