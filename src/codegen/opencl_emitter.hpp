// Top-level OpenCL code emitter.
//
// Assembles the three generated parts (stencil boundary, data-sharing
// pipes, fused stencil operation) into a complete kernel translation unit
// for the Xilinx SDAccel flow, plus a matching host program that walks the
// region sweep with ping-ponged global buffers.
#pragma once

#include <string>

#include "codegen/context.hpp"

namespace scl::codegen {

struct GeneratedCode {
  std::string kernel_source;  ///< the .cl translation unit
  std::string host_source;    ///< the host-side .cpp
  std::string build_script;   ///< xocc/g++ commands for the SDAccel flow
  int kernel_count = 0;
  int pipe_count = 0;
};

/// Generates kernel and host sources for `config` running `program`.
/// Throws scl::Error when a stage lacks a symbolic formula.
GeneratedCode generate_opencl(const scl::stencil::StencilProgram& program,
                              const sim::DesignConfig& config,
                              const fpga::DeviceSpec& device);

}  // namespace scl::codegen
