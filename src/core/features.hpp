// Feature extractor (paper §5.1, Figure 5).
//
// Analyzes a StencilProgram and produces the application-specific
// configuration the performance optimizer consumes: stencil shape radii,
// dimensionality, operation mix, per-iteration cone growth (Δw_d), field
// structure, and the HLS pipeline estimate.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "fpga/hls.hpp"
#include "stencil/program.hpp"

namespace scl::core {

struct StencilFeatures {
  std::string name;
  int dims = 0;
  std::array<std::int64_t, 3> extents{1, 1, 1};
  std::int64_t iterations = 0;

  int field_count = 0;
  int mutable_field_count = 0;
  int stage_count = 0;
  bool multi_stage = false;
  bool needs_double_buffer = false;

  scl::stencil::OpCounts ops_per_cell;
  scl::stencil::SideRadii iter_radii{};
  std::array<std::int64_t, 3> delta_w{0, 0, 0};

  /// HLS estimate at unroll 1 (II scales trivially with N_PE).
  fpga::HlsEstimate hls;

  /// Arithmetic intensity proxy: flops per byte moved per naive iteration.
  double flops_per_byte = 0.0;

  std::string to_string() const;
};

/// Runs source-code analysis over the declarative program.
StencilFeatures extract_features(const scl::stencil::StencilProgram& program);

}  // namespace scl::core
