// Streaming latency/resource Pareto front (paper §5: the DSE reports the
// latency-optimal design, but the BRAM18 trade-off curve is what a user
// tuning resource_fraction actually needs).
//
// The front is two-axis: predicted cycles (via design_order, which breaks
// latency ties with the resource vector and config key, making membership
// deterministic) against total BRAM18 blocks. A point p is dominated when
// some q precedes it in design_order with bram18(q) <= bram18(p) — the
// same staircase Optimizer::pareto_frontier() produces by sorting and
// scanning, but maintained incrementally so the optimizer can retain the
// frontier of every point it evaluates without keeping them all alive.
//
// Invariant: points() is design_order-sorted with strictly decreasing
// bram18. Insertion order does not affect the final set (see
// ParetoFrontMatchesBatchReference in tests/dse_prune_test.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "core/design_point.hpp"

namespace scl::core {

class ParetoFront {
 public:
  /// Offers a point to the front. Returns true when the point joins it
  /// (evicting any members it newly dominates); false when an existing
  /// member dominates it or an identical config is already present.
  bool insert(const DesignPoint& point);

  /// The frontier, design_order-sorted (ascending cycles, strictly
  /// decreasing bram18).
  const std::vector<DesignPoint>& points() const { return points_; }

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  void clear() { points_.clear(); }

 private:
  std::vector<DesignPoint> points_;
};

}  // namespace scl::core
