// Memoizing evaluation cache for design-space exploration.
//
// Candidate evaluation (analytical prediction + whole-design resource
// estimation) is a pure function of the DesignConfig, so results are
// memoized under the config's canonical DesignKey. Hits come from the
// overlap between search phases — optimize_baseline() and the Pareto
// sweep walk the same feasible set, the heterogeneous search revisits the
// baseline's fusion column, and fused-depth sweeps (bench_fig7) re-touch
// DSE points — and from repeated evaluate() calls in user sweeps.
//
// Thread safety: the hot read path is lock-free. Entries live in an
// open-addressed slot table; each slot carries an atomic state word
// `(epoch << 2) | phase` with phase ∈ {empty, busy, ready}. A writer
// CAS-claims an empty (or stale-epoch) slot to `busy`, fills the full
// 96-byte key plus the value, then release-stores `ready`; a reader
// acquire-loads the state word and only touches the (immutable once
// ready) key/value bytes after observing `ready` in the current epoch,
// so no lock and no data race is involved in a hit. Readers treat a
// `busy` slot as a miss — the duplicate compute is benign because values
// are pure — while writers spin (with yield) on `busy` so insert() can
// dedupe exactly and size() stays precise. When a bounded linear probe
// window fills up, entries spill to a small sharded-mutex overflow map;
// correctness is unaffected, only that (rare) path takes a lock.
//
// clear() bumps the epoch, which logically empties every slot in O(1);
// it requires external quiescence (no concurrent cache calls), matching
// how the engine uses it (reset between runs, never mid-search).
//
// Memoization cannot perturb results (values are pure); when two workers
// race to fill the same key, the first writer wins and both observe the
// identical value.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/resource_estimator.hpp"
#include "model/perf_model.hpp"
#include "sim/design.hpp"

namespace scl::core {

/// One memoized evaluation: the per-candidate sub-results the engine
/// would otherwise recompute — the region decomposition (inside the
/// prediction) and the resource vectors.
struct CachedEvaluation {
  model::Prediction prediction;
  DesignResources resources;
  /// Error diagnostics the static design verifier reported for this
  /// config; 0 unless the engine runs with analyze_candidates. Pure in
  /// the config like the rest of the evaluation, hence cacheable.
  std::int64_t analysis_errors = 0;
};

class EvalCache {
 public:
  /// `capacity` is the slot-table size, rounded up to a power of two.
  /// The default holds a full suite-kernel sweep without spilling to the
  /// locked overflow map.
  explicit EvalCache(std::size_t capacity = std::size_t{1} << 16);

  /// Returns the cached evaluation for `key`, or runs `compute`, stores
  /// its result, and returns it. `compute` may run concurrently for the
  /// same key under a race; both callers get the same (pure) value.
  /// Templated so the hot path pays no std::function type erasure.
  template <typename Fn>
  CachedEvaluation find_or_compute(const sim::DesignKey& key, Fn&& compute) {
    CachedEvaluation cached;
    if (lookup(key, &cached)) return cached;
    cached = compute();
    insert(key, cached);
    return cached;
  }

  /// True plus the value when `key` is resident (counts as a hit or miss).
  /// Lock-free: probes atomic slot states; a slot mid-insert reads as a
  /// miss.
  bool lookup(const sim::DesignKey& key, CachedEvaluation* out);

  /// Inserts (first writer wins); returns false when already resident.
  bool insert(const sim::DesignKey& key, const CachedEvaluation& value);

  std::int64_t hits() const;
  std::int64_t misses() const;
  std::int64_t size() const { return size_.load(std::memory_order_relaxed); }
  double hit_rate() const;

  /// Logically empties the cache (O(1) epoch bump) and zeroes counters.
  /// Requires quiescence: no concurrent cache calls.
  void clear();

 private:
  // Slot phases, packed into the low 2 bits of the state word; the
  // remaining bits carry the epoch the slot was filled in.
  static constexpr std::uint64_t kEmpty = 0;
  static constexpr std::uint64_t kBusy = 1;
  static constexpr std::uint64_t kReady = 2;
  /// Linear-probe window before spilling to the overflow map.
  static constexpr std::size_t kMaxProbe = 32;
  static constexpr std::size_t kStatShards = 16;
  static constexpr std::size_t kOverflowShards = 16;

  struct Slot {
    std::atomic<std::uint64_t> state{0};
    sim::DesignKey key{};
    CachedEvaluation value{};
  };

  // Hit/miss tallies are sharded by worker slot and cache-line padded so
  // the hot path never bounces one shared counter between cores.
  struct alignas(64) StatShard {
    std::atomic<std::int64_t> hits{0};
    std::atomic<std::int64_t> misses{0};
  };

  struct OverflowShard {
    std::mutex mutex;
    std::unordered_map<sim::DesignKey, CachedEvaluation, sim::DesignKeyHash>
        map;
  };

  void count_hit();
  void count_miss();
  OverflowShard& overflow_for(std::size_t hash);

  std::vector<Slot> slots_;
  std::size_t slot_mask_ = 0;
  std::atomic<std::uint64_t> epoch_{0};
  std::vector<std::unique_ptr<OverflowShard>> overflow_;
  std::atomic<std::int64_t> size_{0};
  StatShard stats_[kStatShards];
};

}  // namespace scl::core
