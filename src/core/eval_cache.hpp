// Memoizing evaluation cache for design-space exploration.
//
// Candidate evaluation (analytical prediction + whole-design resource
// estimation) is a pure function of the DesignConfig, so results are
// memoized under the config's canonical DesignKey. Hits come from the
// overlap between search phases — optimize_baseline() and the Pareto
// sweep walk the same feasible set, the heterogeneous search revisits the
// baseline's fusion column, and fused-depth sweeps (bench_fig7) re-touch
// DSE points — and from repeated evaluate() calls in user sweeps.
//
// Thread safety: the table is sharded by key hash, each shard behind its
// own mutex, so pool workers probe concurrently with little contention.
// Memoization cannot perturb results (values are pure); when two workers
// race to fill the same key, the first insert wins and both observe the
// identical value.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/resource_estimator.hpp"
#include "model/perf_model.hpp"
#include "sim/design.hpp"

namespace scl::core {

/// One memoized evaluation: the per-candidate sub-results the engine
/// would otherwise recompute — the region decomposition (inside the
/// prediction) and the resource vectors.
struct CachedEvaluation {
  model::Prediction prediction;
  DesignResources resources;
  /// Error diagnostics the static design verifier reported for this
  /// config; 0 unless the engine runs with analyze_candidates. Pure in
  /// the config like the rest of the evaluation, hence cacheable.
  std::int64_t analysis_errors = 0;
};

class EvalCache {
 public:
  /// `shard_count` is rounded up to a power of two; defaults suit up to
  /// ~64 worker threads.
  explicit EvalCache(std::size_t shard_count = 64);

  /// Returns the cached evaluation for `key`, or runs `compute`, stores
  /// its result, and returns it. `compute` may run concurrently for the
  /// same key under a race; both callers get the same (pure) value.
  CachedEvaluation find_or_compute(
      const sim::DesignKey& key,
      const std::function<CachedEvaluation()>& compute);

  /// True plus the value when `key` is resident (counts as a hit or miss).
  bool lookup(const sim::DesignKey& key, CachedEvaluation* out);

  /// Inserts (first writer wins); returns false when already resident.
  bool insert(const sim::DesignKey& key, const CachedEvaluation& value);

  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::int64_t size() const;
  double hit_rate() const;

  void clear();

 private:
  struct Shard {
    std::mutex mutex;
    std::unordered_map<sim::DesignKey, CachedEvaluation, sim::DesignKeyHash>
        map;
  };

  Shard& shard_for(const sim::DesignKey& key);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_mask_ = 0;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
};

}  // namespace scl::core
