// Design-space enumeration (paper §5.1), split out of the optimizer.
//
// CandidateSpace is a pure generator: given the program and the optimizer
// options it produces the candidate axes (parallelism arrangements, tile
// shapes, fusion depths) and the composed DesignConfig sequences the
// evaluation engine walks. It owns no models and performs no evaluation,
// so enumeration order — which the deterministic DSE contract depends
// on — is testable in isolation.
//
// Enumeration order is part of the contract: chains are emitted
// replication-major (spatial PE copies, ascending), then parallelism,
// then unroll, then tile shape, with fusion depth ascending inside each
// chain. The serial and the parallel evaluation paths both consume this
// exact order. On single-bank (DDR) devices the replication axis is the
// singleton {1}, so their enumeration order — and hence every DDR
// optimum — is bit-identical to the pre-replication space.
//
// Cross-family tie-break. With two design families in the space
// (arch/family.hpp), order stability must also hold *across* families:
// when a pipe-tiling and a temporal-shift design predict identical cost
// vectors, the winner must not depend on which family's search ran
// first or on evaluation thread count. The contract is: the family word
// leads the DesignKey (sim/design.cpp), kPipeTiling = 0 before
// kTemporalShift = 1, so the deterministic ordering
// (core::design_order's final key comparison) always prefers the
// pipe-tiling design on exact ties. temporal_chains() follows the same
// per-family shape as chains(): unroll-major (vector width V), then
// strip width ascending, temporal degree T ascending inside each chain.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/design.hpp"
#include "stencil/program.hpp"

namespace scl::core {

struct OptimizerOptions;

/// One maximal run of candidates that differ only in fusion depth h,
/// ascending. Resource use grows monotonically with h (cone buffers), so
/// the evaluator stops a chain at its first over-budget depth; everything
/// after it is infeasible too.
struct CandidateChain {
  std::vector<sim::DesignConfig> configs;
};

class CandidateSpace {
 public:
  CandidateSpace(const scl::stencil::StencilProgram& program,
                 const OptimizerOptions& options);

  /// Parallelism arrangements (K_d per dimension, product <= max_kernels).
  std::vector<std::array<int, 3>> parallelism_candidates() const;

  /// Spatial replication factors R to explore, ascending. Resolves
  /// OptimizerOptions::replication_candidates; empty derives from the
  /// device bank count ({1} for single-bank devices).
  std::vector<int> replication_factors() const;

  /// Candidate tile extents along dimension d (clamped to the grid).
  std::vector<std::int64_t> tile_candidates_for_dim(int d) const;

  /// Per-dimension tile extents to explore: uniform shapes, plus (for 3-D
  /// stencils) variants with the outermost dimension halved or quartered —
  /// the flattened-tile shapes the paper's Table 3 favors (16x32x32).
  std::vector<std::array<std::int64_t, 3>> tile_shape_candidates() const;

  /// Fusion depths h to explore (filtered to <= program iterations).
  std::vector<std::int64_t> fusion_candidates() const;

  /// Every (parallelism, unroll, tile-shape) combination of `kind` as a
  /// chain over the fusion depths, in the contract enumeration order.
  std::vector<CandidateChain> chains(sim::DesignKind kind) const;

  /// Strip widths for the temporal-shift family: the innermost-dimension
  /// tile candidates plus the full grid extent (the StencilStream
  /// "monotile" point), ascending.
  std::vector<std::int64_t> strip_candidates() const;

  /// Temporal degrees T: the fusion depths restricted to divisors of the
  /// iteration count (a fixed-depth cascade cannot run a partial pass).
  std::vector<std::int64_t> temporal_degree_candidates() const;

  /// The temporal-shift family (arch/family.hpp): every (vector width,
  /// strip width) combination as a chain over the temporal degrees,
  /// ascending. Shift-register size and unroll grow monotonically with T,
  /// so the evaluator's first-over-budget chain cut stays valid.
  std::vector<CandidateChain> temporal_chains() const;

  /// The heterogeneous search derived from a chosen baseline (§5.4):
  /// parallelism/unroll/tile pinned, fusion depth x balancing shrink
  /// varying. Shrink is applied only along dimensions that can rebalance
  /// (K_d >= 3 with interior tiles to absorb the released cells); grid
  /// points whose shrink collapses to the shrink=0 candidate are skipped.
  std::vector<sim::DesignConfig> heterogeneous_candidates(
      const sim::DesignConfig& baseline) const;

  /// Total configs across chains(kind) — the upper bound on evaluations.
  std::int64_t chain_config_count(sim::DesignKind kind) const;

  /// Half-open chain index range [first, second) forming one evaluation
  /// block.
  using ChainBlock = std::pair<std::size_t, std::size_t>;

  /// Partitions `chains` into contiguous blocks holding at least
  /// `grain_configs` candidates each (the last block may be smaller, and
  /// a single oversized chain forms its own block). Pure function of the
  /// inputs, so the engine's chunked chain walk keeps the contract
  /// enumeration order per block.
  static std::vector<ChainBlock> blocks(
      const std::vector<CandidateChain>& chains, std::int64_t grain_configs);

 private:
  const scl::stencil::StencilProgram* program_;
  const OptimizerOptions* options_;
};

}  // namespace scl::core
