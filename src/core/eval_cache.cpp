#include "core/eval_cache.hpp"

#include <thread>

#include "support/error.hpp"
#include "support/observability/observability.hpp"
#include "support/thread_pool.hpp"

namespace scl::core {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

support::obs::Counter& cache_hits_counter() {
  static auto& counter = support::obs::metrics().counter(
      "scl_dse_cache_hits_total", "eval-cache lookups served memoized");
  return counter;
}

support::obs::Counter& cache_misses_counter() {
  static auto& counter = support::obs::metrics().counter(
      "scl_dse_cache_misses_total", "eval-cache lookups that computed");
  return counter;
}

}  // namespace

EvalCache::EvalCache(std::size_t capacity)
    : slots_(round_up_pow2(capacity < 2 ? 2 : capacity)) {
  SCL_CHECK(capacity >= 1, "eval cache needs at least one slot");
  slot_mask_ = slots_.size() - 1;
  overflow_.reserve(kOverflowShards);
  for (std::size_t i = 0; i < kOverflowShards; ++i) {
    overflow_.push_back(std::make_unique<OverflowShard>());
  }
}

EvalCache::OverflowShard& EvalCache::overflow_for(std::size_t hash) {
  // The slot table consumes the low hash bits; shard on high bits.
  return *overflow_[(hash >> 32) & (kOverflowShards - 1)];
}

void EvalCache::count_hit() {
  stats_[static_cast<std::size_t>(ThreadPool::worker_slot()) &
         (kStatShards - 1)]
      .hits.fetch_add(1, std::memory_order_relaxed);
  if (support::obs::enabled()) cache_hits_counter().increment();
}

void EvalCache::count_miss() {
  stats_[static_cast<std::size_t>(ThreadPool::worker_slot()) &
         (kStatShards - 1)]
      .misses.fetch_add(1, std::memory_order_relaxed);
  if (support::obs::enabled()) cache_misses_counter().increment();
}

bool EvalCache::lookup(const sim::DesignKey& key, CachedEvaluation* out) {
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  const std::size_t start = sim::DesignKeyHash{}(key);
  for (std::size_t p = 0; p < kMaxProbe; ++p) {
    const Slot& slot = slots_[(start + p) & slot_mask_];
    const std::uint64_t s = slot.state.load(std::memory_order_acquire);
    const std::uint64_t phase = s & 3u;
    if (phase == kEmpty || (s >> 2) != epoch) {
      // Empty, or filled in a cleared-away epoch (logically empty).
      // Slots never empty out within an epoch, so the key cannot sit
      // further along the probe chain either — definite miss.
      count_miss();
      return false;
    }
    if (phase == kBusy) {
      // Mid-insert by another worker. Reporting a miss here is benign:
      // evaluations are pure, so the duplicate compute converges on the
      // identical value and insert() dedupes it.
      count_miss();
      return false;
    }
    // Ready in the current epoch: the key/value bytes are immutable
    // until the next clear(), and the acquire above synchronizes with
    // the writer's release, so this read is race-free without a lock.
    if (slot.key == key) {
      *out = slot.value;
      count_hit();
      return true;
    }
  }
  // The whole probe window is occupied by other keys: the entry, if it
  // exists, spilled to the overflow map.
  OverflowShard& shard = overflow_for(start);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    count_miss();
    return false;
  }
  *out = it->second;
  count_hit();
  return true;
}

bool EvalCache::insert(const sim::DesignKey& key,
                       const CachedEvaluation& value) {
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  const std::uint64_t busy_word = (epoch << 2) | kBusy;
  const std::uint64_t ready_word = (epoch << 2) | kReady;
  const std::size_t start = sim::DesignKeyHash{}(key);
  for (std::size_t p = 0; p < kMaxProbe; ++p) {
    Slot& slot = slots_[(start + p) & slot_mask_];
    std::uint64_t s = slot.state.load(std::memory_order_acquire);
    while (true) {
      const std::uint64_t phase = s & 3u;
      const bool current = (s >> 2) == epoch;
      if (phase == kEmpty || !current) {
        // Claimable: empty, or left over from a cleared-away epoch.
        if (slot.state.compare_exchange_weak(s, busy_word,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
          slot.key = key;
          slot.value = value;
          slot.state.store(ready_word, std::memory_order_release);
          size_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        continue;  // CAS failure reloaded `s`; re-examine.
      }
      if (phase == kBusy) {
        // Another writer owns this slot; wait it out so the same-key
        // check below is exact (this is what keeps size() precise when
        // workers race on one key).
        std::this_thread::yield();
        s = slot.state.load(std::memory_order_acquire);
        continue;
      }
      // Ready in the current epoch.
      if (slot.key == key) return false;  // first writer already won
      break;  // occupied by a different key — next probe position
    }
  }
  OverflowShard& shard = overflow_for(start);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const bool inserted = shard.map.emplace(key, value).second;
  if (inserted) size_.fetch_add(1, std::memory_order_relaxed);
  return inserted;
}

std::int64_t EvalCache::hits() const {
  std::int64_t total = 0;
  for (const StatShard& s : stats_) {
    total += s.hits.load(std::memory_order_relaxed);
  }
  return total;
}

std::int64_t EvalCache::misses() const {
  std::int64_t total = 0;
  for (const StatShard& s : stats_) {
    total += s.misses.load(std::memory_order_relaxed);
  }
  return total;
}

double EvalCache::hit_rate() const {
  const double h = static_cast<double>(hits());
  const double m = static_cast<double>(misses());
  return h + m > 0.0 ? h / (h + m) : 0.0;
}

void EvalCache::clear() {
  // Bumping the epoch makes every slot's state word stale, which readers
  // and writers treat as empty: an O(1) wipe of the slot table. Requires
  // quiescence (documented), so no reader can be mid-copy of a value a
  // later insert overwrites.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (const auto& shard : overflow_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->map.clear();
  }
  size_.store(0, std::memory_order_relaxed);
  for (StatShard& s : stats_) {
    s.hits.store(0, std::memory_order_relaxed);
    s.misses.store(0, std::memory_order_relaxed);
  }
}

}  // namespace scl::core
