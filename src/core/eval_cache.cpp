#include "core/eval_cache.hpp"

#include "support/error.hpp"
#include "support/observability/observability.hpp"

namespace scl::core {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

support::obs::Counter& cache_hits_counter() {
  static auto& counter = support::obs::metrics().counter(
      "scl_dse_cache_hits_total", "eval-cache lookups served memoized");
  return counter;
}

support::obs::Counter& cache_misses_counter() {
  static auto& counter = support::obs::metrics().counter(
      "scl_dse_cache_misses_total", "eval-cache lookups that computed");
  return counter;
}

}  // namespace

EvalCache::EvalCache(std::size_t shard_count) {
  SCL_CHECK(shard_count >= 1, "eval cache needs at least one shard");
  const std::size_t n = round_up_pow2(shard_count);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = n - 1;
}

EvalCache::Shard& EvalCache::shard_for(const sim::DesignKey& key) {
  const std::size_t h = sim::DesignKeyHash{}(key);
  // The map reuses the low hash bits for bucketing; shard on high bits.
  return *shards_[(h >> 32) & shard_mask_];
}

bool EvalCache::lookup(const sim::DesignKey& key, CachedEvaluation* out) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (support::obs::enabled()) cache_misses_counter().increment();
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (support::obs::enabled()) cache_hits_counter().increment();
  *out = it->second;
  return true;
}

bool EvalCache::insert(const sim::DesignKey& key,
                       const CachedEvaluation& value) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.map.emplace(key, value).second;
}

CachedEvaluation EvalCache::find_or_compute(
    const sim::DesignKey& key,
    const std::function<CachedEvaluation()>& compute) {
  CachedEvaluation cached;
  if (lookup(key, &cached)) return cached;
  cached = compute();
  insert(key, cached);
  return cached;
}

std::int64_t EvalCache::size() const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += static_cast<std::int64_t>(shard->map.size());
  }
  return total;
}

double EvalCache::hit_rate() const {
  const double h = static_cast<double>(hits());
  const double m = static_cast<double>(misses());
  return h + m > 0.0 ? h / (h + m) : 0.0;
}

void EvalCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace scl::core
