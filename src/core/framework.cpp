#include "core/framework.hpp"

#include "core/verify.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/observability/observability.hpp"
#include "support/strings.hpp"

namespace scl::core {

std::string to_string(FamilySelection family) {
  switch (family) {
    case FamilySelection::kAuto:
      return "auto";
    case FamilySelection::kPipeTiling:
      return "pipe-tiling";
    case FamilySelection::kTemporalShift:
      return "temporal-shift";
  }
  return "?";
}

Framework::Framework(const scl::stencil::StencilProgram& program,
                     FrameworkOptions options)
    : program_(&program),
      options_(std::move(options)),
      optimizer_(program, options_.optimizer) {}

SynthesisReport Framework::synthesize() const {
  const auto synth_span =
      support::obs::tracer().span("core/synthesize", "core");
  SynthesisReport report;
  report.features = extract_features(*program_);
  report.device = options_.optimizer.device;
  SCL_INFO() << "features: " << report.features.to_string();

  {
    const auto span = support::obs::tracer().span("dse/baseline", "dse");
    report.baseline = optimizer_.optimize_baseline();
  }
  SCL_INFO() << "baseline: "
             << report.baseline.config.summary(program_->dims());
  {
    const auto span =
        support::obs::tracer().span("dse/heterogeneous", "dse");
    try {
      report.heterogeneous =
          optimizer_.optimize_heterogeneous(report.baseline);
    } catch (const ResourceError&) {
      // On banked parts the baseline winner may already spend the BRAM
      // budget on spatial replication, leaving no pipe redistribution
      // inside the cap. The degenerate redistribution — the baseline
      // itself — then stands as the pipe-tiling representative.
      report.heterogeneous = report.baseline;
    }
  }
  SCL_INFO() << "heterogeneous: "
             << report.heterogeneous.config.summary(program_->dims());

  if (options_.family != FamilySelection::kPipeTiling) {
    const auto span = support::obs::tracer().span("dse/temporal", "dse");
    try {
      report.temporal = optimizer_.optimize_temporal();
      SCL_INFO() << "temporal: "
                 << report.temporal->config.summary(program_->dims());
    } catch (const ResourceError&) {
      // No cascade fits the device. Under kAuto the pipe-tiling winner
      // simply stands; a forced temporal-only flow must fail loudly.
      if (options_.family == FamilySelection::kTemporalShift) throw;
    }
  }
  // kAuto selects the family by predicted cycles, breaking ties toward
  // the paper's pipe-tiling architecture.
  if (report.temporal &&
      (options_.family == FamilySelection::kTemporalShift ||
       report.temporal->prediction.total_cycles <
           report.heterogeneous.prediction.total_cycles)) {
    report.selected_family = arch::DesignFamily::kTemporalShift;
  }
  SCL_INFO() << "selected family: " << arch::to_string(report.selected_family);
  report.dse = optimizer_.dse_stats();
  report.frontier = optimizer_.retained_frontier();

  if (options_.analyze) {
    // Verify every selected design before spending time on simulation;
    // generated-source diagnostics are appended below once code exists.
    report.analysis.merge(verify_design(*program_, report.baseline.config,
                                        report.device,
                                        report.baseline.resources));
    report.analysis.merge(verify_design(*program_, report.heterogeneous.config,
                                        report.device,
                                        report.heterogeneous.resources));
    if (report.temporal) {
      report.analysis.merge(verify_design(*program_, report.temporal->config,
                                          report.device,
                                          report.temporal->resources));
    }
    if (options_.fail_on_analysis_error && report.analysis.has_errors()) {
      throw VerificationError(
          str_cat("design verification failed with ",
                  report.analysis.error_count(), " error(s):\n",
                  report.analysis.render_text()),
          report.analysis.diagnostics());
    }
    if (report.analysis.warning_count() > 0) {
      SCL_INFO() << "design verification: "
                 << report.analysis.warning_count() << " warning(s)";
    }
  }

  if (options_.simulate) {
    const auto span = support::obs::tracer().span("sim/simulate", "sim");
    const sim::Executor exec(options_.optimizer.device);
    report.baseline_sim = exec.run(*program_, report.baseline.config,
                                   sim::SimMode::kTimingOnly);
    report.heterogeneous_sim = exec.run(*program_, report.heterogeneous.config,
                                        sim::SimMode::kTimingOnly);
    if (report.temporal) {
      report.temporal_sim = exec.run(*program_, report.temporal->config,
                                     sim::SimMode::kTimingOnly);
    }
    report.speedup =
        static_cast<double>(report.baseline_sim.total_cycles) /
        static_cast<double>(report.heterogeneous_sim.total_cycles);
  }

  if (options_.generate_code) {
    const sim::DesignConfig& emitted = report.selected().config;
    report.code =
        codegen::generate_opencl(*program_, emitted, options_.optimizer.device);
    if (options_.analyze) {
      support::DiagnosticEngine sources;
      verify_generated_sources(report.code, &sources);
      report.ir = verify_generated_ir(*program_, emitted,
                                      report.code, &sources);
      report.analysis.merge(sources);
      if (options_.fail_on_analysis_error && sources.has_errors()) {
        throw VerificationError(
            str_cat("generated-source validation failed with ",
                    sources.error_count(), " error(s):\n",
                    sources.render_text()),
            sources.diagnostics());
      }
    }
  }
  return report;
}

std::string SynthesisReport::to_string() const {
  std::string out = features.to_string() + "\n";
  auto describe = [&](const char* label, const DesignPoint& p,
                      const sim::SimResult& sim_result) {
    out += str_cat(label, ": ", p.config.summary(features.dims), "\n");
    out += str_cat("  predicted: ", format_thousands(static_cast<long long>(
                                        p.prediction.total_cycles)),
                   " cycles, resources ", p.resources.total.to_string(), "\n");
    if (sim_result.total_cycles > 0) {
      out += str_cat("  simulated: ",
                     format_thousands(sim_result.total_cycles), " cycles (",
                     format_fixed(sim_result.total_ms, 2), " ms)\n");
    }
  };
  describe("baseline", baseline, baseline_sim);
  describe("heterogeneous", heterogeneous, heterogeneous_sim);
  if (temporal) {
    describe("temporal", *temporal, temporal_sim);
  }
  out += str_cat("selected family: ", arch::to_string(selected_family), "\n");
  if (speedup > 0.0) {
    out += str_cat("speedup: ", format_speedup(speedup), "\n");
  }
  if (ir.ran) {
    out += str_cat("IR verification: ", ir.kernels_lowered, " kernel(s), ",
                   ir.pipes_checked, " pipe(s), ", ir.errors, " error(s), ",
                   ir.warnings, " warning(s)\n");
  }
  if (dse.candidates_evaluated > 0) {
    out += str_cat("DSE: ", format_thousands(dse.candidates_evaluated),
                   " candidates, ",
                   format_fixed(100.0 * dse.cache_hit_rate(), 1),
                   "% cache hits, ", dse.threads, " thread(s), ",
                   format_fixed(dse.wall_seconds, 2), " s\n");
  }
  return out;
}

}  // namespace scl::core
