#include "core/evaluation_engine.hpp"

#include <chrono>

#include "analysis/analyzer.hpp"
#include "core/optimizer.hpp"

namespace scl::core {

using scl::sim::DesignConfig;

namespace {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

DesignPoint to_point(const DesignConfig& config,
                     const CachedEvaluation& eval) {
  DesignPoint point;
  point.config = config;
  point.prediction = eval.prediction;
  point.resources = eval.resources;
  point.analysis_errors = eval.analysis_errors;
  return point;
}

}  // namespace

EvaluationEngine::EvaluationEngine(
    const scl::stencil::StencilProgram& program,
    const fpga::DeviceSpec& device, model::ConeMode cone_mode, int threads,
    bool analyze_candidates)
    : program_(&program),
      device_(device),
      analyze_candidates_(analyze_candidates) {
  const int resolved = ThreadPool::resolve_threads(threads);
  perf_models_.reserve(static_cast<std::size_t>(resolved));
  resource_models_.reserve(static_cast<std::size_t>(resolved));
  for (int t = 0; t < resolved; ++t) {
    perf_models_.emplace_back(program, device, cone_mode);
    resource_models_.emplace_back(device);
  }
  pool_ = std::make_unique<ThreadPool>(resolved);
}

CachedEvaluation EvaluationEngine::compute(const DesignConfig& config) const {
  // worker_slot() is scoped to whichever pool owns the calling thread.
  // When evaluation is driven from a foreign pool's worker — the batched
  // synthesis service runs entire syntheses as scheduler jobs — the slot
  // can exceed this engine's model count, so fold it into range. Both
  // models are re-entrant (see their class contracts); a collision only
  // shares a read-only instance.
  const auto slot = static_cast<std::size_t>(ThreadPool::worker_slot()) %
                    perf_models_.size();
  CachedEvaluation eval;
  eval.prediction = perf_models_[slot].predict(config);
  eval.resources =
      estimate_design_resources(*program_, config, resource_models_[slot]);
  if (analyze_candidates_) {
    eval.analysis_errors =
        analysis::analyze_design(*program_, config, device_).error_count();
  }
  return eval;
}

DesignPoint EvaluationEngine::evaluate(const DesignConfig& config) {
  evaluated_.fetch_add(1, std::memory_order_relaxed);
  const CachedEvaluation eval = cache_.find_or_compute(
      config.key(), [&] { return compute(config); });
  return to_point(config, eval);
}

std::vector<DesignPoint> EvaluationEngine::evaluate_batch(
    const std::vector<DesignConfig>& configs) {
  const WallTimer timer;
  std::vector<DesignPoint> out(configs.size());
  pool_->parallel_for(static_cast<std::int64_t>(configs.size()),
                      [&](std::int64_t i) {
                        const auto s = static_cast<std::size_t>(i);
                        out[s] = evaluate(configs[s]);
                      });
  add_wall_seconds(timer.seconds());
  return out;
}

std::vector<DesignPoint> EvaluationEngine::evaluate_chains(
    const std::vector<CandidateChain>& chains,
    const fpga::ResourceVector& budget) {
  const WallTimer timer;
  std::vector<std::vector<DesignPoint>> per_chain(chains.size());
  pool_->parallel_for(
      static_cast<std::int64_t>(chains.size()), [&](std::int64_t i) {
        const auto s = static_cast<std::size_t>(i);
        std::vector<DesignPoint>& feasible = per_chain[s];
        for (const DesignConfig& config : chains[s].configs) {
          DesignPoint point = evaluate(config);
          if (!point.resources.total.fits_within(budget)) break;
          // Verifier-flagged candidates are skipped, not early-exited:
          // unlike resource use, diagnostics are not monotone in the
          // fusion depth, so the rest of the chain may still be clean.
          if (point.analysis_errors > 0) continue;
          feasible.push_back(std::move(point));
        }
      });
  std::vector<DesignPoint> out;
  for (std::vector<DesignPoint>& feasible : per_chain) {
    out.insert(out.end(), std::make_move_iterator(feasible.begin()),
               std::make_move_iterator(feasible.end()));
  }
  add_wall_seconds(timer.seconds());
  return out;
}

DseStats EvaluationEngine::stats() const {
  DseStats stats;
  stats.candidates_evaluated = evaluated_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.wall_seconds =
      static_cast<double>(wall_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  stats.threads = pool_->thread_count();
  return stats;
}

void EvaluationEngine::reset_stats() {
  evaluated_.store(0, std::memory_order_relaxed);
  wall_nanos_.store(0, std::memory_order_relaxed);
  cache_.clear();
}

void EvaluationEngine::add_wall_seconds(double seconds) {
  wall_nanos_.fetch_add(static_cast<std::int64_t>(seconds * 1e9),
                        std::memory_order_relaxed);
}

}  // namespace scl::core
