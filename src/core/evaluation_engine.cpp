#include "core/evaluation_engine.hpp"

#include <chrono>
#include <cstdlib>

#include "analysis/analyzer.hpp"
#include "codegen/opencl_emitter.hpp"
#include "core/optimizer.hpp"
#include "core/verify.hpp"
#include "support/observability/observability.hpp"

namespace scl::core {

using scl::sim::DesignConfig;

namespace {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

support::obs::Counter& candidates_counter() {
  static auto& counter = support::obs::metrics().counter(
      "scl_dse_candidates_total",
      "design candidates evaluated (cache hits included)");
  return counter;
}

support::obs::Counter& pruned_counter() {
  static auto& counter = support::obs::metrics().counter(
      "scl_dse_pruned_total",
      "design candidates skipped by branch-and-bound lower bounds");
  return counter;
}

support::obs::Histogram& batch_histogram() {
  static auto& histogram = support::obs::metrics().histogram(
      "scl_dse_batch_ms", support::obs::default_latency_ms_buckets(),
      "wall time of one evaluate_batch/evaluate_chains call");
  return histogram;
}

/// Test-only brake for the CI perf gate: when the
/// SCL_DSE_SYNTHETIC_SLOWDOWN_NS environment variable is set, every
/// uncached evaluation busy-waits that many nanoseconds. Results are
/// unchanged (evaluation stays pure); only throughput drops, which is
/// exactly what scripts/perf_gate.py must detect.
std::int64_t synthetic_slowdown_ns() {
  static const std::int64_t ns = [] {
    const char* env = std::getenv("SCL_DSE_SYNTHETIC_SLOWDOWN_NS");
    if (env == nullptr) return std::int64_t{0};
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    return (end != env && *end == '\0' && parsed > 0)
               ? static_cast<std::int64_t>(parsed)
               : std::int64_t{0};
  }();
  return ns;
}

void apply_synthetic_slowdown() {
  const std::int64_t ns = synthetic_slowdown_ns();
  if (ns <= 0) return;
  // Busy-wait: sleep granularity is far coarser than the ~µs-scale
  // per-candidate cost this knob needs to inflate.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < until) {
  }
}

DesignPoint to_point(const DesignConfig& config,
                     const CachedEvaluation& eval) {
  DesignPoint point;
  point.config = config;
  point.prediction = eval.prediction;
  point.resources = eval.resources;
  point.analysis_errors = eval.analysis_errors;
  return point;
}

}  // namespace

EvaluationEngine::EvaluationEngine(
    const scl::stencil::StencilProgram& program,
    const fpga::DeviceSpec& device, model::ConeMode cone_mode, int threads,
    bool analyze_candidates, bool deep_ir_analysis)
    : program_(&program),
      device_(device),
      analyze_candidates_(analyze_candidates),
      deep_ir_analysis_(deep_ir_analysis) {
  const int resolved = ThreadPool::resolve_threads(threads);
  perf_models_.reserve(static_cast<std::size_t>(resolved));
  resource_models_.reserve(static_cast<std::size_t>(resolved));
  for (int t = 0; t < resolved; ++t) {
    perf_models_.emplace_back(program, device, cone_mode);
    resource_models_.emplace_back(device);
  }
  pool_ = std::make_unique<ThreadPool>(resolved);
}

CachedEvaluation EvaluationEngine::compute(const DesignConfig& config) const {
  // worker_slot() is scoped to whichever pool owns the calling thread.
  // When evaluation is driven from a foreign pool's worker — the batched
  // synthesis service runs entire syntheses as scheduler jobs — the slot
  // can exceed this engine's model count, so fold it into range. Both
  // models are re-entrant (see their class contracts); a collision only
  // shares a read-only instance.
  const auto slot = static_cast<std::size_t>(ThreadPool::worker_slot()) %
                    perf_models_.size();
  apply_synthetic_slowdown();
  CachedEvaluation eval;
  eval.prediction = perf_models_[slot].predict(config);
  eval.resources =
      estimate_design_resources(*program_, config, resource_models_[slot]);
  if (analyze_candidates_) {
    eval.analysis_errors =
        analysis::analyze_design(*program_, config, device_).error_count();
    if (deep_ir_analysis_) {
      // Deep mode: emit the candidate's actual OpenCL and run the pass-4
      // IR abstract interpretation over it. A config the emitter cannot
      // handle at all counts as one error (it could never ship either).
      try {
        const codegen::GeneratedCode code =
            codegen::generate_opencl(*program_, config, device_);
        support::DiagnosticEngine diags;
        verify_generated_ir(*program_, config, code, &diags);
        eval.analysis_errors += diags.error_count();
      } catch (const Error&) {
        eval.analysis_errors += 1;
      }
    }
  }
  return eval;
}

DesignPoint EvaluationEngine::evaluate_one(const DesignConfig& config) {
  const CachedEvaluation eval = cache_.find_or_compute(
      config.key(), [&] { return compute(config); });
  return to_point(config, eval);
}

DesignPoint EvaluationEngine::evaluate(const DesignConfig& config) {
  evaluated_.fetch_add(1, std::memory_order_relaxed);
  if (support::obs::enabled()) candidates_counter().increment();
  return evaluate_one(config);
}

std::vector<DesignPoint> EvaluationEngine::evaluate_batch(
    const std::vector<DesignConfig>& configs) {
  const auto span =
      support::obs::tracer().span("dse/evaluate_batch", "dse");
  const WallTimer timer;
  std::vector<DesignPoint> out(configs.size());
  pool_->parallel_for_chunked(
      static_cast<std::int64_t>(configs.size()), kBatchGrain,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          const auto s = static_cast<std::size_t>(i);
          out[s] = evaluate_one(configs[s]);
        }
        // One counter flush per block, not per candidate.
        evaluated_.fetch_add(end - begin, std::memory_order_relaxed);
        if (support::obs::enabled()) candidates_counter().add(end - begin);
      });
  const double seconds = timer.seconds();
  if (support::obs::enabled()) {
    batch_histogram().observe(seconds * 1e3);
  }
  add_wall_seconds(seconds);
  return out;
}

std::vector<DesignPoint> EvaluationEngine::evaluate_chains(
    const std::vector<CandidateChain>& chains,
    const fpga::ResourceVector& budget) {
  const auto span =
      support::obs::tracer().span("dse/evaluate_chains", "dse");
  const WallTimer timer;
  // Blocks of whole chains sized to ~kChainGrainConfigs candidates: one
  // cursor claim per block keeps dispatch overhead amortized even though
  // chains themselves are short (one per fusion column).
  const std::vector<CandidateSpace::ChainBlock> blocks =
      CandidateSpace::blocks(chains, kChainGrainConfigs);
  std::vector<std::vector<DesignPoint>> per_chain(chains.size());
  pool_->parallel_for_chunked(
      static_cast<std::int64_t>(blocks.size()), 1,
      [&](std::int64_t block_begin, std::int64_t block_end) {
        std::int64_t walked = 0;
        for (std::int64_t b = block_begin; b < block_end; ++b) {
          const CandidateSpace::ChainBlock& block =
              blocks[static_cast<std::size_t>(b)];
          for (std::size_t s = block.first; s < block.second; ++s) {
            std::vector<DesignPoint>& feasible = per_chain[s];
            for (const DesignConfig& config : chains[s].configs) {
              ++walked;
              DesignPoint point = evaluate_one(config);
              if (!point.resources.total.fits_within(budget)) break;
              // Verifier-flagged candidates are skipped, not
              // early-exited: unlike resource use, diagnostics are not
              // monotone in the fusion depth, so the rest of the chain
              // may still be clean.
              if (point.analysis_errors > 0) continue;
              feasible.push_back(std::move(point));
            }
          }
        }
        evaluated_.fetch_add(walked, std::memory_order_relaxed);
        if (support::obs::enabled()) candidates_counter().add(walked);
      });
  std::vector<DesignPoint> out;
  for (std::vector<DesignPoint>& feasible : per_chain) {
    out.insert(out.end(), std::make_move_iterator(feasible.begin()),
               std::make_move_iterator(feasible.end()));
  }
  const double seconds = timer.seconds();
  if (support::obs::enabled()) {
    batch_histogram().observe(seconds * 1e3);
  }
  add_wall_seconds(seconds);
  return out;
}

void EvaluationEngine::add_pruned(std::int64_t n) {
  if (n <= 0) return;
  pruned_.fetch_add(n, std::memory_order_relaxed);
  if (support::obs::enabled()) pruned_counter().add(n);
}

DseStats EvaluationEngine::stats() const {
  DseStats stats;
  stats.candidates_evaluated = evaluated_.load(std::memory_order_relaxed);
  stats.candidates_pruned = pruned_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.wall_seconds =
      static_cast<double>(wall_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  stats.threads = pool_->thread_count();
  return stats;
}

void EvaluationEngine::reset_stats() {
  evaluated_.store(0, std::memory_order_relaxed);
  pruned_.store(0, std::memory_order_relaxed);
  wall_nanos_.store(0, std::memory_order_relaxed);
  cache_.clear();
}

void EvaluationEngine::add_wall_seconds(double seconds) {
  wall_nanos_.fetch_add(static_cast<std::int64_t>(seconds * 1e9),
                        std::memory_order_relaxed);
}

}  // namespace scl::core
