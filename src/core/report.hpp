// Markdown synthesis-report writer.
//
// Renders a SynthesisReport as a self-contained Markdown document: the
// extracted features, both design points with predicted/simulated latency
// and full resource tables, the execution-phase breakdowns, and (when code
// generation ran) the generated-source inventory. The CLI's --report flag
// and downstream CI pipelines consume this.
#pragma once

#include <string>

#include "core/framework.hpp"

namespace scl::core {

struct MarkdownReportOptions {
  /// Include the timing rows of the DSE section (worker threads,
  /// wall-clock, candidates/sec). The synthesis artifact store renders
  /// with false: stored reports must be byte-deterministic across runs,
  /// machines and thread counts.
  bool include_timing = true;
};

/// Renders the report as GitHub-flavored Markdown.
std::string render_markdown_report(const SynthesisReport& report,
                                   MarkdownReportOptions options = {});

}  // namespace scl::core
