#include "core/pareto_front.hpp"

#include <algorithm>

namespace scl::core {

bool ParetoFront::insert(const DesignPoint& point) {
  const auto pos =
      std::lower_bound(points_.begin(), points_.end(), point, design_order);
  // The predecessor holds the minimum bram18 of every member ordered
  // before `point` (the staircase is strictly decreasing), so one
  // comparison decides dominance against the whole prefix. This also
  // covers points evicted or rejected earlier: whatever dominated them
  // orders before `point` too, and its bram18 survives in the prefix
  // minimum.
  if (pos != points_.begin() &&
      (pos - 1)->resources.total.bram18 <= point.resources.total.bram18) {
    return false;
  }
  // lower_bound already established !design_order(*pos, point); if the
  // reverse also fails the keys are identical — the same config was
  // offered twice.
  if (pos != points_.end() && !design_order(point, *pos)) return false;
  // Members now dominated by `point` are the contiguous run of successors
  // with bram18 >= point's (successor bram18 values are decreasing).
  auto last = pos;
  while (last != points_.end() &&
         last->resources.total.bram18 >= point.resources.total.bram18) {
    ++last;
  }
  if (last != pos) {
    *pos = point;
    points_.erase(pos + 1, last);
  } else {
    points_.insert(pos, point);
  }
  return true;
}

}  // namespace scl::core
