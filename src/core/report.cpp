#include "core/report.hpp"

#include <algorithm>

#include "fpga/power.hpp"

#include "support/strings.hpp"
#include "support/table.hpp"

namespace scl::core {

namespace {

std::string describe_config(const sim::DesignConfig& config, int dims) {
  return config.summary(dims);
}

void add_resource_rows(TableWriter* table, const char* label,
                       const DesignPoint& point) {
  const fpga::ResourceVector& r = point.resources.total;
  table->add_row({label, format_thousands(r.ff), format_thousands(r.lut),
                  format_thousands(r.dsp), format_thousands(r.bram18)});
}

std::string phase_table(const sim::SimResult& sim) {
  const sim::PhaseBreakdown& p = sim.phases;
  const double total = static_cast<double>(p.total());
  if (total <= 0.0) return "";
  TableWriter table({"phase", "cycles", "share"});
  auto row = [&](const char* name, std::int64_t v) {
    table.add_row({name, format_thousands(v),
                   format_fixed(100.0 * static_cast<double>(v) / total, 1) +
                       "%"});
  };
  row("launch", p.launch);
  row("global-memory read", p.mem_read);
  row("global-memory write", p.mem_write);
  row("compute (owned cells)", p.compute_own);
  row("compute (redundant cone)", p.compute_redundant);
  row("pipe transfer (exposed)", p.pipe_transfer);
  row("pipe stall / halo wait", p.pipe_stall);
  row("barrier wait", p.barrier_wait);
  return table.to_markdown();
}

}  // namespace

std::string render_markdown_report(const SynthesisReport& report,
                                   MarkdownReportOptions options) {
  const int dims = report.features.dims;
  std::string out;
  out += str_cat("# stencilcl synthesis report — ", report.features.name,
                 "\n\n");
  out += str_cat("- **Algorithm:** ", report.features.to_string(), "\n");
  out += str_cat("- **Baseline design:** ",
                 describe_config(report.baseline.config, dims), "\n");
  out += str_cat("- **Heterogeneous design:** ",
                 describe_config(report.heterogeneous.config, dims), "\n");
  if (report.temporal) {
    out += str_cat("- **Temporal design:** ",
                   describe_config(report.temporal->config, dims), "\n");
  }
  out += str_cat("- **Selected family:** ",
                 arch::to_string(report.selected_family), "\n");
  if (report.speedup > 0.0) {
    out += str_cat("- **Simulated speedup:** ",
                   format_speedup(report.speedup), "\n");
  }
  out += "\n## Latency\n\n";
  {
    TableWriter table({"design", "predicted cycles", "simulated cycles",
                       "simulated ms"});
    auto row = [&](const char* label, const DesignPoint& point,
                   const sim::SimResult& sim) {
      table.add_row(
          {label,
           format_thousands(
               static_cast<long long>(point.prediction.total_cycles)),
           sim.total_cycles > 0 ? format_thousands(sim.total_cycles) : "-",
           sim.total_cycles > 0 ? format_fixed(sim.total_ms, 2) : "-"});
    };
    row("baseline", report.baseline, report.baseline_sim);
    row("heterogeneous", report.heterogeneous, report.heterogeneous_sim);
    if (report.temporal) {
      row("temporal", *report.temporal, report.temporal_sim);
    }
    out += table.to_markdown();
  }
  if (report.heterogeneous_sim.total_cycles > 0) {
    // Effective arithmetic throughput over owned cell updates.
    const double flops =
        static_cast<double>(report.features.ops_per_cell.total());
    auto gflops = [&](const sim::SimResult& sim_result) {
      return flops * static_cast<double>(sim_result.cells_owned) /
             (sim_result.total_ms * 1e6);
    };
    out += str_cat("\nEffective throughput: baseline ",
                   format_fixed(gflops(report.baseline_sim), 2),
                   " GFLOP/s, heterogeneous ",
                   format_fixed(gflops(report.heterogeneous_sim), 2),
                   " GFLOP/s (owned cell updates only).\n");
  }

  if (report.heterogeneous_sim.total_cycles > 0) {
    // First-order energy comparison (extension; see fpga/power.hpp).
    const fpga::PowerModel power(report.device);
    auto energy = [&](const DesignPoint& point,
                      const sim::SimResult& sim_result) {
      const double total = static_cast<double>(sim_result.phases.total());
      const double compute_activity =
          total > 0 ? static_cast<double>(sim_result.phases.compute_own +
                                          sim_result.phases.compute_redundant) /
                          total
                    : 0.0;
      const double memory_activity =
          total > 0 ? static_cast<double>(sim_result.phases.mem_read +
                                          sim_result.phases.mem_write) /
                          total
                    : 0.0;
      return power.energy_joules(point.resources.total, compute_activity,
                                 memory_activity, sim_result.total_ms);
    };
    const double base_j = energy(report.baseline, report.baseline_sim);
    const double het_j =
        energy(report.heterogeneous, report.heterogeneous_sim);
    out += str_cat("Estimated energy: baseline ", format_fixed(base_j, 1),
                   " J, heterogeneous ", format_fixed(het_j, 1), " J (",
                   format_speedup(base_j / het_j),
                   " better energy efficiency).\n");
  }

  out += "\n## Resources\n\n";
  {
    TableWriter table({"design", "FF", "LUT", "DSP", "BRAM18"});
    add_resource_rows(&table, "baseline", report.baseline);
    add_resource_rows(&table, "heterogeneous", report.heterogeneous);
    out += table.to_markdown();
  }

  if (report.dse.candidates_evaluated > 0) {
    out += "\n## Design-space exploration\n\n";
    TableWriter table({"metric", "value"});
    table.add_row({"candidates evaluated",
                   format_thousands(report.dse.candidates_evaluated)});
    table.add_row(
        {"cache hits", str_cat(format_thousands(report.dse.cache_hits), " (",
                               format_fixed(100.0 * report.dse.cache_hit_rate(), 1),
                               "%)")});
    // Deterministic (the bound/keep phase is serial), so not gated on
    // include_timing like the throughput rows.
    table.add_row({"candidates pruned",
                   format_thousands(report.dse.candidates_pruned)});
    if (options.include_timing) {
      table.add_row({"worker threads", std::to_string(report.dse.threads)});
      table.add_row({"wall-clock",
                     str_cat(format_fixed(report.dse.wall_seconds, 3), " s")});
      table.add_row({"candidates/sec",
                     format_thousands(static_cast<std::int64_t>(
                         report.dse.candidates_per_sec()))});
    }
    out += table.to_markdown();
  }

  if (!report.frontier.empty()) {
    out += "\n## Latency/BRAM trade-off (retained Pareto front)\n\n";
    out += "Feasible designs the search evaluated that are Pareto-optimal "
           "in (predicted cycles, BRAM18); the first row is the reported "
           "optimum's latency class. With pruning on, bounds more than "
           "10% above the incumbent were discarded unevaluated, so the "
           "high-latency/low-BRAM tail is intentionally absent.\n\n";
    constexpr std::size_t kMaxFrontierRows = 12;
    TableWriter table({"family", "config", "predicted cycles", "BRAM18"});
    const std::size_t rows =
        std::min(report.frontier.size(), kMaxFrontierRows);
    for (std::size_t i = 0; i < rows; ++i) {
      const DesignPoint& point = report.frontier[i];
      table.add_row(
          {arch::to_string(point.config.family),
           describe_config(point.config, dims),
           format_thousands(
               static_cast<long long>(point.prediction.total_cycles)),
           format_thousands(point.resources.total.bram18)});
    }
    out += table.to_markdown();
    if (report.frontier.size() > kMaxFrontierRows) {
      out += str_cat("\n(", report.frontier.size() - kMaxFrontierRows,
                     " more point(s) on the front.)\n");
    }
  }

  if (report.baseline_sim.total_cycles > 0) {
    out += "\n## Execution-phase breakdown (baseline)\n\n";
    out += phase_table(report.baseline_sim);
    out += "\n## Execution-phase breakdown (heterogeneous)\n\n";
    out += phase_table(report.heterogeneous_sim);
  }

  if (!report.analysis.empty()) {
    out += "\n## Design verification\n\n";
    out += str_cat("- ", report.analysis.error_count(), " error(s), ",
                   report.analysis.warning_count(), " warning(s), ",
                   static_cast<std::int64_t>(report.analysis.size()),
                   " diagnostic(s) total\n\n```\n",
                   report.analysis.render_text(), "```\n");
  } else {
    out += "\n## Design verification\n\nNo diagnostics: pipe graph, halo "
           "coverage, generated bounds and the resource model all check "
           "out.\n";
  }

  if (!report.code.kernel_source.empty()) {
    out += str_cat("\n## Generated code\n\n- ", report.code.kernel_count,
                   " OpenCL kernels, ", report.code.pipe_count,
                   " pipes\n- kernel source: ",
                   count_occurrences(report.code.kernel_source, "\n"),
                   " lines\n- host source: ",
                   count_occurrences(report.code.host_source, "\n"),
                   " lines\n");
  }
  return out;
}

}  // namespace scl::core
