// Full three-pass design verification (see analysis/analyzer.hpp).
//
// The analysis library sits below core/, so it cannot call the resource
// estimator itself; this wrapper computes what the model charged a design
// and feeds it to the analyzer's resource cross-check, then (optionally)
// runs the generated-source validator over emitted code and merges its
// SCL0xx diagnostics into the same engine.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/analyzer.hpp"
#include "codegen/opencl_emitter.hpp"
#include "core/resource_estimator.hpp"
#include "support/diagnostics.hpp"
#include "support/error.hpp"

namespace scl::core {

/// Thrown when static verification reports error-severity diagnostics.
/// Carries the structured diagnostics so callers (the synthesis service,
/// the daemon wire protocol) can surface them instead of a flat string.
class VerificationError : public Error {
 public:
  VerificationError(const std::string& what,
                    std::vector<support::Diagnostic> diagnostics)
      : Error(what), diagnostics_(std::move(diagnostics)) {}

  const std::vector<support::Diagnostic>& diagnostics() const {
    return diagnostics_;
  }

 private:
  std::vector<support::Diagnostic> diagnostics_;
};

/// The analyzer's view of what the resource model charged `resources`.
analysis::ChargedResources charged_resources(const DesignResources& resources);

/// Runs all three analysis passes on one design: pipe graph, halo &
/// bounds, and the resource cross-check against `resources` (as computed
/// by estimate_design_resources for the same config).
support::DiagnosticEngine verify_design(
    const scl::stencil::StencilProgram& program,
    const sim::DesignConfig& config, const fpga::DeviceSpec& device,
    const DesignResources& resources);

/// Appends the generated-source validator's SCL0xx diagnostics for
/// `code` to `diags`.
void verify_generated_sources(const codegen::GeneratedCode& code,
                              support::DiagnosticEngine* diags);

/// What the pass-4 IR verification covered (SynthesisReport bookkeeping
/// and the --analyze-json `ir` section).
struct IrVerifyStats {
  bool ran = false;
  std::int64_t kernels_lowered = 0;
  std::int64_t pipes_checked = 0;
  std::int64_t unmodeled_constructs = 0;
  std::int64_t errors = 0;
  std::int64_t warnings = 0;
};

/// Pass 4: lowers the emitted kernel source to the analysis IR and runs
/// the SCL4xx abstract-interpretation checks (analysis/ir/dataflow) over
/// it; diagnostics are appended to `diags`.
IrVerifyStats verify_generated_ir(const scl::stencil::StencilProgram& program,
                                  const sim::DesignConfig& config,
                                  const codegen::GeneratedCode& code,
                                  support::DiagnosticEngine* diags);

}  // namespace scl::core
