// Full three-pass design verification (see analysis/analyzer.hpp).
//
// The analysis library sits below core/, so it cannot call the resource
// estimator itself; this wrapper computes what the model charged a design
// and feeds it to the analyzer's resource cross-check, then (optionally)
// runs the generated-source validator over emitted code and merges its
// SCL0xx diagnostics into the same engine.
#pragma once

#include "analysis/analyzer.hpp"
#include "codegen/opencl_emitter.hpp"
#include "core/resource_estimator.hpp"
#include "support/diagnostics.hpp"

namespace scl::core {

/// The analyzer's view of what the resource model charged `resources`.
analysis::ChargedResources charged_resources(const DesignResources& resources);

/// Runs all three analysis passes on one design: pipe graph, halo &
/// bounds, and the resource cross-check against `resources` (as computed
/// by estimate_design_resources for the same config).
support::DiagnosticEngine verify_design(
    const scl::stencil::StencilProgram& program,
    const sim::DesignConfig& config, const fpga::DeviceSpec& device,
    const DesignResources& resources);

/// Appends the generated-source validator's SCL0xx diagnostics for
/// `code` to `diags`.
void verify_generated_sources(const codegen::GeneratedCode& code,
                              support::DiagnosticEngine* diags);

}  // namespace scl::core
