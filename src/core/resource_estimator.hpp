// Whole-design FPGA resource estimation.
//
// Sums the per-kernel estimates (fpga::ResourceModel) over the K tile
// kernels of a design, using each kernel's own buffer geometry: the
// baseline kernel buffers its full cone footprint, the heterogeneous
// kernel buffers only its (balanced) tile plus one-iteration halos and
// pays for the pipe FIFOs instead.
#pragma once

#include "fpga/resource_model.hpp"
#include "sim/design.hpp"
#include "stencil/program.hpp"

namespace scl::core {

/// Estimated totals plus the single-kernel breakdown of the most
/// resource-hungry kernel (for reporting).
struct DesignResources {
  fpga::ResourceVector total;
  fpga::ResourceVector worst_kernel;
  std::int64_t buffer_elements_total = 0;
  std::int64_t pipe_count = 0;
  /// Total FIFO storage charged over all pipes (elements); the design
  /// verifier cross-checks it against the exchange schedule's in-flight
  /// boundary-layer volume.
  std::int64_t pipe_fifo_elements_total = 0;
};

DesignResources estimate_design_resources(
    const scl::stencil::StencilProgram& program,
    const sim::DesignConfig& config, const fpga::ResourceModel& model);

}  // namespace scl::core
