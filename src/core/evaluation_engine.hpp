// Parallel, memoizing candidate evaluation for design-space exploration.
//
// The engine is the stateless counterpart to CandidateSpace: it turns
// DesignConfigs into DesignPoints (prediction + resources) and knows
// nothing about search policy. Each worker slot owns its own PerfModel
// and ResourceModel instance, so evaluation never locks shared model
// state; the only shared structures are the memoizing EvalCache (sharded,
// see eval_cache.hpp) and the atomic statistics counters.
//
// Determinism contract: evaluation is a pure function of the config, the
// pool writes results by index, and chains are concatenated in enumeration
// order — so evaluate_batch()/evaluate_chains() return byte-identical
// vectors for any thread count, including 1 (the serial path).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/candidate_space.hpp"
#include "core/eval_cache.hpp"
#include "core/resource_estimator.hpp"
#include "fpga/device.hpp"
#include "model/perf_model.hpp"
#include "sim/design.hpp"
#include "stencil/program.hpp"
#include "support/thread_pool.hpp"

namespace scl::core {

struct DesignPoint;

/// Aggregated DSE counters for reporting (core/report.cpp renders them).
struct DseStats {
  std::int64_t candidates_evaluated = 0;  ///< cache hits + misses
  std::int64_t candidates_pruned = 0;     ///< skipped via lower bounds
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  double wall_seconds = 0.0;  ///< time inside batch/chain evaluation
  int threads = 1;

  double cache_hit_rate() const {
    const auto total = static_cast<double>(candidates_evaluated);
    return total > 0.0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
  double candidates_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(candidates_evaluated) / wall_seconds
               : 0.0;
  }
};

class EvaluationEngine {
 public:
  /// `threads` <= 0 resolves via SCL_THREADS / hardware concurrency
  /// (ThreadPool::resolve_threads). With `analyze_candidates` every
  /// evaluation also runs the static design verifier (analysis passes 1
  /// and 2) and records its error count in the DesignPoint; chain
  /// evaluation then drops flagged candidates from the feasible set.
  /// `deep_ir_analysis` additionally generates each candidate's OpenCL
  /// and runs the pass-4 kernel-IR checks; its errors share the same
  /// analysis_errors filter. Requires analyze_candidates.
  EvaluationEngine(const scl::stencil::StencilProgram& program,
                   const fpga::DeviceSpec& device, model::ConeMode cone_mode,
                   int threads, bool analyze_candidates = false,
                   bool deep_ir_analysis = false);

  /// Evaluates one configuration through the cache (always on the calling
  /// thread). Thread-safe.
  DesignPoint evaluate(const sim::DesignConfig& config);

  /// Evaluates every config on the pool in contiguous blocks of
  /// ~kBatchGrain candidates (one cursor claim per block, counters
  /// flushed once per block); results in input order.
  std::vector<DesignPoint> evaluate_batch(
      const std::vector<sim::DesignConfig>& configs);

  /// Candidates per chunked work claim. Candidate evaluation costs a few
  /// microseconds, so per-candidate dispatch would be dominated by the
  /// cursor cache-line bounce; O(hundreds) amortizes it to noise while
  /// still load-balancing across thousands of candidates.
  static constexpr std::int64_t kBatchGrain = 64;
  static constexpr std::int64_t kChainGrainConfigs = 256;

  /// Evaluates chains on the pool (one chain per work item), walking each
  /// chain's ascending fusion depths and stopping at the first candidate
  /// whose resources exceed `budget` — resource use grows monotonically
  /// with h, so the rest of the chain cannot fit either (this reproduces
  /// the serial optimizer's early exit). Returns the feasible points of
  /// every chain concatenated in chain order.
  std::vector<DesignPoint> evaluate_chains(
      const std::vector<CandidateChain>& chains,
      const fpga::ResourceVector& budget);

  int threads() const { return pool_->thread_count(); }
  EvalCache& cache() { return cache_; }
  const EvalCache& cache() const { return cache_; }

  /// Counters since construction (or the last reset_stats()).
  DseStats stats() const;
  void reset_stats();

  /// Credits `n` branch-and-bound prunes to the stats (and the
  /// scl_dse_pruned_total metric). The Optimizer calls this once per
  /// search phase, not per candidate.
  void add_pruned(std::int64_t n);

 private:
  /// Cached evaluation without touching the evaluated-candidates
  /// counters; the chunked loops flush those once per block.
  DesignPoint evaluate_one(const sim::DesignConfig& config);
  /// Uncached evaluation on this worker slot's own models.
  CachedEvaluation compute(const sim::DesignConfig& config) const;
  void add_wall_seconds(double seconds);

  const scl::stencil::StencilProgram* program_;
  fpga::DeviceSpec device_;
  bool analyze_candidates_ = false;
  bool deep_ir_analysis_ = false;
  /// One (PerfModel, ResourceModel) pair per worker slot; slot 0 is the
  /// submitting thread.
  std::vector<model::PerfModel> perf_models_;
  std::vector<fpga::ResourceModel> resource_models_;
  std::unique_ptr<ThreadPool> pool_;
  EvalCache cache_;
  std::atomic<std::int64_t> evaluated_{0};
  std::atomic<std::int64_t> pruned_{0};
  std::atomic<std::int64_t> wall_nanos_{0};
};

}  // namespace scl::core
