#include "core/verify.hpp"

#include "analysis/ir/dataflow.hpp"
#include "analysis/ir/lower.hpp"
#include "codegen/validator.hpp"
#include "support/observability/observability.hpp"
#include "support/strings.hpp"

namespace scl::core {

namespace {

support::obs::Counter& diagnostics_counter() {
  static auto& counter = support::obs::metrics().counter(
      "scl_analysis_diagnostics_total",
      "diagnostics reported by the design/source verifier passes");
  return counter;
}

}  // namespace

analysis::ChargedResources charged_resources(
    const DesignResources& resources) {
  analysis::ChargedResources charged;
  charged.pipe_count = resources.pipe_count;
  charged.buffer_elements = resources.buffer_elements_total;
  charged.pipe_fifo_elements = resources.pipe_fifo_elements_total;
  charged.total = resources.total;
  return charged;
}

support::DiagnosticEngine verify_design(
    const scl::stencil::StencilProgram& program,
    const sim::DesignConfig& config, const fpga::DeviceSpec& device,
    const DesignResources& resources) {
  const auto span =
      support::obs::tracer().span("analysis/verify_design", "analysis");
  const analysis::AnalysisInput input =
      analysis::make_analysis_input(program, config, device);
  const analysis::ChargedResources charged = charged_resources(resources);
  support::DiagnosticEngine diags = analysis::analyze(input, &charged);
  if (support::obs::enabled()) {
    diagnostics_counter().add(
        static_cast<std::int64_t>(diags.diagnostics().size()));
  }
  return diags;
}

void verify_generated_sources(const codegen::GeneratedCode& code,
                              support::DiagnosticEngine* diags) {
  const auto span =
      support::obs::tracer().span("analysis/verify_sources", "analysis");
  auto append = [&](std::vector<support::Diagnostic> issues,
                    const char* file) {
    for (support::Diagnostic& diag : issues) {
      if (diag.location.component == "source" &&
          diag.location.detail.empty()) {
        diag.location.detail = file;
      }
      support::Diagnostic& added =
          diags->add(std::move(diag.code), diag.severity,
                     std::move(diag.message));
      added.location = std::move(diag.location);
      added.notes = std::move(diag.notes);
    }
  };
  append(codegen::validate_kernel_source(code.kernel_source),
         "stencil_kernels.cl");
  append(codegen::validate_host_source(code.host_source), "stencil_host.cpp");
}

IrVerifyStats verify_generated_ir(const scl::stencil::StencilProgram& program,
                                  const sim::DesignConfig& config,
                                  const codegen::GeneratedCode& code,
                                  support::DiagnosticEngine* diags) {
  const auto span =
      support::obs::tracer().span("analysis/verify_ir", "analysis");
  IrVerifyStats stats;
  stats.ran = true;
  support::DiagnosticEngine local;
  analysis::ir::Module module;
  bool lowered = false;
  try {
    module = analysis::ir::lower_kernel_source(code.kernel_source);
    lowered = true;
  } catch (const Error& e) {
    support::Diagnostic& diag = local.error(
        "SCL409", str_cat("emitted kernel source could not be lowered to "
                          "the analysis IR: ",
                          e.what()));
    diag.location = {"source", "stencil_kernels.cl", -1};
  }
  if (lowered) {
    stats.kernels_lowered = static_cast<std::int64_t>(module.kernels.size());
    stats.pipes_checked = static_cast<std::int64_t>(module.pipes.size());
    stats.unmodeled_constructs =
        static_cast<std::int64_t>(module.unmodeled.size());
    const analysis::ir::IrContext ctx =
        analysis::ir::make_ir_context(program, config);
    analysis::ir::analyze_module(module, ctx, &local);
  }
  stats.errors = local.error_count();
  stats.warnings = local.warning_count();
  diags->merge(local);
  if (support::obs::enabled()) {
    diagnostics_counter().add(
        static_cast<std::int64_t>(local.diagnostics().size()));
  }
  return stats;
}

}  // namespace scl::core
