#include "core/verify.hpp"

#include "codegen/validator.hpp"
#include "support/observability/observability.hpp"

namespace scl::core {

namespace {

support::obs::Counter& diagnostics_counter() {
  static auto& counter = support::obs::metrics().counter(
      "scl_analysis_diagnostics_total",
      "diagnostics reported by the design/source verifier passes");
  return counter;
}

}  // namespace

analysis::ChargedResources charged_resources(
    const DesignResources& resources) {
  analysis::ChargedResources charged;
  charged.pipe_count = resources.pipe_count;
  charged.buffer_elements = resources.buffer_elements_total;
  charged.pipe_fifo_elements = resources.pipe_fifo_elements_total;
  charged.total = resources.total;
  return charged;
}

support::DiagnosticEngine verify_design(
    const scl::stencil::StencilProgram& program,
    const sim::DesignConfig& config, const fpga::DeviceSpec& device,
    const DesignResources& resources) {
  const auto span =
      support::obs::tracer().span("analysis/verify_design", "analysis");
  const analysis::AnalysisInput input =
      analysis::make_analysis_input(program, config, device);
  const analysis::ChargedResources charged = charged_resources(resources);
  support::DiagnosticEngine diags = analysis::analyze(input, &charged);
  if (support::obs::enabled()) {
    diagnostics_counter().add(
        static_cast<std::int64_t>(diags.diagnostics().size()));
  }
  return diags;
}

void verify_generated_sources(const codegen::GeneratedCode& code,
                              support::DiagnosticEngine* diags) {
  const auto span =
      support::obs::tracer().span("analysis/verify_sources", "analysis");
  auto append = [&](std::vector<support::Diagnostic> issues,
                    const char* file) {
    for (support::Diagnostic& diag : issues) {
      if (diag.location.component == "source" &&
          diag.location.detail.empty()) {
        diag.location.detail = file;
      }
      support::Diagnostic& added =
          diags->add(std::move(diag.code), diag.severity,
                     std::move(diag.message));
      added.location = std::move(diag.location);
      added.notes = std::move(diag.notes);
    }
  };
  append(codegen::validate_kernel_source(code.kernel_source),
         "stencil_kernels.cl");
  append(codegen::validate_host_source(code.host_source), "stencil_host.cpp");
}

}  // namespace scl::core
