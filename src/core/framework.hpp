// The end-to-end synthesis framework (paper Figure 5).
//
// Input: a stencil program (the OpenCL algorithm, in our declarative form)
// plus user parameters (target device, kernel-count budget). The framework
//   1. extracts the stencil features,
//   2. runs the performance optimizer: baseline DSE, then the
//      heterogeneous DSE under the baseline's resource budget,
//   3. generates the optimized OpenCL kernel and host code,
//   4. "executes" both designs on the cycle-approximate device simulator
//      (the stand-in for the board measurement) and reports the speedup.
#pragma once

#include <optional>
#include <string>

#include "arch/family.hpp"
#include "codegen/opencl_emitter.hpp"
#include "core/features.hpp"
#include "core/optimizer.hpp"
#include "core/verify.hpp"
#include "sim/executor.hpp"
#include "stencil/program.hpp"
#include "support/diagnostics.hpp"

namespace scl::core {

/// Which design families the flow searches; the generated code and the
/// IR verification always follow the winning family.
enum class FamilySelection {
  kAuto,           ///< search both, emit the fewer-predicted-cycles winner
  kPipeTiling,     ///< the paper's spatial tiling family only
  kTemporalShift,  ///< the temporal-blocked shift-register family only
};

std::string to_string(FamilySelection family);

struct FrameworkOptions {
  OptimizerOptions optimizer;
  /// Family policy. kAuto breaks a predicted-cycles tie toward the
  /// pipe-tiling family (the paper's architecture, and the cheaper
  /// host-side sweep).
  FamilySelection family = FamilySelection::kAuto;
  /// Run the discrete-event simulation of both designs (timing-only).
  bool simulate = true;
  /// Emit OpenCL kernel + host sources for the heterogeneous design.
  bool generate_code = true;
  /// Statically verify the selected designs (pipe graph, halo & bounds,
  /// resource cross-check) and the generated sources; diagnostics land in
  /// SynthesisReport::analysis.
  bool analyze = true;
  /// Throw scl::Error when verification reports error diagnostics.
  /// Warnings never fail the flow. Tools that want to render the
  /// diagnostics themselves (--analyze) turn this off.
  bool fail_on_analysis_error = true;
};

struct SynthesisReport {
  StencilFeatures features;
  fpga::DeviceSpec device;  ///< target the flow ran against
  DesignPoint baseline;
  DesignPoint heterogeneous;

  /// Best temporal-shift design; populated when options.family admits
  /// the family and some temporal candidate fits the device budget.
  std::optional<DesignPoint> temporal;

  /// Family of the winning design — the one that is code-generated,
  /// IR-verified and reported as the flow's output.
  arch::DesignFamily selected_family = arch::DesignFamily::kPipeTiling;

  /// The winning design per selected_family.
  const DesignPoint& selected() const {
    return selected_family == arch::DesignFamily::kTemporalShift && temporal
               ? *temporal
               : heterogeneous;
  }

  /// DSE evaluation counters over both searches: candidates evaluated,
  /// pruned, cache hit rate, throughput, wall-clock, worker threads.
  DseStats dse;

  /// The (cycles, BRAM18) Pareto front of the feasible designs the
  /// searches evaluated (Optimizer::retained_frontier()): the trade-off
  /// curve around the reported optimum. Deterministic for any thread
  /// count.
  std::vector<DesignPoint> frontier;

  // Measured (simulated) results; valid when options.simulate.
  sim::SimResult baseline_sim;
  sim::SimResult heterogeneous_sim;
  sim::SimResult temporal_sim;  ///< valid when `temporal` is populated
  double speedup = 0.0;  ///< baseline cycles / heterogeneous cycles

  // Generated sources; valid when options.generate_code.
  codegen::GeneratedCode code;

  /// Design-verification diagnostics over both selected designs and the
  /// generated sources; populated when options.analyze.
  support::DiagnosticEngine analysis;

  /// What the pass-4 kernel-IR verification covered; `ir.ran` is true
  /// when options.analyze and options.generate_code were both set.
  IrVerifyStats ir;

  /// Multi-line human-readable summary (Table 3-row style).
  std::string to_string() const;
};

class Framework {
 public:
  Framework(const scl::stencil::StencilProgram& program,
            FrameworkOptions options);

  /// Runs the full flow. Throws scl::ResourceError when no design fits.
  SynthesisReport synthesize() const;

  /// Evaluates a user-supplied configuration end to end (model +
  /// simulation), bypassing the DSE. Useful for sweeps.
  DesignPoint evaluate(const sim::DesignConfig& config) const {
    return optimizer_.evaluate(config);
  }

  const Optimizer& optimizer() const { return optimizer_; }

 private:
  const scl::stencil::StencilProgram* program_;
  FrameworkOptions options_;
  Optimizer optimizer_;
};

}  // namespace scl::core
