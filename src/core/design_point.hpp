// The evaluated-design record shared by the optimizer, the Pareto-front
// container and the synthesis report, split out of optimizer.hpp so the
// lightweight consumers do not pull in the whole search stack.
#pragma once

#include <cstdint>

#include "core/resource_estimator.hpp"
#include "model/perf_model.hpp"
#include "sim/design.hpp"

namespace scl::core {

/// One evaluated design: configuration, predicted latency, resources.
struct DesignPoint {
  sim::DesignConfig config;
  model::Prediction prediction;
  DesignResources resources;
  /// Error diagnostics from the candidate verifier (0 when verification
  /// is off or the design is clean).
  std::int64_t analysis_errors = 0;
};

/// The total deterministic design ordering: predicted latency, then the
/// resource vector (BRAM18, FF, LUT, DSP), then the canonical config key.
/// No two distinct configs compare equal, so any selection or sort that
/// uses this order is independent of enumeration and thread scheduling.
/// Shared by the serial and parallel search paths. (Defined in
/// optimizer.cpp.)
bool design_order(const DesignPoint& a, const DesignPoint& b);

}  // namespace scl::core
