#include "core/optimizer.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "model/lower_bound.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/observability/observability.hpp"
#include "support/strings.hpp"

namespace scl::core {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;
using scl::stencil::StencilProgram;

bool design_order(const DesignPoint& a, const DesignPoint& b) {
  if (a.prediction.total_cycles != b.prediction.total_cycles) {
    return a.prediction.total_cycles < b.prediction.total_cycles;
  }
  const fpga::ResourceVector& ra = a.resources.total;
  const fpga::ResourceVector& rb = b.resources.total;
  if (ra.bram18 != rb.bram18) return ra.bram18 < rb.bram18;
  if (ra.ff != rb.ff) return ra.ff < rb.ff;
  if (ra.lut != rb.lut) return ra.lut < rb.lut;
  if (ra.dsp != rb.dsp) return ra.dsp < rb.dsp;
  return a.config.key() < b.config.key();
}

namespace {

/// Selection predicate of the running-best scan: should `candidate`
/// replace `incumbent`? Strictly fewer cycles always wins. Within a
/// 1.0005x near-tie band (the baseline's overlapped cones make the
/// latency insensitive to the parallelism arrangement) prefer more
/// compute units, then the squarer arrangement — both benefit the
/// heterogeneous design later derived from this choice (more interior
/// tiles, shorter pipe boundaries). Exact residual ties fall through to
/// the explicit deterministic comparator, never to enumeration order.
bool better_design(const DesignPoint& candidate,
                   const DesignPoint& incumbent) {
  const double c_new = candidate.prediction.total_cycles;
  const double c_old = incumbent.prediction.total_cycles;
  if (c_new < c_old) return true;
  if (c_new > 1.0005 * c_old) return false;
  auto spread = [](const std::array<int, 3>& arrangement) {
    return *std::max_element(arrangement.begin(), arrangement.end()) -
           *std::min_element(arrangement.begin(), arrangement.end());
  };
  const std::int64_t k_new = candidate.config.total_kernels();
  const std::int64_t k_old = incumbent.config.total_kernels();
  if (k_new != k_old) return k_new > k_old;
  const int s_new = spread(candidate.config.parallelism);
  const int s_old = spread(incumbent.config.parallelism);
  if (s_new != s_old) return s_new < s_old;
  // Same latency band, same arrangement quality: only an exact latency
  // tie may still flip the choice, through the stable comparator.
  if (c_new != c_old) return false;
  return design_order(candidate, incumbent);
}

}  // namespace

Optimizer::Optimizer(const StencilProgram& program, OptimizerOptions options)
    : program_(&program),
      options_(std::move(options)),
      space_(program, options_),
      engine_(program, options_.device, options_.cone_mode, options_.threads,
              options_.analyze_candidates, options_.deep_ir_analysis) {
  SCL_CHECK(options_.resource_fraction > 0.0 &&
                options_.resource_fraction <= 1.0,
            "resource fraction must be in (0, 1]");
}

fpga::ResourceVector Optimizer::budget() const {
  const fpga::ResourceVector cap = options_.device.capacity;
  auto scale = [&](std::int64_t v) {
    return static_cast<std::int64_t>(static_cast<double>(v) *
                                     options_.resource_fraction);
  };
  return {scale(cap.ff), scale(cap.lut), scale(cap.dsp), scale(cap.bram18)};
}

DesignPoint Optimizer::evaluate(const DesignConfig& config) const {
  return engine_.evaluate(config);
}

std::vector<DesignPoint> Optimizer::explore(DesignKind kind) const {
  return engine_.evaluate_chains(space_.chains(kind), budget());
}

DesignPoint Optimizer::select_best(
    const std::vector<DesignPoint>& feasible) const {
  // Running-best scan over the deterministic enumeration order. The scan
  // itself is serial (and cheap); all evaluation already happened on the
  // pool, so the result cannot depend on thread scheduling.
  const DesignPoint* best = nullptr;
  for (const DesignPoint& point : feasible) {
    if (best == nullptr || better_design(point, *best)) best = &point;
  }
  SCL_CHECK(best != nullptr, "select_best needs a non-empty feasible set");
  return *best;
}

std::optional<DesignPoint> Optimizer::branch_and_bound(
    const std::vector<CandidateChain>& chains,
    const fpga::ResourceVector& cap) const {
  // Flat view of the chains, enumeration order. Bounding works per
  // candidate; Phase B restores the chain structure so the monotone
  // early exit on over-budget fusion tails still applies.
  std::vector<const DesignConfig*> flat;
  for (const CandidateChain& chain : chains) {
    for (const DesignConfig& config : chain.configs) flat.push_back(&config);
  }
  // Phase A (serial, hence deterministic for any thread count): bound
  // every candidate, find a feasible incumbent by walking the most
  // promising bounds first, and decide the kept set from bounds alone.
  std::vector<char> keep(flat.size(), 0);
  std::optional<DesignPoint> seed;
  {
    const auto span = support::obs::tracer().span("dse/prune", "dse");
    const model::LowerBoundModel bound_model(*program_, options_.device);
    std::vector<model::LowerBound> bounds(flat.size());
    std::vector<std::size_t> order;
    order.reserve(flat.size());
    for (std::size_t i = 0; i < flat.size(); ++i) {
      bounds[i] = bound_model.bound(*flat[i]);
      // Even the BRAM lower bound misses the cap: provably infeasible,
      // never worth evaluating (not even as an incumbent).
      if (bounds[i].bram18 <= cap.bram18) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (bounds[a].cycles != bounds[b].cycles) {
        return bounds[a].cycles < bounds[b].cycles;
      }
      return a < b;  // enumeration index breaks ties deterministically
    });
    // Incumbent seed: evaluate bound-ascending in small batches until a
    // design fits. The tighter the seed, the smaller the kept set, but
    // any feasible design is a correct incumbent.
    constexpr std::size_t kSeedBatch = 8;
    std::vector<char> seen(flat.size(), 0);
    for (std::size_t at = 0; at < order.size() && !seed; at += kSeedBatch) {
      const std::size_t n = std::min(kSeedBatch, order.size() - at);
      std::vector<DesignConfig> batch;
      batch.reserve(n);
      for (std::size_t j = 0; j < n; ++j) {
        batch.push_back(*flat[order[at + j]]);
      }
      const std::vector<DesignPoint> points = engine_.evaluate_batch(batch);
      for (std::size_t j = 0; j < n; ++j) {
        seen[order[at + j]] = 1;
        const DesignPoint& point = points[j];
        if (point.analysis_errors > 0) continue;
        if (!point.resources.total.fits_within(cap)) continue;
        seed = point;
        break;
      }
    }
    if (!seed) return std::nullopt;  // exhaustively infeasible
    const double ceiling = kPruneMargin * seed->prediction.total_cycles;
    for (const std::size_t i : order) {
      if (bounds[i].cycles <= ceiling) keep[i] = 1;
    }
    std::int64_t pruned = 0;
    for (std::size_t i = 0; i < flat.size(); ++i) {
      // Seed-probed candidates were evaluated, not skipped; candidates
      // dropped later by Phase B's early exit are not counted either —
      // this counter reports lower-bound prunes only.
      if (keep[i] == 0 && seen[i] == 0) ++pruned;
    }
    engine_.add_pruned(pruned);
  }
  // Phase B: evaluate the kept subsets in enumeration order on the pool.
  // Candidates outside the kept set have exact latency >= their bound
  // > kPruneMargin x incumbent >= kPruneMargin x optimum, far beyond the
  // near-tie band, so the running-best scan over this subsequence picks
  // the same design the exhaustive scan would. Keeping the chain
  // structure (each kept subset is still ascending in fusion depth)
  // lets evaluate_chains early-exit the over-budget tails exactly as
  // the exhaustive path does.
  std::vector<CandidateChain> kept;
  kept.reserve(chains.size());
  std::size_t at = 0;
  for (const CandidateChain& chain : chains) {
    CandidateChain subset;
    for (const DesignConfig& config : chain.configs) {
      if (keep[at++] != 0) subset.configs.push_back(config);
    }
    if (!subset.configs.empty()) kept.push_back(std::move(subset));
  }
  const std::vector<DesignPoint> feasible = engine_.evaluate_chains(kept, cap);
  for (const DesignPoint& point : feasible) retained_.insert(point);
  if (feasible.empty()) return std::nullopt;  // unreachable: seed is kept
  return select_best(feasible);
}

DesignPoint Optimizer::optimize_baseline() const {
  const DseStats before = engine_.stats();
  std::optional<DesignPoint> best;
  if (options_.prune) {
    best = branch_and_bound(space_.chains(DesignKind::kBaseline), budget());
  } else {
    const std::vector<DesignPoint> feasible = explore(DesignKind::kBaseline);
    for (const DesignPoint& point : feasible) retained_.insert(point);
    if (!feasible.empty()) best = select_best(feasible);
  }
  const DseStats after = engine_.stats();
  SCL_INFO() << "baseline DSE for " << program_->name() << ": "
             << after.candidates_evaluated - before.candidates_evaluated
             << " candidates evaluated, "
             << after.candidates_pruned - before.candidates_pruned
             << " pruned on " << engine_.threads() << " thread(s)";
  if (!best) {
    throw ResourceError(
        str_cat("no baseline design for '", program_->name(),
                "' fits the device budget ", budget().to_string()));
  }
  return *best;
}

std::vector<DesignPoint> Optimizer::explore_temporal() const {
  return engine_.evaluate_chains(space_.temporal_chains(), budget());
}

DesignPoint Optimizer::optimize_temporal() const {
  const DseStats before = engine_.stats();
  std::optional<DesignPoint> best;
  if (options_.prune) {
    best = branch_and_bound(space_.temporal_chains(), budget());
  } else {
    const std::vector<DesignPoint> feasible = explore_temporal();
    for (const DesignPoint& point : feasible) retained_.insert(point);
    if (!feasible.empty()) best = select_best(feasible);
  }
  const DseStats after = engine_.stats();
  SCL_INFO() << "temporal DSE for " << program_->name() << ": "
             << after.candidates_evaluated - before.candidates_evaluated
             << " candidates evaluated, "
             << after.candidates_pruned - before.candidates_pruned
             << " pruned on " << engine_.threads() << " thread(s)";
  if (!best) {
    throw ResourceError(
        str_cat("no temporal-shift design for '", program_->name(),
                "' fits the device budget ", budget().to_string()));
  }
  return *best;
}

DesignPoint Optimizer::optimize_heterogeneous(
    const DesignPoint& baseline) const {
  // Paper §5.4: the heterogeneous design is constrained by the baseline's
  // hardware size and keeps its parallelism; only the fusion depth, tile
  // size and balancing factors vary. DSP and BRAM are hard caps; FF/LUT
  // get a 3% tolerance (estimation noise at P&R granularity — relevant
  // only for 1-D stencils whose pipe logic is not amortized by buffer
  // savings).
  fpga::ResourceVector cap = baseline.resources.total;
  cap.ff = static_cast<std::int64_t>(static_cast<double>(cap.ff) * 1.03);
  cap.lut = static_cast<std::int64_t>(static_cast<double>(cap.lut) * 1.03);

  // Table 3 protocol: the heterogeneous design keeps the baseline's
  // nominal tile (its region sweep), so the reported "tile size of the
  // slowest kernel" is the baseline tile minus the balancing shrink.
  const std::vector<DesignConfig> candidates =
      space_.heterogeneous_candidates(baseline.config);
  const DseStats before = engine_.stats();
  std::optional<DesignPoint> best;
  if (options_.prune) {
    // Shrink does not vary resources monotonically, so each candidate is
    // its own single-config chain: the chain early exit degenerates to
    // the plain feasibility filter.
    std::vector<CandidateChain> singleton(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      singleton[i].configs.push_back(candidates[i]);
    }
    best = branch_and_bound(singleton, cap);
  } else {
    const std::vector<DesignPoint> points = engine_.evaluate_batch(candidates);
    std::vector<DesignPoint> feasible;
    feasible.reserve(points.size());
    for (const DesignPoint& point : points) {
      if (point.analysis_errors > 0) continue;
      if (point.resources.total.fits_within(cap)) feasible.push_back(point);
    }
    for (const DesignPoint& point : feasible) retained_.insert(point);
    if (!feasible.empty()) best = select_best(feasible);
  }
  const DseStats after = engine_.stats();
  SCL_INFO() << "heterogeneous DSE for " << program_->name() << ": "
             << after.candidates_evaluated - before.candidates_evaluated
             << " candidates evaluated, "
             << after.candidates_pruned - before.candidates_pruned
             << " pruned on " << engine_.threads() << " thread(s)";
  if (!best) {
    throw ResourceError(
        str_cat("no heterogeneous design for '", program_->name(),
                "' fits within the baseline's resources ", cap.to_string()));
  }
  return *best;
}

std::vector<DesignPoint> Optimizer::pareto_frontier(
    sim::DesignKind kind) const {
  std::vector<DesignPoint> feasible = explore(kind);
  std::sort(feasible.begin(), feasible.end(), design_order);
  std::vector<DesignPoint> frontier;
  std::int64_t best_bram = std::numeric_limits<std::int64_t>::max();
  for (DesignPoint& point : feasible) {
    if (point.resources.total.bram18 < best_bram) {
      best_bram = point.resources.total.bram18;
      frontier.push_back(std::move(point));
    }
  }
  return frontier;
}

}  // namespace scl::core
