#include "core/optimizer.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace scl::core {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;
using scl::stencil::StencilProgram;

Optimizer::Optimizer(const StencilProgram& program, OptimizerOptions options)
    : program_(&program),
      options_(std::move(options)),
      resource_model_(options_.device),
      perf_model_(program, options_.device, options_.cone_mode) {
  SCL_CHECK(options_.resource_fraction > 0.0 &&
                options_.resource_fraction <= 1.0,
            "resource fraction must be in (0, 1]");
}

fpga::ResourceVector Optimizer::budget() const {
  const fpga::ResourceVector cap = options_.device.capacity;
  auto scale = [&](std::int64_t v) {
    return static_cast<std::int64_t>(static_cast<double>(v) *
                                     options_.resource_fraction);
  };
  return {scale(cap.ff), scale(cap.lut), scale(cap.dsp), scale(cap.bram18)};
}

std::vector<std::array<int, 3>> Optimizer::parallelism_candidates() const {
  const int dims = program_->dims();
  std::vector<std::array<int, 3>> out;
  const std::vector<int> per_dim{1, 2, 4, 8, 16};
  std::array<int, 3> k{1, 1, 1};
  auto emit = [&] {
    std::int64_t product = 1;
    for (int d = 0; d < dims; ++d) product *= k[static_cast<std::size_t>(d)];
    if (product <= options_.max_kernels && product >= 1) out.push_back(k);
  };
  if (dims == 1) {
    for (int a : per_dim) {
      k = {a, 1, 1};
      emit();
    }
  } else if (dims == 2) {
    for (int a : per_dim) {
      for (int b : per_dim) {
        k = {a, b, 1};
        emit();
      }
    }
  } else {
    for (int a : per_dim) {
      for (int b : per_dim) {
        for (int c : per_dim) {
          k = {a, b, c};
          emit();
        }
      }
    }
  }
  return out;
}

std::vector<std::int64_t> Optimizer::tile_candidates_for_dim(int d) const {
  std::vector<std::int64_t> base = options_.tile_candidates;
  if (base.empty()) {
    switch (program_->dims()) {
      case 1:
        base = {1024, 2048, 4096, 8192, 16384};
        break;
      case 2:
        base = {32, 64, 128, 256};
        break;
      default:
        base = {8, 16, 32, 64};
        break;
    }
  }
  const std::int64_t w = program_->grid_box().extent(d);
  std::vector<std::int64_t> out;
  for (const std::int64_t t : base) {
    if (t <= w) out.push_back(t);
  }
  if (out.empty()) out.push_back(w);
  return out;
}

std::vector<std::int64_t> Optimizer::fusion_candidates() const {
  std::vector<std::int64_t> base = options_.fusion_candidates;
  if (base.empty()) {
    // Dense at the bottom, then geometric with midpoints — the optima the
    // paper reports (6, 16, 23, 63, 69, ...) are rarely powers of two.
    base = {1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 64, 80, 96,
            128, 160, 192, 256, 384, 512};
  }
  std::vector<std::int64_t> out;
  for (const std::int64_t h : base) {
    if (h >= 1 && h <= program_->iterations()) out.push_back(h);
  }
  if (out.empty()) out.push_back(1);
  return out;
}

std::vector<std::array<std::int64_t, 3>> Optimizer::tile_shape_candidates()
    const {
  std::vector<std::array<std::int64_t, 3>> out;
  auto clamp_dim = [&](std::int64_t t, int d) {
    return std::max<std::int64_t>(
        1, std::min<std::int64_t>(t, program_->grid_box().extent(d)));
  };
  for (const std::int64_t tile : tile_candidates_for_dim(0)) {
    std::array<std::int64_t, 3> shape{1, 1, 1};
    for (int d = 0; d < program_->dims(); ++d) {
      shape[static_cast<std::size_t>(d)] = clamp_dim(tile, d);
    }
    out.push_back(shape);
    if (program_->dims() == 3) {
      for (const std::int64_t div : {2, 4}) {
        if (tile / div >= 4) {
          auto flat = shape;
          flat[0] = clamp_dim(tile / div, 0);
          out.push_back(flat);
        }
      }
    }
  }
  // Deduplicate (clamping can collapse shapes).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

DesignPoint Optimizer::evaluate(const DesignConfig& config) const {
  DesignPoint point;
  point.config = config;
  point.prediction = perf_model_.predict(config);
  point.resources =
      estimate_design_resources(*program_, config, resource_model_);
  return point;
}

std::vector<DesignPoint> Optimizer::pareto_frontier(
    sim::DesignKind kind) const {
  const fpga::ResourceVector cap = budget();
  std::vector<DesignPoint> feasible;
  for (const auto& par : parallelism_candidates()) {
    for (const int unroll : options_.unroll_candidates) {
      for (const auto& tile : tile_shape_candidates()) {
        DesignConfig config;
        config.kind = kind;
        config.unroll = unroll;
        config.tile_size = tile;
        for (int d = 0; d < program_->dims(); ++d) {
          config.parallelism[static_cast<std::size_t>(d)] =
              par[static_cast<std::size_t>(d)];
        }
        for (const std::int64_t h : fusion_candidates()) {
          config.fused_iterations = h;
          const DesignPoint point = evaluate(config);
          if (!point.resources.total.fits_within(cap)) break;
          feasible.push_back(point);
        }
      }
    }
  }
  std::sort(feasible.begin(), feasible.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              if (a.prediction.total_cycles != b.prediction.total_cycles) {
                return a.prediction.total_cycles < b.prediction.total_cycles;
              }
              return a.resources.total.bram18 < b.resources.total.bram18;
            });
  std::vector<DesignPoint> frontier;
  std::int64_t best_bram = std::numeric_limits<std::int64_t>::max();
  for (DesignPoint& point : feasible) {
    if (point.resources.total.bram18 < best_bram) {
      best_bram = point.resources.total.bram18;
      frontier.push_back(std::move(point));
    }
  }
  return frontier;
}

DesignPoint Optimizer::optimize_baseline() const {
  const fpga::ResourceVector cap = budget();
  std::optional<DesignPoint> best;
  std::int64_t evaluated = 0;

  for (const auto& par : parallelism_candidates()) {
    for (const int unroll : options_.unroll_candidates) {
      for (const auto& tile : tile_shape_candidates()) {
        DesignConfig config;
        config.kind = DesignKind::kBaseline;
        config.unroll = unroll;
        config.tile_size = tile;
        for (int d = 0; d < program_->dims(); ++d) {
          config.parallelism[static_cast<std::size_t>(d)] =
              par[static_cast<std::size_t>(d)];
        }
        for (const std::int64_t h : fusion_candidates()) {
          config.fused_iterations = h;
          // Resource use grows monotonically with h (cone buffers), so
          // stop raising h once the budget is exceeded.
          const DesignPoint point = evaluate(config);
          ++evaluated;
          if (!point.resources.total.fits_within(cap)) break;
          if (!best.has_value() ||
              point.prediction.total_cycles <
                  best->prediction.total_cycles) {
            best = point;
          } else if (point.prediction.total_cycles <=
                     1.0005 * best->prediction.total_cycles) {
            // Near-tie (the baseline's overlapped cones make the latency
            // insensitive to the parallelism arrangement): prefer more
            // compute units, then the squarer arrangement — both benefit
            // the heterogeneous design later derived from this choice
            // (more interior tiles, shorter pipe boundaries).
            auto spread = [](const std::array<int, 3>& arrangement) {
              return *std::max_element(arrangement.begin(),
                                       arrangement.end()) -
                     *std::min_element(arrangement.begin(),
                                       arrangement.end());
            };
            const std::int64_t k_new = config.total_kernels();
            const std::int64_t k_best = best->config.total_kernels();
            if (k_new > k_best ||
                (k_new == k_best && spread(config.parallelism) <
                                        spread(best->config.parallelism))) {
              best = point;
            }
          }
        }
      }
    }
  }
  SCL_INFO() << "baseline DSE for " << program_->name() << ": " << evaluated
             << " candidates";
  if (!best.has_value()) {
    throw ResourceError(
        str_cat("no baseline design for '", program_->name(),
                "' fits the device budget ", cap.to_string()));
  }
  return *best;
}

DesignPoint Optimizer::optimize_heterogeneous(
    const DesignPoint& baseline) const {
  // Paper §5.4: the heterogeneous design is constrained by the baseline's
  // hardware size and keeps its parallelism; only the fusion depth, tile
  // size and balancing factors vary. DSP and BRAM are hard caps; FF/LUT
  // get a 3% tolerance (estimation noise at P&R granularity — relevant
  // only for 1-D stencils whose pipe logic is not amortized by buffer
  // savings).
  fpga::ResourceVector cap = baseline.resources.total;
  cap.ff = static_cast<std::int64_t>(static_cast<double>(cap.ff) * 1.03);
  cap.lut = static_cast<std::int64_t>(static_cast<double>(cap.lut) * 1.03);
  std::optional<DesignPoint> best;
  std::int64_t evaluated = 0;

  // Table 3 protocol: the heterogeneous design keeps the baseline's
  // nominal tile (its region sweep), so the reported "tile size of the
  // slowest kernel" is the baseline tile minus the balancing shrink.
  {
    DesignConfig config;
    config.kind = DesignKind::kHeterogeneous;
    config.unroll = baseline.config.unroll;
    config.parallelism = baseline.config.parallelism;
    config.tile_size = baseline.config.tile_size;
    for (const std::int64_t h : fusion_candidates()) {
      config.fused_iterations = h;
      for (const std::int64_t shrink : options_.shrink_candidates) {
        // Apply the shrink only along dimensions that can rebalance
        // (K_d >= 3 leaves interior tiles to absorb the released cells).
        bool any_applied = shrink == 0;
        for (int d = 0; d < program_->dims(); ++d) {
          const auto ds = static_cast<std::size_t>(d);
          const bool can_balance = config.parallelism[ds] >= 3 &&
                                   shrink < config.tile_size[ds];
          config.edge_shrink[ds] = can_balance ? shrink : 0;
          any_applied |= can_balance;
        }
        if (!any_applied) continue;  // identical to the shrink=0 candidate
        const DesignPoint point = evaluate(config);
        ++evaluated;
        if (!point.resources.total.fits_within(cap)) continue;
        if (!best.has_value() ||
            point.prediction.total_cycles < best->prediction.total_cycles) {
          best = point;
        }
      }
    }
  }
  SCL_INFO() << "heterogeneous DSE for " << program_->name() << ": "
             << evaluated << " candidates";
  if (!best.has_value()) {
    throw ResourceError(
        str_cat("no heterogeneous design for '", program_->name(),
                "' fits within the baseline's resources ", cap.to_string()));
  }
  return *best;
}

}  // namespace scl::core
