#include "core/features.hpp"

#include "support/strings.hpp"

namespace scl::core {

using scl::stencil::StencilProgram;

StencilFeatures extract_features(const StencilProgram& program) {
  StencilFeatures f;
  f.name = program.name();
  f.dims = program.dims();
  for (int d = 0; d < 3; ++d) {
    f.extents[static_cast<std::size_t>(d)] = program.grid_box().extent(d);
    f.delta_w[static_cast<std::size_t>(d)] =
        d < program.dims() ? program.delta_w(d) : 0;
  }
  f.iterations = program.iterations();
  f.field_count = program.field_count();
  f.mutable_field_count = static_cast<int>(program.mutable_field_count());
  f.stage_count = program.stage_count();
  f.multi_stage = program.stage_count() > 1;
  for (int s = 0; s < program.stage_count(); ++s) {
    if (program.stage_needs_double_buffer(s)) f.needs_double_buffer = true;
  }
  f.ops_per_cell = program.ops_per_cell();
  f.iter_radii = program.iter_radii();
  f.hls = fpga::estimate_program(program, 1);

  // One naive iteration reads the stencil footprint and writes one cell
  // per mutable field; use the per-cell op count against the write+read
  // bytes of a cache-less pass as a rough intensity proxy.
  const double bytes =
      static_cast<double>(
          (program.field_count() + program.mutable_field_count())) *
      static_cast<double>(StencilProgram::element_bytes());
  f.flops_per_byte = static_cast<double>(f.ops_per_cell.total()) / bytes;
  return f;
}

std::string StencilFeatures::to_string() const {
  std::string out = str_cat(name, ": ", dims, "-D, grid ");
  for (int d = 0; d < dims; ++d) {
    if (d) out += "x";
    out += std::to_string(extents[static_cast<std::size_t>(d)]);
  }
  out += str_cat(", H=", iterations, ", ", field_count, " field(s), ",
                 stage_count, " stage(s), ops/cell {add=", ops_per_cell.adds,
                 ", mul=", ops_per_cell.muls, ", div=", ops_per_cell.divs,
                 "}, II=", hls.ii, ", depth=", hls.depth, ", dw=");
  for (int d = 0; d < dims; ++d) {
    if (d) out += ",";
    out += std::to_string(delta_w[static_cast<std::size_t>(d)]);
  }
  return out;
}

}  // namespace scl::core
