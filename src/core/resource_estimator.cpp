#include "core/resource_estimator.hpp"

#include <algorithm>

#include "arch/temporal_layout.hpp"
#include "support/error.hpp"

namespace scl::core {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;
using scl::stencil::StencilProgram;

DesignResources estimate_design_resources(const StencilProgram& program,
                                          const DesignConfig& config,
                                          const fpga::ResourceModel& model) {
  config.validate(program);
  DesignResources out;

  if (config.family == arch::DesignFamily::kTemporalShift) {
    // One deep pipeline, no pipes, no tile buffer: the whole on-chip
    // state is the shift registers, and the datapath is replicated
    // T x V times (T chained stage groups, V vector lanes each). Both
    // grow monotonically with the temporal degree, which keeps the
    // evaluator's first-over-budget chain cut valid for T-ascending
    // chains.
    const arch::TemporalLayout layout =
        arch::make_temporal_layout(program, config);
    fpga::KernelShape shape;
    shape.local_buffer_elements = layout.sr_elements;
    shape.unroll = layout.temporal_degree * layout.vector_width;
    const fpga::ResourceVector kernel = model.estimate_kernel(program, shape);
    // R replica cascades, each a full copy of the shift registers and the
    // datapath. worst_kernel stays the single cascade (per-kernel fit).
    out.total = kernel * config.replication;
    out.buffer_elements_total =
        layout.sr_elements * config.replication;
    out.worst_kernel = kernel;
    return out;
  }

  std::array<std::vector<std::int64_t>, 3> extents;
  for (int d = 0; d < 3; ++d) {
    extents[static_cast<std::size_t>(d)] = config.tile_extents(d);
  }

  int shadow_stages = 0;
  for (int s = 0; s < program.stage_count(); ++s) {
    if (program.stage_needs_double_buffer(s)) ++shadow_stages;
  }

  for (int c0 = 0; c0 < config.parallelism[0]; ++c0) {
    for (int c1 = 0; c1 < config.parallelism[1]; ++c1) {
      for (int c2 = 0; c2 < config.parallelism[2]; ++c2) {
        const std::array<int, 3> coord{c0, c1, c2};
        // Buffer footprint of this kernel: tile extent plus cone margins
        // on region-exterior faces, one-stage halos on pipe-shared faces.
        std::array<std::int64_t, 3> padded{1, 1, 1};
        std::int64_t cells = 1;
        std::int64_t pipe_faces = 0;
        for (int d = 0; d < program.dims(); ++d) {
          const auto ds = static_cast<std::size_t>(d);
          std::int64_t extent =
              extents[ds][static_cast<std::size_t>(coord[ds])];
          for (int side = 0; side < 2; ++side) {
            const auto ss = static_cast<std::size_t>(side);
            const bool edge =
                coord[ds] == (side == 0 ? 0 : config.parallelism[ds] - 1);
            const bool shared =
                config.kind == DesignKind::kHeterogeneous && !edge;
            if (shared) {
              extent += program.max_stage_radii()[ds][ss];
              ++pipe_faces;
            } else {
              extent += program.iter_radii()[ds][ss] *
                        config.fused_iterations;
            }
          }
          padded[ds] = extent;
          cells *= extent;
        }
        // Pipe FIFO depth: all mutable-field strips of two iterations in
        // flight (matches the simulator's sizing rule). Strip area is the
        // widest tangential cross-section; strip width is the field's
        // read radius toward the face.
        std::int64_t pipe_depth = 0;
        if (pipe_faces > 0) {
          for (int d = 0; d < program.dims(); ++d) {
            const std::int64_t tangential =
                cells / padded[static_cast<std::size_t>(d)];
            std::int64_t width_sum = 0;
            for (int f = 0; f < program.field_count(); ++f) {
              if (program.is_constant_field(f)) continue;
              const auto& frr = program.field_read_radii(f);
              width_sum += std::max(frr[static_cast<std::size_t>(d)][0],
                                    frr[static_cast<std::size_t>(d)][1]);
            }
            pipe_depth =
                std::max(pipe_depth, 2 * width_sum * tangential);
          }
        }

        // Double-buffered stages replicate the whole local array — the
        // OpenCL-to-FPGA flow the paper builds on materializes the full
        // shadow copy (this is precisely what caps the baseline's tile
        // size and fusion depth on the board).
        fpga::KernelShape shape;
        shape.local_buffer_elements =
            cells * (program.field_count() + shadow_stages);
        shape.unroll = config.unroll;
        shape.pipe_endpoints = static_cast<int>(2 * pipe_faces);
        shape.pipe_fifos = static_cast<int>(pipe_faces);
        shape.pipe_depth_elements = pipe_depth;

        const fpga::ResourceVector kernel =
            model.estimate_kernel(program, shape);
        // Every replica instantiates this kernel position (and its pipes)
        // once; replicas never share buffers or channels.
        out.total += kernel * config.replication;
        out.buffer_elements_total +=
            shape.local_buffer_elements * config.replication;
        out.pipe_count += pipe_faces * config.replication;
        out.pipe_fifo_elements_total +=
            pipe_faces * pipe_depth * config.replication;
        if (kernel.lut > out.worst_kernel.lut) out.worst_kernel = kernel;
      }
    }
  }
  return out;
}

}  // namespace scl::core
