#include "core/candidate_space.hpp"

#include <algorithm>

#include "core/optimizer.hpp"

namespace scl::core {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;

CandidateSpace::CandidateSpace(const scl::stencil::StencilProgram& program,
                               const OptimizerOptions& options)
    : program_(&program), options_(&options) {}

std::vector<std::array<int, 3>> CandidateSpace::parallelism_candidates()
    const {
  const int dims = program_->dims();
  std::vector<std::array<int, 3>> out;
  const std::vector<int> per_dim{1, 2, 4, 8, 16};
  std::array<int, 3> k{1, 1, 1};
  auto emit = [&] {
    std::int64_t product = 1;
    for (int d = 0; d < dims; ++d) product *= k[static_cast<std::size_t>(d)];
    if (product <= options_->max_kernels && product >= 1) out.push_back(k);
  };
  if (dims == 1) {
    for (int a : per_dim) {
      k = {a, 1, 1};
      emit();
    }
  } else if (dims == 2) {
    for (int a : per_dim) {
      for (int b : per_dim) {
        k = {a, b, 1};
        emit();
      }
    }
  } else {
    for (int a : per_dim) {
      for (int b : per_dim) {
        for (int c : per_dim) {
          k = {a, b, c};
          emit();
        }
      }
    }
  }
  return out;
}

std::vector<int> CandidateSpace::replication_factors() const {
  std::vector<int> out = options_->replication_candidates;
  if (out.empty()) {
    const int banks = std::max(1, options_->device.memory.banks);
    for (int r = 1; r <= banks; r *= 2) out.push_back(r);
    if (out.back() != banks) out.push_back(banks);
  }
  std::vector<int> filtered;
  for (const int r : out) {
    if (r >= 1) filtered.push_back(r);
  }
  if (filtered.empty()) filtered.push_back(1);
  std::sort(filtered.begin(), filtered.end());
  filtered.erase(std::unique(filtered.begin(), filtered.end()),
                 filtered.end());
  return filtered;
}

std::vector<std::int64_t> CandidateSpace::tile_candidates_for_dim(
    int d) const {
  std::vector<std::int64_t> base = options_->tile_candidates;
  if (base.empty()) {
    switch (program_->dims()) {
      case 1:
        base = {1024, 2048, 4096, 8192, 16384};
        break;
      case 2:
        base = {32, 64, 128, 256};
        break;
      default:
        base = {8, 16, 32, 64};
        break;
    }
  }
  const std::int64_t w = program_->grid_box().extent(d);
  std::vector<std::int64_t> out;
  for (const std::int64_t t : base) {
    if (t <= w) out.push_back(t);
  }
  if (out.empty()) out.push_back(w);
  return out;
}

std::vector<std::int64_t> CandidateSpace::fusion_candidates() const {
  std::vector<std::int64_t> base = options_->fusion_candidates;
  if (base.empty()) {
    // Dense at the bottom, then geometric with midpoints — the optima the
    // paper reports (6, 16, 23, 63, 69, ...) are rarely powers of two.
    base = {1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 64, 80, 96,
            128, 160, 192, 256, 384, 512};
  }
  std::vector<std::int64_t> out;
  for (const std::int64_t h : base) {
    if (h >= 1 && h <= program_->iterations()) out.push_back(h);
  }
  if (out.empty()) out.push_back(1);
  return out;
}

std::vector<std::array<std::int64_t, 3>> CandidateSpace::tile_shape_candidates()
    const {
  std::vector<std::array<std::int64_t, 3>> out;
  auto clamp_dim = [&](std::int64_t t, int d) {
    return std::max<std::int64_t>(
        1, std::min<std::int64_t>(t, program_->grid_box().extent(d)));
  };
  for (const std::int64_t tile : tile_candidates_for_dim(0)) {
    std::array<std::int64_t, 3> shape{1, 1, 1};
    for (int d = 0; d < program_->dims(); ++d) {
      shape[static_cast<std::size_t>(d)] = clamp_dim(tile, d);
    }
    out.push_back(shape);
    if (program_->dims() == 3) {
      for (const std::int64_t div : {2, 4}) {
        if (tile / div >= 4) {
          auto flat = shape;
          flat[0] = clamp_dim(tile / div, 0);
          out.push_back(flat);
        }
      }
    }
  }
  // Deduplicate (clamping can collapse shapes).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<CandidateChain> CandidateSpace::chains(DesignKind kind) const {
  const auto replications = replication_factors();
  const auto parallelisms = parallelism_candidates();
  const auto tiles = tile_shape_candidates();
  const auto fusions = fusion_candidates();
  std::vector<CandidateChain> out;
  out.reserve(replications.size() * parallelisms.size() *
              options_->unroll_candidates.size() * tiles.size());
  for (const int replication : replications) {
    for (const auto& par : parallelisms) {
      for (const int unroll : options_->unroll_candidates) {
        for (const auto& tile : tiles) {
          DesignConfig config;
          config.kind = kind;
          config.replication = replication;
          config.unroll = unroll;
          config.tile_size = tile;
          for (int d = 0; d < program_->dims(); ++d) {
            config.parallelism[static_cast<std::size_t>(d)] =
                par[static_cast<std::size_t>(d)];
          }
          CandidateChain chain;
          chain.configs.reserve(fusions.size());
          for (const std::int64_t h : fusions) {
            config.fused_iterations = h;
            chain.configs.push_back(config);
          }
          out.push_back(std::move(chain));
        }
      }
    }
  }
  return out;
}

std::vector<std::int64_t> CandidateSpace::strip_candidates() const {
  const int sd = program_->dims() - 1;
  std::vector<std::int64_t> out = tile_candidates_for_dim(sd);
  out.push_back(program_->grid_box().extent(sd));  // monotile
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::int64_t> CandidateSpace::temporal_degree_candidates() const {
  std::vector<std::int64_t> out;
  for (const std::int64_t h : fusion_candidates()) {
    if (program_->iterations() % h == 0) out.push_back(h);
  }
  if (out.empty()) out.push_back(1);
  return out;
}

std::vector<CandidateChain> CandidateSpace::temporal_chains() const {
  const auto replications = replication_factors();
  const auto strips = strip_candidates();
  const auto degrees = temporal_degree_candidates();
  std::vector<CandidateChain> out;
  out.reserve(replications.size() * options_->unroll_candidates.size() *
              strips.size());
  for (const int replication : replications) {
    for (const int unroll : options_->unroll_candidates) {
      for (const std::int64_t strip : strips) {
        DesignConfig config;
        config.family = arch::DesignFamily::kTemporalShift;
        config.kind = DesignKind::kBaseline;
        config.replication = replication;
        config.unroll = unroll;
        for (int d = 0; d < program_->dims(); ++d) {
          config.tile_size[static_cast<std::size_t>(d)] =
              program_->grid_box().extent(d);
        }
        config.tile_size[static_cast<std::size_t>(program_->dims() - 1)] =
            strip;
        CandidateChain chain;
        chain.configs.reserve(degrees.size());
        for (const std::int64_t t : degrees) {
          config.fused_iterations = t;
          chain.configs.push_back(config);
        }
        out.push_back(std::move(chain));
      }
    }
  }
  return out;
}

std::vector<DesignConfig> CandidateSpace::heterogeneous_candidates(
    const DesignConfig& baseline) const {
  std::vector<DesignConfig> out;
  DesignConfig config;
  config.kind = DesignKind::kHeterogeneous;
  config.replication = baseline.replication;
  config.unroll = baseline.unroll;
  config.parallelism = baseline.parallelism;
  config.tile_size = baseline.tile_size;
  for (const std::int64_t h : fusion_candidates()) {
    config.fused_iterations = h;
    for (const std::int64_t shrink : options_->shrink_candidates) {
      bool any_applied = shrink == 0;
      for (int d = 0; d < program_->dims(); ++d) {
        const auto ds = static_cast<std::size_t>(d);
        const bool can_balance = config.parallelism[ds] >= 3 &&
                                 shrink < config.tile_size[ds];
        config.edge_shrink[ds] = can_balance ? shrink : 0;
        any_applied |= can_balance;
      }
      if (!any_applied) continue;  // identical to the shrink=0 candidate
      out.push_back(config);
    }
  }
  return out;
}

std::int64_t CandidateSpace::chain_config_count(DesignKind kind) const {
  std::int64_t total = 0;
  for (const CandidateChain& chain : chains(kind)) {
    total += static_cast<std::int64_t>(chain.configs.size());
  }
  return total;
}

std::vector<CandidateSpace::ChainBlock> CandidateSpace::blocks(
    const std::vector<CandidateChain>& chains, std::int64_t grain_configs) {
  std::vector<ChainBlock> out;
  if (chains.empty()) return out;
  const std::int64_t grain = grain_configs < 1 ? 1 : grain_configs;
  std::size_t begin = 0;
  std::int64_t accumulated = 0;
  for (std::size_t i = 0; i < chains.size(); ++i) {
    accumulated += static_cast<std::int64_t>(chains[i].configs.size());
    if (accumulated >= grain) {
      out.emplace_back(begin, i + 1);
      begin = i + 1;
      accumulated = 0;
    }
  }
  if (begin < chains.size()) out.emplace_back(begin, chains.size());
  return out;
}

}  // namespace scl::core
