// Performance optimizer / design-space exploration (paper §5.1).
//
// The optimizer drives the analytical model over the design space and
// returns the fastest configuration that fits the device:
//
//  * optimize_baseline() reproduces the state-of-the-art flow of Nacci et
//    al. [DAC'13]: it explores iteration-fusion depth, tile size and
//    parallelism (plus the unroll factor N_PE) for the overlapped-tiling
//    design under the device's resource budget.
//  * optimize_heterogeneous() reproduces the paper's evaluation protocol
//    (§5.4): parallelism and unroll are pinned to the baseline's, the
//    total resources are capped by what the *baseline* consumed, and the
//    fusion depth, tile size and workload-balancing factors are chosen by
//    the model.
#pragma once

#include <optional>
#include <vector>

#include "core/resource_estimator.hpp"
#include "fpga/device.hpp"
#include "model/perf_model.hpp"
#include "sim/design.hpp"
#include "stencil/program.hpp"

namespace scl::core {

struct OptimizerOptions {
  fpga::DeviceSpec device = fpga::virtex7_690t();
  /// Usable fraction of the device (routing headroom).
  double resource_fraction = 0.8;
  /// Candidate fusion depths (filtered to <= H). Empty = powers of two.
  std::vector<std::int64_t> fusion_candidates;
  /// Candidate per-dimension tile extents. Empty = built-in defaults
  /// scaled by dimensionality.
  std::vector<std::int64_t> tile_candidates;
  /// Candidate unroll factors (N_PE).
  std::vector<int> unroll_candidates{1, 2, 4, 8, 16};
  /// Max kernels per region (the paper uses up to 16).
  std::int64_t max_kernels = 16;
  /// Candidate edge-shrink values for workload balancing.
  std::vector<std::int64_t> shrink_candidates{0, 1, 2, 4, 8};
  model::ConeMode cone_mode = model::ConeMode::kRefined;
};

/// One evaluated design: configuration, predicted latency, resources.
struct DesignPoint {
  sim::DesignConfig config;
  model::Prediction prediction;
  DesignResources resources;
};

class Optimizer {
 public:
  Optimizer(const scl::stencil::StencilProgram& program,
            OptimizerOptions options);

  /// Best overlapped-tiling design fitting the device budget.
  /// Throws scl::ResourceError when nothing fits.
  DesignPoint optimize_baseline() const;

  /// Best pipe-shared heterogeneous design using the baseline's
  /// parallelism/unroll and at most the baseline's resources.
  DesignPoint optimize_heterogeneous(const DesignPoint& baseline) const;

  /// Evaluates one configuration (prediction + resources) without
  /// feasibility filtering. Useful for sweeps and ablation studies.
  DesignPoint evaluate(const sim::DesignConfig& config) const;

  /// All budget-feasible designs of `kind` that are Pareto-optimal in
  /// (predicted cycles, BRAM18), sorted by ascending cycles. The first
  /// entry is the latency optimum; walking the list trades speed for
  /// memory footprint.
  std::vector<DesignPoint> pareto_frontier(sim::DesignKind kind) const;

  /// The resource budget configurations must fit
  /// (device capacity x resource_fraction).
  fpga::ResourceVector budget() const;

  const OptimizerOptions& options() const { return options_; }

 private:
  std::vector<std::array<int, 3>> parallelism_candidates() const;
  std::vector<std::int64_t> tile_candidates_for_dim(int d) const;
  /// Per-dimension tile extents to explore: uniform shapes, plus (for 3-D
  /// stencils) variants with the outermost dimension halved or quartered —
  /// the flattened-tile shapes the paper's Table 3 favors (16x32x32).
  std::vector<std::array<std::int64_t, 3>> tile_shape_candidates() const;
  std::vector<std::int64_t> fusion_candidates() const;

  const scl::stencil::StencilProgram* program_;
  OptimizerOptions options_;
  fpga::ResourceModel resource_model_;
  model::PerfModel perf_model_;
};

}  // namespace scl::core
