// Performance optimizer / design-space exploration (paper §5.1).
//
// The optimizer drives the analytical model over the design space and
// returns the fastest configuration that fits the device:
//
//  * optimize_baseline() reproduces the state-of-the-art flow of Nacci et
//    al. [DAC'13]: it explores iteration-fusion depth, tile size and
//    parallelism (plus the unroll factor N_PE) for the overlapped-tiling
//    design under the device's resource budget.
//  * optimize_heterogeneous() reproduces the paper's evaluation protocol
//    (§5.4): parallelism and unroll are pinned to the baseline's, the
//    total resources are capped by what the *baseline* consumed, and the
//    fusion depth, tile size and workload-balancing factors are chosen by
//    the model.
//
// Internally the search is split into a pure CandidateSpace enumerator
// and a parallel, memoizing EvaluationEngine (see candidate_space.hpp,
// evaluation_engine.hpp). Candidates are evaluated concurrently on a
// thread pool, collected in enumeration order, and selected by an
// explicit deterministic comparator — so explore results, Pareto
// frontiers and best() are bit-identical for any thread count.
#pragma once

#include <optional>
#include <vector>

#include "core/candidate_space.hpp"
#include "core/design_point.hpp"
#include "core/evaluation_engine.hpp"
#include "core/pareto_front.hpp"
#include "core/resource_estimator.hpp"
#include "fpga/device.hpp"
#include "model/perf_model.hpp"
#include "sim/design.hpp"
#include "stencil/program.hpp"

namespace scl::core {

struct OptimizerOptions {
  fpga::DeviceSpec device = fpga::virtex7_690t();
  /// Usable fraction of the device (routing headroom).
  double resource_fraction = 0.8;
  /// Candidate fusion depths (filtered to <= H). Empty = powers of two.
  std::vector<std::int64_t> fusion_candidates;
  /// Candidate per-dimension tile extents. Empty = built-in defaults
  /// scaled by dimensionality.
  std::vector<std::int64_t> tile_candidates;
  /// Candidate unroll factors (N_PE).
  std::vector<int> unroll_candidates{1, 2, 4, 8, 16};
  /// Max kernels per region (the paper uses up to 16).
  std::int64_t max_kernels = 16;
  /// Candidate spatial replication factors R (PE copies bound to disjoint
  /// global-memory bank groups). Empty = derived from the device: {1} on
  /// single-bank (DDR) devices — keeping their searches bit-identical to
  /// the pre-replication DSE — otherwise the powers of two up to and
  /// including the bank count.
  std::vector<int> replication_candidates;
  /// Candidate edge-shrink values for workload balancing.
  std::vector<std::int64_t> shrink_candidates{0, 1, 2, 4, 8};
  model::ConeMode cone_mode = model::ConeMode::kRefined;
  /// Worker threads for candidate evaluation. <= 0 resolves via the
  /// SCL_THREADS environment variable, then hardware concurrency.
  int threads = 0;
  /// Run the static design verifier (pipe graph + halo/bounds passes) on
  /// every evaluated candidate and drop candidates with error
  /// diagnostics from the feasible set. Off by default: the shipped
  /// candidate spaces are verified clean, so the per-candidate cost only
  /// pays off when exploring hand-extended spaces.
  bool analyze_candidates = false;
  /// Deep per-candidate verification: additionally generate the
  /// candidate's OpenCL and run the pass-4 kernel-IR abstract
  /// interpretation (SCL4xx) on it, folding error diagnostics into the
  /// same feasibility filter as analyze_candidates. Far more expensive
  /// (full codegen per candidate); only meaningful together with
  /// analyze_candidates. The emitted designs verify clean, so with a
  /// healthy emitter the chosen optimum is bit-identical with this on or
  /// off (tested in tests/ir_test.cpp).
  bool deep_ir_analysis = false;
  /// Branch-and-bound pruning for the optimize_* searches: admissible
  /// lower bounds (model/lower_bound.hpp) discard candidates that
  /// provably cannot beat a deterministically chosen incumbent. The
  /// reported optimum is bit-identical with pruning on or off (see
  /// tests/dse_prune_test.cpp); explore() and pareto_frontier() always
  /// stay exhaustive.
  bool prune = true;
};

class Optimizer {
 public:
  Optimizer(const scl::stencil::StencilProgram& program,
            OptimizerOptions options);

  /// Best overlapped-tiling design fitting the device budget.
  /// Throws scl::ResourceError when nothing fits.
  DesignPoint optimize_baseline() const;

  /// Best pipe-shared heterogeneous design using the baseline's
  /// parallelism/unroll and at most the baseline's resources.
  DesignPoint optimize_heterogeneous(const DesignPoint& baseline) const;

  /// Best temporal-blocked shift-register design (arch/family.hpp)
  /// fitting the device budget: vector width x strip width x temporal
  /// degree, searched with the same branch-and-bound machinery and the
  /// same determinism contract as optimize_baseline. Throws
  /// scl::ResourceError when nothing fits.
  DesignPoint optimize_temporal() const;

  /// Every budget-feasible temporal-shift design, in enumeration order
  /// (the temporal counterpart of explore()).
  std::vector<DesignPoint> explore_temporal() const;

  /// Evaluates one configuration (prediction + resources) without
  /// feasibility filtering. Useful for sweeps and ablation studies.
  /// Memoized: repeated calls with the same config hit the eval cache.
  DesignPoint evaluate(const sim::DesignConfig& config) const;

  /// All budget-feasible designs of `kind` that are Pareto-optimal in
  /// (predicted cycles, BRAM18), sorted by ascending cycles. The first
  /// entry is the latency optimum; walking the list trades speed for
  /// memory footprint.
  std::vector<DesignPoint> pareto_frontier(sim::DesignKind kind) const;

  /// Every budget-feasible design of `kind`, in enumeration order — the
  /// raw material of pareto_frontier() and optimize_baseline(). The list
  /// is bit-identical for any thread count.
  std::vector<DesignPoint> explore(sim::DesignKind kind) const;

  /// The resource budget configurations must fit
  /// (device capacity x resource_fraction).
  fpga::ResourceVector budget() const;

  const OptimizerOptions& options() const { return options_; }
  const CandidateSpace& space() const { return space_; }

  /// Evaluation counters (candidates, cache hits, wall-clock) accumulated
  /// over every search this optimizer ran.
  DseStats dse_stats() const { return engine_.stats(); }

  /// The (cycles, BRAM18) Pareto front of every feasible design the
  /// optimize_* searches evaluated, accumulated across searches. With
  /// pruning on this covers the latency-competitive band the search kept
  /// (bounds more than kPruneMargin above the incumbent are discarded
  /// unevaluated) — the high-latency/low-BRAM tail of the exhaustive
  /// frontier is intentionally absent; pareto_frontier() computes the
  /// full curve. Deterministic for any thread count.
  const std::vector<DesignPoint>& retained_frontier() const {
    return retained_.points();
  }

  /// Pruning margin: a candidate is discarded only when its admissible
  /// latency bound exceeds kPruneMargin x the incumbent's exact latency.
  /// The running-best scan's 1.0005x near-tie band lets the incumbent
  /// drift above the true optimum by a bounded chain of near-tie
  /// replacements (worst case ~1.065x across the shipped candidate
  /// spaces); 1.10 leaves headroom beyond that, so every candidate the
  /// exhaustive scan could ever select survives the prune.
  static constexpr double kPruneMargin = 1.10;

 private:
  DesignPoint select_best(const std::vector<DesignPoint>& feasible) const;

  /// Branch-and-bound over `chains` (enumeration order) under resource
  /// cap `cap`: serial deterministic bound/seed/keep phase, then one
  /// parallel chain evaluation of the kept subsets (which preserves the
  /// monotone early exit on over-budget fusion tails). Returns the same
  /// design the exhaustive filter-and-select path returns, or nullopt
  /// when nothing feasible exists. Feasible points feed retained_.
  std::optional<DesignPoint> branch_and_bound(
      const std::vector<CandidateChain>& chains,
      const fpga::ResourceVector& cap) const;

  const scl::stencil::StencilProgram* program_;
  OptimizerOptions options_;
  CandidateSpace space_;
  /// Mutable: the engine's cache and counters advance under const
  /// searches; evaluation itself is pure.
  mutable EvaluationEngine engine_;
  /// Mutable for the same reason: a by-product of const searches.
  mutable ParetoFront retained_;
};

}  // namespace scl::core
