// Performance optimizer / design-space exploration (paper §5.1).
//
// The optimizer drives the analytical model over the design space and
// returns the fastest configuration that fits the device:
//
//  * optimize_baseline() reproduces the state-of-the-art flow of Nacci et
//    al. [DAC'13]: it explores iteration-fusion depth, tile size and
//    parallelism (plus the unroll factor N_PE) for the overlapped-tiling
//    design under the device's resource budget.
//  * optimize_heterogeneous() reproduces the paper's evaluation protocol
//    (§5.4): parallelism and unroll are pinned to the baseline's, the
//    total resources are capped by what the *baseline* consumed, and the
//    fusion depth, tile size and workload-balancing factors are chosen by
//    the model.
//
// Internally the search is split into a pure CandidateSpace enumerator
// and a parallel, memoizing EvaluationEngine (see candidate_space.hpp,
// evaluation_engine.hpp). Candidates are evaluated concurrently on a
// thread pool, collected in enumeration order, and selected by an
// explicit deterministic comparator — so explore results, Pareto
// frontiers and best() are bit-identical for any thread count.
#pragma once

#include <optional>
#include <vector>

#include "core/candidate_space.hpp"
#include "core/evaluation_engine.hpp"
#include "core/resource_estimator.hpp"
#include "fpga/device.hpp"
#include "model/perf_model.hpp"
#include "sim/design.hpp"
#include "stencil/program.hpp"

namespace scl::core {

struct OptimizerOptions {
  fpga::DeviceSpec device = fpga::virtex7_690t();
  /// Usable fraction of the device (routing headroom).
  double resource_fraction = 0.8;
  /// Candidate fusion depths (filtered to <= H). Empty = powers of two.
  std::vector<std::int64_t> fusion_candidates;
  /// Candidate per-dimension tile extents. Empty = built-in defaults
  /// scaled by dimensionality.
  std::vector<std::int64_t> tile_candidates;
  /// Candidate unroll factors (N_PE).
  std::vector<int> unroll_candidates{1, 2, 4, 8, 16};
  /// Max kernels per region (the paper uses up to 16).
  std::int64_t max_kernels = 16;
  /// Candidate edge-shrink values for workload balancing.
  std::vector<std::int64_t> shrink_candidates{0, 1, 2, 4, 8};
  model::ConeMode cone_mode = model::ConeMode::kRefined;
  /// Worker threads for candidate evaluation. <= 0 resolves via the
  /// SCL_THREADS environment variable, then hardware concurrency.
  int threads = 0;
  /// Run the static design verifier (pipe graph + halo/bounds passes) on
  /// every evaluated candidate and drop candidates with error
  /// diagnostics from the feasible set. Off by default: the shipped
  /// candidate spaces are verified clean, so the per-candidate cost only
  /// pays off when exploring hand-extended spaces.
  bool analyze_candidates = false;
};

/// One evaluated design: configuration, predicted latency, resources.
struct DesignPoint {
  sim::DesignConfig config;
  model::Prediction prediction;
  DesignResources resources;
  /// Error diagnostics from the candidate verifier (0 when verification
  /// is off or the design is clean).
  std::int64_t analysis_errors = 0;
};

/// The total deterministic design ordering: predicted latency, then the
/// resource vector (BRAM18, FF, LUT, DSP), then the canonical config key.
/// No two distinct configs compare equal, so any selection or sort that
/// uses this order is independent of enumeration and thread scheduling.
/// Shared by the serial and parallel search paths.
bool design_order(const DesignPoint& a, const DesignPoint& b);

class Optimizer {
 public:
  Optimizer(const scl::stencil::StencilProgram& program,
            OptimizerOptions options);

  /// Best overlapped-tiling design fitting the device budget.
  /// Throws scl::ResourceError when nothing fits.
  DesignPoint optimize_baseline() const;

  /// Best pipe-shared heterogeneous design using the baseline's
  /// parallelism/unroll and at most the baseline's resources.
  DesignPoint optimize_heterogeneous(const DesignPoint& baseline) const;

  /// Evaluates one configuration (prediction + resources) without
  /// feasibility filtering. Useful for sweeps and ablation studies.
  /// Memoized: repeated calls with the same config hit the eval cache.
  DesignPoint evaluate(const sim::DesignConfig& config) const;

  /// All budget-feasible designs of `kind` that are Pareto-optimal in
  /// (predicted cycles, BRAM18), sorted by ascending cycles. The first
  /// entry is the latency optimum; walking the list trades speed for
  /// memory footprint.
  std::vector<DesignPoint> pareto_frontier(sim::DesignKind kind) const;

  /// Every budget-feasible design of `kind`, in enumeration order — the
  /// raw material of pareto_frontier() and optimize_baseline(). The list
  /// is bit-identical for any thread count.
  std::vector<DesignPoint> explore(sim::DesignKind kind) const;

  /// The resource budget configurations must fit
  /// (device capacity x resource_fraction).
  fpga::ResourceVector budget() const;

  const OptimizerOptions& options() const { return options_; }
  const CandidateSpace& space() const { return space_; }

  /// Evaluation counters (candidates, cache hits, wall-clock) accumulated
  /// over every search this optimizer ran.
  DseStats dse_stats() const { return engine_.stats(); }

 private:
  DesignPoint select_best(const std::vector<DesignPoint>& feasible) const;

  const scl::stencil::StencilProgram* program_;
  OptimizerOptions options_;
  CandidateSpace space_;
  /// Mutable: the engine's cache and counters advance under const
  /// searches; evaluation itself is pure.
  mutable EvaluationEngine engine_;
};

}  // namespace scl::core
