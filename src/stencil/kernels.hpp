// The paper's benchmark suite (Table 2) as StencilProgram factories.
//
// Each factory takes the grid extents and iteration count so tests can run
// tiny instances while the bench harness uses the paper's input sizes. The
// registry carries the Table 2 defaults (source suite, input size, H).
//
// Update formulas follow the upstream benchmark kernels:
//   Jacobi-1D/2D  — PolyBench jacobi-1d/2d-imper (neighbor averaging)
//   Jacobi-3D     — Parboil `stencil` (c0*center + c1*sum of 6 neighbors)
//   HotSpot-2D/3D — Rodinia hotspot (thermal RC update, constant power field)
//   FDTD-2D       — PolyBench fdtd-2d (ey, ex, hz staged updates)
//   FDTD-3D       — 3-D Yee scheme (6 fields, 6 staged curl updates)
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stencil/program.hpp"

namespace scl::stencil {

StencilProgram make_jacobi1d(std::int64_t n, std::int64_t iterations);
StencilProgram make_jacobi2d(std::int64_t n0, std::int64_t n1,
                             std::int64_t iterations);
StencilProgram make_jacobi3d(std::int64_t n0, std::int64_t n1, std::int64_t n2,
                             std::int64_t iterations);
StencilProgram make_hotspot2d(std::int64_t n0, std::int64_t n1,
                              std::int64_t iterations);
StencilProgram make_hotspot3d(std::int64_t n0, std::int64_t n1,
                              std::int64_t n2, std::int64_t iterations);
StencilProgram make_fdtd2d(std::int64_t n0, std::int64_t n1,
                           std::int64_t iterations);
StencilProgram make_fdtd3d(std::int64_t n0, std::int64_t n1, std::int64_t n2,
                           std::int64_t iterations);

/// One row of the paper's Table 2.
struct BenchmarkInfo {
  std::string name;    ///< e.g. "Jacobi-2D"
  std::string source;  ///< originating suite, e.g. "Polybench"
  int dims = 0;
  std::array<std::int64_t, 3> input_size{1, 1, 1};  ///< paper input extents
  std::int64_t iterations = 0;                      ///< paper iteration count
  /// Builds the program at arbitrary scale (extents padded with 1).
  std::function<StencilProgram(std::array<std::int64_t, 3>, std::int64_t)>
      factory;

  /// Instantiates at the paper's input size and iteration count.
  StencilProgram make_paper_scale() const {
    return factory(input_size, iterations);
  }

  /// Instantiates a scaled-down instance for functional simulation.
  StencilProgram make_scaled(std::array<std::int64_t, 3> extents,
                             std::int64_t iters) const {
    return factory(extents, iters);
  }
};

/// The seven benchmarks of Table 2, in paper order.
const std::vector<BenchmarkInfo>& paper_benchmarks();

/// Looks up a benchmark by name (case-sensitive). Throws scl::Error if
/// unknown.
const BenchmarkInfo& find_benchmark(const std::string& name);

}  // namespace scl::stencil
