// StencilProgram: the framework's input language.
//
// An iterative stencil algorithm is described as a set of named scalar
// fields plus an ordered list of update stages executed once per time
// iteration. Each stage writes one output field at every cell of its
// updatable region, reading a fixed pattern of (field, offset) neighbors.
// This covers the whole paper suite: Jacobi-style single-field kernels are
// one double-buffered stage; FDTD is three sequential in-place stages over
// three fields; HotSpot reads an additional constant (never-written) field.
//
// From the declarative description the class derives everything the tiling
// designs and the analytical model need: per-stage read radii, the
// per-iteration cone expansion radius (the paper's `Δw_d`), which stages
// need double buffering, per-element operation counts, and each field's
// updatable region (cells outside it are Dirichlet boundary, held constant).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stencil/geometry.hpp"

namespace scl::stencil {

class Formula;

/// One neighbor access of a stage: field index + relative offset.
struct ReadAccess {
  int field = 0;
  Offset offset{0, 0, 0};
};

/// Floating-point operation counts of one stage applied to one cell.
/// These feed the HLS initiation-interval estimator and the DSP model.
struct OpCounts {
  int adds = 0;
  int muls = 0;
  int divs = 0;

  int total() const { return adds + muls + divs; }

  OpCounts operator+(const OpCounts& o) const {
    return {adds + o.adds, muls + o.muls, divs + o.divs};
  }
};

/// Executor-provided view of the neighborhood of the cell being updated.
/// `read` returns the latest committed value of `field` at the given
/// relative offset (committed = as of the end of the previous stage).
class CellReader {
 public:
  virtual ~CellReader() = default;
  virtual float read(int field, const Offset& off) const = 0;
};

using UpdateFn = std::function<float(const CellReader&)>;

/// Per-dimension, per-side non-negative radii. radii[d][0] is toward the
/// low side of dimension d, radii[d][1] toward the high side.
using SideRadii = std::array<std::array<std::int64_t, 2>, kMaxDims>;

/// One update stage of the iteration.
struct Stage {
  std::string name;
  int output_field = 0;
  std::vector<ReadAccess> reads;
  UpdateFn update;
  OpCounts ops;
  /// Symbolic form of the update (set when built via make_stage); the
  /// OpenCL code generator requires it.
  std::shared_ptr<const Formula> formula;
};

/// Seeds a field's initial condition; must be deterministic in the cell
/// index so every executor starts from identical data.
using InitFn = std::function<float(const Index&)>;

/// Declaration of one scalar field.
struct Field {
  std::string name;
  InitFn init;
  /// Textual initializer spec (e.g. "affine 3 5 0 2 97") when the field
  /// was built via make_field()/the parser; enables round-tripping the
  /// program through the `.stencil` format. Empty for custom lambdas.
  std::string init_spec;
};

class StencilProgram {
 public:
  /// Builds and validates a program. Throws scl::Error when:
  /// stages are empty, a field is written by more than one stage, a read
  /// names an unknown field, or an offset has more than one non-zero
  /// component (the pipe topology only connects face-adjacent tiles, so the
  /// framework is restricted to axis-aligned "von Neumann" shapes — the same
  /// restriction the paper's Figure 1(c) pipe layout implies).
  StencilProgram(std::string name, int dims,
                 std::array<std::int64_t, 3> extents, std::int64_t iterations,
                 std::vector<Field> fields, std::vector<Stage> stages);

  const std::string& name() const { return name_; }
  int dims() const { return dims_; }
  /// Full grid box, [0, W_d) per active dimension.
  const Box& grid_box() const { return grid_box_; }
  /// Total iteration count H from the benchmark definition.
  std::int64_t iterations() const { return iterations_; }

  int field_count() const { return static_cast<int>(fields_.size()); }
  const Field& field(int f) const { return fields_.at(static_cast<std::size_t>(f)); }
  int stage_count() const { return static_cast<int>(stages_.size()); }
  const Stage& stage(int s) const { return stages_.at(static_cast<std::size_t>(s)); }
  const std::vector<Stage>& stages() const { return stages_; }

  /// Index of the stage writing field `f`, or -1 if `f` is constant.
  int writing_stage(int f) const { return writing_stage_.at(static_cast<std::size_t>(f)); }
  bool is_constant_field(int f) const { return writing_stage(f) < 0; }

  /// True if stage `s` reads its own output field at a non-zero offset and
  /// therefore must write through a shadow buffer swapped after the stage.
  bool stage_needs_double_buffer(int s) const {
    return double_buffered_.at(static_cast<std::size_t>(s));
  }

  /// Max |offset| of stage `s`'s reads toward each side of each dimension.
  const SideRadii& stage_radii(int s) const {
    return stage_radii_.at(static_cast<std::size_t>(s));
  }

  /// Validity shrinkage of stage `s`'s output within one iteration: how far
  /// the freshly-written field has shrunk relative to the data valid at the
  /// iteration's start. iter_radii() is the max of these over all mutable
  /// fields; the code generator uses the per-stage values to size the
  /// per-stage cone bounds (a stage whose output shrinks less than the
  /// iteration radius must be computed correspondingly wider so later
  /// stages can consume it).
  const SideRadii& stage_shrink(int s) const {
    return stage_shrink_.at(static_cast<std::size_t>(s));
  }

  /// Cone expansion per fused iteration: how far field validity shrinks per
  /// dimension/side when one full iteration executes (validity-propagation
  /// closure over the stage sequence).
  const SideRadii& iter_radii() const { return iter_radii_; }

  /// Max |offset| with which *any* stage reads field `f`, per
  /// dimension/side. Determines how wide a halo of `f` a tile must hold
  /// (and how wide the pipe strips for `f` are). All zero for fields only
  /// read at offset 0.
  const SideRadii& field_read_radii(int f) const {
    return field_read_radii_.at(static_cast<std::size_t>(f));
  }

  /// Component-wise max of all stages' read radii (the widest halo any
  /// field needs).
  const SideRadii& max_stage_radii() const { return max_stage_radii_; }

  /// The paper's Δw_d: total tile growth along dimension d per fused
  /// iteration (low-side + high-side radius).
  std::int64_t delta_w(int d) const {
    return iter_radii_[static_cast<std::size_t>(d)][0] +
           iter_radii_[static_cast<std::size_t>(d)][1];
  }

  /// Max radius over all dimensions and sides.
  std::int64_t max_radius() const;

  /// Region of the grid whose cells are ever written by field `f`'s stage
  /// (the grid box shrunk by that stage's read radii). Cells outside it are
  /// Dirichlet boundary: they keep their initial value forever. For constant
  /// fields this is empty.
  Box updated_box(int f) const;

  /// Total floating-point op counts of one full iteration applied to one
  /// cell (summed over stages).
  OpCounts ops_per_cell() const;

  /// Bytes of one cell of one field (the paper's Δs; all fields are float).
  static constexpr std::int64_t element_bytes() { return 4; }

  /// Bytes a tile of `box` cells must move per field set for a read
  /// (all fields) and write (non-constant fields only).
  std::int64_t fields_total() const { return field_count(); }
  std::int64_t mutable_field_count() const;

 private:
  std::string name_;
  int dims_;
  Box grid_box_;
  std::int64_t iterations_;
  std::vector<Field> fields_;
  std::vector<Stage> stages_;
  std::vector<int> writing_stage_;
  std::vector<bool> double_buffered_;
  std::vector<SideRadii> stage_radii_;
  std::vector<SideRadii> stage_shrink_;
  std::vector<SideRadii> field_read_radii_;
  SideRadii iter_radii_;
  SideRadii max_stage_radii_;
};

}  // namespace scl::stencil
