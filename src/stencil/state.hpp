// Program state: one Grid per field over some domain box.
#pragma once

#include <vector>

#include "stencil/grid.hpp"
#include "stencil/program.hpp"

namespace scl::stencil {

using FieldSet = std::vector<Grid<float>>;

/// Allocates one grid per program field over `domain` and seeds every cell
/// with the field's initial-condition function.
inline FieldSet make_initial_state(const StencilProgram& program,
                                   const Box& domain) {
  FieldSet fields;
  fields.reserve(static_cast<std::size_t>(program.field_count()));
  for (int f = 0; f < program.field_count(); ++f) {
    Grid<float> grid(domain);
    const InitFn& init = program.field(f).init;
    for_each_cell(domain, [&](const Index& p) { grid.at(p) = init(p); });
    fields.push_back(std::move(grid));
  }
  return fields;
}

}  // namespace scl::stencil
