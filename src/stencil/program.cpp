#include "stencil/program.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::stencil {

namespace {

SideRadii zero_radii() {
  SideRadii r{};
  for (auto& dim : r) dim = {0, 0};
  return r;
}

SideRadii max_radii(const SideRadii& a, const SideRadii& b) {
  SideRadii out{};
  for (std::size_t d = 0; d < kMaxDims; ++d) {
    out[d][0] = std::max(a[d][0], b[d][0]);
    out[d][1] = std::max(a[d][1], b[d][1]);
  }
  return out;
}

/// Radii needed to read at `off`: reading x+off from cell x pulls the
/// low side when off is negative and the high side when positive.
SideRadii offset_radii(const Offset& off) {
  SideRadii out = zero_radii();
  for (std::size_t d = 0; d < kMaxDims; ++d) {
    if (off[d] < 0) out[d][0] = -off[d];
    if (off[d] > 0) out[d][1] = off[d];
  }
  return out;
}

SideRadii add_radii(const SideRadii& a, const SideRadii& b) {
  SideRadii out{};
  for (std::size_t d = 0; d < kMaxDims; ++d) {
    out[d][0] = a[d][0] + b[d][0];
    out[d][1] = a[d][1] + b[d][1];
  }
  return out;
}

bool is_axis_aligned(const Offset& off) {
  int nonzero = 0;
  for (int d = 0; d < kMaxDims; ++d) {
    if (off[d] != 0) ++nonzero;
  }
  return nonzero <= 1;
}

}  // namespace

StencilProgram::StencilProgram(std::string name, int dims,
                               std::array<std::int64_t, 3> extents,
                               std::int64_t iterations,
                               std::vector<Field> fields,
                               std::vector<Stage> stages)
    : name_(std::move(name)),
      dims_(dims),
      grid_box_(Box::from_extents(dims, extents)),
      iterations_(iterations),
      fields_(std::move(fields)),
      stages_(std::move(stages)) {
  if (iterations_ <= 0) throw Error("program needs a positive iteration count");
  if (fields_.empty()) throw Error("program needs at least one field");
  if (stages_.empty()) throw Error("program needs at least one stage");

  writing_stage_.assign(fields_.size(), -1);
  for (int s = 0; s < stage_count(); ++s) {
    const Stage& st = stages_[static_cast<std::size_t>(s)];
    if (st.output_field < 0 || st.output_field >= field_count()) {
      throw Error(str_cat("stage '", st.name, "' writes unknown field ",
                          st.output_field));
    }
    if (!st.update) {
      throw Error(str_cat("stage '", st.name, "' has no update function"));
    }
    int& writer = writing_stage_[static_cast<std::size_t>(st.output_field)];
    if (writer >= 0) {
      throw Error(str_cat("field '",
                          fields_[static_cast<std::size_t>(st.output_field)].name,
                          "' is written by more than one stage"));
    }
    writer = s;
    for (const ReadAccess& read : st.reads) {
      if (read.field < 0 || read.field >= field_count()) {
        throw Error(str_cat("stage '", st.name, "' reads unknown field ",
                            read.field));
      }
      if (!is_axis_aligned(read.offset)) {
        throw Error(str_cat(
            "stage '", st.name,
            "' uses a diagonal offset; the pipe topology only connects "
            "face-adjacent tiles (axis-aligned shapes only)"));
      }
      for (int d = dims_; d < kMaxDims; ++d) {
        if (read.offset[d] != 0) {
          throw Error(str_cat("stage '", st.name,
                              "' reads beyond the program dimensionality"));
        }
      }
    }
  }

  // Per-stage read radii, per-field read radii, double-buffer requirements.
  stage_radii_.reserve(stages_.size());
  double_buffered_.reserve(stages_.size());
  field_read_radii_.assign(fields_.size(), zero_radii());
  max_stage_radii_ = zero_radii();
  for (const Stage& st : stages_) {
    SideRadii radii = zero_radii();
    bool shadow = false;
    for (const ReadAccess& read : st.reads) {
      const SideRadii r = offset_radii(read.offset);
      radii = max_radii(radii, r);
      auto& frr = field_read_radii_[static_cast<std::size_t>(read.field)];
      frr = max_radii(frr, r);
      if (read.field == st.output_field && read.offset != Offset{0, 0, 0}) {
        shadow = true;
      }
    }
    stage_radii_.push_back(radii);
    double_buffered_.push_back(shadow);
    max_stage_radii_ = max_radii(max_stage_radii_, radii);
  }

  // Per-iteration cone radius: propagate validity shrinkage through the
  // stage sequence. s[f] is how far field f's latest version has shrunk
  // relative to the data valid at the start of the iteration.
  std::vector<SideRadii> shrink(fields_.size(), zero_radii());
  stage_shrink_.reserve(stages_.size());
  for (int s = 0; s < stage_count(); ++s) {
    const Stage& st = stages_[static_cast<std::size_t>(s)];
    SideRadii out = zero_radii();
    for (const ReadAccess& read : st.reads) {
      out = max_radii(out, add_radii(shrink[static_cast<std::size_t>(read.field)],
                                     offset_radii(read.offset)));
    }
    shrink[static_cast<std::size_t>(st.output_field)] = out;
    stage_shrink_.push_back(out);
  }
  iter_radii_ = zero_radii();
  for (int f = 0; f < field_count(); ++f) {
    if (!is_constant_field(f)) {
      iter_radii_ = max_radii(iter_radii_, shrink[static_cast<std::size_t>(f)]);
    }
  }
}

std::int64_t StencilProgram::max_radius() const {
  std::int64_t r = 0;
  for (int d = 0; d < dims_; ++d) {
    r = std::max({r, iter_radii_[static_cast<std::size_t>(d)][0],
                  iter_radii_[static_cast<std::size_t>(d)][1]});
  }
  return r;
}

Box StencilProgram::updated_box(int f) const {
  const int s = writing_stage(f);
  if (s < 0) return Box{};  // constant field: nothing is ever updated
  const SideRadii& radii = stage_radii_[static_cast<std::size_t>(s)];
  Box box = grid_box_;
  for (int d = 0; d < dims_; ++d) {
    box.lo[d] += radii[static_cast<std::size_t>(d)][0];
    box.hi[d] -= radii[static_cast<std::size_t>(d)][1];
  }
  return box;
}

OpCounts StencilProgram::ops_per_cell() const {
  OpCounts total;
  for (const Stage& st : stages_) total = total + st.ops;
  return total;
}

std::int64_t StencilProgram::mutable_field_count() const {
  std::int64_t count = 0;
  for (int f = 0; f < field_count(); ++f) {
    if (!is_constant_field(f)) ++count;
  }
  return count;
}

}  // namespace scl::stencil
