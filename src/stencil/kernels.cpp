#include "stencil/kernels.hpp"

#include "stencil/formula.hpp"
#include "stencil/parser.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::stencil {

// Initial conditions are deterministic, bounded index hashes
// (PolyBench-style) expressed as textual initializer specs so every
// benchmark round-trips through the .stencil format; see make_initializer.

StencilProgram make_jacobi1d(std::int64_t n, std::int64_t iterations) {
  const std::vector<std::string> fields{"A"};
  return StencilProgram(
      "Jacobi-1D", 1, {n, 1, 1}, iterations,
      {make_field("A", "affine 3 0 0 2 97")},
      {make_stage("jacobi1d", 0, "0.33333f * ($A(-1) + $A(0) + $A(1))",
                  fields, 1)});
}

StencilProgram make_jacobi2d(std::int64_t n0, std::int64_t n1,
                             std::int64_t iterations) {
  const std::vector<std::string> fields{"A"};
  return StencilProgram(
      "Jacobi-2D", 2, {n0, n1, 1}, iterations,
      {make_field("A", "affine 3 5 0 2 97")},
      {make_stage("jacobi2d", 0,
                  "0.2f * ($A(0,0) + $A(0,-1) + $A(0,1) + $A(-1,0) + "
                  "$A(1,0))",
                  fields, 2)});
}

StencilProgram make_jacobi3d(std::int64_t n0, std::int64_t n1, std::int64_t n2,
                             std::int64_t iterations) {
  const std::vector<std::string> fields{"A"};
  return StencilProgram(
      "Jacobi-3D", 3, {n0, n1, n2}, iterations,
      {make_field("A", "affine 3 5 7 2 97")},
      {make_stage("jacobi3d", 0,
                  "0.4f * $A(0,0,0) + 0.1f * ($A(-1,0,0) + $A(1,0,0) + "
                  "$A(0,-1,0) + $A(0,1,0) + $A(0,0,-1) + $A(0,0,1))",
                  fields, 3)});
}

StencilProgram make_hotspot2d(std::int64_t n0, std::int64_t n1,
                              std::int64_t iterations) {
  const std::vector<std::string> fields{"temp", "power"};
  // Rodinia hotspot RC thermal update: Cap=0.5, Rx=Ry=0.1, Rz=0.05,
  // ambient 80.
  return StencilProgram(
      "HotSpot-2D", 2, {n0, n1, 1}, iterations,
      {make_field("temp", "affine 1 2 0 320 41"),
       make_field("power", "affine 7 11 0 1 13")},
      {make_stage("hotspot2d", 0,
                  "$temp(0,0) + 0.5f * ($power(0,0)"
                  " + ($temp(-1,0) + $temp(1,0) - 2.0f * $temp(0,0)) * 0.1f"
                  " + ($temp(0,-1) + $temp(0,1) - 2.0f * $temp(0,0)) * 0.1f"
                  " + (80.0f - $temp(0,0)) * 0.05f)",
                  fields, 2)});
}

StencilProgram make_hotspot3d(std::int64_t n0, std::int64_t n1,
                              std::int64_t n2, std::int64_t iterations) {
  const std::vector<std::string> fields{"temp", "power"};
  return StencilProgram(
      "HotSpot-3D", 3, {n0, n1, n2}, iterations,
      {make_field("temp", "affine 1 2 3 320 41"),
       make_field("power", "affine 7 11 5 1 13")},
      {make_stage(
          "hotspot3d", 0,
          "$temp(0,0,0) + 0.5f * ($power(0,0,0)"
          " + ($temp(-1,0,0) + $temp(1,0,0) - 2.0f * $temp(0,0,0)) * 0.06f"
          " + ($temp(0,-1,0) + $temp(0,1,0) - 2.0f * $temp(0,0,0)) * 0.06f"
          " + ($temp(0,0,-1) + $temp(0,0,1) - 2.0f * $temp(0,0,0)) * 0.06f"
          " + (80.0f - $temp(0,0,0)) * 0.04f)",
          fields, 3)});
}

StencilProgram make_fdtd2d(std::int64_t n0, std::int64_t n1,
                           std::int64_t iterations) {
  const std::vector<std::string> fields{"ex", "ey", "hz"};
  // PolyBench fdtd-2d staged updates; hz reads the ex/ey values committed
  // earlier in the same iteration.
  return StencilProgram(
      "FDTD-2D", 2, {n0, n1, 1}, iterations,
      {make_field("ex", "wave 0.3"), make_field("ey", "wave 0.2"),
       make_field("hz", "wave 0.4")},
      {make_stage("fdtd2d_ey", 1,
                  "$ey(0,0) - 0.5f * ($hz(0,0) - $hz(-1,0))", fields, 2),
       make_stage("fdtd2d_ex", 0,
                  "$ex(0,0) - 0.5f * ($hz(0,0) - $hz(0,-1))", fields, 2),
       make_stage("fdtd2d_hz", 2,
                  "$hz(0,0) - 0.7f * ($ex(0,1) - $ex(0,0) + $ey(1,0) - "
                  "$ey(0,0))",
                  fields, 2)});
}

StencilProgram make_fdtd3d(std::int64_t n0, std::int64_t n1, std::int64_t n2,
                           std::int64_t iterations) {
  const std::vector<std::string> fields{"ex", "ey", "ez", "hx", "hy", "hz"};
  // 3-D Yee scheme: E updates read backward differences of H; H updates
  // read forward differences of E.
  auto curl = [&fields](std::string name, int out, const std::string& fa,
                        const std::string& oa, const std::string& fb,
                        const std::string& ob, const std::string& coeff) {
    const std::string zero = "(0,0,0)";
    const std::string expr =
        str_cat("$", fields[static_cast<std::size_t>(out)], zero, " - ",
                coeff, " * (($", fa, oa, " - $", fa, zero, ") - ($", fb, ob,
                " - $", fb, zero, "))");
    return make_stage(std::move(name), out, expr, fields, 3);
  };
  return StencilProgram(
      "FDTD-3D", 3, {n0, n1, n2}, iterations,
      {make_field("ex", "wave 0.10"), make_field("ey", "wave 0.12"),
       make_field("ez", "wave 0.14"), make_field("hx", "wave 0.16"),
       make_field("hy", "wave 0.18"), make_field("hz", "wave 0.20")},
      {curl("fdtd3d_ex", 0, "hz", "(0,-1,0)", "hy", "(0,0,-1)", "0.5f"),
       curl("fdtd3d_ey", 1, "hx", "(0,0,-1)", "hz", "(-1,0,0)", "0.5f"),
       curl("fdtd3d_ez", 2, "hy", "(-1,0,0)", "hx", "(0,-1,0)", "0.5f"),
       curl("fdtd3d_hx", 3, "ez", "(0,1,0)", "ey", "(0,0,1)", "0.7f"),
       curl("fdtd3d_hy", 4, "ex", "(0,0,1)", "ez", "(1,0,0)", "0.7f"),
       curl("fdtd3d_hz", 5, "ey", "(1,0,0)", "ex", "(0,1,0)", "0.7f")});
}

const std::vector<BenchmarkInfo>& paper_benchmarks() {
  static const std::vector<BenchmarkInfo> kSuite = [] {
    std::vector<BenchmarkInfo> suite;
    suite.push_back({"Jacobi-1D", "Polybench", 1, {131072, 1, 1}, 1024,
                     [](std::array<std::int64_t, 3> e, std::int64_t h) {
                       return make_jacobi1d(e[0], h);
                     }});
    suite.push_back({"Jacobi-2D", "Polybench", 2, {2048, 2048, 1}, 1024,
                     [](std::array<std::int64_t, 3> e, std::int64_t h) {
                       return make_jacobi2d(e[0], e[1], h);
                     }});
    suite.push_back({"Jacobi-3D", "Parboil", 3, {1024, 1024, 1024}, 1024,
                     [](std::array<std::int64_t, 3> e, std::int64_t h) {
                       return make_jacobi3d(e[0], e[1], e[2], h);
                     }});
    suite.push_back({"HotSpot-2D", "Rodinia", 2, {4096, 4096, 1}, 1000,
                     [](std::array<std::int64_t, 3> e, std::int64_t h) {
                       return make_hotspot2d(e[0], e[1], h);
                     }});
    suite.push_back({"HotSpot-3D", "Rodinia", 3, {4096, 4096, 128}, 1000,
                     [](std::array<std::int64_t, 3> e, std::int64_t h) {
                       return make_hotspot3d(e[0], e[1], e[2], h);
                     }});
    suite.push_back({"FDTD-2D", "Polybench", 2, {2048, 2048, 1}, 500,
                     [](std::array<std::int64_t, 3> e, std::int64_t h) {
                       return make_fdtd2d(e[0], e[1], h);
                     }});
    suite.push_back({"FDTD-3D", "Polybench", 3, {2048, 2048, 2048}, 500,
                     [](std::array<std::int64_t, 3> e, std::int64_t h) {
                       return make_fdtd3d(e[0], e[1], e[2], h);
                     }});
    return suite;
  }();
  return kSuite;
}

const BenchmarkInfo& find_benchmark(const std::string& name) {
  for (const BenchmarkInfo& info : paper_benchmarks()) {
    if (info.name == name) return info;
  }
  throw Error(str_cat("unknown benchmark '", name, "'"));
}

}  // namespace scl::stencil
