// Golden reference executor.
//
// Runs the stencil program directly over the full grid with the canonical
// stage semantics (sequential stages; double-buffered stages commit after
// the stage; Dirichlet borders untouched). Every tiled/fused design in
// src/sim must reproduce this executor's output bit-exactly — the property
// tests in tests/sim rely on it.
#pragma once

#include "stencil/program.hpp"
#include "stencil/state.hpp"

namespace scl::stencil {

class ReferenceExecutor {
 public:
  /// Seeds the initial condition over the program's grid box.
  explicit ReferenceExecutor(const StencilProgram& program);

  /// Advances the state by `count` iterations.
  void run(std::int64_t count);

  /// Iterations executed so far.
  std::int64_t iteration() const { return iteration_; }

  const StencilProgram& program() const { return *program_; }
  const FieldSet& fields() const { return fields_; }
  const Grid<float>& field(int f) const {
    return fields_.at(static_cast<std::size_t>(f));
  }

 private:
  void run_stage(int stage_index);

  const StencilProgram* program_;
  FieldSet fields_;
  Grid<float> shadow_;  // reused scratch for double-buffered stages
  std::int64_t iteration_ = 0;
};

/// Executes one stage of `program` over the cells of `compute_box`,
/// reading from `fields` and writing results through `emit(p, value)`.
/// This is the single shared evaluation loop used by the reference
/// executor and all tile executors, which is what makes bit-exact
/// agreement achievable.
template <typename EmitFn>
void evaluate_stage(const StencilProgram& program, int stage_index,
                    const FieldSet& fields, const Box& compute_box,
                    EmitFn&& emit) {
  struct Reader final : CellReader {
    const FieldSet* fields;
    Index p{};
    float read(int field, const Offset& off) const override {
      return (*fields)[static_cast<std::size_t>(field)].at(
          offset_index(p, off));
    }
  };
  Reader reader;
  reader.fields = &fields;
  const Stage& stage = program.stage(stage_index);
  for_each_cell(compute_box, [&](const Index& p) {
    reader.p = p;
    emit(p, stage.update(reader));
  });
}

}  // namespace scl::stencil
