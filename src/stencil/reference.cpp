#include "stencil/reference.hpp"

#include "support/error.hpp"

namespace scl::stencil {

ReferenceExecutor::ReferenceExecutor(const StencilProgram& program)
    : program_(&program),
      fields_(make_initial_state(program, program.grid_box())),
      shadow_(program.grid_box()) {}

void ReferenceExecutor::run(std::int64_t count) {
  SCL_CHECK(count >= 0, "cannot run a negative iteration count");
  for (std::int64_t it = 0; it < count; ++it) {
    for (int s = 0; s < program_->stage_count(); ++s) {
      run_stage(s);
    }
    ++iteration_;
  }
}

void ReferenceExecutor::run_stage(int stage_index) {
  const Stage& stage = program_->stage(stage_index);
  const Box compute = program_->updated_box(stage.output_field);
  Grid<float>& out = fields_[static_cast<std::size_t>(stage.output_field)];
  if (program_->stage_needs_double_buffer(stage_index)) {
    evaluate_stage(*program_, stage_index, fields_, compute,
                   [&](const Index& p, float v) { shadow_.at(p) = v; });
    out.copy_box_from(shadow_, compute);
  } else {
    // In-place is safe: validation guarantees the stage reads its own
    // output field at offset 0 only, so no cross-cell dependency exists.
    evaluate_stage(*program_, stage_index, fields_, compute,
                   [&](const Index& p, float v) { out.at(p) = v; });
  }
}

}  // namespace scl::stencil
