#include "stencil/formula.hpp"

#include <cctype>
#include <cstdlib>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::stencil {

enum class NodeKind { kNumber, kRead, kNegate, kAdd, kSub, kMul, kDiv };

struct Formula::Node {
  NodeKind kind;
  float value = 0.0f;       // kNumber
  int read_index = -1;      // kRead: index into reads_
  std::string literal;      // kNumber: original spelling for render()
  NodePtr lhs;
  NodePtr rhs;
};

class Formula::Parser {
 public:
  Parser(const std::string& text, const std::vector<std::string>& fields,
         int dims, std::vector<ReadAccess>* reads, OpCounts* ops)
      : text_(text), fields_(fields), dims_(dims), reads_(reads), ops_(ops) {}

  NodePtr parse() {
    NodePtr root = parse_expr();
    skip_ws();
    if (pos_ != text_.size()) {
      fail(str_cat("unexpected trailing input at position ", pos_));
    }
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error(str_cat("formula parse error: ", why, " in \"", text_, "\""));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  NodePtr parse_expr() {
    NodePtr lhs = parse_term();
    while (true) {
      const char c = peek();
      if (c != '+' && c != '-') return lhs;
      ++pos_;
      NodePtr node = std::make_unique<Node>();
      node->kind = c == '+' ? NodeKind::kAdd : NodeKind::kSub;
      node->lhs = std::move(lhs);
      node->rhs = parse_term();
      ++ops_->adds;
      lhs = std::move(node);
    }
  }

  NodePtr parse_term() {
    NodePtr lhs = parse_factor();
    while (true) {
      const char c = peek();
      if (c != '*' && c != '/') return lhs;
      ++pos_;
      NodePtr node = std::make_unique<Node>();
      node->kind = c == '*' ? NodeKind::kMul : NodeKind::kDiv;
      node->lhs = std::move(lhs);
      node->rhs = parse_factor();
      if (node->kind == NodeKind::kMul) {
        ++ops_->muls;
      } else {
        ++ops_->divs;
      }
      lhs = std::move(node);
    }
  }

  NodePtr parse_factor() {
    const char c = peek();
    if (c == '-') {
      ++pos_;
      NodePtr node = std::make_unique<Node>();
      node->kind = NodeKind::kNegate;
      node->lhs = parse_factor();
      return node;
    }
    if (c == '(') {
      ++pos_;
      NodePtr inner = parse_expr();
      if (!consume(')')) fail("missing ')'");
      return inner;
    }
    if (c == '$') return parse_read();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return parse_number();
    }
    fail(str_cat("unexpected character '", std::string(1, c), "'"));
  }

  NodePtr parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    std::string digits = text_.substr(start, pos_ - start);
    std::string spelling = digits;
    if (pos_ < text_.size() && (text_[pos_] == 'f' || text_[pos_] == 'F')) {
      spelling += text_[pos_];
      ++pos_;
    }
    char* end = nullptr;
    const float value = std::strtof(digits.c_str(), &end);
    if (end == nullptr || *end != '\0') fail(str_cat("bad number '", digits, "'"));
    NodePtr node = std::make_unique<Node>();
    node->kind = NodeKind::kNumber;
    node->value = value;
    node->literal = spelling;
    return node;
  }

  NodePtr parse_read() {
    ++pos_;  // past '$'
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    const std::string name = text_.substr(start, pos_ - start);
    int field = -1;
    for (std::size_t f = 0; f < fields_.size(); ++f) {
      if (fields_[f] == name) field = static_cast<int>(f);
    }
    if (field < 0) fail(str_cat("unknown field '$", name, "'"));
    if (!consume('(')) fail("expected '(' after field name");
    Offset off{0, 0, 0};
    for (int d = 0; d < dims_; ++d) {
      if (d > 0 && !consume(',')) fail("expected ',' between offsets");
      off[static_cast<std::size_t>(d)] = parse_offset_int();
    }
    if (!consume(')')) {
      fail(str_cat("expected ')': offsets must have exactly ", dims_,
                   " components"));
    }
    // Deduplicate reads; the executor caches nothing, but the program's
    // read list drives radii and the II estimate.
    int index = -1;
    for (std::size_t i = 0; i < reads_->size(); ++i) {
      if ((*reads_)[i].field == field && (*reads_)[i].offset == off) {
        index = static_cast<int>(i);
      }
    }
    if (index < 0) {
      index = static_cast<int>(reads_->size());
      reads_->push_back(ReadAccess{field, off});
    }
    NodePtr node = std::make_unique<Node>();
    node->kind = NodeKind::kRead;
    node->read_index = index;
    return node;
  }

  int parse_offset_int() {
    skip_ws();
    bool negative = false;
    if (consume('-')) negative = true;
    skip_ws();
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("expected integer offset");
    }
    int value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + (text_[pos_] - '0');
      ++pos_;
    }
    return negative ? -value : value;
  }

  const std::string& text_;
  const std::vector<std::string>& fields_;
  int dims_;
  std::vector<ReadAccess>* reads_;
  OpCounts* ops_;
  std::size_t pos_ = 0;
};

Formula::Formula() = default;
Formula::Formula(Formula&&) noexcept = default;
Formula& Formula::operator=(Formula&&) noexcept = default;
Formula::~Formula() = default;

Formula Formula::parse(std::string text,
                       const std::vector<std::string>& field_names,
                       int dims) {
  Formula out;
  out.text_ = std::move(text);
  Parser parser(out.text_, field_names, dims, &out.reads_, &out.ops_);
  out.root_ = parser.parse();
  return out;
}

float Formula::evaluate(const CellReader& reader) const {
  struct Eval {
    const std::vector<ReadAccess>& reads;
    const CellReader& reader;
    float run(const Node* n) const {
      switch (n->kind) {
        case NodeKind::kNumber:
          return n->value;
        case NodeKind::kRead: {
          const ReadAccess& ra =
              reads[static_cast<std::size_t>(n->read_index)];
          return reader.read(ra.field, ra.offset);
        }
        case NodeKind::kNegate:
          return -run(n->lhs.get());
        case NodeKind::kAdd:
          return run(n->lhs.get()) + run(n->rhs.get());
        case NodeKind::kSub:
          return run(n->lhs.get()) - run(n->rhs.get());
        case NodeKind::kMul:
          return run(n->lhs.get()) * run(n->rhs.get());
        case NodeKind::kDiv:
          return run(n->lhs.get()) / run(n->rhs.get());
      }
      return 0.0f;
    }
  };
  return Eval{reads_, reader}.run(root_.get());
}

std::string Formula::render(
    const std::function<std::string(int, const Offset&)>& render_read) const {
  struct Render {
    const std::vector<ReadAccess>& reads;
    const std::function<std::string(int, const Offset&)>& rr;
    // Parenthesize children conservatively: cheap and always correct.
    std::string run(const Node* n) const {
      switch (n->kind) {
        case NodeKind::kNumber:
          return n->literal;
        case NodeKind::kRead: {
          const ReadAccess& ra =
              reads[static_cast<std::size_t>(n->read_index)];
          return rr(ra.field, ra.offset);
        }
        case NodeKind::kNegate:
          return "(-" + run(n->lhs.get()) + ")";
        case NodeKind::kAdd:
          return "(" + run(n->lhs.get()) + " + " + run(n->rhs.get()) + ")";
        case NodeKind::kSub:
          return "(" + run(n->lhs.get()) + " - " + run(n->rhs.get()) + ")";
        case NodeKind::kMul:
          return "(" + run(n->lhs.get()) + " * " + run(n->rhs.get()) + ")";
        case NodeKind::kDiv:
          return "(" + run(n->lhs.get()) + " / " + run(n->rhs.get()) + ")";
      }
      return "";
    }
  };
  return Render{reads_, render_read}.run(root_.get());
}

Stage make_stage(std::string name, int output_field, std::string formula,
                 const std::vector<std::string>& field_names, int dims) {
  auto parsed = std::make_shared<const Formula>(
      Formula::parse(std::move(formula), field_names, dims));
  Stage stage;
  stage.name = std::move(name);
  stage.output_field = output_field;
  stage.reads = parsed->reads();
  stage.ops = parsed->op_counts();
  stage.formula = parsed;
  stage.update = [parsed](const CellReader& reader) {
    return parsed->evaluate(reader);
  };
  return stage;
}

}  // namespace scl::stencil
