#include "stencil/geometry.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace scl::stencil {

std::array<Face, 2 * kMaxDims> all_faces() {
  return {Face{0, -1}, Face{0, +1}, Face{1, -1},
          Face{1, +1}, Face{2, -1}, Face{2, +1}};
}

Box Box::from_extents(int dims, const std::array<std::int64_t, 3>& extents) {
  SCL_CHECK(dims >= 1 && dims <= kMaxDims, "dims must be 1..3");
  Box box;
  for (int d = 0; d < kMaxDims; ++d) {
    box.lo[d] = 0;
    if (d < dims) {
      SCL_CHECK(extents[d] > 0, "extent must be positive");
      box.hi[d] = extents[d];
    } else {
      box.hi[d] = 1;
    }
  }
  return box;
}

bool Box::empty() const {
  for (int d = 0; d < kMaxDims; ++d) {
    if (hi[d] <= lo[d]) return true;
  }
  return false;
}

std::int64_t Box::volume() const {
  if (empty()) return 0;
  std::int64_t v = 1;
  for (int d = 0; d < kMaxDims; ++d) v *= hi[d] - lo[d];
  return v;
}

std::int64_t Box::extent(int d) const {
  SCL_DCHECK(d >= 0 && d < kMaxDims, "bad dimension");
  return std::max<std::int64_t>(0, hi[d] - lo[d]);
}

bool Box::contains(const Index& p) const {
  for (int d = 0; d < kMaxDims; ++d) {
    if (p[d] < lo[d] || p[d] >= hi[d]) return false;
  }
  return true;
}

bool Box::contains(const Box& other) const {
  if (other.empty()) return true;
  for (int d = 0; d < kMaxDims; ++d) {
    if (other.lo[d] < lo[d] || other.hi[d] > hi[d]) return false;
  }
  return true;
}

Box Box::intersect(const Box& other) const {
  Box out;
  for (int d = 0; d < kMaxDims; ++d) {
    out.lo[d] = std::max(lo[d], other.lo[d]);
    out.hi[d] = std::min(hi[d], other.hi[d]);
  }
  return out;
}

Box Box::grown(const Face& face, std::int64_t amount) const {
  SCL_DCHECK(face.dim >= 0 && face.dim < kMaxDims, "bad face dim");
  Box out = *this;
  if (face.dir < 0) {
    out.lo[face.dim] -= amount;
  } else {
    out.hi[face.dim] += amount;
  }
  return out;
}

Box Box::grown_all(int dims, std::int64_t amount) const {
  Box out = *this;
  for (int d = 0; d < dims; ++d) {
    out.lo[d] -= amount;
    out.hi[d] += amount;
  }
  return out;
}

Box Box::shifted_back(const Offset& off) const {
  Box out = *this;
  for (int d = 0; d < kMaxDims; ++d) {
    out.lo[d] -= off[d];
    out.hi[d] -= off[d];
  }
  return out;
}

Box Box::boundary_strip(const Face& face, std::int64_t width) const {
  Box out = *this;
  if (face.dir < 0) {
    out.hi[face.dim] = std::min(out.hi[face.dim], lo[face.dim] + width);
  } else {
    out.lo[face.dim] = std::max(out.lo[face.dim], hi[face.dim] - width);
  }
  return out;
}

Box Box::halo_strip(const Face& face, std::int64_t width) const {
  Box out = *this;
  if (face.dir < 0) {
    out.hi[face.dim] = lo[face.dim];
    out.lo[face.dim] = lo[face.dim] - width;
  } else {
    out.lo[face.dim] = hi[face.dim];
    out.hi[face.dim] = hi[face.dim] + width;
  }
  return out;
}

std::string Box::to_string() const {
  return str_cat("[", lo[0], ",", hi[0], ")x[", lo[1], ",", hi[1], ")x[",
                 lo[2], ",", hi[2], ")");
}

std::int64_t linear_index(const Box& box, const Index& p) {
  SCL_DCHECK(box.contains(p), "index outside box");
  const std::int64_t e1 = box.hi[1] - box.lo[1];
  const std::int64_t e2 = box.hi[2] - box.lo[2];
  return ((p[0] - box.lo[0]) * e1 + (p[1] - box.lo[1])) * e2 +
         (p[2] - box.lo[2]);
}

}  // namespace scl::stencil
