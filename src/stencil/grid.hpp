// Dense N-dimensional field storage addressed in absolute grid coordinates.
//
// A Grid owns the cells of one `Box` (its domain). Tiles allocate grids over
// their buffer box (tile plus halo/cone margins) and index them with the same
// absolute coordinates the full-size reference grid uses, which removes an
// entire class of off-by-one translation bugs from the tiled executors.
#pragma once

#include <vector>

#include "stencil/geometry.hpp"
#include "support/error.hpp"

namespace scl::stencil {

template <typename T>
class Grid {
 public:
  Grid() : domain_{}, data_() {}

  /// Allocates storage for every cell of `domain`, value-initialized.
  explicit Grid(const Box& domain)
      : domain_(domain), data_(static_cast<std::size_t>(domain.volume())) {
    SCL_CHECK(!domain.empty(), "grid domain must be non-empty");
  }

  Grid(const Box& domain, T fill) : Grid(domain) {
    std::fill(data_.begin(), data_.end(), fill);
  }

  const Box& domain() const { return domain_; }

  T& at(const Index& p) {
    SCL_DCHECK(domain_.contains(p), "grid access out of domain");
    return data_[static_cast<std::size_t>(linear_index(domain_, p))];
  }

  const T& at(const Index& p) const {
    SCL_DCHECK(domain_.contains(p), "grid access out of domain");
    return data_[static_cast<std::size_t>(linear_index(domain_, p))];
  }

  /// Copies every cell of `box` from `src` into this grid. `box` must be
  /// inside both domains.
  void copy_box_from(const Grid& src, const Box& box) {
    SCL_CHECK(domain_.contains(box), "copy target outside domain");
    SCL_CHECK(src.domain().contains(box), "copy source outside src domain");
    for_each_cell(box, [&](const Index& p) { at(p) = src.at(p); });
  }

  /// Fills every cell of `box` with `value`.
  void fill_box(const Box& box, T value) {
    SCL_CHECK(domain_.contains(box), "fill box outside domain");
    for_each_cell(box, [&](const Index& p) { at(p) = value; });
  }

  /// Serializes the cells of `box` in row-major order.
  std::vector<T> read_box(const Box& box) const {
    SCL_CHECK(domain_.contains(box), "read box outside domain");
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(box.volume()));
    for_each_cell(box, [&](const Index& p) { out.push_back(at(p)); });
    return out;
  }

  /// Writes row-major `values` into the cells of `box`.
  void write_box(const Box& box, const std::vector<T>& values) {
    SCL_CHECK(domain_.contains(box), "write box outside domain");
    SCL_CHECK(static_cast<std::int64_t>(values.size()) == box.volume(),
              "value count does not match box volume");
    std::size_t i = 0;
    for_each_cell(box, [&](const Index& p) { at(p) = values[i++]; });
  }

  /// True if the two grids agree exactly on every cell of `box`.
  bool equals_on(const Grid& other, const Box& box) const {
    bool equal = true;
    for_each_cell(box, [&](const Index& p) {
      if (at(p) != other.at(p)) equal = false;
    });
    return equal;
  }

  /// Raw storage (row-major over the domain box).
  const std::vector<T>& data() const { return data_; }
  std::vector<T>& data() { return data_; }

 private:
  Box domain_;
  std::vector<T> data_;
};

}  // namespace scl::stencil
