// Text front end: parse a stencil program from the `.stencil` format.
//
// The paper's framework consumes "the original stencil algorithm written
// in OpenCL"; this repository's equivalent input language is a small
// declarative format carrying exactly what the feature extractor needs —
// grid, iterations, fields with initial conditions, and formula-based
// update stages:
//
//     # Jacobi 2-D, PolyBench configuration
//     stencil "Jacobi-2D" dims 2 grid 2048 2048 iterations 1024
//     field A init affine 3 5 0 2 97
//     stage jacobi writes A:
//         0.2f * ($A(0,0) + $A(0,-1) + $A(0,1) + $A(-1,0) + $A(1,0))
//
// Grammar (line oriented; '#' starts a comment; a stage's formula may
// continue over following indented lines until the next keyword):
//
//   stencil "<name>" dims <1|2|3> grid <n0> [n1 [n2]] iterations <H>
//   field <ident> init <initializer>
//   stage <ident> writes <field>: <formula...>
//
// Initializers:
//   constant <v>                      every cell = v
//   affine <a> <b> <c> <bias> <div>   fmod(a*i+b*j+c*k+bias, div)/div
//   wave <scale>                      scale * sin(0.37 i + 0.61 j + 0.83 k)
#pragma once

#include <string>

#include "stencil/program.hpp"

namespace scl::stencil {

/// Parses the `.stencil` text format. Throws scl::Error with a
/// line-numbered message on any syntax or semantic problem (the resulting
/// program additionally passes through StencilProgram's own validation).
StencilProgram parse_program(const std::string& text);

/// Reads `path` and parses it. Throws scl::Error if unreadable.
StencilProgram parse_program_file(const std::string& path);

/// Serializes a program back to the `.stencil` format (requires every
/// stage to carry a formula and every field an init_spec).
/// parse_program(program_to_text(p)) reproduces an equivalent program.
std::string program_to_text(const StencilProgram& program);

/// Builds the initial-condition function for a textual initializer spec
/// ("constant <v>" | "affine <a> <b> <c> <bias> <div>" | "wave <scale>").
InitFn make_initializer(const std::string& spec);

/// Field declaration from a spec string (records it for round-tripping).
Field make_field(std::string name, const std::string& init_spec);

}  // namespace scl::stencil
