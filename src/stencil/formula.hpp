// Stencil update formulas.
//
// A stage's update rule is written once as a C-like scalar expression over
// neighbor reads, e.g. the Jacobi-2D rule
//
//     0.2f * ($A(0,0) + $A(0,-1) + $A(0,1) + $A(-1,0) + $A(1,0))
//
// where `$field(offsets...)` reads a field at a relative offset. The parsed
// formula is the single source of truth for four consumers:
//   * the executors (evaluate() with left-associative float semantics,
//     identical to the C code a kernel would compile),
//   * the program's read-access list (reads()),
//   * the operation counts feeding the HLS/DSP models (op_counts()),
//   * the OpenCL code generator (render() with a custom read renderer).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stencil/program.hpp"

namespace scl::stencil {

class Formula {
 public:
  /// Parses `text` against the declared field names. Offsets must have
  /// exactly `dims` components. Throws scl::Error on any syntax problem,
  /// unknown field, or malformed offset.
  static Formula parse(std::string text,
                       const std::vector<std::string>& field_names, int dims);

  /// Evaluates with float arithmetic, left-associative like compiled C.
  float evaluate(const CellReader& reader) const;

  /// All distinct (field, offset) accesses, in first-appearance order.
  const std::vector<ReadAccess>& reads() const { return reads_; }

  /// Adds/subs, muls, divs in the expression tree.
  const OpCounts& op_counts() const { return ops_; }

  const std::string& text() const { return text_; }

  /// Renders the expression as C source, replacing every read with
  /// whatever `render_read` returns (e.g. a local-array index expression).
  std::string render(
      const std::function<std::string(int field, const Offset&)>& render_read)
      const;

  // Out-of-line special members: Node is an incomplete type here.
  Formula(Formula&&) noexcept;
  Formula& operator=(Formula&&) noexcept;
  ~Formula();

 private:
  struct Node;
  using NodePtr = std::unique_ptr<Node>;
  class Parser;

  Formula();

  std::string text_;
  NodePtr root_;
  std::vector<ReadAccess> reads_;
  OpCounts ops_;
};

/// Builds a fully-populated Stage from a formula: reads, op counts and the
/// update function all derive from the parsed expression.
Stage make_stage(std::string name, int output_field, std::string formula,
                 const std::vector<std::string>& field_names, int dims);

}  // namespace scl::stencil
