#include "stencil/parser.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "stencil/formula.hpp"
#include "support/error.hpp"
#include "support/observability/observability.hpp"
#include "support/strings.hpp"

namespace scl::stencil {

namespace {

[[noreturn]] void fail(int line, const std::string& why) {
  throw Error(str_cat(".stencil parse error at line ", line, ": ", why));
}

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

double parse_double(const std::string& tok, int line) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size()) fail(line, str_cat("bad number '", tok, "'"));
    return v;
  } catch (const std::exception&) {
    fail(line, str_cat("bad number '", tok, "'"));
  }
}

std::int64_t parse_int(const std::string& tok, int line) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(tok, &used);
    if (used != tok.size()) fail(line, str_cat("bad integer '", tok, "'"));
    return v;
  } catch (const std::exception&) {
    fail(line, str_cat("bad integer '", tok, "'"));
  }
}

/// Strips a trailing '#' comment (the format has no string escapes beyond
/// the quoted stencil name, which cannot contain '#').
std::string strip_comment(const std::string& line) {
  const std::size_t pos = line.find('#');
  return pos == std::string::npos ? line : line.substr(0, pos);
}

}  // namespace

InitFn make_initializer(const std::string& spec) {
  const std::vector<std::string> toks = tokenize(spec);
  if (toks.empty()) throw Error("empty initializer spec");
  if (toks[0] == "constant" && toks.size() == 2) {
    const float v = static_cast<float>(parse_double(toks[1], 0));
    return [v](const Index&) { return v; };
  }
  if (toks[0] == "affine" && toks.size() == 6) {
    const double a = parse_double(toks[1], 0);
    const double b = parse_double(toks[2], 0);
    const double c = parse_double(toks[3], 0);
    const double bias = parse_double(toks[4], 0);
    const double div = parse_double(toks[5], 0);
    if (div == 0.0) throw Error("affine initializer needs div != 0");
    return [=](const Index& p) {
      const double v = a * static_cast<double>(p[0]) +
                       b * static_cast<double>(p[1]) +
                       c * static_cast<double>(p[2]) + bias;
      return static_cast<float>(std::fmod(v, div) / div);
    };
  }
  if (toks[0] == "wave" && toks.size() == 2) {
    const double scale = parse_double(toks[1], 0);
    return [scale](const Index& p) {
      return static_cast<float>(
          scale * std::sin(0.37 * static_cast<double>(p[0]) +
                           0.61 * static_cast<double>(p[1]) +
                           0.83 * static_cast<double>(p[2])));
    };
  }
  throw Error(str_cat("unknown initializer spec '", spec,
                      "' (want: constant v | affine a b c bias div | "
                      "wave scale)"));
}

Field make_field(std::string name, const std::string& init_spec) {
  Field f;
  f.name = std::move(name);
  f.init = make_initializer(init_spec);
  f.init_spec = init_spec;
  return f;
}

StencilProgram parse_program(const std::string& text) {
  const auto span =
      support::obs::tracer().span("frontend/parse_stencil", "frontend");
  if (support::obs::enabled()) {
    static auto& parses = support::obs::metrics().counter(
        "scl_parse_total", "stencil programs parsed from .stencil text");
    parses.increment();
  }
  std::string name;
  int dims = 0;
  std::array<std::int64_t, 3> extents{1, 1, 1};
  std::int64_t iterations = 0;
  bool header_seen = false;

  std::vector<Field> fields;
  std::vector<std::string> field_names;

  struct PendingStage {
    std::string name;
    std::string output;
    std::string formula;
    int line;
  };
  std::vector<PendingStage> stages;

  const std::vector<std::string> lines = split(text, '\n');
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const int line_no = static_cast<int>(i) + 1;
    const std::string line = trim(strip_comment(lines[i]));
    if (line.empty()) continue;

    if (starts_with(line, "stencil ")) {
      if (header_seen) fail(line_no, "duplicate 'stencil' header");
      header_seen = true;
      // stencil "<name>" dims D grid n0 [n1 [n2]] iterations H
      const std::size_t q1 = line.find('"');
      const std::size_t q2 = q1 == std::string::npos
                                 ? std::string::npos
                                 : line.find('"', q1 + 1);
      if (q2 == std::string::npos) fail(line_no, "stencil name must be quoted");
      name = line.substr(q1 + 1, q2 - q1 - 1);
      const std::vector<std::string> toks = tokenize(line.substr(q2 + 1));
      std::size_t t = 0;
      auto expect = [&](const char* kw) {
        if (t >= toks.size() || toks[t] != kw) {
          fail(line_no, str_cat("expected '", kw, "'"));
        }
        ++t;
      };
      expect("dims");
      if (t >= toks.size()) fail(line_no, "missing dimension count");
      dims = static_cast<int>(parse_int(toks[t++], line_no));
      if (dims < 1 || dims > 3) fail(line_no, "dims must be 1..3");
      expect("grid");
      for (int d = 0; d < dims; ++d) {
        if (t >= toks.size()) fail(line_no, "missing grid extent");
        extents[static_cast<std::size_t>(d)] = parse_int(toks[t++], line_no);
      }
      expect("iterations");
      if (t >= toks.size()) fail(line_no, "missing iteration count");
      iterations = parse_int(toks[t++], line_no);
      if (t != toks.size()) fail(line_no, "trailing tokens in header");
      continue;
    }

    if (starts_with(line, "field ")) {
      const std::vector<std::string> toks = tokenize(line);
      if (toks.size() < 4 || toks[2] != "init") {
        fail(line_no, "want: field <name> init <spec...>");
      }
      std::vector<std::string> spec(toks.begin() + 3, toks.end());
      try {
        fields.push_back(make_field(toks[1], join(spec, " ")));
      } catch (const Error& e) {
        fail(line_no, e.what());
      }
      field_names.push_back(toks[1]);
      continue;
    }

    if (starts_with(line, "stage ")) {
      // stage <name> writes <field>: <formula...>  (may continue on the
      // following lines until the next keyword)
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) fail(line_no, "stage needs ':'");
      const std::vector<std::string> head =
          tokenize(line.substr(0, colon));
      if (head.size() != 4 || head[2] != "writes") {
        fail(line_no, "want: stage <name> writes <field>: <formula>");
      }
      PendingStage st;
      st.name = head[1];
      st.output = head[3];
      st.formula = trim(line.substr(colon + 1));
      st.line = line_no;
      stages.push_back(std::move(st));
      continue;
    }

    // Continuation of the previous stage's formula.
    if (!stages.empty()) {
      stages.back().formula += " " + line;
      continue;
    }
    fail(line_no, str_cat("unrecognized directive '", line, "'"));
  }

  if (!header_seen) throw Error(".stencil input lacks a 'stencil' header");
  if (fields.empty()) throw Error(".stencil input declares no fields");
  if (stages.empty()) throw Error(".stencil input declares no stages");

  std::vector<Stage> built;
  for (const PendingStage& ps : stages) {
    int output = -1;
    for (std::size_t f = 0; f < field_names.size(); ++f) {
      if (field_names[f] == ps.output) output = static_cast<int>(f);
    }
    if (output < 0) {
      fail(ps.line, str_cat("stage writes unknown field '", ps.output, "'"));
    }
    try {
      built.push_back(
          make_stage(ps.name, output, ps.formula, field_names, dims));
    } catch (const Error& e) {
      fail(ps.line, e.what());
    }
  }

  return StencilProgram(std::move(name), dims, extents, iterations,
                        std::move(fields), std::move(built));
}

StencilProgram parse_program_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error(str_cat("cannot open '", path, "'"));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_program(buffer.str());
}

std::string program_to_text(const StencilProgram& program) {
  std::string out = str_cat("stencil \"", program.name(), "\" dims ",
                            program.dims(), " grid");
  for (int d = 0; d < program.dims(); ++d) {
    out += str_cat(" ", program.grid_box().extent(d));
  }
  out += str_cat(" iterations ", program.iterations(), "\n");
  for (int f = 0; f < program.field_count(); ++f) {
    const Field& field = program.field(f);
    if (field.init_spec.empty()) {
      throw Error(str_cat("field '", field.name,
                          "' has a custom initializer and cannot be "
                          "serialized to .stencil"));
    }
    out += str_cat("field ", field.name, " init ", field.init_spec, "\n");
  }
  for (int s = 0; s < program.stage_count(); ++s) {
    const Stage& stage = program.stage(s);
    if (!stage.formula) {
      throw Error(str_cat("stage '", stage.name,
                          "' has no symbolic formula and cannot be "
                          "serialized to .stencil"));
    }
    out += str_cat("stage ", stage.name, " writes ",
                   program.field(stage.output_field).name, ": ",
                   stage.formula->text(), "\n");
  }
  return out;
}

}  // namespace scl::stencil
