// Index and box geometry for up to 3 spatial dimensions.
//
// Everything in stencilcl is phrased over absolute grid coordinates: tiles,
// halos, cone expansions, and validity regions are all `Box`es. Unused
// trailing dimensions are padded (index 0, extent 1) so loops can always be
// written three levels deep without branching on dimensionality.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace scl::stencil {

inline constexpr int kMaxDims = 3;

/// Absolute cell coordinate. Coordinates beyond the active dimensionality
/// are always 0.
using Index = std::array<std::int64_t, kMaxDims>;

/// Relative stencil offset (e.g. {-1, 0, 0} is the "west" neighbor).
using Offset = std::array<int, kMaxDims>;

/// A face of a box: dimension plus direction (-1 = low side, +1 = high side).
struct Face {
  int dim = 0;
  int dir = -1;  // -1 or +1

  friend bool operator==(const Face&, const Face&) = default;
};

/// Enumerates the 2*dims faces of a `dims`-dimensional box.
std::array<Face, 2 * kMaxDims> all_faces();

/// Half-open axis-aligned box: cells x with lo[d] <= x[d] < hi[d].
/// An empty box has hi[d] <= lo[d] in at least one dimension.
struct Box {
  Index lo{0, 0, 0};
  Index hi{0, 0, 0};

  /// Box covering [0, extent_d) per dimension; unused dims get extent 1.
  static Box from_extents(int dims, const std::array<std::int64_t, 3>& extents);

  /// True if the box contains no cells.
  bool empty() const;

  /// Number of cells (0 if empty).
  std::int64_t volume() const;

  /// Extent along dimension d (0 if empty along d).
  std::int64_t extent(int d) const;

  /// True if `p` lies inside the box.
  bool contains(const Index& p) const;

  /// True if `other` is fully inside this box.
  bool contains(const Box& other) const;

  /// Intersection (possibly empty).
  Box intersect(const Box& other) const;

  /// Box grown by `amount` cells on face (d, dir); negative shrinks.
  Box grown(const Face& face, std::int64_t amount) const;

  /// Box grown by `amount` on every face of the first `dims` dimensions.
  Box grown_all(int dims, std::int64_t amount) const;

  /// Box shrunk so that reading at `off` from any contained cell stays
  /// inside this box: {x : x + off in *this}.
  Box shifted_back(const Offset& off) const;

  /// The strip of `width` cells of this box adjacent to face (d, dir),
  /// inside the box. E.g. width=1, dir=-1 gives the low boundary layer.
  Box boundary_strip(const Face& face, std::int64_t width) const;

  /// The strip of `width` cells just outside this box across face (d, dir)
  /// (the halo region a neighbor fills).
  Box halo_strip(const Face& face, std::int64_t width) const;

  std::string to_string() const;

  friend bool operator==(const Box&, const Box&) = default;
};

/// Linear index of `p` relative to `box` in row-major (last dim fastest)
/// order. Precondition: box.contains(p).
std::int64_t linear_index(const Box& box, const Index& p);

/// Calls `fn(Index)` for every cell of `box` in row-major order.
template <typename Fn>
void for_each_cell(const Box& box, Fn&& fn) {
  if (box.empty()) return;
  Index p;
  for (p[0] = box.lo[0]; p[0] < box.hi[0]; ++p[0]) {
    for (p[1] = box.lo[1]; p[1] < box.hi[1]; ++p[1]) {
      for (p[2] = box.lo[2]; p[2] < box.hi[2]; ++p[2]) {
        fn(p);
      }
    }
  }
}

/// p + off, dimension-wise.
inline Index offset_index(const Index& p, const Offset& off) {
  return Index{p[0] + off[0], p[1] + off[1], p[2] + off[2]};
}

}  // namespace scl::stencil
