#include "serve/admission.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace scl::serve {

const char* to_string(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::kAdmitted:
      return "ok";
    case AdmissionVerdict::kShed:
      return "shed";
    case AdmissionVerdict::kQuotaExceeded:
      return "quota";
    case AdmissionVerdict::kRateLimited:
      return "rate_limited";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         Clock clock)
    : options_(std::move(options)), clock_(std::move(clock)) {
  if (!clock_) {
    clock_ = [] { return std::chrono::steady_clock::now(); };
  }
}

AdmissionController::TenantState& AdmissionController::tenant_locked(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    TenantState state;
    const auto quota_it = options_.tenant_quotas.find(tenant);
    state.quota = quota_it != options_.tenant_quotas.end()
                      ? quota_it->second
                      : options_.default_quota;
    state.quota.burst = std::max(1.0, state.quota.burst);
    it = tenants_.emplace(tenant, std::move(state)).first;
  }
  return it->second;
}

AdmissionVerdict AdmissionController::try_admit(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.max_queue_depth > 0 && depth_ >= options_.max_queue_depth) {
    ++totals_.shed;
    return AdmissionVerdict::kShed;
  }
  TenantState& state = tenant_locked(tenant);
  if (state.quota.max_in_flight > 0 &&
      state.stats.in_flight >= state.quota.max_in_flight) {
    ++state.stats.quota_rejected;
    ++totals_.quota_rejected;
    return AdmissionVerdict::kQuotaExceeded;
  }
  if (state.quota.rate_per_sec > 0.0) {
    const auto now = clock_();
    if (!state.bucket_started) {
      // A fresh bucket starts full: the first burst is free.
      state.tokens = state.quota.burst;
      state.bucket_started = true;
    } else {
      const double elapsed =
          std::chrono::duration<double>(now - state.last_refill).count();
      state.tokens = std::min(state.quota.burst,
                              state.tokens +
                                  elapsed * state.quota.rate_per_sec);
    }
    state.last_refill = now;
    if (state.tokens < 1.0) {
      ++state.stats.rate_limited;
      ++totals_.quota_rejected;
      return AdmissionVerdict::kRateLimited;
    }
    state.tokens -= 1.0;
  }
  ++state.stats.admitted;
  ++state.stats.in_flight;
  ++totals_.admitted;
  ++depth_;
  totals_.max_depth = std::max(totals_.max_depth, depth_);
  return AdmissionVerdict::kAdmitted;
}

void AdmissionController::release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  SCL_CHECK(depth_ > 0, "AdmissionController::release without admit");
  TenantState& state = tenant_locked(tenant);
  SCL_CHECK(state.stats.in_flight > 0,
            "AdmissionController::release for a tenant with nothing "
            "in flight");
  --state.stats.in_flight;
  --depth_;
}

std::int64_t AdmissionController::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmissionStats stats = totals_;
  stats.depth = depth_;
  for (const auto& [tenant, state] : tenants_) {
    stats.tenants[tenant] = state.stats;
  }
  return stats;
}

}  // namespace scl::serve
