#include "serve/tiered_store.hpp"

#include <algorithm>
#include <iterator>

#include "serve/serialize.hpp"
#include "support/error.hpp"

namespace scl::serve {

namespace {

/// Ring positions need full 64-bit dispersion, and fnv1a64 alone cannot
/// give it here: virtual-node names share a long root prefix and differ
/// only in a short "#v" suffix, which leaves each shard's 64 points
/// clustered in a couple of arcs (measured: a 4-shard ring where one
/// shard owned 74% of the keyspace and a new shard captured 0 keys). A
/// splitmix64-style finalizer restores avalanche.
std::uint64_t ring_hash(std::string_view data) {
  std::uint64_t z = fnv1a64(data);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

TieredArtifactStore::TieredArtifactStore(TieredStoreOptions options)
    : options_(std::move(options)) {
  if (options_.shard_roots.empty()) {
    throw Error("TieredArtifactStore: needs at least one shard root");
  }
  shards_.reserve(options_.shard_roots.size());
  for (std::size_t s = 0; s < options_.shard_roots.size(); ++s) {
    shards_.push_back(std::make_unique<ArtifactStore>(ArtifactStoreOptions{
        options_.shard_roots[s], options_.disk_capacity_bytes}));
    // Ring points hash the root *name*, not the index, so a shard keeps
    // its keyspace slice when the roots list is reordered.
    for (int v = 0; v < kVirtualNodes; ++v) {
      const std::uint64_t point = ring_hash(
          options_.shard_roots[s] + "#" + std::to_string(v));
      ring_.emplace_back(point, s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
  if (options_.warm_memory_tier && options_.memory_capacity_bytes > 0) {
    warm_memory_tier();
  }
}

void TieredArtifactStore::warm_memory_tier() {
  // Merge the per-shard recency lists and take the globally most-recent
  // artifacts until the memory budget is full. Loading through the shard
  // validates each payload (checksums), so warmup never caches rot.
  std::vector<ArtifactStore::RecencyEntry> all;
  for (const auto& shard : shards_) {
    auto entries = shard->recency();
    all.insert(all.end(), std::make_move_iterator(entries.begin()),
               std::make_move_iterator(entries.end()));
  }
  std::sort(all.begin(), all.end(),
            [](const ArtifactStore::RecencyEntry& a,
               const ArtifactStore::RecencyEntry& b) {
              return a.mtime != b.mtime ? a.mtime > b.mtime : a.key < b.key;
            });
  std::int64_t budget = options_.memory_capacity_bytes;
  std::vector<std::pair<std::string, std::string>> hot;
  for (const auto& entry : all) {
    if (entry.bytes > budget) break;  // on-disk bytes upper-bound memory cost
    std::optional<std::string> payload =
        shards_[shard_for(entry.key)]->load(entry.key);
    if (!payload) continue;  // corrupt: dropped by the shard, skip
    budget -= static_cast<std::int64_t>(entry.key.size() + payload->size());
    hot.emplace_back(entry.key, std::move(*payload));
    if (budget <= 0) break;
  }
  // cache_locked pushes to the LRU front, so insert coldest-first to
  // leave the most recent artifact at the front.
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = hot.rbegin(); it != hot.rend(); ++it) {
    cache_locked(it->first, it->second);
    ++stats_.warmed;
  }
}

std::size_t TieredArtifactStore::shard_for(const std::string& key) const {
  const std::uint64_t point = ring_hash(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const auto& node, std::uint64_t p) { return node.first < p; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

void TieredArtifactStore::cache_locked(const std::string& key,
                                       const std::string& payload) {
  if (options_.memory_capacity_bytes <= 0) return;
  const auto bytes = static_cast<std::int64_t>(key.size() + payload.size());
  if (bytes > options_.memory_capacity_bytes) return;  // would evict all
  if (const auto it = index_.find(key); it != index_.end()) {
    memory_bytes_ -= static_cast<std::int64_t>(
        it->second->key.size() + it->second->payload.size());
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(MemoryEntry{key, payload});
  index_[key] = lru_.begin();
  memory_bytes_ += bytes;
  while (memory_bytes_ > options_.memory_capacity_bytes) {
    const MemoryEntry& victim = lru_.back();
    memory_bytes_ -= static_cast<std::int64_t>(victim.key.size() +
                                               victim.payload.size());
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.demotions;
  }
}

std::optional<std::string> TieredArtifactStore::load(const std::string& key,
                                                     bool* from_memory) {
  if (from_memory != nullptr) *from_memory = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = index_.find(key); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      ++stats_.memory_hits;
      if (from_memory != nullptr) *from_memory = true;
      return it->second->payload;
    }
  }
  // Disk I/O happens outside the memory lock so loads on different
  // shards overlap.
  std::optional<std::string> payload = shards_[shard_for(key)]->load(key);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!payload) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.disk_hits;
  ++stats_.promotions;
  cache_locked(key, *payload);
  return payload;
}

void TieredArtifactStore::store(const std::string& key,
                                const std::string& payload) {
  // Durability before visibility: the shard write lands first, so a
  // memory entry always has a disk backing to demote onto.
  shards_[shard_for(key)]->store(key, payload);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.writes;
  cache_locked(key, payload);
}

bool TieredArtifactStore::contains(const std::string& key) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.count(key) != 0) return true;
  }
  return shards_[shard_for(key)]->contains(key);
}

std::size_t TieredArtifactStore::memory_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

std::int64_t TieredArtifactStore::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return memory_bytes_;
}

std::int64_t TieredArtifactStore::total_bytes() const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) total += shard->total_bytes();
  return total;
}

std::size_t TieredArtifactStore::entry_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->entry_count();
  return total;
}

TieredStoreStats TieredArtifactStore::stats() const {
  TieredStoreStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats = stats_;
  }
  for (const auto& shard : shards_) {
    const ArtifactStoreStats disk = shard->stats();
    stats.evictions += disk.evictions;
    stats.corrupt_dropped += disk.corrupt_dropped;
  }
  return stats;
}

}  // namespace scl::serve
