#include "serve/service.hpp"

#include "stencil/parser.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace scl::serve {

std::string ServiceStats::to_string() const {
  return str_cat(
      "service: ", requests, " request(s), ", store_hits, " store hit(s) (",
      store_memory_hits, " memory, ", store_disk_hits, " disk), ",
      store_misses, " miss(es), ", coalesced, " coalesced, ", synthesized,
      " synthesized, ", failures, " failure(s)\n", "store: ", store_entries,
      " artifact(s), ", format_thousands(store_bytes), " bytes, ", evictions,
      " eviction(s), ", store_demotions, " demotion(s), ",
      corrupt_recovered, " corrupt artifact(s) recovered\n", "latency: p50 ",
      format_fixed(latency_p50_ms, 2), " ms, p95 ",
      format_fixed(latency_p95_ms, 2), " ms\n");
}

SynthesisService::SynthesisService(ServiceOptions options)
    : options_(std::move(options)) {
  if (!options_.store_shards.empty() || !options_.store_dir.empty()) {
    TieredStoreOptions tiered;
    tiered.shard_roots = options_.store_shards.empty()
                             ? std::vector<std::string>{options_.store_dir}
                             : options_.store_shards;
    tiered.disk_capacity_bytes = options_.store_capacity_bytes;
    tiered.memory_capacity_bytes = options_.memory_cache_bytes;
    tiered.warm_memory_tier = options_.warm_memory_cache;
    store_ = std::make_unique<TieredArtifactStore>(std::move(tiered));
  }
  scheduler_ = std::make_unique<
      Scheduler<std::shared_ptr<const SynthesisArtifact>>>(
      options_.threads);
  requests_ = &metrics_.counter("scl_serve_requests_total",
                                "jobs accepted by submit()");
  synthesized_ = &metrics_.counter("scl_serve_synthesized_total",
                                   "cold Framework::synthesize runs");
  failures_ = &metrics_.counter("scl_serve_failures_total",
                                "jobs that completed with an error");
  latency_ms_ = &metrics_.histogram(
      "scl_serve_latency_ms", support::obs::default_latency_ms_buckets(),
      "submit-to-completion turnaround");
}

SynthesisService::~SynthesisService() = default;

SynthesisService::PendingJob SynthesisService::submit(
    const JobRequest& request) {
  if (request.program == nullptr) {
    throw Error("SynthesisService: request carries no program");
  }
  PendingJob job;
  job.name =
      request.name.empty() ? request.program->name() : request.name;
  // Canonicalize for content addressing. Programs built from custom
  // lambdas have no textual form — they stay uncacheable (empty key:
  // store bypass, no coalescing) but synthesize normally.
  try {
    job.key = request_key(stencil::program_to_text(*request.program),
                          options_.framework);
  } catch (const Error&) {
    job.key.clear();
  }
  requests_->increment();
  job.submitted = std::chrono::steady_clock::now();
  const std::shared_ptr<const stencil::StencilProgram> program =
      request.program;
  const std::string key = job.key;
  auto submission = scheduler_->submit(
      key, [this, key, program] { return perform(key, program); },
      request.priority, request.timeout);
  job.coalesced = submission.coalesced;
  job.future = std::move(submission.future);
  return job;
}

JobResult SynthesisService::wait(const PendingJob& job) {
  JobResult result;
  result.name = job.name;
  result.key = job.key;
  result.coalesced = job.coalesced;
  try {
    result.artifact = job.future.get();
    result.ok = true;
    result.from_cache = result.artifact->served_from_store;
    result.from_memory = result.artifact->served_from_memory;
  } catch (const core::VerificationError& e) {
    result.ok = false;
    result.error = e.what();
    result.diagnostics = e.diagnostics();
    failures_->increment();
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
    failures_->increment();
  }
  const auto elapsed = std::chrono::steady_clock::now() - job.submitted;
  result.latency_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  latency_ms_->observe(result.latency_ms);
  return result;
}

std::vector<JobResult> SynthesisService::run_batch(
    const std::vector<JobRequest>& requests) {
  std::vector<PendingJob> pending;
  pending.reserve(requests.size());
  for (const JobRequest& request : requests) {
    pending.push_back(submit(request));
  }
  std::vector<JobResult> results;
  results.reserve(pending.size());
  for (const PendingJob& job : pending) {
    results.push_back(wait(job));
  }
  return results;
}

void SynthesisService::drain() { scheduler_->drain(); }

std::size_t SynthesisService::shed_expired() {
  return scheduler_->shed_expired();
}

std::int64_t SynthesisService::queue_depth() const {
  return scheduler_->depth();
}

std::shared_ptr<const SynthesisArtifact> SynthesisService::perform(
    const std::string& key,
    const std::shared_ptr<const stencil::StencilProgram>& program) {
  if (store_ != nullptr && !key.empty()) {
    bool from_memory = false;
    if (std::optional<std::string> payload =
            store_->load(key, &from_memory)) {
      try {
        auto artifact = std::make_shared<SynthesisArtifact>(
            parse_artifact(*payload));
        if (artifact->key == key) {
          artifact->served_from_store = true;
          artifact->served_from_memory = from_memory;
          return artifact;
        }
        SCL_INFO() << "artifact " << key
                   << ": embedded key mismatch, recomputing";
      } catch (const Error& e) {
        // Undecodable payload despite an intact checksum (e.g. written
        // by a future schema): recompute and overwrite below.
        SCL_INFO() << "artifact " << key << ": " << e.what()
                   << ", recomputing";
      }
    }
  }
  synthesized_->increment();
  const core::Framework framework(*program, options_.framework);
  const core::SynthesisReport report = framework.synthesize();
  auto artifact =
      std::make_shared<SynthesisArtifact>(make_artifact(key, report));
  if (store_ != nullptr && !key.empty()) {
    store_->store(key, serialize_artifact(*artifact));
  }
  return artifact;
}

ServiceStats SynthesisService::stats() const {
  ServiceStats stats;
  const SchedulerStats sched = scheduler_->stats();
  stats.requests = requests_->value();
  stats.synthesized = synthesized_->value();
  stats.failures = failures_->value();
  stats.coalesced = sched.coalesced;
  if (store_ != nullptr) {
    const TieredStoreStats store = store_->stats();
    stats.store_hits = store.hits();
    stats.store_memory_hits = store.memory_hits;
    stats.store_disk_hits = store.disk_hits;
    stats.store_demotions = store.demotions;
    stats.store_misses = store.misses;
    stats.evictions = store.evictions;
    stats.corrupt_recovered = store.corrupt_dropped;
    stats.store_bytes = store_->total_bytes();
    stats.store_entries =
        static_cast<std::int64_t>(store_->entry_count());
  }
  const auto latency = latency_ms_->snapshot();
  stats.latency_p50_ms = latency.percentile(0.50);
  stats.latency_p95_ms = latency.percentile(0.95);
  return stats;
}

std::string SynthesisService::render_metrics_exposition() const {
  // The store and scheduler keep their own ground-truth counters (they
  // also serve callers that never touch this facade); mirror them into
  // gauges at scrape time so one exposition covers the whole service.
  const SchedulerStats sched = scheduler_->stats();
  auto mirror = [&](std::string_view name, std::string_view help,
                    double value) {
    metrics_.gauge(name, help).set(value);
  };
  mirror("scl_serve_coalesced", "requests served by an in-flight twin",
         static_cast<double>(sched.coalesced));
  mirror("scl_serve_queue_depth_max", "high-water mark of the request queue",
         static_cast<double>(sched.max_queue_depth));
  mirror("scl_serve_timed_out", "requests expired while queued",
         static_cast<double>(sched.timed_out));
  mirror("scl_serve_scheduler_shed", "queued requests shed past deadline",
         static_cast<double>(sched.shed));
  if (store_ != nullptr) {
    const TieredStoreStats store = store_->stats();
    mirror("scl_serve_store_hits", "artifact store lookup hits (all tiers)",
           static_cast<double>(store.hits()));
    mirror("scl_serve_store_memory_hits", "hot in-memory tier hits",
           static_cast<double>(store.memory_hits));
    mirror("scl_serve_store_disk_hits", "disk shard hits (promotions)",
           static_cast<double>(store.disk_hits));
    mirror("scl_serve_store_demotions", "memory-tier LRU evictions",
           static_cast<double>(store.demotions));
    mirror("scl_serve_store_misses", "artifact store lookup misses",
           static_cast<double>(store.misses));
    mirror("scl_serve_store_evictions", "artifacts evicted by the LRU cap",
           static_cast<double>(store.evictions));
    mirror("scl_serve_store_bytes", "bytes resident in the artifact store",
           static_cast<double>(store_->total_bytes()));
    mirror("scl_serve_store_entries", "artifacts resident in the store",
           static_cast<double>(store_->entry_count()));
  }
  return metrics_.render_exposition();
}

std::string SynthesisService::render_stats_json() const {
  const ServiceStats s = stats();
  support::JsonWriter json(support::JsonStyle::kSpaced);
  json.begin_object();
  json.member("requests", s.requests);
  json.member("store_hits", s.store_hits);
  json.member("store_memory_hits", s.store_memory_hits);
  json.member("store_disk_hits", s.store_disk_hits);
  json.member("store_demotions", s.store_demotions);
  json.member("store_misses", s.store_misses);
  json.member("coalesced", s.coalesced);
  json.member("synthesized", s.synthesized);
  json.member("failures", s.failures);
  json.member("evictions", s.evictions);
  json.member("corrupt_recovered", s.corrupt_recovered);
  json.member("store_bytes", s.store_bytes);
  json.member("store_entries", s.store_entries);
  json.key("latency_ms").begin_object();
  json.key("p50").value_fixed(s.latency_p50_ms, 3);
  json.key("p95").value_fixed(s.latency_p95_ms, 3);
  json.end_object();
  json.end_object();
  return json.take();
}

}  // namespace scl::serve
