#include "serve/service.hpp"

#include <algorithm>

#include "stencil/parser.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace scl::serve {

namespace {

/// Percentile over a copy of `values` (nearest-rank); 0 when empty.
double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

}  // namespace

std::string ServiceStats::to_string() const {
  return str_cat(
      "service: ", requests, " request(s), ", store_hits, " store hit(s), ",
      store_misses, " miss(es), ", coalesced, " coalesced, ", synthesized,
      " synthesized, ", failures, " failure(s)\n", "store: ", store_entries,
      " artifact(s), ", format_thousands(store_bytes), " bytes, ", evictions,
      " eviction(s), ", corrupt_recovered,
      " corrupt artifact(s) recovered\n", "latency: p50 ",
      format_fixed(latency_p50_ms, 2), " ms, p95 ",
      format_fixed(latency_p95_ms, 2), " ms\n");
}

SynthesisService::SynthesisService(ServiceOptions options)
    : options_(std::move(options)) {
  if (!options_.store_dir.empty()) {
    store_ = std::make_unique<ArtifactStore>(ArtifactStoreOptions{
        options_.store_dir, options_.store_capacity_bytes});
  }
  scheduler_ = std::make_unique<
      Scheduler<std::shared_ptr<const SynthesisArtifact>>>(
      options_.threads);
}

SynthesisService::~SynthesisService() = default;

SynthesisService::PendingJob SynthesisService::submit(
    const JobRequest& request) {
  if (request.program == nullptr) {
    throw Error("SynthesisService: request carries no program");
  }
  PendingJob job;
  job.name =
      request.name.empty() ? request.program->name() : request.name;
  // Canonicalize for content addressing. Programs built from custom
  // lambdas have no textual form — they stay uncacheable (empty key:
  // store bypass, no coalescing) but synthesize normally.
  try {
    job.key = request_key(stencil::program_to_text(*request.program),
                          options_.framework);
  } catch (const Error&) {
    job.key.clear();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++requests_;
  }
  job.submitted = std::chrono::steady_clock::now();
  const std::shared_ptr<const stencil::StencilProgram> program =
      request.program;
  const std::string key = job.key;
  auto submission = scheduler_->submit(
      key, [this, key, program] { return perform(key, program); },
      request.priority, request.timeout);
  job.coalesced = submission.coalesced;
  job.future = std::move(submission.future);
  return job;
}

JobResult SynthesisService::wait(const PendingJob& job) {
  JobResult result;
  result.name = job.name;
  result.key = job.key;
  result.coalesced = job.coalesced;
  try {
    result.artifact = job.future.get();
    result.ok = true;
    result.from_cache = result.artifact->served_from_store;
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
    std::lock_guard<std::mutex> lock(mutex_);
    ++failures_;
  }
  const auto elapsed = std::chrono::steady_clock::now() - job.submitted;
  result.latency_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  record_latency(result.latency_ms);
  return result;
}

std::vector<JobResult> SynthesisService::run_batch(
    const std::vector<JobRequest>& requests) {
  std::vector<PendingJob> pending;
  pending.reserve(requests.size());
  for (const JobRequest& request : requests) {
    pending.push_back(submit(request));
  }
  std::vector<JobResult> results;
  results.reserve(pending.size());
  for (const PendingJob& job : pending) {
    results.push_back(wait(job));
  }
  return results;
}

void SynthesisService::drain() { scheduler_->drain(); }

std::shared_ptr<const SynthesisArtifact> SynthesisService::perform(
    const std::string& key,
    const std::shared_ptr<const stencil::StencilProgram>& program) {
  if (store_ != nullptr && !key.empty()) {
    if (std::optional<std::string> payload = store_->load(key)) {
      try {
        auto artifact = std::make_shared<SynthesisArtifact>(
            parse_artifact(*payload));
        if (artifact->key == key) {
          artifact->served_from_store = true;
          return artifact;
        }
        SCL_INFO() << "artifact " << key
                   << ": embedded key mismatch, recomputing";
      } catch (const Error& e) {
        // Undecodable payload despite an intact checksum (e.g. written
        // by a future schema): recompute and overwrite below.
        SCL_INFO() << "artifact " << key << ": " << e.what()
                   << ", recomputing";
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++synthesized_;
  }
  const core::Framework framework(*program, options_.framework);
  const core::SynthesisReport report = framework.synthesize();
  auto artifact =
      std::make_shared<SynthesisArtifact>(make_artifact(key, report));
  if (store_ != nullptr && !key.empty()) {
    store_->store(key, serialize_artifact(*artifact));
  }
  return artifact;
}

void SynthesisService::record_latency(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  latencies_ms_.push_back(ms);
}

ServiceStats SynthesisService::stats() const {
  ServiceStats stats;
  const SchedulerStats sched = scheduler_->stats();
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.requests = requests_;
    stats.synthesized = synthesized_;
    stats.failures = failures_;
    latencies = latencies_ms_;
  }
  stats.coalesced = sched.coalesced;
  if (store_ != nullptr) {
    const ArtifactStoreStats store = store_->stats();
    stats.store_hits = store.hits;
    stats.store_misses = store.misses;
    stats.evictions = store.evictions;
    stats.corrupt_recovered = store.corrupt_dropped;
    stats.store_bytes = store_->total_bytes();
    stats.store_entries =
        static_cast<std::int64_t>(store_->entry_count());
  }
  stats.latency_p50_ms = percentile(latencies, 0.50);
  stats.latency_p95_ms = percentile(std::move(latencies), 0.95);
  return stats;
}

std::string SynthesisService::render_stats_json() const {
  const ServiceStats s = stats();
  support::JsonWriter json(support::JsonStyle::kSpaced);
  json.begin_object();
  json.member("requests", s.requests);
  json.member("store_hits", s.store_hits);
  json.member("store_misses", s.store_misses);
  json.member("coalesced", s.coalesced);
  json.member("synthesized", s.synthesized);
  json.member("failures", s.failures);
  json.member("evictions", s.evictions);
  json.member("corrupt_recovered", s.corrupt_recovered);
  json.member("store_bytes", s.store_bytes);
  json.member("store_entries", s.store_entries);
  json.key("latency_ms").begin_object();
  json.key("p50").value_fixed(s.latency_p50_ms, 3);
  json.key("p95").value_fixed(s.latency_p95_ms, 3);
  json.end_object();
  json.end_object();
  return json.take();
}

}  // namespace scl::serve
