// stencild wire protocol: newline-delimited JSON frames over a stream.
//
// One frame = one JSON object on one line, terminated by '\n'. A client
// writes request frames; the daemon answers each with exactly one
// response frame carrying the request's `id` (responses per connection
// come back in request order, so pipelining N requests is safe). The
// framing and the JSON layer are intentionally boring — the same
// support/json reader/writer every other document in the framework uses.
//
// Request frame:
//   {"id":1,"tenant":"team-a","benchmark":"Jacobi-2D",
//    "grid":[64,64],"iterations":8,"priority":2,"timeout_ms":5000}
// or  {"id":2,"stencil_text":"stencil jacobi1d { ... }"}
//
// Response frame:
//   {"id":1,"status":"ok","key":"<32 hex>","name":"Jacobi-2D",
//    "from_cache":true,"from_memory":true,"coalesced":false,
//    "speedup":1.62,"latency_ms":0.41}
// or  {"id":1,"status":"shed","error":"queue full"}
//
// `status` is "ok", or one of the admission bounces ("shed", "quota",
// "rate_limited"), or "error" (synthesis failure / malformed request).
// A malformed frame that carries no parseable id is answered with
// id = 0. The protocol never drops a frame silently and never kills the
// connection for a bad frame — only for an over-long one after the
// error response is written.
//
// FrameReader is the incremental decoder: it accepts arbitrary byte
// chunks (partial frames, many frames at once) and yields complete
// frames. A frame that exceeds max_frame_bytes before its newline
// arrives throws on next(); the reader then discards bytes until the
// next newline, so the caller can answer with a structured error and
// keep the connection.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scl::serve {

inline constexpr int kWireVersion = 1;
/// Upper bound on one frame's bytes (id + program text dominate; 4 MiB
/// comfortably fits any bundled stencil while bounding a hostile
/// client's memory).
inline constexpr std::size_t kMaxFrameBytes = 4u * 1024 * 1024;

struct WireRequest {
  std::int64_t id = 0;
  std::string tenant = "default";
  /// Exactly one of `benchmark` (a paper-suite name) or `stencil_text`
  /// (inline `.stencil` source) must be set.
  std::string benchmark;
  std::string stencil_text;
  /// Grid override for benchmark requests; used when dims > 0.
  std::array<std::int64_t, 3> grid = {0, 0, 0};
  int grid_dims = 0;
  std::int64_t iterations = 0;  ///< 0 = benchmark default
  int priority = 0;
  std::int64_t timeout_ms = 0;  ///< queue deadline; 0 = none
};

/// One structured verifier diagnostic in an error response. The daemon
/// forwards error-severity SCL diagnostics (including the pass-4 kernel-IR
/// codes SCL4xx) so clients see *why* a synthesis was rejected instead of
/// one flattened message string.
struct WireDiagnostic {
  std::string code;      ///< stable SCL code, e.g. "SCL406"
  std::string severity;  ///< "error" | "warning" | "note"
  std::string message;
};

struct WireResponse {
  std::int64_t id = 0;
  std::string status;  ///< "ok" | "error" | "shed" | "quota" | "rate_limited"
  std::string error;   ///< set when status != "ok"
  std::string key;     ///< content address; empty when uncacheable
  std::string name;
  bool from_cache = false;   ///< served from the artifact store (any tier)
  bool from_memory = false;  ///< served from the in-memory tier
  bool coalesced = false;
  double speedup = 0.0;
  double latency_ms = 0.0;
  /// Verifier diagnostics for status "error"; absent from the frame when
  /// empty (older clients parse responses unchanged).
  std::vector<WireDiagnostic> diagnostics;

  bool ok() const { return status == "ok"; }
};

/// One-line JSON frame (no trailing '\n').
std::string serialize_request(const WireRequest& request);
std::string serialize_response(const WireResponse& response);

/// Throw scl::Error on malformed JSON, a missing discriminator, or
/// out-of-range fields.
WireRequest parse_request(const std::string& frame);
WireResponse parse_response(const std::string& frame);

/// Incremental newline-delimited frame decoder. Not thread-safe (one
/// reader per connection).
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kMaxFrameBytes);

  /// Appends raw bytes from the stream (any chunking, including one byte
  /// at a time or several frames at once).
  void feed(std::string_view bytes);

  /// Returns the next complete frame without its '\n' (empty frames are
  /// skipped), or nullopt when no full frame is buffered. Throws
  /// scl::Error once per over-long frame; the offending bytes are
  /// discarded through the frame's eventual newline and subsequent
  /// frames decode normally.
  std::optional<std::string> next();

  /// Bytes buffered toward the next frame (diagnostic).
  std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  bool discarding_ = false;  ///< inside an over-long frame
};

/// Minimal blocking client over a Unix-domain socket; used by the bench
/// harness, the daemon tests and as the reference for writing clients in
/// other languages. Not thread-safe.
class WireClient {
 public:
  WireClient() = default;
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connects to the daemon's socket. Throws scl::Error on failure.
  void connect(const std::string& socket_path);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one request frame.
  void send(const WireRequest& request);
  /// Sends raw bytes verbatim (malformed-frame tests).
  void send_raw(std::string_view bytes);

  /// Blocks for the next response frame. Throws scl::Error when the
  /// daemon closes the connection first.
  WireResponse recv();

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace scl::serve
