// JSON (de)serialization of synthesis results, and the canonical request
// fingerprint used to content-address them.
//
// A SynthesisArtifact is the serving layer's unit of persistence: the two
// selected design points (config + prediction + resources), the simulated
// latencies, the emitted OpenCL sources, the design-verification
// diagnostics, and the rendered Markdown report — everything a warm
// response needs, nothing more. Features, candidate spaces and DSE wall
// clocks are deliberately excluded: features are cheap to recompute from
// the program, and timing counters would break the determinism contract
// below.
//
// Determinism contract: serialize_artifact() is a pure function of the
// artifact's value — field order is fixed, integers print canonically and
// doubles print with round-trip precision ("%.17g") — so re-synthesizing
// the same request yields byte-identical payloads run after run. The
// batched-service benchmark (bench/bench_service.cpp) enforces this.
//
// The content address of a request is a 128-bit hash (two FNV-1a-64
// passes) over a canonical fingerprint string of: the program's `.stencil`
// round-trip text, the full device spec, every synthesis option that can
// change the result, and kCodeVersion. Worker thread counts are excluded
// (the DSE is bit-deterministic across thread counts by construction).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "codegen/opencl_emitter.hpp"
#include "core/framework.hpp"
#include "core/optimizer.hpp"
#include "support/json.hpp"

namespace scl::serve {

/// Schema version of serialized artifacts. Part of the content address:
/// bumping it invalidates every cached artifact (they simply miss).
inline constexpr int kArtifactSchemaVersion = 3;

/// Version tag of the synthesis code itself. Bump whenever model,
/// optimizer, codegen or verifier changes could alter results for the
/// same input — stale artifacts must not be served.
inline constexpr const char* kCodeVersion = "scl-serve-3";

/// FNV-1a over `data` starting from `seed` (defaults to the standard
/// 64-bit offset basis).
std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t seed = 14695981039346656037ull);

/// Everything one synthesis produced, in round-trippable form.
struct SynthesisArtifact {
  std::string key;           ///< content address (32 hex chars)
  std::string program_name;  ///< display name of the stencil
  std::string device_name;
  core::DesignPoint baseline;
  core::DesignPoint heterogeneous;
  /// Schema v2: the family of the emitted design, and — when the flow
  /// searched the temporal family and a design fit — its winner.
  /// Schema v3: design configs carry a "replication" member and device
  /// specs a banked "memory" section (HBM multi-bank modeling).
  arch::DesignFamily selected_family = arch::DesignFamily::kPipeTiling;
  std::optional<core::DesignPoint> temporal;
  std::int64_t baseline_cycles = 0;       ///< simulated; 0 = not simulated
  std::int64_t heterogeneous_cycles = 0;
  std::int64_t temporal_cycles = 0;
  double baseline_ms = 0.0;
  double heterogeneous_ms = 0.0;
  double speedup = 0.0;
  codegen::GeneratedCode code;
  support::DiagnosticEngine analysis;
  std::string markdown_report;

  /// Transient: set by the service when this instance was loaded from
  /// the artifact store rather than freshly synthesized. Not serialized.
  bool served_from_store = false;
  /// Transient: the store load was a memory-tier hit (implies
  /// served_from_store). Not serialized.
  bool served_from_memory = false;
};

// Component writers/parsers, exposed for targeted round-trip tests. The
// writers append one JSON value at the writer's current position.
void write_design_config(support::JsonWriter* json,
                         const sim::DesignConfig& config);
sim::DesignConfig parse_design_config(const support::JsonValue& v);

void write_design_point(support::JsonWriter* json,
                        const core::DesignPoint& point);
core::DesignPoint parse_design_point(const support::JsonValue& v);

void write_diagnostics(support::JsonWriter* json,
                       const support::DiagnosticEngine& diags);
support::DiagnosticEngine parse_diagnostics(const support::JsonValue& v);

/// Deterministic, compact-JSON payload bytes of `artifact`.
std::string serialize_artifact(const SynthesisArtifact& artifact);

/// Inverse of serialize_artifact. Throws scl::Error on any structural or
/// schema mismatch (the artifact store treats that as corruption).
SynthesisArtifact parse_artifact(const std::string& payload);

/// Builds an artifact from a finished synthesis run. `key` may be empty
/// for uncacheable requests.
SynthesisArtifact make_artifact(std::string key,
                                const core::SynthesisReport& report);

/// The canonical fingerprint string a request hashes to its content
/// address: program text + device + options + code/schema version.
std::string request_fingerprint(const std::string& canonical_program,
                                const core::FrameworkOptions& options);

/// 128-bit content address (32 lowercase hex chars) of a request.
std::string request_key(const std::string& canonical_program,
                        const core::FrameworkOptions& options);

}  // namespace scl::serve
