// Tiered artifact cache: hot in-memory LRU over consistent-hash-sharded
// disk stores.
//
// One namespace of 128-bit content addresses (serve/serialize.hpp) is
// served by two tiers:
//
//   * memory — a byte-bounded LRU of recently served payloads. A hit here
//     costs a map lookup and a list splice; no disk I/O, no checksum.
//   * disk   — N independent ArtifactStore roots. Each key maps to
//     exactly one shard through a consistent-hash ring (kVirtualNodes
//     points per shard, keyed by the shard root's name), so growing from
//     one root to N reshuffles only ~1/N of the keyspace instead of
//     rehashing everything, and N stores together serve one namespace.
//
// Writes go through both tiers (write-through): the payload lands on its
// disk shard first — durability before visibility — then enters the
// memory tier. A disk hit is *promoted* into memory on load; a memory
// eviction is a silent *demotion* (the payload is still on its shard, so
// the next load is a disk hit that re-promotes). Corruption handling
// lives entirely in the disk tier: memory never holds a payload that was
// not first persisted or validated.
//
// All public methods are thread-safe. The memory tier serializes on one
// mutex — payload moves are O(1) splices and the working set is small;
// the disk shards keep their own locks, so concurrent loads of keys on
// different shards overlap their I/O.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/artifact_store.hpp"

namespace scl::serve {

struct TieredStoreOptions {
  /// Disk shard roots, one ArtifactStore each; must be non-empty.
  std::vector<std::string> shard_roots;
  /// Byte bound for EACH disk shard (the namespace total is the sum).
  std::int64_t disk_capacity_bytes = 256ll * 1024 * 1024;
  /// Byte bound of the in-memory tier; <= 0 disables it (every load goes
  /// to disk, which turns the tiered store into a plain sharded store).
  std::int64_t memory_capacity_bytes = 64ll * 1024 * 1024;
  /// Preload the memory tier at construction with the most-recently-used
  /// disk artifacts (by file mtime, across all shards) until the memory
  /// budget is full: a restarted daemon then serves yesterday's hot set
  /// from memory on the *first* request. Off by default — cold starts
  /// that never re-see old keys should not pay the read-back I/O.
  bool warm_memory_tier = false;
};

struct TieredStoreStats {
  std::int64_t memory_hits = 0;
  std::int64_t disk_hits = 0;    ///< memory miss served by a shard
  std::int64_t misses = 0;       ///< absent from every tier
  std::int64_t promotions = 0;   ///< disk hits copied into memory
  std::int64_t demotions = 0;    ///< memory LRU evictions (still on disk)
  std::int64_t warmed = 0;       ///< artifacts preloaded at construction
  std::int64_t writes = 0;
  std::int64_t evictions = 0;         ///< disk-tier LRU evictions (all shards)
  std::int64_t corrupt_dropped = 0;   ///< disk-tier corruption recoveries

  std::int64_t hits() const { return memory_hits + disk_hits; }
};

class TieredArtifactStore {
 public:
  /// Opens every shard (creating roots as needed). Throws scl::Error when
  /// no shard root is given or a root is unusable.
  explicit TieredArtifactStore(TieredStoreOptions options);

  TieredArtifactStore(const TieredArtifactStore&) = delete;
  TieredArtifactStore& operator=(const TieredArtifactStore&) = delete;

  /// Memory tier first, then the key's disk shard (promoting a disk hit
  /// into memory). nullopt when both tiers miss. When `from_memory` is
  /// non-null it reports which tier served the hit.
  std::optional<std::string> load(const std::string& key,
                                  bool* from_memory = nullptr);

  /// Write-through: persists to the key's shard, then caches in memory.
  void store(const std::string& key, const std::string& payload);

  /// True when either tier holds `key` (no LRU touch, no promotion).
  bool contains(const std::string& key) const;

  /// The shard index `key` maps to on the consistent-hash ring. Stable
  /// for a given shard_roots configuration; exposed for tests and for
  /// operators debugging shard balance.
  std::size_t shard_for(const std::string& key) const;

  std::size_t shard_count() const { return shards_.size(); }
  const ArtifactStore& shard(std::size_t index) const {
    return *shards_[index];
  }

  std::size_t memory_entries() const;
  std::int64_t memory_bytes() const;
  /// Disk bytes/entries summed across shards.
  std::int64_t total_bytes() const;
  std::size_t entry_count() const;

  TieredStoreStats stats() const;

 private:
  /// Virtual nodes per shard on the hash ring: enough that a handful of
  /// shards split the keyspace within a few percent of even.
  static constexpr int kVirtualNodes = 64;

  struct MemoryEntry {
    std::string key;
    std::string payload;
  };

  void cache_locked(const std::string& key, const std::string& payload);
  void warm_memory_tier();

  TieredStoreOptions options_;
  std::vector<std::unique_ptr<ArtifactStore>> shards_;
  /// Sorted (point, shard index) ring; lookup is the first point >= the
  /// key's hash, wrapping to the front.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;

  mutable std::mutex mutex_;
  std::list<MemoryEntry> lru_;  ///< front = most recent
  std::unordered_map<std::string, std::list<MemoryEntry>::iterator> index_;
  std::int64_t memory_bytes_ = 0;
  TieredStoreStats stats_;
};

}  // namespace scl::serve
