#include "serve/artifact_store.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "serve/serialize.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace scl::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMagic = "SCLA1";
constexpr const char* kExtension = ".scla";

bool is_hex_key(const std::string& key) {
  if (key.size() != 32) return false;
  for (const char c : key) {
    const bool ok =
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

std::string checksum_hex(const std::string& payload) {
  const std::uint64_t h = fnv1a64(payload);
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(16);
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += hex[(h >> shift) & 0xF];
  }
  return out;
}

/// Parses "<magic> <key> <bytes> <checksum>\n<payload>"; returns the
/// payload or nullopt on any mismatch.
std::optional<std::string> parse_artifact_file(const std::string& contents,
                                               const std::string& key) {
  const std::size_t newline = contents.find('\n');
  if (newline == std::string::npos) return std::nullopt;
  const std::vector<std::string> fields =
      split(contents.substr(0, newline), ' ');
  if (fields.size() != 4) return std::nullopt;
  if (fields[0] != kMagic || fields[1] != key) return std::nullopt;
  char* end = nullptr;
  const long long declared = std::strtoll(fields[2].c_str(), &end, 10);
  if (end == fields[2].c_str() || *end != '\0' || declared < 0) {
    return std::nullopt;
  }
  std::string payload = contents.substr(newline + 1);
  if (static_cast<long long>(payload.size()) != declared) {
    return std::nullopt;  // truncated (or padded) on disk
  }
  if (checksum_hex(payload) != fields[3]) return std::nullopt;  // bit rot
  return payload;
}

}  // namespace

ArtifactStore::ArtifactStore(ArtifactStoreOptions options)
    : options_(std::move(options)) {
  if (options_.root.empty()) {
    throw Error("ArtifactStore needs a root directory");
  }
  std::error_code ec;
  fs::create_directories(options_.root, ec);
  if (ec || !fs::is_directory(options_.root)) {
    throw Error(str_cat("ArtifactStore: cannot create root '", options_.root,
                        "': ", ec.message()));
  }
  scan_existing();
  std::lock_guard<std::mutex> lock(mutex_);
  evict_locked();
}

fs::path ArtifactStore::path_for(const std::string& key) const {
  return fs::path(options_.root) / key.substr(0, 2) / (key + kExtension);
}

void ArtifactStore::scan_existing() {
  // Rebuild the LRU order from file mtimes: oldest first so the logical
  // clock assigns them the smallest last_use values.
  struct Found {
    std::string key;
    std::int64_t bytes;
    fs::file_time_type mtime;
  };
  std::vector<Found> found;
  std::error_code ec;
  for (const auto& shard : fs::directory_iterator(options_.root, ec)) {
    if (!shard.is_directory()) continue;
    for (const auto& file : fs::directory_iterator(shard.path(), ec)) {
      const fs::path& path = file.path();
      if (path.extension() != kExtension) continue;
      const std::string key = path.stem().string();
      if (!is_hex_key(key)) continue;
      std::error_code stat_ec;
      const auto size = fs::file_size(path, stat_ec);
      const auto mtime = fs::last_write_time(path, stat_ec);
      if (stat_ec) continue;
      found.push_back({key, static_cast<std::int64_t>(size), mtime});
    }
  }
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) {
              return a.mtime != b.mtime ? a.mtime < b.mtime : a.key < b.key;
            });
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Found& f : found) {
    entries_[f.key] = {f.bytes, ++use_clock_};
    total_bytes_ += f.bytes;
  }
}

std::optional<std::string> ArtifactStore::load(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  const fs::path path = path_for(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    drop_corrupt_locked(key, path);
    ++stats_.misses;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::optional<std::string> payload =
      parse_artifact_file(buffer.str(), key);
  if (!payload.has_value()) {
    drop_corrupt_locked(key, path);
    ++stats_.misses;
    return std::nullopt;
  }
  it->second.last_use = ++use_clock_;
  // Refresh the mtime so the next process's startup scan sees this
  // artifact as recently used.
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  ++stats_.hits;
  return payload;
}

void ArtifactStore::store(const std::string& key,
                          const std::string& payload) {
  if (!is_hex_key(key)) {
    throw Error(str_cat("ArtifactStore: malformed key '", key, "'"));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const fs::path path = path_for(key);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) {
    throw Error(str_cat("ArtifactStore: cannot create shard for '", key,
                        "': ", ec.message()));
  }
  // Atomic publish: write a unique temp file, then rename over the final
  // name. rename(2) within one filesystem is atomic, so readers see
  // either the previous artifact or this one in full.
  const fs::path temp =
      fs::path(options_.root) /
      str_cat("tmp-", key.substr(0, 8), "-", ++temp_counter_, ".part");
  // The index accounts whole-file bytes (header + payload) so the
  // capacity bound tracks real disk usage and matches what the startup
  // scan sees after a restart.
  const std::string header = str_cat(kMagic, " ", key, " ", payload.size(),
                                     " ", checksum_hex(payload), "\n");
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw Error(str_cat("ArtifactStore: cannot write '", temp.string(),
                          "'"));
    }
    out << header << payload;
    out.flush();
    if (!out) {
      throw Error(str_cat("ArtifactStore: short write to '", temp.string(),
                          "'"));
    }
  }
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    throw Error(str_cat("ArtifactStore: cannot publish artifact '", key,
                        "'"));
  }
  const auto bytes = static_cast<std::int64_t>(header.size() + payload.size());
  auto [it, inserted] = entries_.try_emplace(key);
  if (!inserted) total_bytes_ -= it->second.bytes;
  it->second = {bytes, ++use_clock_};
  total_bytes_ += bytes;
  ++stats_.writes;
  evict_locked();
}

bool ArtifactStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(key) != entries_.end();
}

std::size_t ArtifactStore::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::int64_t ArtifactStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_;
}

ArtifactStoreStats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<ArtifactStore::RecencyEntry> ArtifactStore::recency() const {
  std::vector<RecencyEntry> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    std::error_code ec;
    const auto mtime = fs::last_write_time(path_for(key), ec);
    if (ec) continue;
    out.push_back({key, entry.bytes, mtime});
  }
  std::sort(out.begin(), out.end(),
            [](const RecencyEntry& a, const RecencyEntry& b) {
              return a.mtime != b.mtime ? a.mtime > b.mtime : a.key < b.key;
            });
  return out;
}

void ArtifactStore::evict_locked() {
  if (options_.capacity_bytes <= 0) return;
  while (total_bytes_ > options_.capacity_bytes && !entries_.empty()) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    std::error_code ec;
    fs::remove(path_for(victim->first), ec);
    SCL_INFO() << "artifact store: evicted " << victim->first << " ("
               << victim->second.bytes << " bytes)";
    total_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

void ArtifactStore::drop_corrupt_locked(const std::string& key,
                                        const fs::path& path) {
  std::error_code ec;
  fs::remove(path, ec);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    total_bytes_ -= it->second.bytes;
    entries_.erase(it);
  }
  ++stats_.corrupt_dropped;
}

}  // namespace scl::serve
