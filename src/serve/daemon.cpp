#include "serve/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "stencil/kernels.hpp"
#include "stencil/parser.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/observability/observability.hpp"
#include "support/strings.hpp"

namespace scl::serve {

namespace {

/// Tenant ids become metric-name suffixes; anything outside the metric
/// charset folds to '_'.
std::string sanitize_metric_suffix(const std::string& tenant) {
  std::string out = tenant;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

/// Builds the service job for a validated wire request. Throws scl::Error
/// on an unknown benchmark or unparseable stencil text.
JobRequest to_job(const WireRequest& wire) {
  JobRequest job;
  if (!wire.benchmark.empty()) {
    const stencil::BenchmarkInfo& info =
        stencil::find_benchmark(wire.benchmark);
    std::array<std::int64_t, 3> extents = info.input_size;
    const std::int64_t iterations =
        wire.iterations > 0 ? wire.iterations : info.iterations;
    if (wire.grid_dims > 0) {
      extents = {1, 1, 1};
      for (int d = 0; d < wire.grid_dims; ++d) extents[d] = wire.grid[d];
    }
    job.name = wire.benchmark;
    job.program = std::make_shared<stencil::StencilProgram>(
        info.make_scaled(extents, iterations));
  } else {
    stencil::StencilProgram program =
        stencil::parse_program(wire.stencil_text);
    job.name = program.name();
    job.program =
        std::make_shared<stencil::StencilProgram>(std::move(program));
  }
  job.priority = wire.priority;
  job.timeout = std::chrono::milliseconds(wire.timeout_ms);
  return job;
}

}  // namespace

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  if (options_.socket_path.empty()) {
    throw Error("Daemon: socket_path must be set");
  }
  service_ = std::make_unique<SynthesisService>(options_.service);
  admission_ = std::make_unique<AdmissionController>(
      options_.admission, options_.admission_clock);
  register_metrics();
}

void Daemon::register_metrics() {
  auto& registry = service_->metrics();
  frames_total_ = &registry.counter("scl_serve_frames_total",
                                    "complete wire frames ingested");
  malformed_total_ = &registry.counter(
      "scl_serve_malformed_total", "frames answered with a parse error");
  admitted_total_ = &registry.counter("scl_serve_admitted_total",
                                      "requests past admission control");
  shed_total_ = &registry.counter(
      "scl_serve_shed_total", "requests bounced by the global queue bound");
  quota_rejected_total_ =
      &registry.counter("scl_serve_quota_rejected_total",
                        "tenant quota and rate-limit bounces");
  queue_depth_ = &registry.gauge("scl_serve_queue_depth",
                                 "admitted-but-unanswered requests");
}

Daemon::~Daemon() {
  if (started_.load()) {
    request_stop();
    wait_drained();
  }
}

void Daemon::start() {
  SCL_CHECK(!started_.load(), "Daemon::start called twice");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw Error("Daemon: cannot create socket");
  sockaddr_un address = {};
  address.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(address.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("Daemon: socket path too long: " + options_.socket_path);
  }
  std::memcpy(address.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  ::unlink(options_.socket_path.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("Daemon: cannot bind/listen on " + options_.socket_path);
  }
  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Daemon::request_stop() {
  draining_.store(true);
  stop_latch_.trigger();
}

void Daemon::accept_loop() {
  while (true) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0},
                     {stop_latch_.fd(), POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      fatal_error_.store(true);
      stop_latch_.trigger();
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 || draining_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      fatal_error_.store(true);
      stop_latch_.trigger();
      break;
    }
    std::vector<std::unique_ptr<Connection>> reaped;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Move finished connections out under the lock, join them outside
      // it (their last act is a notify that takes this mutex).
      for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->finished.load()) {
          reaped.push_back(std::move(*it));
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
      const bool full =
          static_cast<int>(connections_.size()) >= options_.max_connections;
      if (draining_.load() || full) {
        ::close(fd);
        ++stats_.connections_rejected;
      } else {
        auto connection = std::make_unique<Connection>();
        Connection* raw = connection.get();
        raw->fd = fd;
        connections_.push_back(std::move(connection));
        ++stats_.connections_accepted;
        raw->reader = std::thread([this, raw] { reader_loop(raw); });
        raw->writer = std::thread([this, raw] { writer_loop(raw); });
      }
    }
    for (auto& connection : reaped) {
      if (connection->reader.joinable()) connection->reader.join();
      if (connection->writer.joinable()) connection->writer.join();
      ::close(connection->fd);
    }
  }
}

void Daemon::reader_loop(Connection* connection) {
  FrameReader reader(options_.max_frame_bytes);
  while (!draining_.load()) {
    pollfd fds[2] = {{connection->fd, POLLIN, 0},
                     {stop_latch_.fd(), POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // drain began
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    char chunk[8192];
    const ssize_t n = ::recv(connection->fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;  // EOF or error: client is gone
    reader.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    while (true) {
      std::optional<std::string> frame;
      try {
        frame = reader.next();
      } catch (const Error& e) {
        // Over-long frame: answer with a structured error, then keep
        // decoding (the reader skips to the next newline itself).
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.malformed;
        }
        malformed_total_->increment();
        PendingResponse bounce;
        bounce.immediate.status = "error";
        bounce.immediate.error = e.what();
        enqueue(connection, std::move(bounce));
        continue;
      }
      if (!frame) break;
      handle_frame(connection, *frame);
    }
  }
  {
    std::lock_guard<std::mutex> lock(connection->mutex);
    connection->reader_done = true;
  }
  connection->cv.notify_all();
}

void Daemon::handle_frame(Connection* connection, const std::string& frame) {
  const auto span = support::obs::tracer().span("serve/request", "serve");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.frames;
  }
  frames_total_->increment();

  WireRequest wire;
  try {
    wire = parse_request(frame);
  } catch (const Error& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.malformed;
    }
    malformed_total_->increment();
    PendingResponse bounce;
    bounce.immediate.status = "error";
    bounce.immediate.error = e.what();
    enqueue(connection, std::move(bounce));
    return;
  }

  // Admission runs before the (possibly attacker-controlled) program is
  // even parsed: quota'd tenants cannot buy parser time either.
  AdmissionVerdict verdict = admission_->try_admit(wire.tenant);
  if (verdict == AdmissionVerdict::kShed) {
    // Over-deadline queued work is doomed anyway — shed it first, then
    // give this request one more chance at the freed capacity.
    service_->shed_expired();
    verdict = admission_->try_admit(wire.tenant);
  }
  if (verdict != AdmissionVerdict::kAdmitted) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (verdict == AdmissionVerdict::kShed) {
        ++stats_.shed;
      } else {
        ++stats_.quota_rejected;
      }
    }
    if (verdict == AdmissionVerdict::kShed) {
      shed_total_->increment();
    } else {
      quota_rejected_total_->increment();
    }
    PendingResponse bounce;
    bounce.immediate.id = wire.id;
    bounce.immediate.status = to_string(verdict);
    bounce.immediate.error =
        verdict == AdmissionVerdict::kShed
            ? "queue full: request shed"
            : str_cat("tenant '", wire.tenant, "' over ",
                      verdict == AdmissionVerdict::kQuotaExceeded
                          ? "concurrency quota"
                          : "request rate");
    enqueue(connection, std::move(bounce));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.admitted;
  }
  admitted_total_->increment();
  queue_depth_->set(static_cast<double>(admission_->depth()));

  PendingResponse pending;
  pending.id = wire.id;
  pending.tenant = wire.tenant;
  pending.admitted = true;
  try {
    pending.job = service_->submit(to_job(wire));
    pending.has_job = true;
  } catch (const Error& e) {
    // Unknown benchmark / bad stencil text / service shutting down: the
    // admission slot is released by the writer like any other response.
    pending.immediate.id = wire.id;
    pending.immediate.status = "error";
    pending.immediate.error = e.what();
  }
  enqueue(connection, std::move(pending));
}

void Daemon::enqueue(Connection* connection, PendingResponse response) {
  {
    std::lock_guard<std::mutex> lock(connection->mutex);
    connection->queue.push_back(std::move(response));
  }
  connection->cv.notify_all();
}

void Daemon::write_frame(Connection* connection,
                         const WireResponse& response) {
  if (connection->write_broken) return;
  const std::string frame = serialize_response(response) + "\n";
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(connection->fd, frame.data() + sent,
                             frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      // Client hung up mid-drain; jobs still complete and release their
      // admission slots, the bytes just have nowhere to go.
      connection->write_broken = true;
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Daemon::writer_loop(Connection* connection) {
  while (true) {
    PendingResponse item;
    {
      std::unique_lock<std::mutex> lock(connection->mutex);
      connection->cv.wait(lock, [&] {
        return !connection->queue.empty() || connection->reader_done;
      });
      if (connection->queue.empty()) break;  // reader done, all answered
      item = std::move(connection->queue.front());
      connection->queue.pop_front();
    }
    WireResponse response = item.immediate;
    if (item.has_job) {
      const JobResult result = service_->wait(item.job);
      response.id = item.id;
      response.name = result.name;
      response.key = result.key;
      if (result.ok) {
        response.status = "ok";
        response.from_cache = result.from_cache;
        response.from_memory = result.from_memory;
        response.coalesced = result.coalesced;
        response.speedup = result.artifact->speedup;
        response.latency_ms = result.latency_ms;
      } else if (result.error.find("shed: over deadline") !=
                 std::string::npos) {
        response.status = "shed";
        response.error = result.error;
      } else {
        response.status = "error";
        response.error = result.error;
        // Verification failures carry structured SCL diagnostics; forward
        // the error-severity entries so the client sees which checks the
        // design failed (warnings stay server-side).
        for (const support::Diagnostic& diag : result.diagnostics) {
          if (diag.severity != support::Severity::kError) continue;
          response.diagnostics.push_back(
              {diag.code, support::to_string(diag.severity), diag.message});
        }
      }
    }
    if (item.admitted) {
      admission_->release(item.tenant);
      queue_depth_->set(static_cast<double>(admission_->depth()));
    }
    write_frame(connection, response);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.responses;
      if (item.has_job || item.admitted) {
        response.ok() ? ++stats_.completed : ++stats_.failed;
      }
    }
  }
  connection->finished.store(true);
  {
    std::lock_guard<std::mutex> lock(mutex_);
  }
  drained_cv_.notify_all();
}

bool Daemon::wait_drained() {
  if (!started_.load()) return true;
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();

  const auto deadline =
      std::chrono::steady_clock::now() + options_.drain_timeout;
  bool clean;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    clean = drained_cv_.wait_until(lock, deadline, [&] {
      for (const auto& connection : connections_) {
        if (!connection->finished.load()) return false;
      }
      return true;
    });
    if (!clean) {
      // Past the drain budget: force the sockets down so blocked I/O
      // unblocks. Jobs still run to completion below — the join is
      // unconditional, only the "clean" verdict is lost.
      for (const auto& connection : connections_) {
        ::shutdown(connection->fd, SHUT_RDWR);
      }
    }
  }

  std::list<std::unique_ptr<Connection>> remaining;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    remaining.swap(connections_);
  }
  for (auto& connection : remaining) {
    if (connection->reader.joinable()) connection->reader.join();
    if (connection->writer.joinable()) connection->writer.join();
    ::close(connection->fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
  started_.store(false);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.drained_clean = clean;
  }
  return clean;
}

int Daemon::run(support::ShutdownLatch& latch) {
  start();
  SCL_INFO() << "stencild listening on " << options_.socket_path;
  while (true) {
    pollfd fds[2] = {{latch.fd(), POLLIN, 0},
                     {stop_latch_.fd(), POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0) {
      fatal_error_.store(true);
      break;
    }
    if ((fds[0].revents & POLLIN) != 0 ||
        (fds[1].revents & POLLIN) != 0) {
      break;
    }
  }
  SCL_INFO() << "stencild draining (timeout "
             << options_.drain_timeout.count() << " ms)";
  const bool clean = wait_drained();
  SCL_INFO() << "stencild drain " << (clean ? "clean" : "FORCED") << ", "
             << stats().responses << " response(s) written";
  return clean && !fatal_error_.load() ? 0 : 1;
}

DaemonStats Daemon::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string Daemon::render_stats_json() const {
  const DaemonStats daemon = stats();
  const AdmissionStats admission = admission_->stats();
  support::JsonWriter json(support::JsonStyle::kSpaced);
  json.begin_object();
  json.key("daemon").begin_object();
  json.member("connections_accepted", daemon.connections_accepted);
  json.member("connections_rejected", daemon.connections_rejected);
  json.member("frames", daemon.frames);
  json.member("malformed", daemon.malformed);
  json.member("admitted", daemon.admitted);
  json.member("shed", daemon.shed);
  json.member("quota_rejected", daemon.quota_rejected);
  json.member("completed", daemon.completed);
  json.member("failed", daemon.failed);
  json.member("responses", daemon.responses);
  json.member("drained_clean", daemon.drained_clean);
  json.end_object();
  json.key("admission").begin_object();
  json.member("admitted", admission.admitted);
  json.member("shed", admission.shed);
  json.member("quota_rejected", admission.quota_rejected);
  json.member("depth", admission.depth);
  json.member("max_depth", admission.max_depth);
  json.key("tenants").begin_object();
  for (const auto& [tenant, t] : admission.tenants) {
    json.key(tenant).begin_object();
    json.member("admitted", t.admitted);
    json.member("quota_rejected", t.quota_rejected);
    json.member("rate_limited", t.rate_limited);
    json.member("in_flight", t.in_flight);
    json.end_object();
  }
  json.end_object();
  json.end_object();
  json.key("service").raw(service_->render_stats_json());
  json.end_object();
  return json.take();
}

std::string Daemon::render_metrics_exposition() const {
  // Per-tenant admission counts become gauges at scrape time (the
  // registry has no labels; the tenant id is folded into the name).
  const AdmissionStats admission = admission_->stats();
  auto& registry = service_->metrics();
  for (const auto& [tenant, t] : admission.tenants) {
    const std::string suffix = sanitize_metric_suffix(tenant);
    registry
        .gauge("scl_serve_tenant_admitted_total_" + suffix,
               "requests admitted for tenant " + tenant)
        .set(static_cast<double>(t.admitted));
    registry
        .gauge("scl_serve_tenant_quota_rejected_total_" + suffix,
               "quota bounces for tenant " + tenant)
        .set(static_cast<double>(t.quota_rejected));
    registry
        .gauge("scl_serve_tenant_rate_limited_total_" + suffix,
               "rate-limit bounces for tenant " + tenant)
        .set(static_cast<double>(t.rate_limited));
  }
  return service_->render_metrics_exposition();
}

}  // namespace scl::serve
