// stencild daemon: long-running multi-tenant synthesis server over a
// Unix-domain socket.
//
// Composition of the serve subsystem into one process boundary:
//
//   accept loop (poll: listen fd + stop latch)
//     -> per connection: reader thread + writer thread
//          reader: FrameReader over recv() chunks
//                    -> parse WireRequest (malformed -> structured error)
//                    -> AdmissionController.try_admit(tenant)
//                         shed?  Scheduler::shed_expired() first, retry
//                                once, then bounce with status "shed"
//                    -> SynthesisService::submit (coalescing, tiered
//                       store, deadlines) -> queue (id, PendingJob)
//          writer: pops in request order, waits the job future, writes
//                  exactly one response frame per ingested frame,
//                  releases the admission slot
//
// Drain protocol (SIGTERM or request_stop()): the listener closes, every
// reader stops consuming new frames immediately, every writer finishes
// its queue — so each *accepted* request still gets its response — then
// connections close. wait_drained() bounds the wait by drain_timeout and
// reports whether the drain was clean; an unclean drain force-closes the
// sockets and still joins everything (synthesis jobs are finite), so the
// daemon never leaks a thread.
//
// Responses per connection come back in request order: pipelined clients
// match responses by position or by id, both work. One slow cold
// synthesis delays later responses on the *same* connection only; other
// connections proceed independently.
//
// Observability: the daemon registers its counters on the service's
// always-on registry (scl_serve_admitted_total, scl_serve_shed_total,
// scl_serve_quota_rejected_total, scl_serve_frames_total,
// scl_serve_malformed_total, and the scl_serve_queue_depth gauge), wraps
// each frame in a "serve/request" span, and mirrors per-tenant admission
// counts into gauges at scrape time.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/admission.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "support/shutdown.hpp"

namespace scl::serve {

struct DaemonOptions {
  /// Filesystem path of the Unix-domain listening socket. An existing
  /// socket file at the path is replaced.
  std::string socket_path;
  /// Bound on a clean drain; past it wait_drained() force-closes.
  std::chrono::milliseconds drain_timeout{10000};
  /// Concurrent client connections; extras are accepted and immediately
  /// closed (the client sees EOF before any response).
  int max_connections = 64;
  std::size_t max_frame_bytes = kMaxFrameBytes;
  AdmissionOptions admission;
  /// Test seam: fake clock for the admission token buckets.
  AdmissionController::Clock admission_clock;
  ServiceOptions service;
};

struct DaemonStats {
  std::int64_t connections_accepted = 0;
  std::int64_t connections_rejected = 0;
  std::int64_t frames = 0;     ///< complete frames ingested by readers
  std::int64_t malformed = 0;  ///< frames answered with a parse error
  std::int64_t admitted = 0;
  std::int64_t shed = 0;            ///< bounced by the global queue bound
  std::int64_t quota_rejected = 0;  ///< tenant quota + rate-limit bounces
  std::int64_t completed = 0;       ///< "ok" responses written
  std::int64_t failed = 0;          ///< "error" responses for admitted work
  std::int64_t responses = 0;       ///< all response frames written
  bool drained_clean = false;       ///< set by a successful wait_drained()
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket and starts the accept loop. Throws scl::Error when
  /// the socket cannot be created/bound.
  void start();

  /// Begins the drain: stop accepting connections and frames. Idempotent
  /// and safe from any thread (not from signal handlers — route signals
  /// through a ShutdownLatch and run()).
  void request_stop();

  /// Blocks until every connection drained (or drain_timeout passed,
  /// then force-closes and joins). Returns true iff the drain finished
  /// inside the timeout with every accepted request answered.
  bool wait_drained();

  /// Convenience loop for stencild: start(), block until `latch` trips
  /// (or a fatal accept error), drain. Returns 0 on a clean drain.
  int run(support::ShutdownLatch& latch);

  const std::string& socket_path() const { return options_.socket_path; }
  SynthesisService& service() { return *service_; }
  const SynthesisService& service() const { return *service_; }
  AdmissionController& admission() { return *admission_; }

  DaemonStats stats() const;
  std::string render_stats_json() const;
  /// Service + daemon + per-tenant admission families, one exposition.
  std::string render_metrics_exposition() const;

 private:
  struct PendingResponse {
    WireResponse immediate;  ///< complete response (bounce / malformed)
    bool has_job = false;    ///< when set, wait `job` and build from it
    bool admitted = false;   ///< holds an admission slot to release
    std::string tenant;
    std::int64_t id = 0;
    SynthesisService::PendingJob job;
  };

  struct Connection {
    int fd = -1;
    std::thread reader;
    std::thread writer;
    std::mutex mutex;
    std::condition_variable cv;
    std::list<PendingResponse> queue;
    bool reader_done = false;
    bool write_broken = false;  ///< client hung up; keep draining jobs
    std::atomic<bool> finished{false};
  };

  void accept_loop();
  void reader_loop(Connection* connection);
  void writer_loop(Connection* connection);
  /// Parses + admits + submits one frame, enqueueing exactly one
  /// pending response on `connection`.
  void handle_frame(Connection* connection, const std::string& frame);
  void enqueue(Connection* connection, PendingResponse response);
  void write_frame(Connection* connection, const WireResponse& response);
  void register_metrics();

  DaemonOptions options_;
  std::unique_ptr<SynthesisService> service_;
  std::unique_ptr<AdmissionController> admission_;
  support::ShutdownLatch stop_latch_;  ///< wakes poll loops on drain

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> fatal_error_{false};

  mutable std::mutex mutex_;  ///< connections_ + stats_
  std::condition_variable drained_cv_;
  std::list<std::unique_ptr<Connection>> connections_;
  DaemonStats stats_;

  support::obs::Counter* frames_total_ = nullptr;
  support::obs::Counter* malformed_total_ = nullptr;
  support::obs::Counter* admitted_total_ = nullptr;
  support::obs::Counter* shed_total_ = nullptr;
  support::obs::Counter* quota_rejected_total_ = nullptr;
  support::obs::Gauge* queue_depth_ = nullptr;
};

}  // namespace scl::serve
