// Coalescing async request scheduler.
//
// A fixed set of request pumps (long-lived ThreadPool::submit jobs) drains
// a priority queue of keyed work items. The piece that makes it a serving
// component rather than a thread pool wrapper is in-flight deduplication:
// submitting a key that is already queued *or* running returns the
// existing shared future instead of scheduling a second computation, so N
// identical concurrent requests cost one synthesis (the classic
// cache-stampede / thundering-herd guard). Keys are the content addresses
// of serve/serialize.hpp; an empty key opts out of coalescing.
//
// Ordering: higher priority first, FIFO (submission sequence) within a
// priority. Per-request timeouts bound *queue* time: a request whose
// deadline has passed when a pump picks it up fails with scl::Error
// instead of running; a computation already underway is never interrupted
// (callers own cancellation above this layer, if they need it).
//
// Shutdown is a graceful drain: the destructor stops accepting work,
// lets the pumps finish everything already queued, then joins them
// (ThreadPool workers also drain their own queue on destruction — see
// thread_pool.hpp). submit() after shutdown began throws.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/observability/observability.hpp"
#include "support/thread_pool.hpp"

namespace scl::serve {

struct SchedulerStats {
  std::int64_t submitted = 0;  ///< requests accepted (incl. coalesced)
  std::int64_t coalesced = 0;  ///< requests served by an in-flight twin
  std::int64_t executed = 0;   ///< work functions actually run
  std::int64_t completed = 0;  ///< work functions that returned a value
  std::int64_t failed = 0;     ///< work functions that threw
  std::int64_t timed_out = 0;  ///< requests expired while queued
  std::int64_t shed = 0;       ///< requests removed by shed_expired()
  std::int64_t max_queue_depth = 0;
};

template <typename Result>
class Scheduler {
 public:
  struct Submission {
    std::shared_future<Result> future;
    /// True when this request was coalesced onto an in-flight twin.
    bool coalesced = false;
  };

  /// `threads` <= 0 resolves via SCL_THREADS / hardware concurrency.
  /// The scheduler owns `threads` request pumps (and a ThreadPool with
  /// one extra slot, since pool workers host the pumps).
  explicit Scheduler(int threads = 0)
      : pump_count_(ThreadPool::resolve_threads(threads)),
        pool_(std::make_unique<ThreadPool>(pump_count_ + 1)) {
    pumps_alive_ = pump_count_;
    for (int p = 0; p < pump_count_; ++p) {
      pool_->submit([this] { pump(); });
    }
  }

  ~Scheduler() { shutdown(); }

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Schedules `work` under `key`. Identical keys already in flight
  /// coalesce; `timeout` <= 0 means no deadline.
  Submission submit(const std::string& key, std::function<Result()> work,
                    int priority = 0,
                    std::chrono::milliseconds timeout =
                        std::chrono::milliseconds::zero()) {
    SCL_CHECK(work != nullptr, "Scheduler::submit needs a work function");
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      throw Error("Scheduler::submit after shutdown began");
    }
    ++stats_.submitted;
    if (!key.empty()) {
      const auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        ++stats_.coalesced;
        return {it->second->future, true};
      }
    }
    auto request = std::make_shared<Request>();
    request->key = key;
    request->priority = priority;
    request->seq = ++next_seq_;
    if (timeout.count() > 0) {
      request->has_deadline = true;
      request->deadline = std::chrono::steady_clock::now() + timeout;
    }
    request->work = std::move(work);
    request->future = request->promise.get_future().share();
    pending_.insert(request);
    if (!key.empty()) inflight_[key] = request;
    stats_.max_queue_depth =
        std::max(stats_.max_queue_depth,
                 static_cast<std::int64_t>(pending_.size()));
    lock.unlock();
    work_cv_.notify_one();
    return {request->future, false};
  }

  /// Load shedding: removes every *queued* request whose deadline has
  /// already passed and fails its future with scl::Error immediately,
  /// instead of letting it occupy a pump slot later only to expire there.
  /// Running work is never touched. Returns the number of requests shed;
  /// coalesced waiters ride the same future and observe the same error.
  /// The admission layer calls this when the queue is over its bound, so
  /// over-deadline work is shed before fresh work is rejected.
  std::size_t shed_expired() {
    const auto now = std::chrono::steady_clock::now();
    std::vector<RequestPtr> doomed;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = pending_.begin(); it != pending_.end();) {
        if ((*it)->has_deadline && now > (*it)->deadline) {
          doomed.push_back(*it);
          if (!(*it)->key.empty()) inflight_.erase((*it)->key);
          it = pending_.erase(it);
        } else {
          ++it;
        }
      }
      stats_.shed += static_cast<std::int64_t>(doomed.size());
      if (!doomed.empty() && pending_.empty() && running_ == 0) {
        idle_cv_.notify_all();
      }
    }
    // Promises are fulfilled outside the lock: a waiter's continuation
    // may immediately resubmit, which takes mutex_ again.
    for (const RequestPtr& request : doomed) {
      request->promise.set_exception(std::make_exception_ptr(Error(
          "request '" + request->key + "' shed: over deadline in queue")));
    }
    return doomed.size();
  }

  /// Queued + running requests right now (the admission layer's
  /// backpressure signal).
  std::int64_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<std::int64_t>(pending_.size()) + running_;
  }

  /// Blocks until every accepted request has completed (or expired).
  void drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [&] { return pending_.empty() && running_ == 0; });
  }

  /// Stops accepting work, drains the queue, joins the pumps. Idempotent.
  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      idle_cv_.wait(lock, [&] { return pumps_alive_ == 0; });
    }
    pool_.reset();  // joins the (now pump-free) workers
  }

  int worker_count() const { return pump_count_; }

  SchedulerStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  struct Request {
    std::string key;
    int priority = 0;
    std::uint64_t seq = 0;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    std::function<Result()> work;
    std::optional<Result> result;  ///< staged until the key is released
    std::promise<Result> promise;
    std::shared_future<Result> future;
  };
  using RequestPtr = std::shared_ptr<Request>;

  /// Dispatch order: priority descending, then submission order. seq is
  /// unique, so the comparator is a strict weak order with no ties.
  struct DispatchOrder {
    bool operator()(const RequestPtr& a, const RequestPtr& b) const {
      if (a->priority != b->priority) return a->priority > b->priority;
      return a->seq < b->seq;
    }
  };

  void pump() {
    while (true) {
      RequestPtr request;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock,
                      [&] { return stopping_ || !pending_.empty(); });
        if (pending_.empty()) {
          if (stopping_) break;  // drained; exit
          continue;
        }
        request = *pending_.begin();
        pending_.erase(pending_.begin());
        ++running_;
      }
      const bool expired =
          request->has_deadline &&
          std::chrono::steady_clock::now() > request->deadline;
      bool completed = false;
      std::exception_ptr error;
      if (!expired) {
        try {
          const auto span =
              support::obs::tracer().span("serve/execute", "serve");
          request->result = request->work();
          completed = true;
        } catch (...) {
          error = std::current_exception();
        }
      }
      // Un-register the key BEFORE fulfilling the promise: once a waiter
      // can observe the future as ready, a new identical request must
      // schedule fresh work, not coalesce onto a finished twin.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!request->key.empty()) inflight_.erase(request->key);
      }
      if (expired) {
        request->promise.set_exception(std::make_exception_ptr(Error(
            "request '" + request->key + "' timed out in the queue")));
      } else if (completed) {
        request->promise.set_value(std::move(*request->result));
      } else {
        request->promise.set_exception(error);
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --running_;
        if (expired) {
          ++stats_.timed_out;
        } else {
          ++stats_.executed;
          completed ? ++stats_.completed : ++stats_.failed;
        }
        if (pending_.empty() && running_ == 0) idle_cv_.notify_all();
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (--pumps_alive_ == 0) idle_cv_.notify_all();
  }

  const int pump_count_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::set<RequestPtr, DispatchOrder> pending_;
  std::unordered_map<std::string, RequestPtr> inflight_;
  int running_ = 0;
  int pumps_alive_ = 0;
  bool stopping_ = false;
  std::uint64_t next_seq_ = 0;
  SchedulerStats stats_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace scl::serve
