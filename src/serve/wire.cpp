#include "serve/wire.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace scl::serve {

namespace {

using support::JsonStyle;
using support::JsonValue;
using support::JsonWriter;

}  // namespace

std::string serialize_request(const WireRequest& request) {
  JsonWriter json(JsonStyle::kCompact);
  json.begin_object();
  json.member("v", kWireVersion);
  json.member("id", request.id);
  json.member("tenant", request.tenant);
  if (!request.benchmark.empty()) json.member("benchmark", request.benchmark);
  if (!request.stencil_text.empty()) {
    json.member("stencil_text", request.stencil_text);
  }
  if (request.grid_dims > 0) {
    json.key("grid").begin_array();
    for (int d = 0; d < request.grid_dims; ++d) json.value(request.grid[d]);
    json.end_array();
  }
  if (request.iterations > 0) json.member("iterations", request.iterations);
  if (request.priority != 0) json.member("priority", request.priority);
  if (request.timeout_ms > 0) json.member("timeout_ms", request.timeout_ms);
  json.end_object();
  return json.take();
}

WireRequest parse_request(const std::string& frame) {
  const JsonValue v = JsonValue::parse(frame);
  if (!v.is_object()) throw Error("wire request: frame must be an object");
  const std::int64_t version = v.get_int64("v", kWireVersion);
  if (version != kWireVersion) {
    throw Error(str_cat("wire request: unsupported protocol version ",
                        version));
  }
  WireRequest request;
  request.id = v.get_int64("id", 0);
  request.tenant = v.get_string("tenant", "default");
  if (request.tenant.empty()) {
    throw Error("wire request: tenant must be non-empty");
  }
  request.benchmark = v.get_string("benchmark", "");
  request.stencil_text = v.get_string("stencil_text", "");
  if (request.benchmark.empty() == request.stencil_text.empty()) {
    throw Error(
        "wire request: need exactly one of \"benchmark\" or "
        "\"stencil_text\"");
  }
  if (const JsonValue* grid = v.find("grid")) {
    if (!grid->is_array() || grid->size() == 0 || grid->size() > 3) {
      throw Error("wire request: \"grid\" needs 1..3 extents");
    }
    request.grid = {1, 1, 1};
    request.grid_dims = static_cast<int>(grid->size());
    for (std::size_t d = 0; d < grid->size(); ++d) {
      const std::int64_t extent = (*grid)[d].as_int64();
      if (extent <= 0) throw Error("wire request: grid extents must be > 0");
      request.grid[d] = extent;
    }
  }
  request.iterations = v.get_int64("iterations", 0);
  if (request.iterations < 0) {
    throw Error("wire request: iterations must be >= 0");
  }
  request.priority = static_cast<int>(v.get_int64("priority", 0));
  request.timeout_ms = v.get_int64("timeout_ms", 0);
  if (request.timeout_ms < 0) {
    throw Error("wire request: timeout_ms must be >= 0");
  }
  return request;
}

std::string serialize_response(const WireResponse& response) {
  JsonWriter json(JsonStyle::kCompact);
  json.begin_object();
  json.member("v", kWireVersion);
  json.member("id", response.id);
  json.member("status", response.status);
  if (!response.error.empty()) json.member("error", response.error);
  if (!response.diagnostics.empty()) {
    json.key("diagnostics").begin_array();
    for (const WireDiagnostic& diag : response.diagnostics) {
      json.begin_object();
      json.member("code", diag.code);
      json.member("severity", diag.severity);
      json.member("message", diag.message);
      json.end_object();
    }
    json.end_array();
  }
  if (!response.key.empty()) json.member("key", response.key);
  if (!response.name.empty()) json.member("name", response.name);
  if (response.ok()) {
    json.member("from_cache", response.from_cache);
    json.member("from_memory", response.from_memory);
    json.member("coalesced", response.coalesced);
    json.member("speedup", response.speedup);
    json.member("latency_ms", response.latency_ms);
  }
  json.end_object();
  return json.take();
}

WireResponse parse_response(const std::string& frame) {
  const JsonValue v = JsonValue::parse(frame);
  if (!v.is_object()) throw Error("wire response: frame must be an object");
  WireResponse response;
  response.id = v.get_int64("id", 0);
  response.status = v.get_string("status", "");
  if (response.status.empty()) {
    throw Error("wire response: missing \"status\"");
  }
  response.error = v.get_string("error", "");
  if (const JsonValue* diags = v.find("diagnostics"); diags != nullptr) {
    if (!diags->is_array()) {
      throw Error("wire response: \"diagnostics\" must be an array");
    }
    for (const JsonValue& entry : diags->items()) {
      if (!entry.is_object()) {
        throw Error("wire response: diagnostic entries must be objects");
      }
      WireDiagnostic diag;
      diag.code = entry.get_string("code", "");
      diag.severity = entry.get_string("severity", "");
      diag.message = entry.get_string("message", "");
      response.diagnostics.push_back(std::move(diag));
    }
  }
  response.key = v.get_string("key", "");
  response.name = v.get_string("name", "");
  response.from_cache = v.get_bool("from_cache", false);
  response.from_memory = v.get_bool("from_memory", false);
  response.coalesced = v.get_bool("coalesced", false);
  response.speedup = v.get_double("speedup", 0.0);
  response.latency_ms = v.get_double("latency_ms", 0.0);
  return response;
}

FrameReader::FrameReader(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameReader::feed(std::string_view bytes) { buffer_.append(bytes); }

std::optional<std::string> FrameReader::next() {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (discarding_) {
      if (newline == std::string::npos) {
        buffer_.clear();  // still inside the over-long frame
        return std::nullopt;
      }
      buffer_.erase(0, newline + 1);
      discarding_ = false;
      continue;
    }
    if (newline == std::string::npos) {
      if (buffer_.size() > max_frame_bytes_) {
        // Report once, then swallow the rest of the frame.
        buffer_.clear();
        discarding_ = true;
        throw Error(str_cat("wire frame exceeds ", max_frame_bytes_,
                            " bytes"));
      }
      return std::nullopt;
    }
    if (newline > max_frame_bytes_) {
      buffer_.erase(0, newline + 1);
      throw Error(str_cat("wire frame exceeds ", max_frame_bytes_,
                          " bytes"));
    }
    std::string frame = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    // Tolerate blank keep-alive lines and trailing \r from chatty
    // clients.
    while (!frame.empty() && (frame.back() == '\r' || frame.back() == ' ')) {
      frame.pop_back();
    }
    if (frame.empty()) continue;
    return frame;
  }
}

WireClient::~WireClient() { close(); }

void WireClient::connect(const std::string& socket_path) {
  close();
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error("WireClient: cannot create socket");
  sockaddr_un address = {};
  address.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(address.sun_path)) {
    close();
    throw Error("WireClient: socket path too long: " + socket_path);
  }
  std::memcpy(address.sun_path, socket_path.c_str(),
              socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    close();
    throw Error("WireClient: cannot connect to " + socket_path);
  }
}

void WireClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WireClient::send(const WireRequest& request) {
  send_raw(serialize_request(request) + "\n");
}

void WireClient::send_raw(std::string_view bytes) {
  SCL_CHECK(fd_ >= 0, "WireClient: send before connect");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) throw Error("WireClient: send failed");
    sent += static_cast<std::size_t>(n);
  }
}

WireResponse WireClient::recv() {
  SCL_CHECK(fd_ >= 0, "WireClient: recv before connect");
  while (true) {
    if (std::optional<std::string> frame = reader_.next()) {
      return parse_response(*frame);
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) throw Error("WireClient: recv failed");
    if (n == 0) {
      throw Error("WireClient: connection closed by the daemon");
    }
    reader_.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
  }
}

}  // namespace scl::serve
