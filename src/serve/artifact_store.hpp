// Content-addressed on-disk artifact cache.
//
// Artifacts are immutable payloads addressed by the canonical request key
// (serve/serialize.hpp). The store maps a key to one file under the cache
// root, sharded by the key's first two hex characters to keep directories
// small:
//
//     <root>/<k0k1>/<key>.scla
//
// Each file carries a one-line header ahead of the payload:
//
//     SCLA1 <key> <payload-bytes> <fnv1a64-of-payload-hex>\n<payload>
//
// which makes truncation (byte count mismatch), bit rot (checksum
// mismatch) and cross-key renames (embedded key mismatch) all detectable
// on load. A corrupt file is deleted and reported as a miss — callers
// recompute and overwrite, so corruption is self-healing and never fatal.
//
// Writes are atomic: the payload lands in a unique temp file in the cache
// root first and is renamed into place, so a concurrent reader (or a
// crash) sees either the old artifact or the new one, never a torn write.
//
// Eviction is size-bounded LRU. The in-memory index tracks per-entry
// byte counts and a logical access clock; loads refresh the entry's file
// mtime as well, so recency survives process restarts (a fresh store
// instance rebuilds its LRU order from mtimes during the startup scan).
// All public methods are thread-safe.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace scl::serve {

struct ArtifactStoreOptions {
  /// Cache root directory; created (recursively) when missing.
  std::string root;
  /// Total on-disk bytes (header + payload) to retain; least-recently-
  /// used artifacts are evicted past it. <= 0 disables eviction.
  std::int64_t capacity_bytes = 256ll * 1024 * 1024;
};

struct ArtifactStoreStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t writes = 0;
  std::int64_t evictions = 0;
  std::int64_t corrupt_dropped = 0;  ///< truncated/bit-rotted files deleted
};

class ArtifactStore {
 public:
  /// Opens (and if needed creates) the store, scanning existing artifacts
  /// into the LRU index. Throws scl::Error when the root is unusable.
  explicit ArtifactStore(ArtifactStoreOptions options);

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Returns the payload stored under `key`, or nullopt on miss. A
  /// corrupt file counts as a miss (and is deleted).
  std::optional<std::string> load(const std::string& key);

  /// Stores `payload` under `key` (overwriting any previous artifact),
  /// then evicts LRU entries beyond the capacity bound.
  void store(const std::string& key, const std::string& payload);

  /// True when `key` is present (no LRU touch, no validation).
  bool contains(const std::string& key) const;

  std::size_t entry_count() const;
  std::int64_t total_bytes() const;
  ArtifactStoreStats stats() const;
  const std::string& root() const { return options_.root; }

  /// One row of recency(): a stored artifact with its whole-file byte
  /// count and on-disk mtime.
  struct RecencyEntry {
    std::string key;
    std::int64_t bytes = 0;
    std::filesystem::file_time_type mtime;
  };

  /// Stored artifacts ordered most-recently-used first (by file mtime,
  /// key as the tie-break). mtimes survive restarts, so the tiered
  /// store's hot-tier warmup uses this to rebuild yesterday's working
  /// set. Entries whose file vanished underneath the index are skipped.
  std::vector<RecencyEntry> recency() const;

 private:
  struct Entry {
    std::int64_t bytes = 0;
    std::uint64_t last_use = 0;
  };

  std::filesystem::path path_for(const std::string& key) const;
  void scan_existing();
  void evict_locked();
  void drop_corrupt_locked(const std::string& key,
                           const std::filesystem::path& path);

  ArtifactStoreOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::int64_t total_bytes_ = 0;
  std::uint64_t use_clock_ = 0;
  std::uint64_t temp_counter_ = 0;
  ArtifactStoreStats stats_;
};

}  // namespace scl::serve
