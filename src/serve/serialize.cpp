#include "serve/serialize.hpp"

#include "core/report.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::serve {

namespace {

using support::JsonValue;
using support::JsonWriter;

void write_int_triple(JsonWriter* json, std::string_view name,
                      std::int64_t a, std::int64_t b, std::int64_t c) {
  json->key(name).begin_array();
  json->value(a).value(b).value(c);
  json->end_array();
}

void parse_int_triple(const JsonValue& v, std::string_view name,
                      std::int64_t* a, std::int64_t* b, std::int64_t* c) {
  const JsonValue& arr = v.at(name);
  if (arr.size() != 3) {
    throw Error(str_cat("artifact: \"", name, "\" must have 3 entries"));
  }
  *a = arr[0].as_int64();
  *b = arr[1].as_int64();
  *c = arr[2].as_int64();
}

void write_resource_vector(JsonWriter* json, const fpga::ResourceVector& r) {
  json->begin_object();
  json->member("ff", r.ff);
  json->member("lut", r.lut);
  json->member("dsp", r.dsp);
  json->member("bram18", r.bram18);
  json->end_object();
}

fpga::ResourceVector parse_resource_vector(const JsonValue& v) {
  fpga::ResourceVector r;
  r.ff = v.at("ff").as_int64();
  r.lut = v.at("lut").as_int64();
  r.dsp = v.at("dsp").as_int64();
  r.bram18 = v.at("bram18").as_int64();
  return r;
}

void write_prediction(JsonWriter* json, const model::Prediction& p) {
  json->begin_object();
  json->member("total_cycles", p.total_cycles);
  json->member("total_ms", p.total_ms);
  json->member("n_region", p.n_region);
  json->member("l_mem", p.l_mem);
  json->member("l_comp", p.l_comp);
  json->member("l_share_exposed", p.l_share_exposed);
  json->member("lambda", p.lambda);
  json->member("l_tile", p.l_tile);
  json->end_object();
}

model::Prediction parse_prediction(const JsonValue& v) {
  model::Prediction p;
  p.total_cycles = v.at("total_cycles").as_double();
  p.total_ms = v.at("total_ms").as_double();
  p.n_region = v.at("n_region").as_int64();
  p.l_mem = v.at("l_mem").as_double();
  p.l_comp = v.at("l_comp").as_double();
  p.l_share_exposed = v.at("l_share_exposed").as_double();
  p.lambda = v.at("lambda").as_double();
  p.l_tile = v.at("l_tile").as_double();
  return p;
}

void write_design_resources(JsonWriter* json,
                            const core::DesignResources& r) {
  json->begin_object();
  json->key("total");
  write_resource_vector(json, r.total);
  json->key("worst_kernel");
  write_resource_vector(json, r.worst_kernel);
  json->member("buffer_elements_total", r.buffer_elements_total);
  json->member("pipe_count", r.pipe_count);
  json->member("pipe_fifo_elements_total", r.pipe_fifo_elements_total);
  json->end_object();
}

core::DesignResources parse_design_resources(const JsonValue& v) {
  core::DesignResources r;
  r.total = parse_resource_vector(v.at("total"));
  r.worst_kernel = parse_resource_vector(v.at("worst_kernel"));
  r.buffer_elements_total = v.at("buffer_elements_total").as_int64();
  r.pipe_count = v.at("pipe_count").as_int64();
  r.pipe_fifo_elements_total = v.at("pipe_fifo_elements_total").as_int64();
  return r;
}

void write_generated_code(JsonWriter* json, const codegen::GeneratedCode& c) {
  json->begin_object();
  json->member("kernel_count", c.kernel_count);
  json->member("pipe_count", c.pipe_count);
  json->member("kernel_source", c.kernel_source);
  json->member("host_source", c.host_source);
  json->member("build_script", c.build_script);
  json->end_object();
}

codegen::GeneratedCode parse_generated_code(const JsonValue& v) {
  codegen::GeneratedCode c;
  c.kernel_count = static_cast<int>(v.at("kernel_count").as_int64());
  c.pipe_count = static_cast<int>(v.at("pipe_count").as_int64());
  c.kernel_source = v.at("kernel_source").as_string();
  c.host_source = v.at("host_source").as_string();
  c.build_script = v.at("build_script").as_string();
  return c;
}

support::Severity parse_severity(const std::string& text) {
  if (text == "note") return support::Severity::kNote;
  if (text == "warning") return support::Severity::kWarning;
  if (text == "error") return support::Severity::kError;
  throw Error(str_cat("artifact: unknown diagnostic severity \"", text,
                      "\""));
}

void write_device(JsonWriter* json, const fpga::DeviceSpec& device) {
  json->begin_object();
  json->member("name", device.name);
  json->key("capacity");
  write_resource_vector(json, device.capacity);
  json->member("clock_mhz", device.clock_mhz);
  json->member("mem_bytes_per_cycle", device.mem_bytes_per_cycle);
  json->member("mem_port_bytes_per_cycle", device.mem_port_bytes_per_cycle);
  json->member("kernel_launch_cycles", device.kernel_launch_cycles);
  json->member("pipe_cycles_per_element", device.pipe_cycles_per_element);
  json->member("pipe_fifo_depth", device.pipe_fifo_depth);
  json->key("memory").begin_object();
  json->member("banks", device.memory.banks);
  json->member("bank_bytes_per_cycle", device.memory.bank_bytes_per_cycle);
  json->member("bank_port_bytes_per_cycle",
               device.memory.bank_port_bytes_per_cycle);
  json->member("bank_conflict_factor", device.memory.bank_conflict_factor);
  json->end_object();
  json->end_object();
}

template <typename T>
void write_scalar_list(JsonWriter* json, std::string_view name,
                       const std::vector<T>& values) {
  json->key(name).begin_array();
  for (const T& v : values) json->value(static_cast<std::int64_t>(v));
  json->end_array();
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void write_design_config(JsonWriter* json, const sim::DesignConfig& config) {
  json->begin_object();
  json->member("family", arch::to_string(config.family));
  json->member("kind", sim::to_string(config.kind));
  json->member("fused_iterations", config.fused_iterations);
  write_int_triple(json, "parallelism", config.parallelism[0],
                   config.parallelism[1], config.parallelism[2]);
  write_int_triple(json, "tile_size", config.tile_size[0],
                   config.tile_size[1], config.tile_size[2]);
  write_int_triple(json, "edge_shrink", config.edge_shrink[0],
                   config.edge_shrink[1], config.edge_shrink[2]);
  json->member("unroll", config.unroll);
  json->member("replication", config.replication);
  json->end_object();
}

sim::DesignConfig parse_design_config(const JsonValue& v) {
  sim::DesignConfig config;
  const std::string& family = v.at("family").as_string();
  if (family == arch::to_string(arch::DesignFamily::kPipeTiling)) {
    config.family = arch::DesignFamily::kPipeTiling;
  } else if (family ==
             arch::to_string(arch::DesignFamily::kTemporalShift)) {
    config.family = arch::DesignFamily::kTemporalShift;
  } else {
    throw Error(str_cat("artifact: unknown design family \"", family, "\""));
  }
  const std::string& kind = v.at("kind").as_string();
  if (kind == sim::to_string(sim::DesignKind::kBaseline)) {
    config.kind = sim::DesignKind::kBaseline;
  } else if (kind == sim::to_string(sim::DesignKind::kHeterogeneous)) {
    config.kind = sim::DesignKind::kHeterogeneous;
  } else {
    throw Error(str_cat("artifact: unknown design kind \"", kind, "\""));
  }
  config.fused_iterations = v.at("fused_iterations").as_int64();
  std::int64_t p0 = 0, p1 = 0, p2 = 0;
  parse_int_triple(v, "parallelism", &p0, &p1, &p2);
  config.parallelism = {static_cast<int>(p0), static_cast<int>(p1),
                        static_cast<int>(p2)};
  parse_int_triple(v, "tile_size", &config.tile_size[0],
                   &config.tile_size[1], &config.tile_size[2]);
  parse_int_triple(v, "edge_shrink", &config.edge_shrink[0],
                   &config.edge_shrink[1], &config.edge_shrink[2]);
  config.unroll = static_cast<int>(v.at("unroll").as_int64());
  config.replication = static_cast<int>(v.at("replication").as_int64());
  return config;
}

void write_design_point(JsonWriter* json, const core::DesignPoint& point) {
  json->begin_object();
  json->key("config");
  write_design_config(json, point.config);
  json->key("prediction");
  write_prediction(json, point.prediction);
  json->key("resources");
  write_design_resources(json, point.resources);
  json->member("analysis_errors", point.analysis_errors);
  json->end_object();
}

core::DesignPoint parse_design_point(const JsonValue& v) {
  core::DesignPoint point;
  point.config = parse_design_config(v.at("config"));
  point.prediction = parse_prediction(v.at("prediction"));
  point.resources = parse_design_resources(v.at("resources"));
  point.analysis_errors = v.at("analysis_errors").as_int64();
  return point;
}

void write_diagnostics(JsonWriter* json,
                       const support::DiagnosticEngine& diags) {
  json->begin_array();
  for (const support::Diagnostic& diag : diags.diagnostics()) {
    json->begin_object();
    json->member("code", diag.code);
    json->member("severity", support::to_string(diag.severity));
    json->member("message", diag.message);
    if (!diag.location.empty()) {
      json->key("location").begin_object();
      json->member("component", diag.location.component);
      json->member("detail", diag.location.detail);
      if (diag.location.line >= 0) json->member("line", diag.location.line);
      json->end_object();
    }
    if (!diag.notes.empty()) {
      json->key("notes").begin_array();
      for (const std::string& note : diag.notes) json->value(note);
      json->end_array();
    }
    json->end_object();
  }
  json->end_array();
}

support::DiagnosticEngine parse_diagnostics(const JsonValue& v) {
  support::DiagnosticEngine diags;
  for (const JsonValue& entry : v.items()) {
    support::Diagnostic& diag =
        diags.add(entry.at("code").as_string(),
                  parse_severity(entry.at("severity").as_string()),
                  entry.at("message").as_string());
    if (const JsonValue* loc = entry.find("location")) {
      diag.location.component = loc->get_string("component", "");
      diag.location.detail = loc->get_string("detail", "");
      diag.location.line = static_cast<int>(loc->get_int64("line", -1));
    }
    if (const JsonValue* notes = entry.find("notes")) {
      for (const JsonValue& note : notes->items()) {
        diag.notes.push_back(note.as_string());
      }
    }
  }
  return diags;
}

std::string serialize_artifact(const SynthesisArtifact& artifact) {
  JsonWriter json(support::JsonStyle::kCompact);
  json.begin_object();
  json.member("schema", kArtifactSchemaVersion);
  json.member("code_version", kCodeVersion);
  json.member("key", artifact.key);
  json.member("program", artifact.program_name);
  json.member("device", artifact.device_name);
  json.key("baseline");
  write_design_point(&json, artifact.baseline);
  json.key("heterogeneous");
  write_design_point(&json, artifact.heterogeneous);
  json.member("selected_family", arch::to_string(artifact.selected_family));
  if (artifact.temporal) {
    json.key("temporal");
    write_design_point(&json, *artifact.temporal);
  }
  json.key("simulated").begin_object();
  json.member("baseline_cycles", artifact.baseline_cycles);
  json.member("heterogeneous_cycles", artifact.heterogeneous_cycles);
  json.member("temporal_cycles", artifact.temporal_cycles);
  json.member("baseline_ms", artifact.baseline_ms);
  json.member("heterogeneous_ms", artifact.heterogeneous_ms);
  json.member("speedup", artifact.speedup);
  json.end_object();
  json.key("code");
  write_generated_code(&json, artifact.code);
  json.key("analysis");
  write_diagnostics(&json, artifact.analysis);
  json.member("report", artifact.markdown_report);
  json.end_object();
  return json.take();
}

SynthesisArtifact parse_artifact(const std::string& payload) {
  const JsonValue v = JsonValue::parse(payload);
  if (!v.is_object()) throw Error("artifact: payload is not a JSON object");
  const std::int64_t schema = v.get_int64("schema", -1);
  if (schema != kArtifactSchemaVersion) {
    throw Error(str_cat("artifact: schema ", schema, " != expected ",
                        kArtifactSchemaVersion));
  }
  if (v.get_string("code_version", "") != kCodeVersion) {
    throw Error("artifact: produced by a different code version");
  }
  SynthesisArtifact artifact;
  artifact.key = v.at("key").as_string();
  artifact.program_name = v.at("program").as_string();
  artifact.device_name = v.at("device").as_string();
  artifact.baseline = parse_design_point(v.at("baseline"));
  artifact.heterogeneous = parse_design_point(v.at("heterogeneous"));
  const std::string& family = v.at("selected_family").as_string();
  if (family == arch::to_string(arch::DesignFamily::kTemporalShift)) {
    artifact.selected_family = arch::DesignFamily::kTemporalShift;
  } else if (family != arch::to_string(arch::DesignFamily::kPipeTiling)) {
    throw Error(str_cat("artifact: unknown selected family \"", family,
                        "\""));
  }
  if (const JsonValue* temporal = v.find("temporal")) {
    artifact.temporal = parse_design_point(*temporal);
  }
  const JsonValue& simulated = v.at("simulated");
  artifact.baseline_cycles = simulated.at("baseline_cycles").as_int64();
  artifact.heterogeneous_cycles =
      simulated.at("heterogeneous_cycles").as_int64();
  artifact.temporal_cycles = simulated.at("temporal_cycles").as_int64();
  artifact.baseline_ms = simulated.at("baseline_ms").as_double();
  artifact.heterogeneous_ms = simulated.at("heterogeneous_ms").as_double();
  artifact.speedup = simulated.at("speedup").as_double();
  artifact.code = parse_generated_code(v.at("code"));
  artifact.analysis = parse_diagnostics(v.at("analysis"));
  artifact.markdown_report = v.at("report").as_string();
  return artifact;
}

SynthesisArtifact make_artifact(std::string key,
                                const core::SynthesisReport& report) {
  SynthesisArtifact artifact;
  artifact.key = std::move(key);
  artifact.program_name = report.features.name;
  artifact.device_name = report.device.name;
  artifact.baseline = report.baseline;
  artifact.heterogeneous = report.heterogeneous;
  artifact.selected_family = report.selected_family;
  artifact.temporal = report.temporal;
  artifact.baseline_cycles = report.baseline_sim.total_cycles;
  artifact.heterogeneous_cycles = report.heterogeneous_sim.total_cycles;
  artifact.temporal_cycles = report.temporal_sim.total_cycles;
  artifact.baseline_ms = report.baseline_sim.total_ms;
  artifact.heterogeneous_ms = report.heterogeneous_sim.total_ms;
  artifact.speedup = report.speedup;
  artifact.code = report.code;
  artifact.analysis = report.analysis;
  // No timing rows: stored artifacts must be byte-deterministic.
  artifact.markdown_report = core::render_markdown_report(
      report, core::MarkdownReportOptions{/*include_timing=*/false});
  return artifact;
}

std::string request_fingerprint(const std::string& canonical_program,
                                const core::FrameworkOptions& options) {
  const core::OptimizerOptions& opt = options.optimizer;
  JsonWriter json(support::JsonStyle::kCompact);
  json.begin_object();
  json.member("schema", kArtifactSchemaVersion);
  json.member("code_version", kCodeVersion);
  json.member("program", canonical_program);
  json.key("device");
  write_device(&json, opt.device);
  json.key("options").begin_object();
  // The family policy changes which design is emitted, so it is part of
  // the content address.
  json.member("family", core::to_string(options.family));
  json.member("resource_fraction", opt.resource_fraction);
  write_scalar_list(&json, "fusion_candidates", opt.fusion_candidates);
  write_scalar_list(&json, "tile_candidates", opt.tile_candidates);
  write_scalar_list(&json, "unroll_candidates", opt.unroll_candidates);
  json.member("max_kernels", opt.max_kernels);
  write_scalar_list(&json, "shrink_candidates", opt.shrink_candidates);
  write_scalar_list(&json, "replication_candidates", opt.replication_candidates);
  json.member("cone_mode", static_cast<std::int64_t>(opt.cone_mode));
  json.member("analyze_candidates", opt.analyze_candidates);
  // ThreadPool sizing is deliberately absent: DSE results are
  // bit-identical at any thread count (the determinism contract), so a
  // different worker count must map to the same content address.
  json.member("simulate", options.simulate);
  json.member("generate_code", options.generate_code);
  json.member("analyze", options.analyze);
  json.member("fail_on_analysis_error", options.fail_on_analysis_error);
  json.end_object();
  json.end_object();
  return json.take();
}

std::string request_key(const std::string& canonical_program,
                        const core::FrameworkOptions& options) {
  const std::string fingerprint =
      request_fingerprint(canonical_program, options);
  // Two independent 64-bit FNV-1a passes (the second one salted) give a
  // 128-bit address; a 64-bit key alone would make birthday collisions
  // plausible at production cache sizes.
  const std::uint64_t lo = fnv1a64(fingerprint);
  const std::uint64_t hi =
      fnv1a64(fingerprint, fnv1a64("scl-artifact-salt"));
  static const char* hex = "0123456789abcdef";
  std::string key;
  key.reserve(32);
  for (int shift = 60; shift >= 0; shift -= 4) {
    key += hex[(hi >> shift) & 0xF];
  }
  for (int shift = 60; shift >= 0; shift -= 4) {
    key += hex[(lo >> shift) & 0xF];
  }
  return key;
}

}  // namespace scl::serve
