// Multi-tenant admission control: per-tenant quotas, token-bucket rate
// limiting, and bounded backpressure for the stencild daemon.
//
// Every ingested request passes through try_admit(tenant) before it may
// touch the scheduler. The decision ladder, in order:
//
//   1. global backpressure — when admitted-but-unfinished work is at
//      max_queue_depth the request is SHED. The daemon first calls
//      Scheduler::shed_expired() so over-deadline work already doomed to
//      time out is shed *before* fresh work is rejected (see
//      daemon.cpp); only if that frees nothing does the newcomer bounce.
//   2. per-tenant concurrency quota — a tenant with max_in_flight
//      admitted-but-unfinished requests gets QUOTA_EXCEEDED; other
//      tenants are unaffected (the isolation property).
//   3. per-tenant token bucket — each admit spends one token; tokens
//      refill continuously at rate_per_sec up to burst. An empty bucket
//      yields RATE_LIMITED.
//
// An admitted request holds one global slot and one tenant slot until
// release(tenant) — the daemon releases after the response is written,
// so the depth bound covers the full ingest-to-respond pipeline, not
// just scheduler residency.
//
// Time is injected: the controller reads its clock through a
// std::function, so the latch-driven tests refill buckets by moving a
// fake clock instead of sleeping. All public methods are thread-safe.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace scl::serve {

struct TenantQuota {
  /// Admitted-but-unfinished requests one tenant may hold; <= 0 means
  /// unlimited.
  int max_in_flight = 64;
  /// Token refill rate; <= 0 disables rate limiting for the tenant.
  double rate_per_sec = 0.0;
  /// Bucket capacity in tokens (the permitted burst size); >= 1.
  double burst = 8.0;
};

struct AdmissionOptions {
  /// Global bound on admitted-but-unfinished requests; <= 0 = unbounded.
  std::int64_t max_queue_depth = 256;
  /// Quota applied to tenants without an explicit entry below.
  TenantQuota default_quota;
  /// Per-tenant overrides, keyed by tenant id.
  std::map<std::string, TenantQuota> tenant_quotas;
};

enum class AdmissionVerdict {
  kAdmitted,
  kShed,           ///< global queue bound reached
  kQuotaExceeded,  ///< tenant concurrency quota reached
  kRateLimited,    ///< tenant token bucket empty
};

/// Wire/status spelling of a verdict ("ok", "shed", "quota",
/// "rate_limited").
const char* to_string(AdmissionVerdict verdict);

struct TenantAdmissionStats {
  std::int64_t admitted = 0;
  std::int64_t quota_rejected = 0;  ///< concurrency quota bounces
  std::int64_t rate_limited = 0;    ///< token-bucket bounces
  std::int64_t in_flight = 0;       ///< currently admitted, not released
};

struct AdmissionStats {
  std::int64_t admitted = 0;
  std::int64_t shed = 0;
  std::int64_t quota_rejected = 0;  ///< quota + rate-limit bounces
  std::int64_t depth = 0;           ///< current global in-flight
  std::int64_t max_depth = 0;       ///< high-water mark
  std::map<std::string, TenantAdmissionStats> tenants;
};

class AdmissionController {
 public:
  using Clock = std::function<std::chrono::steady_clock::time_point()>;

  /// `clock` defaults to steady_clock::now; tests inject a fake.
  explicit AdmissionController(AdmissionOptions options, Clock clock = {});

  /// Runs the decision ladder for one request. kAdmitted takes one
  /// global and one tenant slot; every other verdict takes nothing.
  AdmissionVerdict try_admit(const std::string& tenant);

  /// Returns the slots taken by a prior kAdmitted. Call exactly once per
  /// admitted request, after its response is written.
  void release(const std::string& tenant);

  std::int64_t depth() const;
  AdmissionStats stats() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  struct TenantState {
    TenantQuota quota;
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last_refill{};
    bool bucket_started = false;
    TenantAdmissionStats stats;
  };

  TenantState& tenant_locked(const std::string& tenant);

  AdmissionOptions options_;
  Clock clock_;
  mutable std::mutex mutex_;
  std::map<std::string, TenantState> tenants_;
  std::int64_t depth_ = 0;
  AdmissionStats totals_;
};

}  // namespace scl::serve
