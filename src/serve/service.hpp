// SynthesisService: the batched synthesis facade.
//
// Wires the full serving path for one stencil job:
//
//   canonicalize program  ->  content address (serve/serialize.hpp)
//     -> coalescing scheduler (serve/scheduler.hpp)
//       -> artifact-store lookup (serve/artifact_store.hpp)
//         -> hit:  parse artifact, respond warm
//         -> miss: Framework::synthesize + verify, persist, respond cold
//
// Programs without a canonical `.stencil` round-trip (hand-written
// lambdas) get an empty key: they bypass the store and never coalesce,
// but still flow through the scheduler like every other job.
//
// Synthesis inside a service worker runs its DSE serially (the nested-
// parallelism guard in support::ThreadPool degrades inner parallel_for
// to a loop) — the service scales across concurrent *jobs* instead, which
// is the right shape for batch traffic. ServiceOptions therefore defaults
// the per-job optimizer to one thread so Frameworks do not spawn workers
// that would sit idle.
//
// The service exports counters: store hits/misses, coalesced requests,
// evictions, synthesis failures, and request-turnaround p50/p95 — both as
// a human-readable block and as JSON (render_stats_json) for dashboards.
// All public methods are thread-safe.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "serve/artifact_store.hpp"
#include "serve/scheduler.hpp"
#include "serve/serialize.hpp"
#include "stencil/program.hpp"

namespace scl::serve {

struct ServiceOptions {
  /// Artifact-store root; empty disables persistence (every job is a
  /// cold synthesis, coalescing still applies).
  std::string store_dir;
  std::int64_t store_capacity_bytes = 256ll * 1024 * 1024;
  /// Concurrent synthesis workers; <= 0 resolves via SCL_THREADS /
  /// hardware concurrency.
  int threads = 0;
  /// Per-job synthesis configuration (device, DSE candidates, flags).
  core::FrameworkOptions framework;

  ServiceOptions() {
    // Parallelism lives across jobs here; see the header comment.
    framework.optimizer.threads = 1;
  }
};

struct JobRequest {
  std::string name;  ///< display name (defaults to the program's)
  std::shared_ptr<const stencil::StencilProgram> program;
  int priority = 0;  ///< higher dispatches first
  std::chrono::milliseconds timeout{0};  ///< queue-time bound; 0 = none
};

struct JobResult {
  std::string name;
  std::string key;  ///< empty for uncacheable programs
  bool ok = false;
  bool from_cache = false;  ///< served from the artifact store
  bool coalesced = false;   ///< rode an identical in-flight request
  std::string error;        ///< set when !ok
  std::shared_ptr<const SynthesisArtifact> artifact;  ///< set when ok
  double latency_ms = 0.0;  ///< submit-to-completion turnaround
};

struct ServiceStats {
  std::int64_t requests = 0;
  std::int64_t store_hits = 0;
  std::int64_t store_misses = 0;
  std::int64_t coalesced = 0;
  std::int64_t synthesized = 0;  ///< cold Framework::synthesize runs
  std::int64_t failures = 0;
  std::int64_t evictions = 0;
  std::int64_t corrupt_recovered = 0;
  std::int64_t store_bytes = 0;
  std::int64_t store_entries = 0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;

  std::string to_string() const;
};

class SynthesisService {
 public:
  explicit SynthesisService(ServiceOptions options);
  ~SynthesisService();

  /// An accepted, in-flight job. Move-only value handle; pass to wait().
  struct PendingJob {
    std::string name;
    std::string key;
    bool coalesced = false;
    std::chrono::steady_clock::time_point submitted{};
    std::shared_future<std::shared_ptr<const SynthesisArtifact>> future;
  };

  /// Schedules one job. Throws scl::Error when the request carries no
  /// program or the service is shutting down.
  PendingJob submit(const JobRequest& request);

  /// Blocks until `job` finishes; failures surface as !result.ok.
  JobResult wait(const PendingJob& job);

  /// Submits every request, then waits in input order. The result vector
  /// lines up with `requests`.
  std::vector<JobResult> run_batch(const std::vector<JobRequest>& requests);

  /// Blocks until every accepted job completed.
  void drain();

  ServiceStats stats() const;
  std::string render_stats_json() const;

  /// The backing store; nullptr when persistence is disabled.
  const ArtifactStore* store() const { return store_.get(); }

 private:
  std::shared_ptr<const SynthesisArtifact> perform(
      const std::string& key,
      const std::shared_ptr<const stencil::StencilProgram>& program);
  void record_latency(double ms);

  ServiceOptions options_;
  std::unique_ptr<ArtifactStore> store_;
  std::unique_ptr<Scheduler<std::shared_ptr<const SynthesisArtifact>>>
      scheduler_;

  mutable std::mutex mutex_;
  std::int64_t requests_ = 0;
  std::int64_t synthesized_ = 0;
  std::int64_t failures_ = 0;
  std::vector<double> latencies_ms_;
};

}  // namespace scl::serve
