// SynthesisService: the batched synthesis facade.
//
// Wires the full serving path for one stencil job:
//
//   canonicalize program  ->  content address (serve/serialize.hpp)
//     -> coalescing scheduler (serve/scheduler.hpp)
//       -> tiered store lookup (serve/tiered_store.hpp: memory LRU, then
//          the key's consistent-hash disk shard)
//         -> hit:  parse artifact, respond warm (memory hits skip disk)
//         -> miss: Framework::synthesize + verify, persist, respond cold
//
// Programs without a canonical `.stencil` round-trip (hand-written
// lambdas) get an empty key: they bypass the store and never coalesce,
// but still flow through the scheduler like every other job.
//
// Synthesis inside a service worker runs its DSE serially (the nested-
// parallelism guard in support::ThreadPool degrades inner parallel_for
// to a loop) — the service scales across concurrent *jobs* instead, which
// is the right shape for batch traffic. ServiceOptions therefore defaults
// the per-job optimizer to one thread so Frameworks do not spawn workers
// that would sit idle.
//
// The service exports counters: store hits/misses, coalesced requests,
// evictions, synthesis failures, and request-turnaround p50/p95 — as a
// human-readable block, as JSON (render_stats_json) for dashboards, and
// as a Prometheus-style text exposition (render_metrics_exposition).
// Request/synthesis/failure counts and the latency distribution live on
// a per-instance obs::MetricsRegistry (always on — the global
// observability switch only gates the pipeline-wide registry), so two
// services in one process never share counters. All public methods are
// thread-safe.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "serve/scheduler.hpp"
#include "serve/serialize.hpp"
#include "serve/tiered_store.hpp"
#include "stencil/program.hpp"
#include "support/observability/metrics.hpp"

namespace scl::serve {

struct ServiceOptions {
  /// Artifact-store root; empty disables persistence (every job is a
  /// cold synthesis, coalescing still applies). Ignored when
  /// store_shards is non-empty.
  std::string store_dir;
  std::int64_t store_capacity_bytes = 256ll * 1024 * 1024;
  /// Explicit disk shard roots for the tiered store; when empty, a
  /// single shard at store_dir is used.
  std::vector<std::string> store_shards;
  /// Byte bound of the hot in-memory artifact tier; <= 0 disables it
  /// (every warm hit re-reads and re-validates its disk shard).
  std::int64_t memory_cache_bytes = 64ll * 1024 * 1024;
  /// Preload the memory tier from the most-recently-used disk artifacts
  /// at startup, so a restarted daemon answers its hot set from memory
  /// on the first request.
  bool warm_memory_cache = true;
  /// Concurrent synthesis workers; <= 0 resolves via SCL_THREADS /
  /// hardware concurrency.
  int threads = 0;
  /// Per-job synthesis configuration (device, DSE candidates, flags).
  core::FrameworkOptions framework;

  ServiceOptions() {
    // Parallelism lives across jobs here; see the header comment.
    framework.optimizer.threads = 1;
  }
};

struct JobRequest {
  std::string name;  ///< display name (defaults to the program's)
  std::shared_ptr<const stencil::StencilProgram> program;
  int priority = 0;  ///< higher dispatches first
  std::chrono::milliseconds timeout{0};  ///< queue-time bound; 0 = none
};

struct JobResult {
  std::string name;
  std::string key;  ///< empty for uncacheable programs
  bool ok = false;
  bool from_cache = false;   ///< served from the artifact store (any tier)
  bool from_memory = false;  ///< served from the hot in-memory tier
  bool coalesced = false;    ///< rode an identical in-flight request
  std::string error;        ///< set when !ok
  /// Structured verifier diagnostics when synthesis failed verification
  /// (core::VerificationError); empty for other failures and successes.
  std::vector<support::Diagnostic> diagnostics;
  std::shared_ptr<const SynthesisArtifact> artifact;  ///< set when ok
  double latency_ms = 0.0;  ///< submit-to-completion turnaround
};

struct ServiceStats {
  std::int64_t requests = 0;
  std::int64_t store_hits = 0;         ///< memory + disk tier hits
  std::int64_t store_memory_hits = 0;  ///< hot in-memory tier hits
  std::int64_t store_disk_hits = 0;    ///< disk shard hits (promotions)
  std::int64_t store_demotions = 0;    ///< memory-tier LRU evictions
  std::int64_t store_misses = 0;
  std::int64_t coalesced = 0;
  std::int64_t synthesized = 0;  ///< cold Framework::synthesize runs
  std::int64_t failures = 0;
  std::int64_t evictions = 0;
  std::int64_t corrupt_recovered = 0;
  std::int64_t store_bytes = 0;
  std::int64_t store_entries = 0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;

  std::string to_string() const;
};

class SynthesisService {
 public:
  explicit SynthesisService(ServiceOptions options);
  ~SynthesisService();

  /// An accepted, in-flight job. Move-only value handle; pass to wait().
  struct PendingJob {
    std::string name;
    std::string key;
    bool coalesced = false;
    std::chrono::steady_clock::time_point submitted{};
    std::shared_future<std::shared_ptr<const SynthesisArtifact>> future;
  };

  /// Schedules one job. Throws scl::Error when the request carries no
  /// program or the service is shutting down.
  PendingJob submit(const JobRequest& request);

  /// Blocks until `job` finishes; failures surface as !result.ok.
  JobResult wait(const PendingJob& job);

  /// Submits every request, then waits in input order. The result vector
  /// lines up with `requests`.
  std::vector<JobResult> run_batch(const std::vector<JobRequest>& requests);

  /// Blocks until every accepted job completed.
  void drain();

  /// Load shedding passthrough: fails every *queued* job whose deadline
  /// already passed (their futures throw). Returns how many were shed.
  std::size_t shed_expired();

  /// Queued + running jobs right now (the daemon's backpressure signal).
  std::int64_t queue_depth() const;

  ServiceStats stats() const;
  std::string render_stats_json() const;

  /// Prometheus-style text exposition of this service's registry, with
  /// store/scheduler ground-truth stats mirrored into gauges at scrape
  /// time.
  std::string render_metrics_exposition() const;

  /// This instance's metric registry (always enabled).
  support::obs::MetricsRegistry& metrics() const { return metrics_; }

  /// The backing tiered store; nullptr when persistence is disabled.
  const TieredArtifactStore* store() const { return store_.get(); }

  /// Scheduler ground truth (coalescing, queue, shed counts).
  SchedulerStats scheduler_stats() const { return scheduler_->stats(); }

 private:
  std::shared_ptr<const SynthesisArtifact> perform(
      const std::string& key,
      const std::shared_ptr<const stencil::StencilProgram>& program);

  ServiceOptions options_;
  std::unique_ptr<TieredArtifactStore> store_;
  std::unique_ptr<Scheduler<std::shared_ptr<const SynthesisArtifact>>>
      scheduler_;

  /// Mutable because scraping (a logically-const read) mirrors store/
  /// scheduler stats into gauges. Handles below point into the registry
  /// and share its lifetime.
  mutable support::obs::MetricsRegistry metrics_;
  support::obs::Counter* requests_ = nullptr;
  support::obs::Counter* synthesized_ = nullptr;
  support::obs::Counter* failures_ = nullptr;
  support::obs::Histogram* latency_ms_ = nullptr;
};

}  // namespace scl::serve
