// HLS pipeline estimator (stand-in for the FlexCL report the paper uses).
//
// The analytical model needs only two numbers from the HLS toolchain:
// the initiation interval II of the synthesized stencil pipeline and the
// pipeline depth (fill/drain latency). We estimate both from the stencil's
// per-element operation graph, using 7-series single-precision operator
// latencies at 200 MHz. The result feeds C_element = II / N_PE (paper
// Eq. 9) and the simulator's per-block drain overhead.
#pragma once

#include <cstdint>

#include "stencil/program.hpp"

namespace scl::fpga {

struct HlsEstimate {
  /// Initiation interval of the element-processing loop in cycles.
  std::int64_t ii = 1;
  /// Pipeline depth in cycles (latency of one element through the datapath).
  std::int64_t depth = 0;
  /// Sum of the per-stage IIs: the cycles one element costs over a full
  /// iteration (each stage walks every cell once). Equals `ii` for
  /// single-stage programs.
  std::int64_t ii_sum = 1;
};

/// Single-precision operator latencies (cycles at 200 MHz, 7-series).
struct FpLatencies {
  std::int64_t fadd = 8;
  std::int64_t fmul = 6;
  std::int64_t fdiv = 28;
};

/// Estimates II and depth for one stage.
///
/// * II: a fully unrolled, fully pipelined stencil body reaches II = 1 as
///   long as the local-memory ports can feed it; each BRAM is dual-ported,
///   and HLS cyclically partitions the tile buffer by `unroll`, so the port
///   pressure per bank is reads_per_element / 2 (rounded up).
/// * depth: critical path through the op graph, approximated as a balanced
///   reduction tree of adds plus one multiplier level (plus divide if any).
HlsEstimate estimate_stage(const scl::stencil::Stage& stage,
                           int unroll,
                           const FpLatencies& lat = FpLatencies{});

/// Whole-iteration estimate: II is the max over stages (the slowest stage
/// gates the fused loop); depth sums stage depths because stages execute
/// back to back within an iteration.
HlsEstimate estimate_program(const scl::stencil::StencilProgram& program,
                             int unroll,
                             const FpLatencies& lat = FpLatencies{});

/// The paper's C_element = II / N_PE (Eq. 9): average cycles per element
/// when `unroll` processing elements work in parallel.
double cycles_per_element(const HlsEstimate& est, int unroll);

}  // namespace scl::fpga
