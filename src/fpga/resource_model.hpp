// Per-kernel FPGA resource estimation, calibrated to Xilinx 7-series.
//
// Reproduces the *relationships* of the paper's Table 3 resource columns:
//   * DSP usage depends only on the datapath (ops-per-element x unroll), so
//     baseline and heterogeneous designs with equal parallelism tie;
//   * BRAM follows the local tile buffers — the baseline stores the whole
//     cone footprint (tile + halo that grows with fused depth h), the
//     heterogeneous design stores only the tile plus small pipe FIFOs;
//   * FF/LUT have a datapath term plus a banking/mux term proportional to
//     BRAM, which is why the paper sees FF/LUT drop alongside BRAM.
#pragma once

#include <cstdint>

#include "fpga/device.hpp"
#include "fpga/resources.hpp"
#include "stencil/program.hpp"

namespace scl::fpga {

/// Everything the estimator needs to size one tile kernel.
struct KernelShape {
  /// Elements of local memory the kernel holds per field set (sum over all
  /// fields, including the shadow copy for double-buffered stages).
  std::int64_t local_buffer_elements = 0;
  /// Loop unroll factor (the paper's N_PE).
  int unroll = 1;
  /// Number of pipe endpoints attached to this kernel (reads + writes);
  /// each costs handshake logic.
  int pipe_endpoints = 0;
  /// FIFOs whose storage is attributed to this kernel (its outgoing
  /// pipes; the consumer side only pays endpoint logic).
  int pipe_fifos = 0;
  /// FIFO depth, in elements, of each attached pipe.
  std::int64_t pipe_depth_elements = 0;
};

/// Calibration constants (defaults fitted so the Virtex-7 utilizations land
/// in the same range as the paper's Table 3).
struct ResourceCalibration {
  // DSP slices per single-precision operator (Xilinx 7-series IP).
  std::int64_t dsp_per_fadd = 2;
  std::int64_t dsp_per_fmul = 3;
  std::int64_t dsp_per_fdiv = 0;  // divides map to LUT logic

  // LUTs per operator instance.
  std::int64_t lut_per_fadd = 120;
  std::int64_t lut_per_fmul = 90;
  std::int64_t lut_per_fdiv = 600;
  // FFs per operator instance.
  std::int64_t ff_per_fadd = 205;
  std::int64_t ff_per_fmul = 150;
  std::int64_t ff_per_fdiv = 750;

  // Fixed control/interface cost of one OpenCL kernel (AXI masters, burst
  // engines, loop control).
  std::int64_t lut_kernel_base = 5200;
  std::int64_t ff_kernel_base = 7400;

  // Banking/multiplexing cost per BRAM18 block bundled into a local array
  // (the coupling behind the paper's observation that FF/LUT savings track
  // the BRAM reduction).
  std::int64_t lut_per_bram18 = 50;
  std::int64_t ff_per_bram18 = 45;

  // Cost per pipe endpoint (FIFO control plus handshake).
  std::int64_t lut_per_pipe = 80;
  std::int64_t ff_per_pipe = 100;
};

class ResourceModel {
 public:
  explicit ResourceModel(DeviceSpec device,
                         ResourceCalibration calib = ResourceCalibration{})
      : device_(std::move(device)), calib_(calib) {}

  const DeviceSpec& device() const { return device_; }

  /// Resources of one tile kernel running `program`'s update datapath with
  /// the given shape.
  ResourceVector estimate_kernel(const scl::stencil::StencilProgram& program,
                                 const KernelShape& shape) const;

  /// BRAM18 blocks needed to hold `elements` floats (plus pipe FIFOs are
  /// estimated separately inside estimate_kernel).
  std::int64_t bram_blocks_for(std::int64_t elements) const;

 private:
  DeviceSpec device_;
  ResourceCalibration calib_;
};

}  // namespace scl::fpga
