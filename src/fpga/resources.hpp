// FPGA resource vectors: flip-flops, LUTs, DSP slices, and BRAM18 blocks.
#pragma once

#include <cstdint>
#include <string>

namespace scl::fpga {

/// Utilization (or capacity) along the four resource axes the paper's
/// Table 3 reports. BRAM is counted in 18 Kbit blocks.
struct ResourceVector {
  std::int64_t ff = 0;
  std::int64_t lut = 0;
  std::int64_t dsp = 0;
  std::int64_t bram18 = 0;

  ResourceVector operator+(const ResourceVector& o) const {
    return {ff + o.ff, lut + o.lut, dsp + o.dsp, bram18 + o.bram18};
  }
  ResourceVector& operator+=(const ResourceVector& o) {
    ff += o.ff;
    lut += o.lut;
    dsp += o.dsp;
    bram18 += o.bram18;
    return *this;
  }
  ResourceVector operator*(std::int64_t n) const {
    return {ff * n, lut * n, dsp * n, bram18 * n};
  }

  /// True if every component fits inside `budget`.
  bool fits_within(const ResourceVector& budget) const {
    return ff <= budget.ff && lut <= budget.lut && dsp <= budget.dsp &&
           bram18 <= budget.bram18;
  }

  /// Largest component-wise utilization ratio against `capacity` (for
  /// reporting, e.g. "62% of BRAM"). Zero-capacity axes are skipped.
  double max_utilization(const ResourceVector& capacity) const;

  std::string to_string() const;

  friend bool operator==(const ResourceVector&, const ResourceVector&) =
      default;
};

}  // namespace scl::fpga
