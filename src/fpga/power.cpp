#include "fpga/power.hpp"

#include "support/error.hpp"

namespace scl::fpga {

double PowerModel::average_watts(const ResourceVector& resources,
                                 double compute_activity,
                                 double memory_activity) const {
  SCL_CHECK(compute_activity >= 0.0 && compute_activity <= 1.0,
            "compute activity must be in [0, 1]");
  SCL_CHECK(memory_activity >= 0.0 && memory_activity <= 1.0,
            "memory activity must be in [0, 1]");
  const double clock_scale = device_.clock_mhz / 200.0;
  const double dynamic =
      clock_scale * compute_activity *
      (static_cast<double>(resources.dsp) * calib_.watts_per_dsp +
       static_cast<double>(resources.bram18) * calib_.watts_per_bram18 +
       static_cast<double>(resources.ff) / 1000.0 * calib_.watts_per_kff +
       static_cast<double>(resources.lut) / 1000.0 * calib_.watts_per_klut);
  return calib_.static_watts + dynamic + memory_activity * calib_.ddr_watts;
}

}  // namespace scl::fpga
