#include "fpga/hls.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/math.hpp"

namespace scl::fpga {

using scl::stencil::Stage;
using scl::stencil::StencilProgram;

HlsEstimate estimate_stage(const Stage& stage, int unroll,
                           const FpLatencies& lat) {
  // `unroll` does not change II here: HLS scales the bank count with the
  // unroll factor, so per-lane port pressure is constant. It is validated
  // anyway because callers derive C_element from the same factor.
  SCL_CHECK(unroll >= 1, "unroll must be >= 1");
  HlsEstimate est;

  // Port pressure: every field lives in its own local array, and HLS
  // partitions each array cyclically by the unroll factor so each lane sees
  // its own dual-ported bank (two reads per cycle). The initiation interval
  // is gated by the most-read field.
  std::int64_t worst_reads = 1;
  for (const auto& ra : stage.reads) {
    std::int64_t same_field = 0;
    for (const auto& rb : stage.reads) {
      if (rb.field == ra.field) ++same_field;
    }
    worst_reads = std::max(worst_reads, same_field);
  }
  est.ii = std::max<std::int64_t>(1, ceil_div(worst_reads, 2));

  // Depth: reduction tree of adds, one multiply level, optional divide.
  std::int64_t depth = 0;
  if (stage.ops.adds > 0) {
    const auto levels = static_cast<std::int64_t>(
        std::ceil(std::log2(static_cast<double>(stage.ops.adds) + 1.0)));
    depth += levels * lat.fadd;
  }
  if (stage.ops.muls > 0) depth += lat.fmul;
  if (stage.ops.divs > 0) depth += lat.fdiv;
  est.depth = depth;
  est.ii_sum = est.ii;
  return est;
}

HlsEstimate estimate_program(const StencilProgram& program, int unroll,
                             const FpLatencies& lat) {
  HlsEstimate total;
  total.ii = 1;
  total.depth = 0;
  total.ii_sum = 0;
  for (int s = 0; s < program.stage_count(); ++s) {
    const HlsEstimate st = estimate_stage(program.stage(s), unroll, lat);
    total.ii = std::max(total.ii, st.ii);
    total.depth += st.depth;
    total.ii_sum += st.ii;
  }
  return total;
}

double cycles_per_element(const HlsEstimate& est, int unroll) {
  SCL_CHECK(unroll >= 1, "unroll must be >= 1");
  return static_cast<double>(est.ii) / static_cast<double>(unroll);
}

}  // namespace scl::fpga
