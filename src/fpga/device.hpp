// Target device descriptions.
//
// The paper's platform is an Alpha Data ADM-PCIE-7V3 board: a Xilinx
// Virtex-7 XC7VX690T with 16 GB of on-board DDR3 behind the SDAccel OpenCL
// runtime, clocked at 200 MHz. DeviceSpec captures the capacities and the
// handful of platform timing constants the analytical model and the
// discrete-event simulator need.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fpga/resources.hpp"

namespace scl::fpga {

/// Multi-bank global-memory geometry. The paper's DDR platform is one
/// monolithic channel (banks = 1), which is why its model drives designs
/// toward deep temporal fusion; HBM-class parts expose dozens of
/// independent pseudo-channels, and spatially replicated PEs bound to
/// disjoint bank groups each see their own slice of the aggregate
/// bandwidth (SASA, arXiv 2208.10770).
struct MemorySpec {
  /// Independent banks (HBM pseudo-channels). 1 = single DDR channel.
  int banks = 1;

  /// Peak bytes per kernel clock cycle of ONE bank. 0 means "derive from
  /// DeviceSpec::mem_bytes_per_cycle" — the single-channel default, which
  /// keeps every pre-existing DDR device bit-identical.
  double bank_bytes_per_cycle = 0.0;

  /// AXI-port ceiling of one bank's switch port, bytes per cycle. 0 means
  /// "same as bank_bytes_per_cycle" (HBM pseudo-channels have dedicated
  /// 256-bit ports, so the port rarely throttles below the bank).
  double bank_port_bytes_per_cycle = 0.0;

  /// Multiplicative slowdown applied when replicas outnumber banks and
  /// must share one (bank-switch arbitration + row-conflict cost). >= 1.
  double bank_conflict_factor = 1.0;

  friend bool operator==(const MemorySpec&, const MemorySpec&) = default;
};

struct DeviceSpec {
  std::string name;
  ResourceVector capacity;

  /// Kernel clock in MHz (the paper fixes 200 MHz for all benchmarks).
  double clock_mhz = 200.0;

  /// Effective global-memory (DDR) bandwidth in bytes per kernel clock
  /// cycle. Burst transfers from multiple concurrent kernels share this
  /// evenly (paper §4.2). The DDR3 pin rate of the board is 12.8 GB/s,
  /// but the SDAccel 2016-era AXI memory subsystem sustained only a
  /// fraction of it across concurrent kernel masters; 16 B/cycle at
  /// 200 MHz (3.2 GB/s) matches the era's measured behavior.
  double mem_bytes_per_cycle = 16.0;

  /// Per-kernel AXI-master ceiling in bytes per cycle: one compute unit
  /// cannot saturate the DDR controller on its own (each kernel gets its
  /// own master port with limited outstanding transactions). Aggregate
  /// bandwidth is min(peak, K * port) — the reason real designs
  /// instantiate many compute units even for memory-bound stencils.
  double mem_port_bytes_per_cycle = 4.0;

  /// Cycles from enqueueing an OpenCL kernel to its first instruction.
  /// SDAccel launches kernels sequentially with this per-kernel delay; the
  /// paper's model deliberately omits it (§5.6), the simulator charges it.
  std::int64_t kernel_launch_cycles = 2000;

  /// Cycles to move one element through an OpenCL pipe (paper's C_pipe,
  /// obtained by off-line profiling on the real system).
  std::int64_t pipe_cycles_per_element = 2;

  /// Capacity in elements of a synthesized pipe FIFO.
  std::int64_t pipe_fifo_depth = 512;

  /// Global-memory bank geometry. Defaults to a single DDR channel whose
  /// bandwidth is mem_bytes_per_cycle, so pre-existing devices behave
  /// bit-identically.
  MemorySpec memory;

  /// Bytes usable per BRAM18 block (18 Kbit).
  static constexpr std::int64_t bram18_bytes = 2304;

  /// Converts a time in cycles to milliseconds at this device's clock.
  double cycles_to_ms(double cycles) const {
    return cycles / (clock_mhz * 1e3);
  }

  /// Effective bytes per cycle of one bank: the bank's peak capped by its
  /// switch port, with the 0-means-derive defaults resolved.
  double effective_bank_bytes_per_cycle() const {
    const double bank = memory.bank_bytes_per_cycle > 0.0
                            ? memory.bank_bytes_per_cycle
                            : mem_bytes_per_cycle;
    const double port = memory.bank_port_bytes_per_cycle > 0.0
                            ? memory.bank_port_bytes_per_cycle
                            : bank;
    return std::min(bank, port);
  }

  /// Global-memory bytes per cycle available to ONE of R spatial replicas.
  ///
  ///   R <= banks: replicas own disjoint groups of floor(banks/R) banks
  ///               (leftover banks idle), so each gets the group's sum.
  ///   R >  banks: replicas share banks; each sees the fair aggregate
  ///               share divided by the conflict factor.
  ///
  /// At R = 1 on a single-channel device this is exactly
  /// mem_bytes_per_cycle — floor(1/1) * min(m, m) has no rounding — which
  /// is the bit-identity contract the DDR regression tests pin.
  double replica_bytes_per_cycle(int replicas) const {
    const int r = replicas < 1 ? 1 : replicas;
    const int banks = memory.banks < 1 ? 1 : memory.banks;
    const double bank = effective_bank_bytes_per_cycle();
    if (r <= banks) {
      return static_cast<double>(banks / r) * bank;
    }
    return (static_cast<double>(banks) * bank / r) /
           (memory.bank_conflict_factor > 1.0 ? memory.bank_conflict_factor
                                              : 1.0);
  }
};

/// The paper's board: Virtex-7 XC7VX690T (ADM-PCIE-7V3).
DeviceSpec virtex7_690t();

/// Smaller Virtex-7 used on the VC707 board; handy for what-if DSE.
DeviceSpec virtex7_485t();

/// Kintex UltraScale KU115 (e.g. Xilinx KCU1500): a larger what-if target.
DeviceSpec kintex_ku115();

/// Alveo U280-like HBM2 part: 32 independent pseudo-channels. The per-bank
/// bandwidth is modest, but 32 banks reward spatial PE replication.
DeviceSpec alveo_u280();

/// Stratix 10 MX-like HBM2 part: 16 pseudo-channels, M20K-rich fabric.
DeviceSpec stratix10_mx();

/// All built-in devices.
std::vector<DeviceSpec> device_catalog();

/// Finds a device by name; throws scl::Error when unknown.
DeviceSpec find_device(const std::string& name);

}  // namespace scl::fpga
