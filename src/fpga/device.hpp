// Target device descriptions.
//
// The paper's platform is an Alpha Data ADM-PCIE-7V3 board: a Xilinx
// Virtex-7 XC7VX690T with 16 GB of on-board DDR3 behind the SDAccel OpenCL
// runtime, clocked at 200 MHz. DeviceSpec captures the capacities and the
// handful of platform timing constants the analytical model and the
// discrete-event simulator need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/resources.hpp"

namespace scl::fpga {

struct DeviceSpec {
  std::string name;
  ResourceVector capacity;

  /// Kernel clock in MHz (the paper fixes 200 MHz for all benchmarks).
  double clock_mhz = 200.0;

  /// Effective global-memory (DDR) bandwidth in bytes per kernel clock
  /// cycle. Burst transfers from multiple concurrent kernels share this
  /// evenly (paper §4.2). The DDR3 pin rate of the board is 12.8 GB/s,
  /// but the SDAccel 2016-era AXI memory subsystem sustained only a
  /// fraction of it across concurrent kernel masters; 16 B/cycle at
  /// 200 MHz (3.2 GB/s) matches the era's measured behavior.
  double mem_bytes_per_cycle = 16.0;

  /// Per-kernel AXI-master ceiling in bytes per cycle: one compute unit
  /// cannot saturate the DDR controller on its own (each kernel gets its
  /// own master port with limited outstanding transactions). Aggregate
  /// bandwidth is min(peak, K * port) — the reason real designs
  /// instantiate many compute units even for memory-bound stencils.
  double mem_port_bytes_per_cycle = 4.0;

  /// Cycles from enqueueing an OpenCL kernel to its first instruction.
  /// SDAccel launches kernels sequentially with this per-kernel delay; the
  /// paper's model deliberately omits it (§5.6), the simulator charges it.
  std::int64_t kernel_launch_cycles = 2000;

  /// Cycles to move one element through an OpenCL pipe (paper's C_pipe,
  /// obtained by off-line profiling on the real system).
  std::int64_t pipe_cycles_per_element = 2;

  /// Capacity in elements of a synthesized pipe FIFO.
  std::int64_t pipe_fifo_depth = 512;

  /// Bytes usable per BRAM18 block (18 Kbit).
  static constexpr std::int64_t bram18_bytes = 2304;

  /// Converts a time in cycles to milliseconds at this device's clock.
  double cycles_to_ms(double cycles) const {
    return cycles / (clock_mhz * 1e3);
  }
};

/// The paper's board: Virtex-7 XC7VX690T (ADM-PCIE-7V3).
DeviceSpec virtex7_690t();

/// Smaller Virtex-7 used on the VC707 board; handy for what-if DSE.
DeviceSpec virtex7_485t();

/// Kintex UltraScale KU115 (e.g. Xilinx KCU1500): a larger what-if target.
DeviceSpec kintex_ku115();

/// All built-in devices.
std::vector<DeviceSpec> device_catalog();

/// Finds a device by name; throws scl::Error when unknown.
DeviceSpec find_device(const std::string& name);

}  // namespace scl::fpga
