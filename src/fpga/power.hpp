// First-order FPGA power/energy model (extension beyond the paper).
//
// The paper motivates FPGAs with energy efficiency but reports no energy
// numbers; this model closes that loop with the standard first-order
// decomposition: static leakage for the part plus dynamic power
// proportional to clocked resources, scaled by an activity factor.
// Coefficients follow the usual 28 nm Virtex-7 rules of thumb (XPE-class
// estimates, not sign-off numbers) — good for *comparing* designs, which
// is all the framework needs.
#pragma once

#include "fpga/device.hpp"
#include "fpga/resources.hpp"

namespace scl::fpga {

struct PowerCalibration {
  double static_watts = 3.0;       ///< part leakage + always-on clocking
  double watts_per_dsp = 0.0016;   ///< fully-active DSP slice at 200 MHz
  double watts_per_bram18 = 0.0012;
  double watts_per_kff = 0.0009;   ///< per 1000 flip-flops
  double watts_per_klut = 0.0013;  ///< per 1000 LUTs
  double ddr_watts = 4.0;          ///< DDR interface at full activity
};

class PowerModel {
 public:
  explicit PowerModel(DeviceSpec device,
                      PowerCalibration calib = PowerCalibration{})
      : device_(std::move(device)), calib_(calib) {}

  /// Average power in watts for a design using `resources`, where
  /// `compute_activity` and `memory_activity` are the fractions of time
  /// the datapath/DDR are busy (0..1, from the simulator's phase
  /// breakdown).
  double average_watts(const ResourceVector& resources,
                       double compute_activity,
                       double memory_activity) const;

  /// Energy in joules for a run of `milliseconds` at the given activity.
  double energy_joules(const ResourceVector& resources,
                       double compute_activity, double memory_activity,
                       double milliseconds) const {
    return average_watts(resources, compute_activity, memory_activity) *
           milliseconds * 1e-3;
  }

 private:
  DeviceSpec device_;
  PowerCalibration calib_;
};

}  // namespace scl::fpga
