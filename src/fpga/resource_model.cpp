#include "fpga/resource_model.hpp"

#include "support/error.hpp"
#include "support/math.hpp"

namespace scl::fpga {

using scl::stencil::OpCounts;
using scl::stencil::StencilProgram;

std::int64_t ResourceModel::bram_blocks_for(std::int64_t elements) const {
  SCL_CHECK(elements >= 0, "negative buffer size");
  const std::int64_t bytes = elements * StencilProgram::element_bytes();
  return ceil_div(bytes, DeviceSpec::bram18_bytes);
}

ResourceVector ResourceModel::estimate_kernel(const StencilProgram& program,
                                              const KernelShape& shape) const {
  SCL_CHECK(shape.unroll >= 1, "unroll must be >= 1");
  SCL_CHECK(shape.pipe_endpoints >= 0, "negative pipe count");

  const OpCounts ops = program.ops_per_cell();
  const std::int64_t lanes = shape.unroll;

  ResourceVector r;
  r.dsp = lanes * (ops.adds * calib_.dsp_per_fadd +
                   ops.muls * calib_.dsp_per_fmul +
                   ops.divs * calib_.dsp_per_fdiv);

  // Local data arrays plus pipe FIFO storage.
  SCL_CHECK(shape.pipe_fifos >= 0, "negative FIFO count");
  const std::int64_t buffer_brams = bram_blocks_for(shape.local_buffer_elements);
  const std::int64_t pipe_brams =
      shape.pipe_fifos * bram_blocks_for(shape.pipe_depth_elements);
  r.bram18 = buffer_brams + pipe_brams;

  const std::int64_t datapath_lut =
      lanes * (ops.adds * calib_.lut_per_fadd + ops.muls * calib_.lut_per_fmul +
               ops.divs * calib_.lut_per_fdiv);
  const std::int64_t datapath_ff =
      lanes * (ops.adds * calib_.ff_per_fadd + ops.muls * calib_.ff_per_fmul +
               ops.divs * calib_.ff_per_fdiv);

  r.lut = calib_.lut_kernel_base + datapath_lut +
          r.bram18 * calib_.lut_per_bram18 +
          shape.pipe_endpoints * calib_.lut_per_pipe;
  r.ff = calib_.ff_kernel_base + datapath_ff + r.bram18 * calib_.ff_per_bram18 +
         shape.pipe_endpoints * calib_.ff_per_pipe;
  return r;
}

}  // namespace scl::fpga
