#include "fpga/resources.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace scl::fpga {

double ResourceVector::max_utilization(const ResourceVector& capacity) const {
  double worst = 0.0;
  auto consider = [&worst](std::int64_t used, std::int64_t avail) {
    if (avail > 0) {
      worst = std::max(worst,
                       static_cast<double>(used) / static_cast<double>(avail));
    }
  };
  consider(ff, capacity.ff);
  consider(lut, capacity.lut);
  consider(dsp, capacity.dsp);
  consider(bram18, capacity.bram18);
  return worst;
}

std::string ResourceVector::to_string() const {
  return str_cat("{FF=", ff, ", LUT=", lut, ", DSP=", dsp, ", BRAM18=", bram18,
                 "}");
}

}  // namespace scl::fpga
