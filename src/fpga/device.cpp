#include "fpga/device.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::fpga {

DeviceSpec virtex7_690t() {
  DeviceSpec d;
  d.name = "xc7vx690t";
  d.capacity = ResourceVector{866400, 433200, 3600, 2940};
  d.clock_mhz = 200.0;
  d.mem_bytes_per_cycle = 16.0;
  d.kernel_launch_cycles = 2000;
  d.pipe_cycles_per_element = 2;
  d.pipe_fifo_depth = 512;
  return d;
}

DeviceSpec virtex7_485t() {
  DeviceSpec d = virtex7_690t();
  d.name = "xc7vx485t";
  d.capacity = ResourceVector{607200, 303600, 2800, 2060};
  return d;
}

DeviceSpec kintex_ku115() {
  DeviceSpec d = virtex7_690t();
  d.name = "xcku115";
  d.capacity = ResourceVector{1326720, 663360, 5520, 4320};
  d.clock_mhz = 250.0;
  d.mem_bytes_per_cycle = 19.2;  // DDR4 platform, similar effective fraction
  return d;
}

std::vector<DeviceSpec> device_catalog() {
  return {virtex7_690t(), virtex7_485t(), kintex_ku115()};
}

DeviceSpec find_device(const std::string& name) {
  for (const DeviceSpec& d : device_catalog()) {
    if (d.name == name) return d;
  }
  throw Error(str_cat("unknown device '", name, "'"));
}

}  // namespace scl::fpga
