#include "fpga/device.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::fpga {

DeviceSpec virtex7_690t() {
  DeviceSpec d;
  d.name = "xc7vx690t";
  d.capacity = ResourceVector{866400, 433200, 3600, 2940};
  d.clock_mhz = 200.0;
  d.mem_bytes_per_cycle = 16.0;
  d.kernel_launch_cycles = 2000;
  d.pipe_cycles_per_element = 2;
  d.pipe_fifo_depth = 512;
  return d;
}

DeviceSpec virtex7_485t() {
  DeviceSpec d = virtex7_690t();
  d.name = "xc7vx485t";
  d.capacity = ResourceVector{607200, 303600, 2800, 2060};
  return d;
}

DeviceSpec kintex_ku115() {
  DeviceSpec d = virtex7_690t();
  d.name = "xcku115";
  d.capacity = ResourceVector{1326720, 663360, 5520, 4320};
  d.clock_mhz = 250.0;
  d.mem_bytes_per_cycle = 19.2;  // DDR4 platform, similar effective fraction
  return d;
}

DeviceSpec alveo_u280() {
  DeviceSpec d;
  d.name = "xcu280";
  // UltraScale+ XCU280 fabric (9024 DSP48E2, 4032 BRAM18-equivalents).
  d.capacity = ResourceVector{2607360, 1303680, 9024, 4032};
  d.clock_mhz = 300.0;
  d.kernel_launch_cycles = 2000;
  d.pipe_cycles_per_element = 2;
  d.pipe_fifo_depth = 512;
  // HBM2: 32 pseudo-channels behind a segmented switch. Each channel
  // sustains ~14.4 GB/s effective at 300 MHz kernel clock -> 16 B/cycle;
  // the aggregate (mem_bytes_per_cycle) is exactly banks x bank so a
  // single replica owning every bank sees the full stack.
  d.memory.banks = 32;
  d.memory.bank_bytes_per_cycle = 16.0;
  d.memory.bank_port_bytes_per_cycle = 16.0;  // dedicated 256-bit AXI ports
  d.memory.bank_conflict_factor = 2.0;        // switch arbitration on sharing
  d.mem_bytes_per_cycle =
      d.memory.banks * d.memory.bank_bytes_per_cycle;  // 512 B/cycle
  d.mem_port_bytes_per_cycle = 16.0;
  return d;
}

DeviceSpec stratix10_mx() {
  DeviceSpec d;
  d.name = "s10mx";
  // Stratix 10 MX 2100 fabric; M20Ks expressed as BRAM18-equivalents.
  d.capacity = ResourceVector{2810880, 1405440, 3960, 7600};
  d.clock_mhz = 300.0;
  d.kernel_launch_cycles = 2000;
  d.pipe_cycles_per_element = 2;
  d.pipe_fifo_depth = 512;
  // HBM2: 16 pseudo-channels, slightly wider effective per-channel rate
  // than the U280 (hard memory controller NoC), costlier sharing.
  d.memory.banks = 16;
  d.memory.bank_bytes_per_cycle = 20.0;
  d.memory.bank_port_bytes_per_cycle = 20.0;
  d.memory.bank_conflict_factor = 2.5;
  d.mem_bytes_per_cycle =
      d.memory.banks * d.memory.bank_bytes_per_cycle;  // 320 B/cycle
  d.mem_port_bytes_per_cycle = 20.0;
  return d;
}

std::vector<DeviceSpec> device_catalog() {
  return {virtex7_690t(), virtex7_485t(), kintex_ku115(), alveo_u280(),
          stratix10_mx()};
}

DeviceSpec find_device(const std::string& name) {
  for (const DeviceSpec& d : device_catalog()) {
    if (d.name == name) return d;
  }
  throw Error(str_cat("unknown device '", name, "'"));
}

}  // namespace scl::fpga
