// Interval evaluation of the affine loop-bound expressions emitted by
// codegen/boundary_gen.
//
// The bound language is tiny: integer literals, named runtime variables
// (r0..r2 region origins, and the pre-substituted fused-iteration distance
// `pass_h - it`), +, -, * and the OpenCL max()/min() clamps. Every bound
// the generator emits is a piecewise-affine, monotone expression over
// those variables, so evaluating it with interval arithmetic — or at the
// extreme points of each variable's range — bounds the runtime value of
// the loop bound exactly.
//
// The analyzer uses degenerate (point) intervals to evaluate bounds at
// sampled region origins and iteration distances, and wide intervals for
// absolute worst-case checks against the grid box.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace scl::analysis {

/// Inclusive integer interval [lo, hi].
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  static Interval point(std::int64_t v) { return {v, v}; }

  bool is_point() const { return lo == hi; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

Interval operator+(const Interval& a, const Interval& b);
Interval operator-(const Interval& a, const Interval& b);
Interval operator*(const Interval& a, const Interval& b);
Interval interval_max(const Interval& a, const Interval& b);
Interval interval_min(const Interval& a, const Interval& b);

/// Variable environment: name -> interval of possible runtime values.
using IntervalEnv = std::map<std::string, Interval, std::less<>>;

/// Parses and evaluates one loop-bound expression over `env`. The grammar:
///
///   expr   := term (('+' | '-') term)*
///   term   := factor ('*' factor)*
///   factor := INT | IDENT | '-' factor | '(' expr ')'
///           | ('max' | 'min') '(' expr ',' expr ')'
///
/// Throws scl::Error on a syntax error or an identifier missing from
/// `env` — the analyzer reports that as an SCL209 diagnostic (analysis
/// incomplete) rather than silently passing the bound.
Interval eval_bound_expr(std::string_view expr, const IntervalEnv& env);

}  // namespace scl::analysis
