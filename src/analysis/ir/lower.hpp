// Lowers emitted OpenCL kernel source into the analysis IR (ir.hpp).
//
// The generator's output is a disciplined subset of OpenCL-C: `#define`
// index macros, `pipe float` declarations, single-work-item kernels made
// of counted loop nests over flat array accesses and blocking pipe
// calls. The lowerer re-reads that text with the *frontend* lexer (the
// same tokenizer the OpenCL importer uses), expands the emitted macros,
// and builds the statement IR. It deliberately re-derives nothing from
// the design config — what is analyzed is what was emitted.
//
// Constructs outside the subset do not abort the lowering: they become
// ir::Stmt::kOpaque leaves / Module::unmodeled entries, which the
// dataflow pass reports as SCL409 so the analysis is never silently
// partial. Structurally broken text (unterminated kernels, unbalanced
// parentheses) throws scl::Error.
#pragma once

#include <string>

#include "analysis/ir/ir.hpp"

namespace scl::analysis::ir {

/// Lowers one emitted kernel-source file. Throws scl::Error when the
/// text cannot be tokenized or a kernel never closes.
Module lower_kernel_source(const std::string& source);

}  // namespace scl::analysis::ir
