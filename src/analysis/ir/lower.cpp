#include "analysis/ir/lower.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <utility>

#include "frontend/lexer.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::analysis::ir {

using scl::frontend::Token;
using scl::frontend::TokenKind;

namespace {

constexpr int kMaxMacroDepth = 16;

struct Macro {
  bool function_like = false;
  std::vector<std::string> params;
  std::vector<Token> body;
};

using MacroTable = std::map<std::string, Macro, std::less<>>;

/// The frontend lexer strips preprocessor lines, so macro definitions are
/// collected from the raw text first. The emitter only produces
/// single-line `#define NAME[(params)] body` forms.
MacroTable collect_macros(const std::string& source) {
  MacroTable macros;
  int line_no = 0;
  for (const std::string& raw : split(source, '\n')) {
    ++line_no;
    const std::string line = trim(raw);
    if (!starts_with(line, "#define ")) continue;
    std::size_t pos = 8;
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    std::string name;
    while (pos < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[pos])) ||
            line[pos] == '_')) {
      name.push_back(line[pos++]);
    }
    if (name.empty()) continue;
    Macro macro;
    if (pos < line.size() && line[pos] == '(') {
      macro.function_like = true;
      ++pos;
      std::string param;
      while (pos < line.size() && line[pos] != ')') {
        const char c = line[pos++];
        if (c == ',') {
          if (!param.empty()) macro.params.push_back(std::move(param));
          param.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
          param.push_back(c);
        }
      }
      if (!param.empty()) macro.params.push_back(std::move(param));
      if (pos < line.size()) ++pos;  // consume ')'
    }
    macro.body = scl::frontend::tokenize(line.substr(pos));
    if (!macro.body.empty() && macro.body.back().kind == TokenKind::kEnd) {
      macro.body.pop_back();
    }
    for (Token& t : macro.body) t.line = line_no;
    macros.emplace(std::move(name), std::move(macro));
  }
  return macros;
}

/// Fully macro-expands a token stream. Substituted tokens inherit the
/// use-site line so diagnostics point at the access, not the #define.
std::vector<Token> expand(const std::vector<Token>& in,
                          const MacroTable& macros, int depth) {
  if (depth > kMaxMacroDepth) {
    throw Error("macro expansion exceeds depth limit (recursive #define?)");
  }
  std::vector<Token> out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const Token& tok = in[i];
    if (tok.kind != TokenKind::kIdentifier) {
      out.push_back(tok);
      continue;
    }
    const auto it = macros.find(tok.text);
    if (it == macros.end()) {
      out.push_back(tok);
      continue;
    }
    const Macro& macro = it->second;
    std::vector<Token> body;
    if (macro.function_like) {
      if (i + 1 >= in.size() || !in[i + 1].is("(")) {
        out.push_back(tok);  // name without call: leave verbatim
        continue;
      }
      // Collect comma-separated argument token lists at depth 1.
      std::vector<std::vector<Token>> args(1);
      std::size_t j = i + 2;
      int nesting = 1;
      for (; j < in.size(); ++j) {
        if (in[j].is("(")) ++nesting;
        if (in[j].is(")")) {
          if (--nesting == 0) break;
        }
        if (in[j].is(",") && nesting == 1) {
          args.emplace_back();
          continue;
        }
        args.back().push_back(in[j]);
      }
      if (nesting != 0) {
        throw Error(str_cat("unterminated macro call '", tok.text,
                            "' at line ", tok.line));
      }
      if (args.size() != macro.params.size()) {
        throw Error(str_cat("macro '", tok.text, "' expects ",
                            macro.params.size(), " argument(s), got ",
                            args.size(), " at line ", tok.line));
      }
      for (const Token& bt : macro.body) {
        bool substituted = false;
        if (bt.kind == TokenKind::kIdentifier) {
          for (std::size_t p = 0; p < macro.params.size(); ++p) {
            if (bt.text == macro.params[p]) {
              body.insert(body.end(), args[p].begin(), args[p].end());
              substituted = true;
              break;
            }
          }
        }
        if (!substituted) body.push_back(bt);
      }
      i = j;  // past the closing ')'
    } else {
      body = macro.body;
    }
    std::vector<Token> expanded = expand(body, macros, depth + 1);
    for (Token& t : expanded) t.line = tok.line;
    out.insert(out.end(), std::make_move_iterator(expanded.begin()),
               std::make_move_iterator(expanded.end()));
  }
  return out;
}

/// Cursor over the expanded token stream with the small helpers every
/// recursive-descent parser wants.
class Cursor {
 public:
  explicit Cursor(const std::vector<Token>* tokens) : tokens_(tokens) {}

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_->size() ? (*tokens_)[i] : end_token_;
  }
  const Token& next() {
    const Token& t = peek();
    if (pos_ < tokens_->size()) ++pos_;
    return t;
  }
  bool at_end() const {
    return pos_ >= tokens_->size() ||
           (*tokens_)[pos_].kind == TokenKind::kEnd;
  }
  bool consume(const char* text) {
    if (peek().is(text)) {
      next();
      return true;
    }
    return false;
  }
  void expect(const char* text) {
    if (!consume(text)) {
      throw Error(str_cat("expected '", text, "' but found '", peek().text,
                          "' at line ", peek().line));
    }
  }
  /// Skips one balanced (...) group, cursor on the opening paren.
  void skip_parens() {
    expect("(");
    int nesting = 1;
    while (nesting > 0) {
      if (at_end()) throw Error("unbalanced parentheses");
      const Token& t = next();
      if (t.is("(")) ++nesting;
      if (t.is(")")) --nesting;
    }
  }
  /// Skips to just past the next ';' (statement-level error recovery).
  void skip_statement() {
    while (!at_end() && !next().is(";")) {
    }
  }

 private:
  const std::vector<Token>* tokens_;
  std::size_t pos_ = 0;
  Token end_token_{TokenKind::kEnd, "", 0};
};

std::int64_t parse_int_literal(const Token& tok) {
  if (tok.kind != TokenKind::kNumber ||
      tok.text.find_first_of(".eEfF") != std::string::npos) {
    throw Error(str_cat("expected integer literal, found '", tok.text,
                        "' at line ", tok.line));
  }
  return std::strtoll(tok.text.c_str(), nullptr, 10);
}

/// Integer expression parser (the emitted index/bound language):
///   expr   := term (('+' | '-') term)*
///   term   := factor (('*' | '/' | '%') factor)*
///   factor := INT | IDENT | '-' factor | '(' expr ')' | '(' 'long' ')' factor
///           | ('max' | 'min') '(' expr ',' expr ')'
Expr parse_expr(Cursor& cur);

Expr parse_factor(Cursor& cur) {
  const Token& tok = cur.peek();
  if (tok.is("-")) {
    cur.next();
    return Expr::make(Expr::Kind::kNeg, {parse_factor(cur)});
  }
  if (tok.is("(")) {
    // `(long)<factor>`: the emitter widens the flat global index to
    // 64-bit device arithmetic (see codegen's GIDX macro).
    if (cur.peek(1).is("long") && cur.peek(2).is(")")) {
      cur.next();
      cur.next();
      cur.next();
      return Expr::make(Expr::Kind::kCast64, {parse_factor(cur)});
    }
    cur.next();
    Expr inner = parse_expr(cur);
    cur.expect(")");
    return inner;
  }
  if (tok.kind == TokenKind::kNumber) {
    cur.next();
    return Expr::literal(parse_int_literal(tok));
  }
  if (tok.kind == TokenKind::kIdentifier) {
    cur.next();
    if (tok.is("max") || tok.is("min")) {
      cur.expect("(");
      Expr a = parse_expr(cur);
      cur.expect(",");
      Expr b = parse_expr(cur);
      cur.expect(")");
      return Expr::make(tok.is("max") ? Expr::Kind::kMax : Expr::Kind::kMin,
                       {std::move(a), std::move(b)});
    }
    return Expr::var(tok.text);
  }
  throw Error(str_cat("unexpected token '", tok.text,
                      "' in integer expression at line ", tok.line));
}

Expr parse_term(Cursor& cur) {
  Expr value = parse_factor(cur);
  for (;;) {
    Expr::Kind kind;
    if (cur.peek().is("*")) {
      kind = Expr::Kind::kMul;
    } else if (cur.peek().is("/")) {
      kind = Expr::Kind::kDiv;
    } else if (cur.peek().is("%")) {
      kind = Expr::Kind::kMod;
    } else {
      return value;
    }
    cur.next();
    value = Expr::make(kind, {std::move(value), parse_factor(cur)});
  }
}

Expr parse_expr(Cursor& cur) {
  Expr value = parse_term(cur);
  for (;;) {
    if (cur.peek().is("+")) {
      cur.next();
      value =
          Expr::make(Expr::Kind::kAdd, {std::move(value), parse_term(cur)});
    } else if (cur.peek().is("-")) {
      cur.next();
      value =
          Expr::make(Expr::Kind::kSub, {std::move(value), parse_term(cur)});
    } else {
      return value;
    }
  }
}

/// Scans right-hand-side tokens up to the terminating ';', collecting
/// every `array[index]` element read. Float arithmetic between the reads
/// is irrelevant to the dataflow checks and is skipped.
std::vector<ArrayRef> scan_loads(Cursor& cur) {
  std::vector<ArrayRef> loads;
  while (!cur.at_end() && !cur.peek().is(";")) {
    const Token& tok = cur.next();
    if (tok.kind == TokenKind::kIdentifier && cur.peek().is("[")) {
      cur.next();  // '['
      ArrayRef ref;
      ref.array = tok.text;
      ref.line = tok.line;
      ref.index = parse_expr(cur);
      cur.expect("]");
      loads.push_back(std::move(ref));
    }
  }
  cur.consume(";");
  return loads;
}

class KernelParser {
 public:
  KernelParser(Cursor& cur, Module* module) : cur_(cur), module_(module) {}

  Stmt parse_statement() {
    const Token& tok = cur_.peek();
    if (tok.is("for")) return parse_loop();
    if (tok.is("barrier")) {
      Stmt stmt;
      stmt.kind = Stmt::Kind::kBarrier;
      stmt.line = tok.line;
      cur_.next();
      cur_.skip_parens();
      cur_.consume(";");
      return stmt;
    }
    if (tok.is("write_pipe_block") || tok.is("read_pipe_block")) {
      return parse_pipe_call(tok.is("write_pipe_block"));
    }
    if (tok.is("float")) return parse_carrier_decl();
    if (tok.kind == TokenKind::kIdentifier && cur_.peek(1).is("[")) {
      return parse_store();
    }
    // Outside the modeled subset: record and resynchronize at ';'.
    Stmt stmt;
    stmt.kind = Stmt::Kind::kOpaque;
    stmt.line = tok.line;
    stmt.text = tok.text;
    module_->unmodeled.push_back(
        str_cat("statement starting with '", tok.text, "' at line ",
                tok.line));
    cur_.skip_statement();
    return stmt;
  }

 private:
  Stmt parse_loop() {
    Stmt stmt;
    stmt.kind = Stmt::Kind::kLoop;
    stmt.line = cur_.peek().line;
    cur_.expect("for");
    cur_.expect("(");
    cur_.expect("int");
    stmt.var = cur_.next().text;
    cur_.expect("=");
    stmt.lo = parse_expr(cur_);
    cur_.expect(";");
    const std::string cond_var = cur_.next().text;
    if (cur_.consume("<")) {
      stmt.inclusive = false;
    } else if (cur_.consume("<=")) {
      stmt.inclusive = true;
    } else {
      throw Error(str_cat("unsupported loop condition on '", cond_var,
                          "' at line ", stmt.line));
    }
    stmt.hi = parse_expr(cur_);
    cur_.expect(";");
    // `++var` or `var++`.
    cur_.consume("+");
    cur_.consume("+");
    cur_.next();  // the variable (either order leaves it last or first)
    cur_.consume("+");
    cur_.consume("+");
    cur_.expect(")");
    if (cur_.consume("{")) {
      while (!cur_.consume("}")) {
        if (cur_.at_end()) {
          throw Error(str_cat("unterminated loop body at line ", stmt.line));
        }
        stmt.body.push_back(parse_statement());
      }
    } else {
      stmt.body.push_back(parse_statement());
    }
    return stmt;
  }

  Stmt parse_pipe_call(bool is_write) {
    Stmt stmt;
    stmt.kind = is_write ? Stmt::Kind::kPipeWrite : Stmt::Kind::kPipeRead;
    stmt.line = cur_.peek().line;
    cur_.next();  // the call name
    cur_.expect("(");
    stmt.pipe = cur_.next().text;
    cur_.expect(",");
    cur_.consume("&");
    cur_.next();  // carrier variable
    cur_.expect(")");
    cur_.consume(";");
    return stmt;
  }

  /// `float v = <rhs>;` or `float v;` — the pipe-exchange carriers. The
  /// loads on the right-hand side are the dataflow-relevant part.
  Stmt parse_carrier_decl() {
    Stmt stmt;
    stmt.kind = Stmt::Kind::kStore;  // store to a scalar: no array target
    stmt.line = cur_.peek().line;
    cur_.expect("float");
    cur_.next();  // carrier name
    if (cur_.consume(";")) return stmt;
    if (cur_.consume("=")) {
      stmt.loads = scan_loads(cur_);
      return stmt;
    }
    stmt.kind = Stmt::Kind::kOpaque;
    module_->unmodeled.push_back(
        str_cat("float declaration at line ", stmt.line));
    cur_.skip_statement();
    return stmt;
  }

  Stmt parse_store() {
    Stmt stmt;
    stmt.kind = Stmt::Kind::kStore;
    const Token& target = cur_.next();
    stmt.line = target.line;
    ArrayRef ref;
    ref.array = target.text;
    ref.line = target.line;
    cur_.expect("[");
    ref.index = parse_expr(cur_);
    cur_.expect("]");
    stmt.store = std::move(ref);
    cur_.expect("=");
    stmt.loads = scan_loads(cur_);
    return stmt;
  }

  Cursor& cur_;
  Module* module_;
};

void parse_kernel_params(Cursor& cur, Kernel* kernel) {
  cur.expect("(");
  while (!cur.consume(")")) {
    if (cur.at_end()) {
      throw Error(str_cat("unterminated parameter list of kernel '",
                          kernel->name, "'"));
    }
    const bool is_global = cur.consume("__global");
    const bool is_const = cur.consume("const");
    const std::string type = cur.next().text;  // float | int
    const bool is_pointer = cur.consume("*");
    cur.consume("restrict");
    const std::string name = cur.next().text;
    if (is_global && is_pointer) {
      (is_const ? kernel->global_inputs : kernel->global_outputs)
          .push_back(name);
    } else if (type == "int") {
      kernel->int_params.push_back(name);
    }
    cur.consume(",");
  }
}

Kernel parse_kernel(Cursor& cur, Module* module) {
  Kernel kernel;
  kernel.line = cur.peek().line;
  cur.expect("__kernel");
  while (cur.consume("__attribute__")) cur.skip_parens();
  cur.expect("void");
  kernel.name = cur.next().text;
  parse_kernel_params(cur, &kernel);
  cur.expect("{");
  KernelParser parser(cur, module);
  while (!cur.consume("}")) {
    if (cur.at_end()) {
      throw Error(str_cat("kernel '", kernel.name, "' never closes"));
    }
    // Local buffer declarations precede the statements.
    if (cur.peek().is("__local")) {
      cur.next();
      cur.expect("float");
      Buffer buffer;
      buffer.name = cur.next().text;
      buffer.line = cur.peek().line;
      cur.expect("[");
      buffer.size = parse_expr(cur);
      cur.expect("]");
      cur.consume(";");
      kernel.locals.push_back(std::move(buffer));
      continue;
    }
    kernel.body.push_back(parser.parse_statement());
  }
  return kernel;
}

}  // namespace

Module lower_kernel_source(const std::string& source) {
  const MacroTable macros = collect_macros(source);
  const std::vector<Token> raw = scl::frontend::tokenize(source);
  const std::vector<Token> tokens = expand(raw, macros, 0);
  Cursor cur(&tokens);

  Module module;
  while (!cur.at_end()) {
    const Token& tok = cur.peek();
    if (tok.is("pipe")) {
      cur.next();
      cur.expect("float");
      PipeChannel pipe;
      pipe.name = cur.next().text;
      pipe.line = tok.line;
      if (cur.consume("__attribute__")) {
        // ((xcl_reqd_pipe_depth(N))): pull N out of the nested parens.
        cur.expect("(");
        cur.expect("(");
        cur.next();  // xcl_reqd_pipe_depth
        cur.expect("(");
        pipe.depth = parse_int_literal(cur.next());
        cur.expect(")");
        cur.expect(")");
        cur.expect(")");
      }
      cur.consume(";");
      module.pipes.push_back(std::move(pipe));
      continue;
    }
    if (tok.is("__kernel")) {
      module.kernels.push_back(parse_kernel(cur, &module));
      continue;
    }
    module.unmodeled.push_back(str_cat("top-level construct '", tok.text,
                                       "' at line ", tok.line));
    cur.skip_statement();
  }
  return module;
}

}  // namespace scl::analysis::ir
