// Kernel IR: a small statement-level intermediate representation of the
// OpenCL the code generator emits, plus the abstract-interpretation pass
// family (SCL4xx) that verifies it.
//
// The PR-2 verifier (SCL1xx-SCL3xx) checks the *design configuration* —
// pipe graph, re-derived halo bounds, resource charge — but never the
// generated text itself, so an emitter bug that produces out-of-bounds
// indexing or an unbalanced channel schedule ships silently. This layer
// closes that gap: the emitted kernel source is lowered (reusing the
// frontend lexer) into the structured IR below, and analysis/ir/dataflow
// runs interval abstract interpretation over it, proving properties of
// the *actual emitted expressions* instead of the formulas that were
// supposed to produce them.
//
// The IR models exactly the language subset the emitter produces:
// counted `for` loops over int induction variables, flat array stores and
// loads through expanded index macros, blocking pipe reads/writes, local
// scalar carriers (`float v`), and barriers. Anything outside the subset
// lowers to an opaque statement and is reported as SCL409 (analysis
// incomplete) rather than silently skipped.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/interval.hpp"

namespace scl::analysis::ir {

/// Integer expression tree over loop variables and kernel parameters.
/// Only the operators the emitter's index/bound language uses exist;
/// evaluation is interval arithmetic over analysis::Interval.
struct Expr {
  enum class Kind {
    kLiteral,  ///< value
    kVar,      ///< name
    kAdd,      ///< args[0] + args[1]
    kSub,      ///< args[0] - args[1]
    kMul,      ///< args[0] * args[1]
    kNeg,      ///< -args[0]
    kMin,      ///< min(args[0], args[1])
    kMax,      ///< max(args[0], args[1])
    kCast64,   ///< (long)args[0]: widens to 64-bit device arithmetic
    kDiv,      ///< args[0] / args[1] (C truncating; constant divisor > 0)
    kMod,      ///< args[0] % args[1] (C remainder; constant divisor > 0)
  };

  Kind kind = Kind::kLiteral;
  std::int64_t value = 0;
  std::string name;
  std::vector<Expr> args;

  static Expr literal(std::int64_t v) {
    Expr e;
    e.kind = Kind::kLiteral;
    e.value = v;
    return e;
  }
  static Expr var(std::string n) {
    Expr e;
    e.kind = Kind::kVar;
    e.name = std::move(n);
    return e;
  }
  static Expr make(Kind kind, std::vector<Expr> args) {
    Expr e;
    e.kind = kind;
    e.args = std::move(args);
    return e;
  }

  /// Renders the expression back to C-ish text (diagnostics only).
  std::string to_string() const;
};

/// Interval evaluation of `expr` under `env`. Unknown variables throw
/// scl::Error (the analyzer reports SCL409 and skips the statement).
/// `int32_overflow`, when non-null, is set if any intermediate value can
/// escape the 32-bit signed range — the emitted arithmetic runs on
/// OpenCL `int`, so that is real wrap-around on the device. A kCast64
/// subtree widens to `long`: its result and every operation it feeds are
/// 64-bit on the device and exempt from the check (operands computed
/// *before* the cast are still `int` and still checked).
Interval eval_expr(const Expr& expr, const IntervalEnv& env,
                   bool* int32_overflow = nullptr);

/// One array element access: `array[index]` after index-macro expansion.
struct ArrayRef {
  std::string array;
  Expr index;
  int line = 0;
};

struct Stmt;
using StmtList = std::vector<Stmt>;

/// Structured-CFG statement. Loops carry their body; everything else is
/// a leaf. The emitter only produces reducible, counted loops, so the
/// loop tree *is* the CFG (one back-edge per loop, no gotos).
struct Stmt {
  enum class Kind {
    kLoop,       ///< for (int var = lo; var < hi; ++var) body   (or <=)
    kStore,      ///< store->array[store->index] = ...loads...
    kPipeWrite,  ///< write_pipe_block(pipe, &carrier)
    kPipeRead,   ///< read_pipe_block(pipe, &carrier)
    kBarrier,    ///< barrier(...)
    kOpaque,     ///< outside the modeled subset (reported as SCL409)
  };

  Kind kind = Kind::kOpaque;
  int line = 0;

  // kLoop
  std::string var;
  Expr lo;
  Expr hi;
  bool inclusive = false;  ///< condition was `var <= hi` (the `it` loop)
  StmtList body;

  // kStore
  std::optional<ArrayRef> store;
  std::vector<ArrayRef> loads;  ///< array reads on the right-hand side
                                ///< (also set for kPipeWrite carriers)

  // kPipeWrite / kPipeRead
  std::string pipe;

  // kOpaque
  std::string text;  ///< short description for the SCL409 note
};

/// A local (`__local float name[size]`) buffer declaration.
struct Buffer {
  std::string name;
  Expr size;  ///< compile-time constant after macro expansion
  int line = 0;
};

/// One lowered `__kernel` function.
struct Kernel {
  std::string name;
  std::vector<std::string> int_params;      ///< r0..r2, pass_h
  std::vector<std::string> global_inputs;   ///< `__global const float*` args
  std::vector<std::string> global_outputs;  ///< `__global float*` args
  std::vector<Buffer> locals;
  StmtList body;
  int line = 0;
};

/// A `pipe float` declaration.
struct PipeChannel {
  std::string name;
  std::int64_t depth = 0;
  int line = 0;
};

/// The lowered compilation unit.
struct Module {
  std::vector<PipeChannel> pipes;
  std::vector<Kernel> kernels;
  /// Constructs the lowerer could not model (rendered into SCL409).
  std::vector<std::string> unmodeled;
};

}  // namespace scl::analysis::ir
