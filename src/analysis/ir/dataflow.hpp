// Pass 4: abstract interpretation over the lowered kernel IR (SCL4xx).
//
// Where pass 2 (SCL2xx) re-derives the bound formulas codegen was
// *supposed* to emit, this pass proves properties of the expressions that
// were *actually* emitted, after lowering the generated OpenCL text
// (analysis/ir/lower). Checks:
//
//   SCL401  error    local-buffer index can leave [0, size)
//   SCL402  error    global array index can leave [0, grid cells)
//   SCL403  error    load from a local buffer no store can have written
//   SCL404  error    local buffer is stored but never loaded (dead stores)
//   SCL405  error    index arithmetic can overflow 32-bit signed `int`
//   SCL406  error    pipe token imbalance: writes != reads over one pass
//   SCL407  warning  loop body provably never executes (swapped bounds)
//   SCL408  error    __global output argument is never stored to
//   SCL409  warning  analysis incomplete (unmodeled construct / expression)
//
// Soundness strategy: the host sweeps region origins jointly (one
// (r0, r1, r2, pass_h) tuple per enqueue), so the analyzer evaluates the
// kernel at the cross product of per-dimension origin samples (first,
// one interior, last region — bounds are monotone piecewise-affine in the
// origin) and the pass-depth values the host can produce. Indices are
// checked with the fused-iteration counter `it` as the interval
// [1, pass_h]; pipe-token counts are exact, enumerating `it` concretely
// because send/receive strip bounds depend on it.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "analysis/ir/ir.hpp"
#include "support/diagnostics.hpp"

namespace scl::sim {
struct DesignConfig;
}  // namespace scl::sim
namespace scl::stencil {
class StencilProgram;
}  // namespace scl::stencil

namespace scl::analysis::ir {

/// Everything the abstract interpreter needs to know about the runtime
/// context the emitted kernels execute in (host-side sweep parameters).
struct IrContext {
  int dims = 1;
  std::array<std::int64_t, 3> grid_extents{1, 1, 1};
  std::array<std::int64_t, 3> region_extents{1, 1, 1};
  std::int64_t fused_iterations = 1;  ///< h: pass depth the host requests
  std::int64_t iterations = 1;        ///< total time steps of the program

  std::int64_t grid_cells() const {
    std::int64_t cells = 1;
    for (int d = 0; d < dims; ++d) cells *= grid_extents[static_cast<std::size_t>(d)];
    return cells;
  }
};

/// Builds the runtime context exactly as the emitted host program does.
IrContext make_ir_context(const scl::stencil::StencilProgram& program,
                          const scl::sim::DesignConfig& config);

/// Runs every SCL4xx check over a lowered module.
void analyze_module(const Module& module, const IrContext& ctx,
                    support::DiagnosticEngine* diags);

/// Convenience: lower `source` and analyze it. A lowering failure
/// (structurally broken text) is reported as an SCL409 error rather than
/// thrown, so callers always get diagnostics back.
void analyze_kernel_source(const std::string& source, const IrContext& ctx,
                           support::DiagnosticEngine* diags);

}  // namespace scl::analysis::ir
