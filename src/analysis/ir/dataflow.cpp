#include "analysis/ir/dataflow.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "analysis/ir/lower.hpp"
#include "sim/design.hpp"
#include "stencil/program.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::analysis::ir {

namespace {

/// Enumerating a loop variable concretely (pipe-token counting) is capped
/// here; the only loop whose variable appears in nested bounds is the
/// fused-iteration loop (trip count = pass_h), so the cap is generous.
constexpr std::int64_t kEnumerationCap = 1 << 16;

/// Disjoint written-interval unions are coalesced to their hull past this
/// many fragments; precision only matters near the handful of halo strips.
constexpr std::size_t kMaxHullFragments = 16;

bool overlaps_or_adjacent(const Interval& a, const Interval& b) {
  return a.lo <= b.hi + 1 && b.lo <= a.hi + 1;
}

/// Union-of-intervals with bounded fragmentation.
struct IntervalUnion {
  std::vector<Interval> parts;

  void add(Interval v) {
    for (;;) {
      bool merged = false;
      for (auto it = parts.begin(); it != parts.end(); ++it) {
        if (overlaps_or_adjacent(*it, v)) {
          v = {std::min(it->lo, v.lo), std::max(it->hi, v.hi)};
          parts.erase(it);
          merged = true;
          break;
        }
      }
      if (!merged) break;
    }
    parts.push_back(v);
    if (parts.size() > kMaxHullFragments) {
      Interval hull = parts.front();
      for (const Interval& p : parts) {
        hull = {std::min(hull.lo, p.lo), std::max(hull.hi, p.hi)};
      }
      parts = {hull};
    }
  }

  bool empty() const { return parts.empty(); }

  bool intersects(const Interval& v) const {
    return std::any_of(parts.begin(), parts.end(), [&](const Interval& p) {
      return p.lo <= v.hi && v.lo <= p.hi;
    });
  }
};

/// One kernel's facts accumulated across every sampled environment.
struct KernelFacts {
  std::map<std::string, IntervalUnion, std::less<>> written;  ///< local buffers
  std::set<std::string, std::less<>> stored_buffers;
  std::set<std::string, std::less<>> loaded_buffers;
  std::set<std::string, std::less<>> stored_globals;
  /// Loop statement lines: every loop seen, and those whose body ran
  /// under at least one sampled environment.
  std::set<int> loops_seen;
  std::set<int> loops_executed;
};

class ModuleAnalyzer {
 public:
  ModuleAnalyzer(const Module& module, const IrContext& ctx,
                 support::DiagnosticEngine* diags)
      : module_(module), ctx_(ctx), diags_(diags) {}

  void run() {
    report_unmodeled();
    build_environments();
    for (const Kernel& kernel : module_.kernels) {
      analyze_kernel(kernel);
    }
    check_pipe_balance();
  }

 private:
  // ---- diagnostics plumbing -------------------------------------------

  /// Emits once per (code, kernel, subject) so per-environment re-walks do
  /// not repeat themselves.
  support::Diagnostic* emit(const std::string& code,
                            support::Severity severity,
                            const std::string& kernel,
                            const std::string& subject, int line,
                            const std::string& message) {
    if (!emitted_.insert(str_cat(code, '|', kernel, '|', subject)).second) {
      return nullptr;
    }
    support::Diagnostic& diag =
        diags_->add(code, severity, message);
    diag.location = {"kernel", kernel, line};
    return &diag;
  }

  void report_unmodeled() {
    for (const std::string& what : module_.unmodeled) {
      support::Diagnostic* diag =
          emit("SCL409", support::Severity::kWarning, "", what, -1,
               str_cat("emitted construct outside the analyzable subset: ",
                       what));
      if (diag != nullptr) {
        diag->location = {"source", what, -1};
        diag->notes.push_back(
            "the IR dataflow pass skipped it; its effects are unverified");
      }
    }
  }

  // ---- environment sampling -------------------------------------------

  /// Origin samples along dimension d, mirroring the emitted host sweep
  /// `for (r = 0; r < grid; r += region)`: first, one interior, last.
  std::vector<std::int64_t> origin_samples(int d) const {
    const auto ds = static_cast<std::size_t>(d);
    const std::int64_t grid = ctx_.grid_extents[ds];
    const std::int64_t region = std::max<std::int64_t>(ctx_.region_extents[ds], 1);
    std::vector<std::int64_t> out{0};
    if (region < grid) {
      out.push_back(region);
      out.push_back(((grid - 1) / region) * region);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  /// pass_h values the host can pass: the full depth and, when the total
  /// iteration count is not a multiple, the final partial pass.
  std::vector<std::int64_t> pass_samples() const {
    const std::int64_t h = std::max<std::int64_t>(ctx_.fused_iterations, 1);
    std::vector<std::int64_t> out{std::min(h, ctx_.iterations)};
    const std::int64_t tail = ctx_.iterations % h;
    if (tail > 0) out.push_back(tail);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  /// Builds the joint cross product of origin and pass-depth samples. The
  /// origins must vary *jointly* — flattened indices sum per-dimension
  /// contributions, so independent wide intervals would lose the
  /// correlation between a loop's range and the buffer origin macro.
  void build_environments() {
    std::array<std::vector<std::int64_t>, 3> per_dim;
    for (int d = 0; d < 3; ++d) {
      per_dim[static_cast<std::size_t>(d)] =
          d < ctx_.dims ? origin_samples(d) : std::vector<std::int64_t>{0};
    }
    for (const std::int64_t r0 : per_dim[0]) {
      for (const std::int64_t r1 : per_dim[1]) {
        for (const std::int64_t r2 : per_dim[2]) {
          for (const std::int64_t ph : pass_samples()) {
            IntervalEnv env;
            env["r0"] = Interval::point(r0);
            env["r1"] = Interval::point(r1);
            env["r2"] = Interval::point(r2);
            env["pass_h"] = Interval::point(ph);
            envs_.push_back(std::move(env));
          }
        }
      }
    }
  }

  static std::string env_summary(const IntervalEnv& env) {
    return str_cat("r0=", env.at("r0").lo, " r1=", env.at("r1").lo,
                   " r2=", env.at("r2").lo, " pass_h=",
                   env.at("pass_h").lo);
  }

  // ---- per-kernel analysis --------------------------------------------

  void analyze_kernel(const Kernel& kernel) {
    KernelFacts facts;
    buffer_sizes_.clear();
    for (const Buffer& buffer : kernel.locals) {
      try {
        const Interval size = eval_expr(buffer.size, IntervalEnv{});
        buffer_sizes_[buffer.name] = size.lo;
      } catch (const Error& e) {
        emit("SCL409", support::Severity::kWarning, kernel.name, buffer.name,
             buffer.line,
             str_cat("size of __local buffer '", buffer.name,
                     "' is not a compile-time constant: ", e.what()));
      }
    }

    // Walk 1 per environment: index checks + fact accumulation. The
    // fused-iteration counter stays abstract ([1, pass_h]) — sound for
    // indices and cheap.
    for (const IntervalEnv& base : envs_) {
      IntervalEnv env = base;
      const Interval ph = env.at("pass_h");
      env["it"] = {1, ph.hi};
      walk_collect(kernel, kernel.body, env, &facts);
    }

    // Walk 2 per environment: uninitialized-read checks need the complete
    // written hull, so they run after every store has been seen.
    for (const IntervalEnv& base : envs_) {
      IntervalEnv env = base;
      const Interval ph = env.at("pass_h");
      env["it"] = {1, ph.hi};
      walk_uninit(kernel, kernel.body, env, facts);
    }

    // Whole-kernel verdicts.
    for (const Buffer& buffer : kernel.locals) {
      if (facts.stored_buffers.count(buffer.name) != 0 &&
          facts.loaded_buffers.count(buffer.name) == 0) {
        support::Diagnostic* diag = emit(
            "SCL404", support::Severity::kError, kernel.name, buffer.name,
            buffer.line,
            str_cat("every store to __local buffer '", buffer.name,
                    "' is dead: the kernel never loads it"));
        if (diag != nullptr) {
          diag->notes.push_back(
              "data written there can never reach global memory or a pipe");
        }
      }
    }
    for (const std::string& global : kernel.global_outputs) {
      if (facts.stored_globals.count(global) == 0) {
        emit("SCL408", support::Severity::kError, kernel.name, global,
             kernel.line,
             str_cat("__global output '", global,
                     "' is never stored to; the kernel produces no result"));
      }
    }
    for (const int line : facts.loops_seen) {
      if (facts.loops_executed.count(line) == 0) {
        support::Diagnostic* diag =
            emit("SCL407", support::Severity::kWarning, kernel.name,
                 str_cat("loop@", line), line,
                 str_cat("loop at line ", line,
                         " has an empty range under every host-reachable "
                         "parameter sample"));
        if (diag != nullptr) {
          diag->notes.push_back(
              "a provably zero-trip loop usually means swapped or "
              "inverted bounds");
        }
      }
    }
  }

  /// Evaluates one index, reporting SCL401/402/405; returns the interval
  /// or nullopt when evaluation failed (already reported as SCL409).
  std::optional<Interval> check_ref(const Kernel& kernel, const ArrayRef& ref,
                                    bool is_store, const IntervalEnv& env,
                                    KernelFacts* facts) {
    bool int32_overflow = false;
    Interval idx;
    try {
      idx = eval_expr(ref.index, env, &int32_overflow);
    } catch (const Error& e) {
      emit("SCL409", support::Severity::kWarning, kernel.name,
           str_cat(ref.array, "@", ref.line), ref.line,
           str_cat("index of '", ref.array,
                   "' could not be evaluated: ", e.what()));
      return std::nullopt;
    }
    if (int32_overflow) {
      support::Diagnostic* diag =
          emit("SCL405", support::Severity::kError, kernel.name,
               str_cat(ref.array, "@", ref.line), ref.line,
               str_cat("index arithmetic for '", ref.array, "[",
                       ref.index.to_string(),
                       "]' can exceed 32-bit signed range"));
      if (diag != nullptr) {
        diag->notes.push_back(
            "OpenCL `int` is 32 bits; the emitted expression wraps on the "
            "device");
        diag->notes.push_back(str_cat("under ", env_summary(env)));
      }
    }
    const auto size_it = buffer_sizes_.find(ref.array);
    if (size_it != buffer_sizes_.end()) {
      const std::int64_t size = size_it->second;
      if (idx.lo < 0 || idx.hi >= size) {
        support::Diagnostic* diag = emit(
            "SCL401", support::Severity::kError, kernel.name,
            str_cat(ref.array, "@", ref.line), ref.line,
            str_cat(is_store ? "store to" : "load from", " __local buffer '",
                    ref.array, "' can reach index [", idx.lo, ", ", idx.hi,
                    "], outside [0, ", size, ")"));
        if (diag != nullptr) {
          diag->notes.push_back(str_cat("emitted index: ",
                                        ref.index.to_string()));
          diag->notes.push_back(str_cat("under ", env_summary(env)));
        }
      }
    } else if (is_global(kernel, ref.array)) {
      const std::int64_t cells = ctx_.grid_cells();
      if (idx.lo < 0 || idx.hi >= cells) {
        support::Diagnostic* diag = emit(
            "SCL402", support::Severity::kError, kernel.name,
            str_cat(ref.array, "@", ref.line), ref.line,
            str_cat(is_store ? "store to" : "load from", " __global '",
                    ref.array, "' can reach index [", idx.lo, ", ", idx.hi,
                    "], outside the grid's [0, ", cells, ")"));
        if (diag != nullptr) {
          diag->notes.push_back(str_cat("emitted index: ",
                                        ref.index.to_string()));
          diag->notes.push_back(str_cat("under ", env_summary(env)));
        }
      }
    }
    if (facts != nullptr) {
      if (is_store) {
        if (size_it != buffer_sizes_.end()) {
          facts->stored_buffers.insert(ref.array);
          facts->written[ref.array].add(idx);
        } else {
          facts->stored_globals.insert(ref.array);
        }
      } else if (size_it != buffer_sizes_.end()) {
        facts->loaded_buffers.insert(ref.array);
      }
    }
    return idx;
  }

  static bool is_global(const Kernel& kernel, const std::string& name) {
    const auto in = [&](const std::vector<std::string>& v) {
      return std::find(v.begin(), v.end(), name) != v.end();
    };
    return in(kernel.global_inputs) || in(kernel.global_outputs);
  }

  /// Loop-range evaluation shared by both walks. Returns false when the
  /// body provably never executes under `env` (and records emptiness).
  bool enter_loop(const Kernel& kernel, const Stmt& loop, IntervalEnv* env,
                  KernelFacts* facts, Interval* saved, bool* had_var) {
    if (facts != nullptr) facts->loops_seen.insert(loop.line);
    Interval lo;
    Interval hi;
    try {
      lo = eval_expr(loop.lo, *env);
      hi = eval_expr(loop.hi, *env);
    } catch (const Error& e) {
      emit("SCL409", support::Severity::kWarning, kernel.name,
           str_cat("loop@", loop.line), loop.line,
           str_cat("loop bounds at line ", loop.line,
                   " could not be evaluated: ", e.what()));
      return false;
    }
    const std::int64_t var_max = loop.inclusive ? hi.hi : hi.hi - 1;
    if (lo.lo > var_max) return false;  // empty range: body unreachable
    if (facts != nullptr) facts->loops_executed.insert(loop.line);
    const auto it = env->find(loop.var);
    *had_var = it != env->end();
    if (*had_var) *saved = it->second;
    (*env)[loop.var] = {lo.lo, var_max};
    return true;
  }

  void leave_loop(const Stmt& loop, IntervalEnv* env, const Interval& saved,
                  bool had_var) {
    if (had_var) {
      (*env)[loop.var] = saved;
    } else {
      env->erase(loop.var);
    }
  }

  void walk_collect(const Kernel& kernel, const StmtList& stmts,
                    IntervalEnv& env, KernelFacts* facts) {
    for (const Stmt& stmt : stmts) {
      switch (stmt.kind) {
        case Stmt::Kind::kLoop: {
          Interval saved;
          bool had_var = false;
          if (enter_loop(kernel, stmt, &env, facts, &saved, &had_var)) {
            walk_collect(kernel, stmt.body, env, facts);
            leave_loop(stmt, &env, saved, had_var);
          }
          break;
        }
        case Stmt::Kind::kStore:
          if (stmt.store.has_value()) {
            check_ref(kernel, *stmt.store, /*is_store=*/true, env, facts);
          }
          for (const ArrayRef& load : stmt.loads) {
            check_ref(kernel, load, /*is_store=*/false, env, facts);
          }
          break;
        case Stmt::Kind::kPipeRead:
        case Stmt::Kind::kPipeWrite:
        case Stmt::Kind::kBarrier:
        case Stmt::Kind::kOpaque:
          break;
      }
    }
  }

  void walk_uninit(const Kernel& kernel, const StmtList& stmts,
                   IntervalEnv& env, const KernelFacts& facts) {
    for (const Stmt& stmt : stmts) {
      switch (stmt.kind) {
        case Stmt::Kind::kLoop: {
          Interval saved;
          bool had_var = false;
          if (enter_loop(kernel, stmt, &env, nullptr, &saved, &had_var)) {
            walk_uninit(kernel, stmt.body, env, facts);
            leave_loop(stmt, &env, saved, had_var);
          }
          break;
        }
        case Stmt::Kind::kStore: {
          for (const ArrayRef& load : stmt.loads) {
            if (buffer_sizes_.find(load.array) == buffer_sizes_.end()) {
              continue;  // globals are initialized by the host
            }
            Interval idx;
            try {
              idx = eval_expr(load.index, env);
            } catch (const Error&) {
              continue;  // walk 1 already reported SCL409
            }
            const auto written = facts.written.find(load.array);
            const bool never_written =
                written == facts.written.end() || written->second.empty();
            if (never_written || !written->second.intersects(idx)) {
              support::Diagnostic* diag = emit(
                  "SCL403", support::Severity::kError, kernel.name,
                  str_cat(load.array, "@", load.line), load.line,
                  str_cat("load from __local buffer '", load.array,
                          "' at index [", idx.lo, ", ", idx.hi,
                          "] that no store can have written"));
              if (diag != nullptr) {
                diag->notes.push_back(
                    never_written
                        ? str_cat("the kernel never stores to '", load.array,
                                  "'")
                        : "every store's index range is disjoint from this "
                          "load");
                diag->notes.push_back(str_cat("under ", env_summary(env)));
              }
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }

  // ---- pipe token balance ---------------------------------------------

  static bool subtree_has_pipe_op(const Stmt& stmt) {
    if (stmt.kind == Stmt::Kind::kPipeRead ||
        stmt.kind == Stmt::Kind::kPipeWrite) {
      return true;
    }
    return std::any_of(stmt.body.begin(), stmt.body.end(),
                       subtree_has_pipe_op);
  }

  static void collect_subtree_pipes(const StmtList& stmts,
                                    std::set<std::string>* out) {
    for (const Stmt& stmt : stmts) {
      if (stmt.kind == Stmt::Kind::kPipeRead ||
          stmt.kind == Stmt::Kind::kPipeWrite) {
        out->insert(stmt.pipe);
      }
      collect_subtree_pipes(stmt.body, out);
    }
  }

  static bool expr_uses_var(const Expr& expr, const std::string& var) {
    if (expr.kind == Expr::Kind::kVar) return expr.name == var;
    return std::any_of(expr.args.begin(), expr.args.end(),
                       [&](const Expr& a) { return expr_uses_var(a, var); });
  }

  static bool subtree_bounds_use_var(const StmtList& stmts,
                                     const std::string& var) {
    for (const Stmt& stmt : stmts) {
      if (stmt.kind != Stmt::Kind::kLoop) continue;
      if (expr_uses_var(stmt.lo, var) || expr_uses_var(stmt.hi, var) ||
          subtree_bounds_use_var(stmt.body, var)) {
        return true;
      }
    }
    return false;
  }

  /// Per-pipe token totals for one walk: [0] = writes, [1] = reads.
  using TokenCounts = std::map<std::string, std::array<std::int64_t, 2>,
                               std::less<>>;

  /// Exact token counts for every pipe at once under a fully concrete
  /// environment — one walk per (kernel, environment) instead of one per
  /// (pipe, direction, kernel, environment), which dominated the deep
  /// per-candidate analysis cost. Loops whose variable appears in nested
  /// bounds are enumerated; others multiply by trip count. A loop whose
  /// bound fails to evaluate or whose enumeration exceeds the cap poisons
  /// only the pipes inside it (collected into `unknown`) — balance for
  /// those is skipped, never a false positive.
  void count_tokens(const StmtList& stmts, IntervalEnv& env,
                    TokenCounts* counts, std::set<std::string>* unknown) {
    for (const Stmt& stmt : stmts) {
      if (stmt.kind == Stmt::Kind::kPipeWrite) {
        ++(*counts)[stmt.pipe][0];
        continue;
      }
      if (stmt.kind == Stmt::Kind::kPipeRead) {
        ++(*counts)[stmt.pipe][1];
        continue;
      }
      if (stmt.kind != Stmt::Kind::kLoop || !subtree_has_pipe_op(stmt)) {
        continue;
      }
      Interval lo;
      Interval hi;
      try {
        lo = eval_expr(stmt.lo, env);
        hi = eval_expr(stmt.hi, env);
      } catch (const Error&) {
        collect_subtree_pipes(stmt.body, unknown);
        continue;
      }
      const std::int64_t last = stmt.inclusive ? hi.lo : hi.lo - 1;
      const std::int64_t trip = std::max<std::int64_t>(0, last - lo.lo + 1);
      if (trip == 0) continue;
      if (subtree_bounds_use_var(stmt.body, stmt.var)) {
        if (trip > kEnumerationCap) {
          collect_subtree_pipes(stmt.body, unknown);
          continue;
        }
        const auto saved = env.find(stmt.var);
        const bool had = saved != env.end();
        const Interval old = had ? saved->second : Interval{};
        for (std::int64_t v = lo.lo; v <= last; ++v) {
          env[stmt.var] = Interval::point(v);
          count_tokens(stmt.body, env, counts, unknown);
        }
        if (had) {
          env[stmt.var] = old;
        } else {
          env.erase(stmt.var);
        }
      } else {
        env[stmt.var] = Interval::point(lo.lo);  // bounds ignore it anyway
        TokenCounts inner;
        count_tokens(stmt.body, env, &inner, unknown);
        env.erase(stmt.var);
        for (const auto& [pipe, n] : inner) {
          (*counts)[pipe][0] += trip * n[0];
          (*counts)[pipe][1] += trip * n[1];
        }
      }
    }
  }

  void check_pipe_balance() {
    if (module_.pipes.empty()) return;
    std::set<std::string> reported;
    std::set<std::string> unknown;
    for (const IntervalEnv& base : envs_) {
      TokenCounts counts;
      for (const Kernel& kernel : module_.kernels) {
        IntervalEnv env = base;
        count_tokens(kernel.body, env, &counts, &unknown);
      }
      for (const PipeChannel& pipe : module_.pipes) {
        if (reported.count(pipe.name) != 0 || unknown.count(pipe.name) != 0) {
          continue;
        }
        const auto it = counts.find(pipe.name);
        const std::int64_t writes = it != counts.end() ? it->second[0] : 0;
        const std::int64_t reads = it != counts.end() ? it->second[1] : 0;
        if (writes == reads) continue;
        reported.insert(pipe.name);  // one environment is enough evidence
        support::Diagnostic* diag = emit(
            "SCL406", support::Severity::kError, "", pipe.name, pipe.line,
            str_cat("pipe '", pipe.name, "' is unbalanced: ", writes,
                    " write(s) vs ", reads, " read(s) over one pass"));
        if (diag != nullptr) {
          diag->location = {"pipe", pipe.name, pipe.line};
          diag->notes.push_back(str_cat("under ", env_summary(base)));
          diag->notes.push_back(
              writes > reads
                  ? "surplus tokens accumulate until the writer blocks "
                    "forever"
                  : "the reader eventually blocks on a token that never "
                    "arrives");
        }
      }
    }
    for (const PipeChannel& pipe : module_.pipes) {
      if (unknown.count(pipe.name) == 0) continue;
      emit("SCL409", support::Severity::kWarning, "", pipe.name, pipe.line,
           str_cat("token balance for pipe '", pipe.name,
                   "' could not be established (unevaluable or oversized "
                   "loop nest)"));
    }
  }

  const Module& module_;
  const IrContext& ctx_;
  support::DiagnosticEngine* diags_;
  std::vector<IntervalEnv> envs_;
  /// Local-buffer name -> constant element count, for the current kernel.
  std::map<std::string, std::int64_t, std::less<>> buffer_sizes_;
  std::set<std::string> emitted_;
};

}  // namespace

IrContext make_ir_context(const scl::stencil::StencilProgram& program,
                          const scl::sim::DesignConfig& config) {
  IrContext ctx;
  ctx.dims = program.dims();
  for (int d = 0; d < program.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    ctx.grid_extents[ds] = program.grid_box().extent(d);
    ctx.region_extents[ds] = std::max<std::int64_t>(config.region_extent(d), 1);
  }
  ctx.fused_iterations = std::max<std::int64_t>(config.fused_iterations, 1);
  ctx.iterations = std::max<std::int64_t>(program.iterations(), 1);
  return ctx;
}

void analyze_module(const Module& module, const IrContext& ctx,
                    support::DiagnosticEngine* diags) {
  ModuleAnalyzer(module, ctx, diags).run();
}

void analyze_kernel_source(const std::string& source, const IrContext& ctx,
                           support::DiagnosticEngine* diags) {
  Module module;
  try {
    module = lower_kernel_source(source);
  } catch (const Error& e) {
    support::Diagnostic& diag = diags->error(
        "SCL409",
        str_cat("emitted kernel source could not be lowered to the "
                "analysis IR: ",
                e.what()));
    diag.location = {"source", "stencil_kernels.cl", -1};
    return;
  }
  analyze_module(module, ctx, diags);
}

}  // namespace scl::analysis::ir
