#include "analysis/ir/ir.hpp"

#include <limits>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::analysis::ir {

namespace {

constexpr std::int64_t kInt32Min = std::numeric_limits<std::int32_t>::min();
constexpr std::int64_t kInt32Max = std::numeric_limits<std::int32_t>::max();

/// Saturating int64 helpers: the evaluator must stay defined even on the
/// pathological expressions it exists to diagnose.
std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    return a > 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
  }
  return r;
}

std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) {
    return (a > 0) == (b > 0) ? std::numeric_limits<std::int64_t>::max()
                              : std::numeric_limits<std::int64_t>::min();
  }
  return r;
}

void note_int32_escape(const Interval& v, bool* flag) {
  if (flag != nullptr && (v.lo < kInt32Min || v.hi > kInt32Max)) *flag = true;
}

}  // namespace

std::string Expr::to_string() const {
  switch (kind) {
    case Kind::kLiteral:
      return str_cat(value);
    case Kind::kVar:
      return name;
    case Kind::kAdd:
      return str_cat("(", args[0].to_string(), " + ", args[1].to_string(),
                     ")");
    case Kind::kSub:
      return str_cat("(", args[0].to_string(), " - ", args[1].to_string(),
                     ")");
    case Kind::kMul:
      return str_cat("(", args[0].to_string(), " * ", args[1].to_string(),
                     ")");
    case Kind::kNeg:
      return str_cat("-", args[0].to_string());
    case Kind::kMin:
      return str_cat("min(", args[0].to_string(), ", ", args[1].to_string(),
                     ")");
    case Kind::kMax:
      return str_cat("max(", args[0].to_string(), ", ", args[1].to_string(),
                     ")");
    case Kind::kCast64:
      return str_cat("(long)", args[0].to_string());
    case Kind::kDiv:
      return str_cat("(", args[0].to_string(), " / ", args[1].to_string(),
                     ")");
    case Kind::kMod:
      return str_cat("(", args[0].to_string(), " % ", args[1].to_string(),
                     ")");
  }
  return "<expr>";
}

namespace {

/// eval_expr's recursion. `wide` tracks whether the subtree is `long` on
/// the device: a kCast64 node is wide, and so is every operation with a
/// wide operand (C promotion), so those values never wrap an `int` and
/// are exempt from the 32-bit escape check.
Interval eval_impl(const Expr& expr, const IntervalEnv& env,
                   bool* int32_overflow, bool* wide) {
  *wide = false;
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return Interval::point(expr.value);
    case Expr::Kind::kVar: {
      const auto it = env.find(expr.name);
      if (it == env.end()) {
        throw Error(str_cat("unknown variable '", expr.name,
                            "' in emitted expression"));
      }
      return it->second;
    }
    case Expr::Kind::kCast64: {
      bool arg_wide = false;
      const Interval v =
          eval_impl(expr.args[0], env, int32_overflow, &arg_wide);
      *wide = true;
      return v;
    }
    default:
      break;
  }
  bool a_wide = false;
  const Interval a = eval_impl(expr.args[0], env, int32_overflow, &a_wide);
  if (expr.kind == Expr::Kind::kNeg) {
    const Interval v{sat_mul(a.hi, -1), sat_mul(a.lo, -1)};
    *wide = a_wide;
    if (!*wide) note_int32_escape(v, int32_overflow);
    return v;
  }
  bool b_wide = false;
  const Interval b = eval_impl(expr.args[1], env, int32_overflow, &b_wide);
  Interval v;
  switch (expr.kind) {
    case Expr::Kind::kAdd:
      v = {sat_add(a.lo, b.lo), sat_add(a.hi, b.hi)};
      break;
    case Expr::Kind::kSub:
      v = {sat_add(a.lo, sat_mul(b.hi, -1)),
           sat_add(a.hi, sat_mul(b.lo, -1))};
      break;
    case Expr::Kind::kMul: {
      const std::int64_t p1 = sat_mul(a.lo, b.lo);
      const std::int64_t p2 = sat_mul(a.lo, b.hi);
      const std::int64_t p3 = sat_mul(a.hi, b.lo);
      const std::int64_t p4 = sat_mul(a.hi, b.hi);
      v = {std::min(std::min(p1, p2), std::min(p3, p4)),
           std::max(std::max(p1, p2), std::max(p3, p4))};
      break;
    }
    case Expr::Kind::kMin:
      v = {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
      break;
    case Expr::Kind::kMax:
      v = {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
      break;
    case Expr::Kind::kDiv:
    case Expr::Kind::kMod: {
      // The emitter's only use is the linear-cell decomposition of the
      // temporal-shift walk, whose divisor is a compile-time strip
      // extent; anything more general is outside the modeled language.
      if (b.lo != b.hi || b.lo <= 0) {
        throw Error(
            "non-constant or non-positive divisor in emitted expression");
      }
      const std::int64_t c = b.lo;
      if (expr.kind == Expr::Kind::kDiv) {
        // C truncating division is monotone in the numerator for a
        // positive divisor.
        v = {a.lo / c, a.hi / c};
      } else if (a.lo >= 0 && a.lo / c == a.hi / c) {
        // Same quotient block: remainder is monotone within it.
        v = {a.lo % c, a.hi % c};
      } else if (a.lo >= 0) {
        v = {0, c - 1};
      } else {
        v = {-(c - 1), c - 1};
      }
      break;
    }
    default:
      throw Error("malformed IR expression");
  }
  *wide = a_wide || b_wide;
  if (!*wide) note_int32_escape(v, int32_overflow);
  return v;
}

}  // namespace

Interval eval_expr(const Expr& expr, const IntervalEnv& env,
                   bool* int32_overflow) {
  bool wide = false;
  return eval_impl(expr, env, int32_overflow, &wide);
}

}  // namespace scl::analysis::ir
