#include "analysis/analyzer.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>

#include "analysis/interval.hpp"
#include "arch/temporal_layout.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::analysis {

using scl::codegen::GenContext;
using scl::codegen::LoopBounds;
using scl::codegen::PipeDecl;
using scl::sim::TilePlacement;
using scl::stencil::StencilProgram;

namespace {

/// The fused-iteration distance `pass_h - it`; the generator emits it
/// verbatim, so a single substitution turns every bound affine in one
/// variable with range [0, h-1].
constexpr const char* kDt = "dt";

std::string substitute_dt(std::string expr) {
  return replace_all(std::move(expr), "pass_h - it", kDt);
}

/// Region-origin values worth sampling along dimension d: the first
/// region, one interior region, and the last region of the host sweep
/// (`for (r = 0; r < grid; r += region_extent)`). Bounds are affine and
/// monotone in the origin, so the extremes plus one unclipped interior
/// point cover the clamp cases.
std::vector<std::int64_t> origin_samples(const GenContext& ctx, int d) {
  const std::int64_t grid = ctx.program->grid_box().extent(d);
  const std::int64_t region = std::max<std::int64_t>(ctx.config.region_extent(d), 1);
  std::vector<std::int64_t> out{0};
  if (region < grid) {
    out.push_back(region);
    out.push_back(((grid - 1) / region) * region);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::int64_t> dt_samples(const GenContext& ctx) {
  const std::int64_t h = ctx.config.fused_iterations;
  if (h <= 1) return {0};
  return {0, h - 1};
}

IntervalEnv make_env(std::int64_t r0, std::int64_t r1, std::int64_t r2,
                     std::int64_t dt) {
  IntervalEnv env;
  env["r0"] = Interval::point(r0);
  env["r1"] = Interval::point(r1);
  env["r2"] = Interval::point(r2);
  env[kDt] = Interval::point(dt);
  return env;
}

/// Point-evaluates `expr` (after the dt substitution) under `env`.
std::int64_t eval_point(const std::string& expr, const IntervalEnv& env) {
  const Interval v = eval_bound_expr(substitute_dt(expr), env);
  return v.lo;  // all env entries are points, so lo == hi
}

/// Emits the one-per-expression "analysis incomplete" diagnostic.
void report_unparsable(support::DiagnosticEngine* diags, int kernel,
                       const std::string& expr, const std::string& why) {
  support::Diagnostic& diag = diags->warning(
      "SCL209", str_cat("loop bound '", expr,
                        "' is outside the affine bound language; interval "
                        "analysis skipped it"));
  diag.location = {"kernel", str_cat("stencil_k", kernel), -1};
  diag.notes.push_back(why);
}

int opposite(int side) { return side == 0 ? 1 : 0; }

/// Exterior faces carry the shrinking cone margin, shared faces a
/// one-stage halo — the same rule the emitter and the resource estimator
/// apply.
std::int64_t side_margin(const GenContext& ctx, const TilePlacement& tile,
                         int d, int side) {
  const auto& prog = *ctx.program;
  const auto ds = static_cast<std::size_t>(d);
  const auto ss = static_cast<std::size_t>(side);
  return tile.exterior[ds][ss]
             ? prog.iter_radii()[ds][ss] * ctx.config.fused_iterations
             : prog.max_stage_radii()[ds][ss];
}

/// Static padded local-buffer extent of kernel k along d (the emitter's
/// K<k>_B<d>_EXT value).
std::int64_t static_buffer_extent(const GenContext& ctx, int k, int d) {
  const TilePlacement& tile = ctx.tile(k);
  const auto ds = static_cast<std::size_t>(d);
  return tile.box.hi[ds] - tile.box.lo[ds] + side_margin(ctx, tile, d, 0) +
         side_margin(ctx, tile, d, 1);
}

/// True when any update stage reads non-constant field data across a
/// tile's (d, side) face — i.e. the face needs an incoming halo channel.
bool face_needs_halo(const StencilProgram& prog, int d, int side) {
  const auto ds = static_cast<std::size_t>(d);
  const auto ss = static_cast<std::size_t>(side);
  for (int f = 0; f < prog.field_count(); ++f) {
    if (prog.is_constant_field(f)) continue;
    if (prog.field_read_radii(f)[ds][ss] > 0) return true;
  }
  return false;
}

/// Largest tangential extent (product over dimensions != d) any stage-s
/// boundary strip of kernel k can reach, from the generated stage compute
/// bounds evaluated at the sampled region origins and iteration
/// distances. Returns -1 when a bound fails to parse (already reported).
std::int64_t max_tangential_extent(const AnalysisInput& input, int k,
                                   int stage, int d,
                                   support::DiagnosticEngine* diags) {
  const GenContext& ctx = input.ctx;
  const LoopBounds bounds = codegen::stage_compute_bounds(ctx, k, stage);
  std::int64_t product = 1;
  for (int dt_dim = 0; dt_dim < ctx.program->dims(); ++dt_dim) {
    if (dt_dim == d) continue;
    const auto ds = static_cast<std::size_t>(dt_dim);
    std::int64_t best = 0;
    for (const std::int64_t origin : origin_samples(ctx, dt_dim)) {
      for (const std::int64_t dt : dt_samples(ctx)) {
        IntervalEnv env = make_env(0, 0, 0, dt);
        env[str_cat("r", dt_dim)] = Interval::point(origin);
        try {
          const std::int64_t lo = eval_point(bounds.lo[ds], env);
          const std::int64_t hi = eval_point(bounds.hi[ds], env);
          best = std::max(best, hi - lo);
        } catch (const Error& e) {
          report_unparsable(diags, k, bounds.lo[ds], e.what());
          return -1;
        }
      }
    }
    product *= best;
  }
  return product;
}

/// Elements one (iteration, stage) exchange phase pushes into the channel
/// from kernel `k` across its (d, side) face before the kernel reads
/// anything back — the boundary-layer volume the FIFO must absorb.
/// Returns -1 when bounds were unparsable.
std::int64_t max_phase_volume(const AnalysisInput& input, int k, int d,
                              int side, support::DiagnosticEngine* diags) {
  const StencilProgram& prog = *input.ctx.program;
  const auto ds = static_cast<std::size_t>(d);
  std::int64_t worst = 0;
  for (int s = 0; s < prog.stage_count(); ++s) {
    const int f = prog.stage(s).output_field;
    const std::int64_t width =
        prog.field_read_radii(f)[ds][static_cast<std::size_t>(opposite(side))];
    if (width == 0) continue;
    const std::int64_t tangential =
        max_tangential_extent(input, k, s, d, diags);
    if (tangential < 0) return -1;
    worst = std::max(worst, width * tangential);
  }
  return worst;
}

std::string kernel_name(int k) { return str_cat("stencil_k", k); }

std::string face_name(int d, int side) {
  return str_cat("dim ", d, " ", side == 0 ? "low" : "high", " side");
}

}  // namespace

AnalysisInput make_analysis_input(const StencilProgram& program,
                                  const sim::DesignConfig& config,
                                  const fpga::DeviceSpec& device) {
  AnalysisInput input;
  input.ctx = GenContext::create(program, config, device);
  input.pipes = codegen::enumerate_pipes(input.ctx);
  return input;
}

// ---- pass 1: pipe-graph analysis (SCL1xx) ----------------------------------

void analyze_pipe_graph(const AnalysisInput& input,
                        support::DiagnosticEngine* diags) {
  const GenContext& ctx = input.ctx;
  const StencilProgram& prog = *ctx.program;
  const int kernels = ctx.kernel_count();

  // Channel index plus structural sanity of every declared pipe.
  std::map<std::pair<int, int>, const PipeDecl*> channels;
  for (const PipeDecl& pipe : input.pipes) {
    if (pipe.from_kernel < 0 || pipe.from_kernel >= kernels ||
        pipe.to_kernel < 0 || pipe.to_kernel >= kernels ||
        pipe.from_kernel == pipe.to_kernel) {
      support::Diagnostic& diag = diags->error(
          "SCL105", str_cat("pipe connects invalid kernel pair k",
                            pipe.from_kernel, " -> k", pipe.to_kernel));
      diag.location = {"pipe", pipe.name, -1};
      continue;
    }
    const TilePlacement& a = ctx.tile(pipe.from_kernel);
    const TilePlacement& b = ctx.tile(pipe.to_kernel);
    int distance = 0;
    for (int d = 0; d < 3; ++d) {
      distance += std::abs(a.coord[static_cast<std::size_t>(d)] -
                           b.coord[static_cast<std::size_t>(d)]);
    }
    if (distance != 1) {
      support::Diagnostic& diag = diags->error(
          "SCL105",
          str_cat("pipe connects non-face-adjacent kernels k",
                  pipe.from_kernel, " and k", pipe.to_kernel,
                  "; the topology only links face-adjacent tiles"));
      diag.location = {"pipe", pipe.name, -1};
      continue;
    }
    if (!channels.emplace(std::pair{pipe.from_kernel, pipe.to_kernel}, &pipe)
             .second) {
      support::Diagnostic& diag = diags->error(
          "SCL105", str_cat("duplicate pipe channel k", pipe.from_kernel,
                            " -> k", pipe.to_kernel));
      diag.location = {"pipe", pipe.name, -1};
      continue;
    }
    if (pipe.depth <= 0 || (pipe.depth & (pipe.depth - 1)) != 0) {
      support::Diagnostic& diag = diags->warning(
          "SCL106",
          str_cat("pipe depth ", pipe.depth,
                  " is not a power of two; xcl_reqd_pipe_depth requires one"));
      diag.location = {"pipe", pipe.name, -1};
    }
  }

  // Halo coverage: every shared face whose dependent cells read across it
  // must have a delivering channel; channels nothing ever reads are
  // orphans.
  for (int k = 0; k < kernels; ++k) {
    const TilePlacement& tile = ctx.tile(k);
    for (int d = 0; d < prog.dims(); ++d) {
      const auto ds = static_cast<std::size_t>(d);
      for (int side = 0; side < 2; ++side) {
        if (tile.exterior[ds][static_cast<std::size_t>(side)]) continue;
        const int nb = ctx.neighbor_index(tile, d, side);
        if (nb < 0) {
          support::Diagnostic& diag = diags->error(
              "SCL105",
              str_cat("kernel k", k, " marks its ", face_name(d, side),
                      " as pipe-shared but has no neighbor tile there"));
          diag.location = {"kernel", kernel_name(k), -1};
          continue;
        }
        const bool needed = face_needs_halo(prog, d, side);
        const auto incoming = channels.find(std::pair{nb, k});
        if (needed && incoming == channels.end()) {
          support::Diagnostic& diag = diags->error(
              "SCL101",
              str_cat("halo of kernel k", k, " on its ", face_name(d, side),
                      " is never delivered: no pipe from k", nb, " to k", k));
          diag.location = {"kernel", kernel_name(k), -1};
          diag.notes.push_back(str_cat(
              "dependent cells within the stage read radius of that face "
              "consume neighbor data every fused iteration; without the "
              "channel they read stale halo values"));
        } else if (!needed && incoming != channels.end()) {
          support::Diagnostic& diag = diags->warning(
              "SCL104",
              str_cat("pipe k", nb, " -> k", k,
                      " carries no boundary data: no stage reads across "
                      "that face"));
          diag.location = {"pipe", incoming->second->name, -1};
        }
      }
    }
  }

  // FIFO depth versus the boundary-layer volume of one exchange phase.
  // The generated schedule pushes a whole strip before it reads the
  // symmetric one back, so an undersized FIFO blocks the writer; a cycle
  // of blocked writers is a deadlock.
  std::map<int, std::vector<int>> blocked_edges;  // writer -> readers
  for (int k = 0; k < kernels; ++k) {
    const TilePlacement& tile = ctx.tile(k);
    for (int d = 0; d < prog.dims(); ++d) {
      const auto ds = static_cast<std::size_t>(d);
      for (int side = 0; side < 2; ++side) {
        if (tile.exterior[ds][static_cast<std::size_t>(side)]) continue;
        const int nb = ctx.neighbor_index(tile, d, side);
        if (nb < 0) continue;
        const auto channel = channels.find(std::pair{k, nb});
        if (channel == channels.end()) continue;
        const std::int64_t required =
            max_phase_volume(input, k, d, side, diags);
        if (required <= 0) continue;  // nothing sent, or bounds unparsable
        if (channel->second->depth < required) {
          support::Diagnostic& diag = diags->error(
              "SCL102",
              str_cat("pipe FIFO depth ", channel->second->depth,
                      " is below the boundary-layer volume ", required,
                      " elements one exchange phase pushes"));
          diag.location = {"pipe", channel->second->name, -1};
          diag.notes.push_back(str_cat(
              "kernel k", k, " writes its whole stage-output strip across ",
              face_name(d, side), " before reading the symmetric strip "
              "back; a full FIFO blocks the write mid-phase"));
          blocked_edges[k].push_back(nb);
        }
      }
    }
  }

  // Deadlock: a directed cycle of kernels each blocked writing to the
  // next (the reader only drains after its own blocked write completes).
  std::vector<int> state(static_cast<std::size_t>(kernels), 0);
  std::vector<int> parent(static_cast<std::size_t>(kernels), -1);
  bool reported = false;
  auto dfs = [&](auto&& self, int node) -> void {
    state[static_cast<std::size_t>(node)] = 1;
    const auto it = blocked_edges.find(node);
    if (it != blocked_edges.end()) {
      for (const int next : it->second) {
        if (reported) return;
        if (state[static_cast<std::size_t>(next)] == 1) {
          std::vector<int> cycle{next};
          for (int cur = node; cur != next && cur >= 0;
               cur = parent[static_cast<std::size_t>(cur)]) {
            cycle.push_back(cur);
          }
          std::reverse(cycle.begin() + 1, cycle.end());
          std::string path;
          for (const int c : cycle) path += str_cat("k", c, " -> ");
          path += str_cat("k", next);
          support::Diagnostic& diag = diags->error(
              "SCL103",
              str_cat("unsatisfiable pipe schedule: blocked-write cycle ",
                      path, " deadlocks the region pass"));
          diag.location = {"design", "pipe graph", -1};
          diag.notes.push_back(
              "every kernel on the cycle is mid-write into a full FIFO "
              "whose reader is itself blocked writing; no kernel ever "
              "reaches its read phase");
          reported = true;
          return;
        }
        if (state[static_cast<std::size_t>(next)] == 0) {
          parent[static_cast<std::size_t>(next)] = node;
          self(self, next);
        }
      }
    }
    state[static_cast<std::size_t>(node)] = 2;
  };
  for (int k = 0; k < kernels && !reported; ++k) {
    if (state[static_cast<std::size_t>(k)] == 0) dfs(dfs, k);
  }
}

// ---- pass 2: halo & bounds interval analysis (SCL2xx) ----------------------

void check_buffer_bounds(const AnalysisInput& input, int kernel,
                         const LoopBounds& bounds,
                         support::DiagnosticEngine* diags) {
  const GenContext& ctx = input.ctx;
  const StencilProgram& prog = *ctx.program;
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    const std::int64_t grid_hi = prog.grid_box().hi[ds];
    bool flagged = false;
    for (const std::int64_t origin : origin_samples(ctx, d)) {
      if (flagged) break;
      IntervalEnv env = make_env(0, 0, 0, 0);
      env[str_cat("r", d)] = Interval::point(origin);
      try {
        const std::int64_t lo = eval_point(bounds.lo[ds], env);
        const std::int64_t hi = eval_point(bounds.hi[ds], env);
        if (hi <= lo) continue;  // empty burst: no access happens
        if (lo < 0 || hi > grid_hi) {
          support::Diagnostic& diag = diags->error(
              "SCL201",
              str_cat("burst bounds [", lo, ", ", hi, ") along dim ", d,
                      " escape the grid [0, ", grid_hi, ") at region origin ",
                      origin));
          diag.location = {"kernel", kernel_name(kernel), -1};
          diag.notes.push_back(str_cat("lower bound expression: ",
                                       bounds.lo[ds]));
          diag.notes.push_back(str_cat("upper bound expression: ",
                                       bounds.hi[ds]));
          flagged = true;
        }
      } catch (const Error& e) {
        report_unparsable(diags, kernel, bounds.lo[ds], e.what());
        flagged = true;
      }
    }
  }
}

/// Checks the burst write of field `f` stays inside the field's updatable
/// region (Dirichlet border cells must keep their initial values).
void check_owned_bounds(const AnalysisInput& input, int kernel, int f,
                        const LoopBounds& bounds,
                        support::DiagnosticEngine* diags) {
  const GenContext& ctx = input.ctx;
  const StencilProgram& prog = *ctx.program;
  const scl::stencil::Box updated = prog.updated_box(f);
  for (int d = 0; d < prog.dims(); ++d) {
    const auto ds = static_cast<std::size_t>(d);
    bool flagged = false;
    for (const std::int64_t origin : origin_samples(ctx, d)) {
      if (flagged) break;
      IntervalEnv env = make_env(0, 0, 0, 0);
      env[str_cat("r", d)] = Interval::point(origin);
      try {
        const std::int64_t lo = eval_point(bounds.lo[ds], env);
        const std::int64_t hi = eval_point(bounds.hi[ds], env);
        if (hi <= lo) continue;
        if (lo < updated.lo[ds] || hi > updated.hi[ds]) {
          support::Diagnostic& diag = diags->error(
              "SCL203",
              str_cat("burst write of field '", prog.field(f).name,
                      "' covers [", lo, ", ", hi, ") along dim ", d,
                      ", outside the updatable region [", updated.lo[ds],
                      ", ", updated.hi[ds], ") at region origin ", origin));
          diag.location = {"kernel", kernel_name(kernel), -1};
          diag.notes.push_back(
              "cells outside the updatable region are Dirichlet boundary "
              "and must keep their initial values");
          flagged = true;
        }
      } catch (const Error& e) {
        report_unparsable(diags, kernel, bounds.hi[ds], e.what());
        flagged = true;
      }
    }
  }
}

/// Checks every neighbor access of every stage stays inside the kernel's
/// local-buffer box — dynamically (the burst-read window) and statically
/// (the compile-time array extent the emitter sizes).
void check_stage_accesses(const AnalysisInput& input, int kernel, int stage,
                          const LoopBounds& bounds,
                          support::DiagnosticEngine* diags) {
  const GenContext& ctx = input.ctx;
  const StencilProgram& prog = *ctx.program;
  const LoopBounds buffer = codegen::buffer_bounds(ctx, kernel);
  for (const scl::stencil::ReadAccess& access : prog.stage(stage).reads) {
    for (int d = 0; d < prog.dims(); ++d) {
      const auto ds = static_cast<std::size_t>(d);
      const int off = access.offset[ds];
      const std::int64_t ext = static_buffer_extent(ctx, kernel, d);
      bool flagged = false;
      for (const std::int64_t origin : origin_samples(ctx, d)) {
        if (flagged) break;
        for (const std::int64_t dt : dt_samples(ctx)) {
          IntervalEnv env = make_env(0, 0, 0, dt);
          env[str_cat("r", d)] = Interval::point(origin);
          std::int64_t lo = 0, hi = 0, buf_lo = 0, buf_hi = 0;
          try {
            lo = eval_point(bounds.lo[ds], env);
            hi = eval_point(bounds.hi[ds], env);
            buf_lo = eval_point(buffer.lo[ds], env);
            buf_hi = eval_point(buffer.hi[ds], env);
          } catch (const Error& e) {
            report_unparsable(diags, kernel, bounds.lo[ds], e.what());
            flagged = true;
            break;
          }
          if (hi <= lo) continue;  // no cells computed at this point
          const std::int64_t access_lo = lo + off;
          const std::int64_t access_hi = hi - 1 + off;
          // Static array extent: local index (i - B_LO) must fit.
          const std::int64_t static_hi = buf_lo + ext;
          if (access_lo < buf_lo || access_hi >= buf_hi ||
              access_hi >= static_hi) {
            support::Diagnostic& diag = diags->error(
                "SCL202",
                str_cat("stage '", prog.stage(stage).name, "' reads field '",
                        prog.field(access.field).name, "' at offset ", off,
                        " over [", access_lo, ", ", access_hi + 1,
                        ") along dim ", d,
                        ", escaping the local buffer box [", buf_lo, ", ",
                        std::min(buf_hi, static_hi), ")"));
            diag.location = {"kernel", kernel_name(kernel), -1};
            diag.notes.push_back(str_cat(
                "evaluated at region origin ", origin,
                ", fused-iteration distance pass_h - it = ", dt));
            diag.notes.push_back(str_cat(
                "the halo this access needs is neither held in the "
                "buffer margin nor deliverable by a pipe at that "
                "iteration"));
            flagged = true;
            break;
          }
        }
      }
    }
  }
}

void analyze_bounds(const AnalysisInput& input,
                    support::DiagnosticEngine* diags) {
  const GenContext& ctx = input.ctx;
  const StencilProgram& prog = *ctx.program;
  for (int k = 0; k < ctx.kernel_count(); ++k) {
    check_buffer_bounds(input, k, codegen::buffer_bounds(ctx, k), diags);
    for (int f = 0; f < prog.field_count(); ++f) {
      if (prog.is_constant_field(f)) continue;
      check_owned_bounds(input, k, f, codegen::owned_bounds(ctx, k, f),
                         diags);
    }
    for (int s = 0; s < prog.stage_count(); ++s) {
      check_stage_accesses(input, k, s,
                           codegen::stage_compute_bounds(ctx, k, s), diags);
    }
  }
}

// ---- pass 3: resource feasibility cross-check (SCL3xx) ---------------------

void analyze_resources(const AnalysisInput& input,
                       const ChargedResources& charged,
                       support::DiagnosticEngine* diags) {
  const GenContext& ctx = input.ctx;
  const StencilProgram& prog = *ctx.program;

  // Directed channels the codegen view declares versus the FIFOs the
  // model paid for.
  const auto declared = static_cast<std::int64_t>(input.pipes.size());
  if (declared != charged.pipe_count) {
    support::Diagnostic& diag = diags->error(
        "SCL301",
        str_cat("codegen declares ", declared,
                " pipe channels but the resource model charged ",
                charged.pipe_count));
    diag.location = {"design", "resource model", -1};
    diag.notes.push_back(
        "model/codegen drift: the DSE compared candidates under a "
        "different pipe inventory than the emitted design uses");
  }

  // Local-buffer footprint, recomputed from the emitter's static extents.
  int shadow_stages = 0;
  for (int s = 0; s < prog.stage_count(); ++s) {
    if (prog.stage_needs_double_buffer(s)) ++shadow_stages;
  }
  std::int64_t buffer_elements = 0;
  if (ctx.config.family == arch::DesignFamily::kTemporalShift) {
    // The cascade kernel's on-chip state is its shift registers, not
    // tile-shaped line buffers; recompute from the emitter's layout. Each
    // of the R replica cascades owns a full copy.
    buffer_elements = arch::make_temporal_layout(prog, ctx.config).sr_elements *
                      ctx.config.replication;
  } else {
    for (int k = 0; k < ctx.kernel_count(); ++k) {
      std::int64_t cells = 1;
      for (int d = 0; d < prog.dims(); ++d) {
        cells *= static_buffer_extent(ctx, k, d);
      }
      buffer_elements += cells * (prog.field_count() + shadow_stages);
    }
  }
  if (buffer_elements != charged.buffer_elements) {
    support::Diagnostic& diag = diags->error(
        "SCL302",
        str_cat("generated kernels hold ", buffer_elements,
                " local-buffer elements but the resource model charged ",
                charged.buffer_elements));
    diag.location = {"design", "resource model", -1};
    diag.notes.push_back(
        "BRAM sizing in the DSE no longer reflects the emitted buffers");
  }

  // FIFO storage: the model must charge at least the boundary-layer
  // volume the schedule actually keeps in flight.
  std::int64_t required_fifo = 0;
  for (const PipeDecl& pipe : input.pipes) {
    const TilePlacement& tile = ctx.tile(pipe.from_kernel);
    for (int d = 0; d < prog.dims(); ++d) {
      for (int side = 0; side < 2; ++side) {
        if (tile.exterior[static_cast<std::size_t>(d)]
                         [static_cast<std::size_t>(side)]) {
          continue;
        }
        if (ctx.neighbor_index(tile, d, side) != pipe.to_kernel) continue;
        const std::int64_t volume =
            max_phase_volume(input, pipe.from_kernel, d, side, diags);
        if (volume > 0) required_fifo += volume;
      }
    }
  }
  if (charged.pipe_count == declared && declared > 0 &&
      charged.pipe_fifo_elements < required_fifo) {
    support::Diagnostic& diag = diags->error(
        "SCL303",
        str_cat("resource model charges ", charged.pipe_fifo_elements,
                " FIFO elements but the exchange schedule keeps ",
                required_fifo, " elements in flight"));
    diag.location = {"design", "resource model", -1};
    diag.notes.push_back(
        "undersized FIFO charging lets infeasible pipe-heavy designs win "
        "the DSE");
  }

  if (!charged.total.fits_within(ctx.device.capacity)) {
    support::Diagnostic& diag = diags->warning(
        "SCL310",
        str_cat("design needs ", charged.total.to_string(),
                " which exceeds device ", ctx.device.name, " capacity ",
                ctx.device.capacity.to_string()));
    diag.location = {"design", "resource model", -1};
  }
}

// ---- entry points ----------------------------------------------------------

support::DiagnosticEngine analyze(const AnalysisInput& input,
                                  const ChargedResources* charged) {
  support::DiagnosticEngine diags;
  analyze_pipe_graph(input, &diags);
  analyze_bounds(input, &diags);
  if (charged != nullptr) analyze_resources(input, *charged, &diags);
  return diags;
}

support::DiagnosticEngine analyze_design(const StencilProgram& program,
                                         const sim::DesignConfig& config,
                                         const fpga::DeviceSpec& device) {
  return analyze(make_analysis_input(program, config, device));
}

}  // namespace scl::analysis
