#include "analysis/interval.hpp"

#include <algorithm>
#include <cctype>
#include <limits>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::analysis {

namespace {

// The interval operators saturate at the int64 edges instead of wrapping:
// analysis inputs are untrusted (seeded-defect tests feed deliberately
// absurd magnitudes), and signed wraparound would be UB *and* could flip
// an out-of-bounds interval back into range, masking the very defect the
// analyzer exists to report. Saturation keeps lo <= hi and keeps the
// result a superset of the true range.
std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    return a > 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
  }
  return r;
}

std::int64_t sat_sub(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_sub_overflow(a, b, &r)) {
    return b < 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
  }
  return r;
}

std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) {
    return (a > 0) == (b > 0) ? std::numeric_limits<std::int64_t>::max()
                              : std::numeric_limits<std::int64_t>::min();
  }
  return r;
}

}  // namespace

Interval operator+(const Interval& a, const Interval& b) {
  return {sat_add(a.lo, b.lo), sat_add(a.hi, b.hi)};
}

Interval operator-(const Interval& a, const Interval& b) {
  return {sat_sub(a.lo, b.hi), sat_sub(a.hi, b.lo)};
}

Interval operator*(const Interval& a, const Interval& b) {
  const std::int64_t p0 = sat_mul(a.lo, b.lo);
  const std::int64_t p1 = sat_mul(a.lo, b.hi);
  const std::int64_t p2 = sat_mul(a.hi, b.lo);
  const std::int64_t p3 = sat_mul(a.hi, b.hi);
  return {std::min({p0, p1, p2, p3}), std::max({p0, p1, p2, p3})};
}

Interval interval_max(const Interval& a, const Interval& b) {
  return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval interval_min(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

namespace {

/// Recursive-descent evaluator over the raw expression text. Whitespace is
/// skipped between tokens; the cursor always rests on the next token start.
class BoundParser {
 public:
  BoundParser(std::string_view text, const IntervalEnv& env)
      : text_(text), env_(env) {}

  Interval parse() {
    const Interval value = parse_expr();
    skip_ws();
    if (pos_ != text_.size()) {
      fail(str_cat("trailing input at offset ", pos_));
    }
    return value;
  }

 private:
  Interval parse_expr() {
    Interval value = parse_term();
    for (;;) {
      skip_ws();
      if (consume('+')) {
        value = value + parse_term();
      } else if (consume('-')) {
        value = value - parse_term();
      } else {
        return value;
      }
    }
  }

  Interval parse_term() {
    Interval value = parse_factor();
    for (;;) {
      skip_ws();
      if (consume('*')) {
        value = value * parse_factor();
      } else {
        return value;
      }
    }
  }

  Interval parse_factor() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of expression");
    const char c = text_[pos_];
    if (c == '-') {
      ++pos_;
      return Interval::point(0) - parse_factor();
    }
    if (c == '(') {
      ++pos_;
      const Interval value = parse_expr();
      expect(')');
      return value;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t v = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        v = sat_add(sat_mul(v, 10), text_[pos_] - '0');
        ++pos_;
      }
      return Interval::point(v);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::string_view name = read_identifier();
      if (name == "max" || name == "min") {
        expect('(');
        const Interval a = parse_expr();
        expect(',');
        const Interval b = parse_expr();
        expect(')');
        return name == "max" ? interval_max(a, b) : interval_min(a, b);
      }
      const auto it = env_.find(name);
      if (it == env_.end()) {
        fail(str_cat("unknown variable '", name, "'"));
      }
      return it->second;
    }
    fail(str_cat("unexpected character '", c, "' at offset ", pos_));
  }

  std::string_view read_identifier() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    skip_ws();
    if (!consume(c)) {
      fail(str_cat("expected '", c, "' at offset ", pos_));
    }
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw Error(str_cat("cannot parse bound expression '", text_, "': ", why));
  }

  std::string_view text_;
  const IntervalEnv& env_;
  std::size_t pos_ = 0;
};

}  // namespace

Interval eval_bound_expr(std::string_view expr, const IntervalEnv& env) {
  return BoundParser(expr, env).parse();
}

}  // namespace scl::analysis
