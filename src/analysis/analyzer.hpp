// Design verifier: semantic static analysis of a synthesized design.
//
// Three passes over a sim::Design + the code generator's view of it,
// reporting through support::DiagnosticEngine (codes SCL1xx pipe / SCL2xx
// bounds / SCL3xx resource; see support/diagnostics.hpp):
//
//   1. Pipe-graph analysis — builds the kernel x pipe channel graph,
//      checks every shared face that needs a halo has a delivering
//      channel, that channel endpoints are sane (adjacent, distinct,
//      in-range), that FIFO depths cover the per-(iteration, stage)
//      boundary-layer volume the symmetric exchange pushes before it
//      reads, and that undersized channels do not form a blocked-write
//      cycle (deadlock).
//   2. Halo & bounds interval analysis — re-derives the generated kernel's
//      loop-bound expressions (codegen/boundary_gen) and evaluates them
//      symbolically over the region-origin / fused-iteration ranges to
//      prove burst reads stay inside the grid, burst writes stay inside
//      each field's updatable region, and every stage's neighbor accesses
//      stay inside the kernel's static local-buffer box.
//   3. Resource feasibility cross-check — independently recomputes the
//      design's buffer and pipe demands and compares them with what
//      core::estimate_design_resources charged, catching model/codegen
//      drift before a mis-modeled design wins the DSE.
//
// Pass 4 — kernel-IR dataflow analysis of the *emitted* OpenCL text
// (SCL4xx) — lives in analysis/ir/ and is wired up by
// core::verify_generated_ir.
//
// The AnalysisInput is exposed (rather than hidden behind a one-shot
// entry point) so tests can seed defects — drop a pipe, shrink a FIFO,
// tamper with a bound expression — and assert the golden diagnostics.
#pragma once

#include <string>
#include <vector>

#include "codegen/boundary_gen.hpp"
#include "codegen/context.hpp"
#include "codegen/pipe_gen.hpp"
#include "support/diagnostics.hpp"

namespace scl::analysis {

/// The analyzed artifact: the design's code-generation context (tile
/// placements) plus the pipe channel list codegen would emit.
struct AnalysisInput {
  codegen::GenContext ctx;
  std::vector<codegen::PipeDecl> pipes;
};

/// Builds the analyzer's view of `config` exactly as codegen would see it.
/// Throws scl::Error when the config is malformed for the program.
AnalysisInput make_analysis_input(const scl::stencil::StencilProgram& program,
                                  const sim::DesignConfig& config,
                                  const fpga::DeviceSpec& device);

/// Pass 1: pipe channel graph (SCL101..SCL105).
void analyze_pipe_graph(const AnalysisInput& input,
                        support::DiagnosticEngine* diags);

/// Pass 2: halo & bounds interval analysis (SCL201..SCL209). The optional
/// `override_bounds` hook lets tests substitute tampered loop bounds for
/// one kernel; production callers pass nothing.
void analyze_bounds(const AnalysisInput& input,
                    support::DiagnosticEngine* diags);

/// Pass 2 entry point for one explicit set of burst-read bounds, used by
/// analyze_bounds for every kernel and by tests to seed out-of-bounds
/// expressions directly.
void check_buffer_bounds(const AnalysisInput& input, int kernel,
                         const codegen::LoopBounds& bounds,
                         support::DiagnosticEngine* diags);

/// Pass 2 entry point for one field's burst-write bounds (SCL203).
/// analyze_bounds passes codegen::owned_bounds; tests seed tampered
/// expressions that escape the field's updatable region.
void check_owned_bounds(const AnalysisInput& input, int kernel, int field,
                        const codegen::LoopBounds& bounds,
                        support::DiagnosticEngine* diags);

/// Pass 2 entry point for one stage's compute bounds (SCL202): every
/// neighbor access (bounds ± stencil offset) must stay inside the
/// kernel's local-buffer box, dynamically and against the static array
/// extent. analyze_bounds passes codegen::stage_compute_bounds; tests
/// seed widened expressions.
void check_stage_accesses(const AnalysisInput& input, int kernel, int stage,
                          const codegen::LoopBounds& bounds,
                          support::DiagnosticEngine* diags);

/// What the resource model charged the design, as far as pass 3 needs it.
/// The analysis layer sits below core/, so the caller (core::verify_design)
/// supplies the numbers from core::estimate_design_resources.
struct ChargedResources {
  std::int64_t pipe_count = 0;        ///< directed FIFOs the model paid for
  std::int64_t buffer_elements = 0;   ///< local-buffer floats, all kernels
  std::int64_t pipe_fifo_elements = 0;  ///< FIFO storage floats, all kernels
  fpga::ResourceVector total;         ///< the design's full resource vector
};

/// Pass 3: resource-model consistency (SCL301..SCL310). Compares the
/// analyzer's independent recomputation of the design's buffer and pipe
/// demands against what the resource model charged.
void analyze_resources(const AnalysisInput& input,
                       const ChargedResources& charged,
                       support::DiagnosticEngine* diags);

/// Runs passes 1 and 2; adds pass 3 when `charged` is non-null.
support::DiagnosticEngine analyze(const AnalysisInput& input,
                                  const ChargedResources* charged = nullptr);

/// Convenience: build the input and run passes 1 and 2 on `config`. For
/// the full three-pass verification use core::verify_design, which also
/// supplies the resource model's charge.
support::DiagnosticEngine analyze_design(
    const scl::stencil::StencilProgram& program,
    const sim::DesignConfig& config, const fpga::DeviceSpec& device);

}  // namespace scl::analysis
