#include "support/error.hpp"

#include <sstream>

namespace scl::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream os;
  os << "contract violation: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw ContractError(os.str());
}

}  // namespace scl::detail
