// Signal-safe shutdown latch for long-running servers.
//
// A ShutdownLatch is a one-way flag that can be tripped from a POSIX
// signal handler: trigger() performs only async-signal-safe work (an
// atomic store and a write() to a self-pipe), so it is legal to call from
// a SIGTERM/SIGINT handler while the rest of the process is mid-malloc.
// Consumers have two ways to observe the trip:
//
//   * triggered()  — one relaxed atomic load, for polling loops;
//   * fd()         — the read end of the self-pipe, for poll()/select()
//                    loops that block on sockets (the daemon's accept and
//                    connection loops poll this fd alongside their own).
//
// install() wires process signal handlers to the singleton instance();
// tests trip the latch directly with trigger() (or raise()) and rewind it
// with reset() between cases. The latch never blocks and never allocates
// after construction.
#pragma once

#include <atomic>
#include <initializer_list>

namespace scl::support {

class ShutdownLatch {
 public:
  /// Creates the self-pipe. Throws scl::Error when the pipe cannot be
  /// created (fd exhaustion).
  ShutdownLatch();
  ~ShutdownLatch();

  ShutdownLatch(const ShutdownLatch&) = delete;
  ShutdownLatch& operator=(const ShutdownLatch&) = delete;

  /// Trips the latch. Async-signal-safe; idempotent (only the first call
  /// writes the wake byte, so the pipe can never fill).
  void trigger() noexcept;

  /// True once trigger() ran. One relaxed load.
  bool triggered() const noexcept {
    return triggered_.load(std::memory_order_acquire);
  }

  /// Read end of the self-pipe: becomes readable when the latch trips.
  /// Poll it; do not read from it (reset() owns draining).
  int fd() const noexcept { return pipe_fds_[0]; }

  /// Rewinds the latch for reuse (tests, sequential daemon runs in one
  /// process). Not signal-safe; callers serialize against trigger().
  void reset() noexcept;

  /// Process-wide instance used by installed signal handlers. Created on
  /// first use and intentionally leaked, so handlers stay valid during
  /// static destruction.
  static ShutdownLatch& instance();

  /// Installs handlers for `signals` (e.g. {SIGTERM, SIGINT}) that trip
  /// instance(). Also ignores SIGPIPE so socket writers see EPIPE instead
  /// of dying. Idempotent.
  static void install(std::initializer_list<int> signals);

 private:
  std::atomic<bool> triggered_{false};
  int pipe_fds_[2] = {-1, -1};
};

}  // namespace scl::support
