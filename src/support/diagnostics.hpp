// Structured diagnostics for design verification.
//
// Every problem the static analyses (src/analysis/) or the generated-source
// validator (codegen/validator.cpp) can report is a Diagnostic: a stable
// error code, a severity, a human message, an optional location inside the
// design (kernel, pipe, stage, source line, ...), and a chain of
// explanatory notes. Codes are namespaced by topic:
//
//   SCL0xx — generated-source structure (delimiters, placeholders, tokens)
//   SCL1xx — pipe graph (orphan channels, undersized FIFOs, deadlock,
//            missing halo delivery)
//   SCL2xx — halo & bounds interval analysis (out-of-grid bursts,
//            local-buffer overruns, neighbor reads outside the buffer box)
//   SCL3xx — resource feasibility (model/codegen drift)
//   SCL4xx — kernel-IR dataflow (abstract interpretation over the emitted
//            OpenCL: index bounds, uninitialized reads, dead stores,
//            int32 overflow, pipe token balance)
//
// diagnostic_catalog() is the single registry of every code above; tests
// enumerate it to guarantee each code stays exercised by a golden test.
//
// The engine collects diagnostics in emission order and renders them either
// as human-readable text (one "code severity: message" block per entry,
// notes indented beneath) or as a JSON document with the schema documented
// in docs/ARCHITECTURE.md §8.
#pragma once

#include <string>
#include <vector>

namespace scl::support {

enum class Severity { kNote, kWarning, kError };

const char* to_string(Severity severity);

/// Where in the design or generated source a diagnostic points. All fields
/// are optional; empty/negative means "not applicable".
struct DiagLocation {
  std::string component;  ///< e.g. "pipe", "kernel", "stage", "source"
  std::string detail;     ///< e.g. "p_k0_k1", "stencil_k3", "smooth"
  int line = -1;          ///< 1-based source line for SCL0xx diagnostics

  bool empty() const { return component.empty() && detail.empty() && line < 0; }
};

struct Diagnostic {
  std::string code;  ///< "SCL101" etc.; stable across releases
  Severity severity = Severity::kError;
  std::string message;
  DiagLocation location;
  std::vector<std::string> notes;  ///< explanatory chain, most causal first
};

/// One registered diagnostic code. `default_severity` is the severity the
/// emitting pass uses on its primary path (a few codes escalate in corner
/// cases, e.g. SCL409 becomes an error when lowering fails outright).
struct CatalogEntry {
  const char* code;
  Severity default_severity;
  const char* pass;     ///< emitting pass, e.g. "pipe-graph", "kernel-ir"
  const char* meaning;  ///< one-line description of what the code reports
};

/// The full registry of SCL codes, in ascending code order. Every code any
/// pass can emit appears here exactly once; tests/scl_codes_test.cpp fails
/// when a code is emitted from src/ but missing here, or listed here but
/// not exercised by a golden test.
const std::vector<CatalogEntry>& diagnostic_catalog();

/// Collects diagnostics and renders them. Emission order is preserved, and
/// the analyses emit in deterministic (kernel, dimension, side) order, so
/// renderings are byte-stable run to run.
class DiagnosticEngine {
 public:
  /// Starts a diagnostic; returns a reference valid until the next add().
  Diagnostic& add(std::string code, Severity severity, std::string message);

  /// Convenience wrappers.
  Diagnostic& error(std::string code, std::string message) {
    return add(std::move(code), Severity::kError, std::move(message));
  }
  Diagnostic& warning(std::string code, std::string message) {
    return add(std::move(code), Severity::kWarning, std::move(message));
  }

  /// Appends every diagnostic of `other`.
  void merge(const DiagnosticEngine& other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  std::size_t size() const { return diagnostics_.size(); }

  std::int64_t error_count() const { return count(Severity::kError); }
  std::int64_t warning_count() const { return count(Severity::kWarning); }
  bool has_errors() const { return error_count() > 0; }

  /// Human-readable rendering, one block per diagnostic:
  ///   SCL101 error [pipe p_k0_k1]: message
  ///     note: ...
  std::string render_text() const;

  /// JSON rendering (see docs/ARCHITECTURE.md §8 for the schema):
  ///   {"diagnostics": [...], "errors": N, "warnings": M}
  std::string render_json() const;

 private:
  std::int64_t count(Severity severity) const;

  std::vector<Diagnostic> diagnostics_;
};

}  // namespace scl::support
