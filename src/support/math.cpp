#include "support/math.hpp"

#include <cmath>

namespace scl {

std::int64_t product(const std::vector<std::int64_t>& values) {
  std::int64_t out = 1;
  for (const std::int64_t v : values) out *= v;
  return out;
}

std::int64_t sum(const std::vector<std::int64_t>& values) {
  std::int64_t out = 0;
  for (const std::int64_t v : values) out += v;
  return out;
}

std::vector<std::int64_t> divisors(std::int64_t value) {
  SCL_CHECK(value > 0, "divisors: value must be positive");
  std::vector<std::int64_t> low;
  std::vector<std::int64_t> high;
  for (std::int64_t d = 1; d * d <= value; ++d) {
    if (value % d == 0) {
      low.push_back(d);
      if (d != value / d) high.push_back(value / d);
    }
  }
  for (auto it = high.rbegin(); it != high.rend(); ++it) low.push_back(*it);
  return low;
}

double relative_error(double a, double b) {
  if (a == b) return 0.0;
  if (b == 0.0) return std::abs(a);
  return std::abs(a - b) / std::abs(b);
}

}  // namespace scl
