// Error handling primitives for stencilcl.
//
// The library distinguishes two failure classes:
//   * contract violations (bugs in the caller) -> SCL_CHECK / SCL_DCHECK,
//     which throw scl::ContractError with file:line context;
//   * recoverable domain failures (infeasible design, resource overflow)
//     -> scl::Error, thrown by library entry points and documented per API.
#pragma once

#include <stdexcept>
#include <string>

namespace scl {

/// Base class for all exceptions thrown by the stencilcl library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class ContractError : public Error {
 public:
  explicit ContractError(const std::string& what) : Error(what) {}
};

/// Thrown when a requested design does not fit the target device.
class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& what) : Error(what) {}
};

/// Thrown when the cooperative OpenCL runtime detects a cycle of kernels
/// all blocked on pipe operations.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace scl

/// Precondition check, always compiled in. Throws scl::ContractError.
#define SCL_CHECK(expr, message)                                        \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::scl::detail::check_failed(#expr, __FILE__, __LINE__, (message)); \
    }                                                                   \
  } while (false)

/// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define SCL_DCHECK(expr, message) \
  do {                            \
  } while (false)
#else
#define SCL_DCHECK(expr, message) SCL_CHECK(expr, message)
#endif
