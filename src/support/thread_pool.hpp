// Deterministic thread pool for design-space exploration.
//
// A fixed set of workers drains an index range through an atomic cursor —
// there is no work stealing and no task migration, so which *thread* runs
// an index is scheduling-dependent, but every result is written to the
// slot of its index: outputs are position-deterministic regardless of
// thread count or interleaving. Callers that need bit-identical results
// across thread counts get them by construction, as long as the per-index
// function is pure.
//
// The pool is nested-free: a parallel_for issued from inside a worker (or
// from inside the caller's own drain loop) degrades to a serial loop
// instead of re-entering the pool, so work functions may freely call
// library code that itself parallelizes.
//
// Sizing: an explicit thread count wins; otherwise the SCL_THREADS
// environment variable; otherwise std::thread::hardware_concurrency().
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace scl {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread always participates
  /// in parallel_for). `threads` must be >= 1; 1 means fully serial.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return threads_; }

  /// Resolves a requested thread count: `requested` >= 1 wins, else the
  /// SCL_THREADS environment variable (clamped to >= 1), else hardware
  /// concurrency (>= 1).
  static int resolve_threads(int requested);

  /// True when the calling thread is currently executing pool work (its
  /// own drain loop included); parallel_for then runs serially.
  static bool in_worker();

  /// Index of the calling thread's evaluation slot: 0 for the submitting
  /// thread, 1..threads-1 for workers. Stable for the duration of one
  /// work item; callers use it to pick per-worker scratch state.
  static int worker_slot();

  /// Runs fn(0) .. fn(n-1), blocking until all complete. Indices are
  /// claimed through a shared cursor; results must be written by index.
  /// The first exception (lowest index) is rethrown after the loop
  /// drains; remaining indices still run.
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t)>& fn);

  /// Chunked variant: fn(begin, end) is called over contiguous blocks of
  /// up to `grain` indices (the last block may be short). Blocks are
  /// claimed through the shared cursor in grain-sized strides, so per-task
  /// dispatch overhead amortizes over O(grain) work items — the DSE's
  /// candidate evaluations are far too cheap for per-index dispatch.
  /// Same contract as parallel_for: results must be written by index, the
  /// lowest-`begin` exception is rethrown after the loop drains, and
  /// nested calls (or a 1-thread pool) degrade to one serial fn(0, n).
  void parallel_for_chunked(
      std::int64_t n, std::int64_t grain,
      const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Enqueues one independent fire-and-forget job for the worker threads
  /// (the serve::Scheduler's request pumps run this way). Unlike
  /// parallel_for the submitting thread does not participate, so the pool
  /// must own at least one worker: throws scl::Error when
  /// thread_count() == 1. Jobs still queued when the pool is destroyed
  /// are drained — every submitted job runs exactly once — but submitting
  /// *during or after* shutdown throws scl::Error instead of silently
  /// enqueueing work no worker will ever pick up (the
  /// enqueue-during-shutdown race; see thread_pool_test.cpp).
  void submit(std::function<void()> job);

  /// Stops accepting submit() work, lets the workers drain the queue,
  /// then joins them. Idempotent; the destructor calls it. Safe to race
  /// against concurrent submit() calls on a live pool — that is exactly
  /// the enqueue-during-shutdown window submit() guards (losers throw).
  void shutdown();

  /// Maps `fn` over `items`, returning results in input order. `fn` must
  /// be pure for cross-thread-count determinism; the result type must be
  /// default-constructible.
  template <typename In, typename Fn>
  auto parallel_map(const std::vector<In>& items, Fn&& fn)
      -> std::vector<decltype(fn(items[std::size_t{0}]))> {
    using Out = decltype(fn(items[std::size_t{0}]));
    std::vector<Out> out(items.size());
    parallel_for(static_cast<std::int64_t>(items.size()),
                 [&](std::int64_t i) {
                   const auto s = static_cast<std::size_t>(i);
                   out[s] = fn(items[s]);
                 });
    return out;
  }

 private:
  struct Impl;
  Impl* impl_;
  int threads_;
};

}  // namespace scl
