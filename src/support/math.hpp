// Integer math helpers used throughout the geometry and models.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace scl {

/// Ceiling division for non-negative integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return b > 0 && a >= 0 ? (a + b - 1) / b
                         : throw ContractError("ceil_div: bad operands");
}

/// Rounds `a` up to the next multiple of `b`.
constexpr std::int64_t round_up(std::int64_t a, std::int64_t b) {
  return ceil_div(a, b) * b;
}

/// Product of all elements (1 for an empty vector).
std::int64_t product(const std::vector<std::int64_t>& values);

/// Sum of all elements.
std::int64_t sum(const std::vector<std::int64_t>& values);

/// True if `value` is a power of two (> 0).
constexpr bool is_power_of_two(std::int64_t value) {
  return value > 0 && (value & (value - 1)) == 0;
}

/// Clamps `value` into [lo, hi].
constexpr std::int64_t clamp_i64(std::int64_t value, std::int64_t lo,
                                 std::int64_t hi) {
  return value < lo ? lo : (value > hi ? hi : value);
}

/// All divisors of `value` in increasing order. `value` must be positive.
std::vector<std::int64_t> divisors(std::int64_t value);

/// Relative error |a - b| / |b|; returns 0 when both are 0.
double relative_error(double a, double b);

}  // namespace scl
