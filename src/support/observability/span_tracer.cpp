#include "support/observability/span_tracer.hpp"

#include <chrono>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/observability/metrics.hpp"

namespace scl::support::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread stack of open spans, shared by every tracer (entries carry
/// the owning tracer so independent tracers nest independently).
struct OpenSpan {
  const void* tracer;
  std::uint64_t id;
};

thread_local std::vector<OpenSpan> tls_open_spans;

}  // namespace

SpanTracer::SpanTracer(std::size_t capacity)
    : capacity_(capacity), epoch_ns_(steady_ns()) {
  SCL_CHECK(capacity >= 1, "span tracer needs a nonzero ring capacity");
  ring_.reserve(capacity);
}

std::int64_t SpanTracer::now_ns() const {
  std::int64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    epoch = epoch_ns_;
  }
  return steady_ns() - epoch;
}

SpanTracer::Scope::Scope(SpanTracer* tracer, std::string_view name,
                         std::string_view category)
    : tracer_(tracer), name_(name), category_(category) {
  begin_ns_ = tracer_->now_ns();
  id_ = tracer_->next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend();
       ++it) {
    if (it->tracer != tracer_) continue;
    parent_id_ = it->id;
    break;
  }
  for (const OpenSpan& open : tls_open_spans) {
    if (open.tracer == tracer_) ++depth_;
  }
  tls_open_spans.push_back({tracer_, id_});
}

SpanTracer::Scope::Scope(Scope&& other) noexcept
    : tracer_(other.tracer_),
      name_(std::move(other.name_)),
      category_(std::move(other.category_)),
      begin_ns_(other.begin_ns_),
      id_(other.id_),
      parent_id_(other.parent_id_),
      depth_(other.depth_) {
  other.tracer_ = nullptr;
}

SpanTracer::Scope::~Scope() {
  if (tracer_ == nullptr) return;
  // Scopes are stack objects, so this span is the innermost open entry
  // for its tracer; search from the back to unwind out-of-order moves
  // defensively.
  for (auto it = tls_open_spans.rbegin(); it != tls_open_spans.rend();
       ++it) {
    if (it->tracer == tracer_ && it->id == id_) {
      tls_open_spans.erase(std::next(it).base());
      break;
    }
  }
  SpanRecord span_record;
  span_record.name = std::move(name_);
  span_record.category = std::move(category_);
  span_record.begin_ns = begin_ns_;
  span_record.end_ns = tracer_->now_ns();
  span_record.id = id_;
  span_record.parent_id = parent_id_;
  span_record.depth = depth_;
  span_record.thread_index = thread_index();
  tracer_->record(std::move(span_record));
}

SpanTracer::Scope SpanTracer::span(std::string_view name,
                                   std::string_view category) {
  if (!enabled()) return Scope();
  return Scope(this, name, category);
}

void SpanTracer::record(SpanRecord span_record) {
  std::lock_guard<std::mutex> lock(mutex_);
  push_locked(std::move(span_record));
}

void SpanTracer::push_locked(SpanRecord&& span_record) {
  ++total_recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span_record));
    return;
  }
  ring_[next_slot_] = std::move(span_record);
  next_slot_ = (next_slot_ + 1) % capacity_;
}

std::vector<SpanRecord> SpanTracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // Once the ring has wrapped, next_slot_ points at the oldest record.
  const std::size_t start = ring_.size() < capacity_ ? 0 : next_slot_;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::int64_t SpanTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_ - static_cast<std::int64_t>(ring_.size());
}

std::size_t SpanTracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

void SpanTracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_slot_ = 0;
  total_recorded_ = 0;
  epoch_ns_ = steady_ns();
  next_id_.store(0, std::memory_order_relaxed);
}

std::string SpanTracer::render_chrome_json() const {
  const std::vector<SpanRecord> spans = snapshot();
  JsonWriter json(JsonStyle::kCompact);
  json.begin_object();
  json.key("traceEvents").begin_array();
  for (const SpanRecord& span_record : spans) {
    json.begin_object();
    json.member("name", span_record.name);
    json.member("cat", span_record.category.empty()
                           ? std::string_view("scl")
                           : std::string_view(span_record.category));
    json.member("ph", "X");
    json.key("ts").value_fixed(
        static_cast<double>(span_record.begin_ns) / 1000.0, 3);
    json.key("dur").value_fixed(
        static_cast<double>(span_record.end_ns - span_record.begin_ns) /
            1000.0,
        3);
    json.member("pid", 1);
    json.member("tid", span_record.thread_index);
    json.key("args").begin_object();
    json.member("id", static_cast<std::int64_t>(span_record.id));
    json.member("parent", static_cast<std::int64_t>(span_record.parent_id));
    json.member("depth", span_record.depth);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.member("displayTimeUnit", "ms");
  json.end_object();
  return json.take();
}

}  // namespace scl::support::obs
