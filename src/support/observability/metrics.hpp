// Lock-cheap process metrics: counters, gauges and fixed-bucket
// histograms behind a registry with a Prometheus-style text exposition.
//
// Hot-path writes never take a lock: counters and histograms are sharded
// into cache-line-sized cells indexed by a dense per-thread index
// (thread_index()), so concurrent increments from pool workers land in
// different cells and are merged only on scrape. Gauges are a single
// atomic (sets are rare: queue depths, store sizes).
//
// The registry owns every metric; handles returned by counter()/gauge()/
// histogram() are stable for the registry's lifetime, so call sites cache
// them in function-local statics instead of re-doing the name lookup per
// event. Registration is idempotent — asking for an existing name returns
// the existing metric — but asking for a name under a different kind
// throws, which turns silent double-registration bugs into test failures.
//
// Determinism contract: metrics are observation-only. Nothing in the
// synthesis flow reads a metric back to make a decision, so enabling
// observability cannot perturb chosen designs or artifact bytes (the
// serve determinism tests enforce this end to end).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace scl::support::obs {

/// Dense index of the calling thread, assigned on first use. Shards
/// counter/histogram cells and labels trace events; indices are never
/// reused within a process.
int thread_index();

namespace detail {
/// Shard count for counters/histograms: enough that a handful of pool
/// workers rarely collide, small enough that scraping stays trivial.
inline constexpr std::size_t kShards = 8;

struct alignas(64) CounterCell {
  std::atomic<std::int64_t> value{0};
};
}  // namespace detail

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    cells_[static_cast<std::size_t>(thread_index()) %
           detail::kShards]
        .value.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  /// Merged value across shards.
  std::int64_t value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::vector<detail::CounterCell> cells_{detail::kShards};
};

/// Last-write-wins instantaneous value (queue depth, store bytes, ...).
class Gauge {
 public:
  void set(double value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with percentile estimation.
///
/// Buckets follow Prometheus `le` semantics: an observation lands in the
/// first bucket whose upper bound is >= the value; values above every
/// bound land in the implicit +Inf overflow bucket. Percentiles are
/// estimated by linear interpolation inside the bucket that holds the
/// target rank; a rank falling in the overflow bucket clamps to the last
/// finite bound (the histogram cannot know how far past it the tail
/// goes).
class Histogram {
 public:
  void observe(double value);

  struct Snapshot {
    std::vector<double> bounds;         ///< finite upper bounds, ascending
    std::vector<std::int64_t> counts;   ///< bounds.size() + 1 (+Inf last)
    std::int64_t count = 0;
    double sum = 0.0;

    /// Estimated value at quantile `p` in [0, 1]; 0 when empty.
    double percentile(double p) const;
  };

  Snapshot snapshot() const;
  std::int64_t count() const { return snapshot().count; }
  double percentile(double p) const { return snapshot().percentile(p); }

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  struct alignas(64) Shard {
    explicit Shard(std::size_t buckets)
        : counts(buckets) {}
    std::vector<std::atomic<std::int64_t>> counts;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Default bucket bounds for millisecond-scale latencies (sub-ms parse
/// calls up to multi-second cold syntheses).
const std::vector<double>& default_latency_ms_buckets();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, registering it on first use. Names must
  /// match [a-zA-Z_:][a-zA-Z0-9_:]*; re-registering a name under a
  /// different kind throws scl::Error. `help` is kept from the first
  /// registration. For histograms the bounds are also kept from the
  /// first registration (they must be ascending and non-empty).
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       std::string_view help = "");

  /// Prometheus-style text exposition, metrics sorted by name (histogram
  /// bucket lines are cumulative, per the format). Deterministic for a
  /// given set of metric values.
  std::string render_exposition() const;

  std::size_t metric_count() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Metric {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric& find_or_register(std::string_view name, Kind kind,
                           std::string_view help,
                           std::vector<double>* bounds);

  mutable std::mutex mutex_;
  /// Sorted map so the exposition renders in name order.
  std::vector<std::pair<std::string, std::unique_ptr<Metric>>> metrics_;
};

}  // namespace scl::support::obs
