// Wall-clock span tracing with RAII scopes and a bounded ring buffer.
//
// A span is one timed interval of work ("parse", "dse/baseline",
// "codegen/emit"). Scopes nest: each thread keeps a stack of its open
// spans, so a span started while another is open records that span as its
// parent, and the depth of the nesting — the structure Chrome's trace
// viewer (about://tracing, https://ui.perfetto.dev) draws as stacked
// bars per thread.
//
// Recording is bounded: completed spans land in a fixed-capacity ring
// buffer under a mutex (spans close at millisecond-ish cadence, so the
// lock is uncontended in practice); when the ring wraps, the oldest
// records are overwritten and dropped() counts what was lost. A disabled
// tracer hands out inert scopes whose constructor and destructor do no
// clock reads and take no locks — the zero-cost-when-off contract the
// CLI relies on (tracing only turns on under --trace-out).
//
// record() bypasses the clock entirely and appends a caller-built record;
// golden-output tests use it to render deterministic traces.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace scl::support::obs {

struct SpanRecord {
  std::string name;
  std::string category;
  std::int64_t begin_ns = 0;  ///< since the tracer's epoch
  std::int64_t end_ns = 0;
  std::uint64_t id = 0;        ///< unique per tracer, 1-based
  std::uint64_t parent_id = 0; ///< 0 = root span
  int depth = 0;               ///< open ancestors on the same thread
  int thread_index = 0;        ///< obs::thread_index() of the recorder
};

class SpanTracer {
 public:
  explicit SpanTracer(std::size_t capacity = 1 << 16);

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// RAII handle for one span: opens on construction, records on
  /// destruction. Inert (no clock, no lock) when the tracer is disabled.
  class Scope {
   public:
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope(Scope&& other) noexcept;
    ~Scope();

   private:
    friend class SpanTracer;
    Scope() = default;
    Scope(SpanTracer* tracer, std::string_view name,
          std::string_view category);

    SpanTracer* tracer_ = nullptr;  ///< null = inert
    std::string name_;
    std::string category_;
    std::int64_t begin_ns_ = 0;
    std::uint64_t id_ = 0;
    std::uint64_t parent_id_ = 0;
    int depth_ = 0;
  };

  /// Opens a span; the returned scope records it when destroyed.
  Scope span(std::string_view name, std::string_view category);

  /// Appends a caller-built record verbatim (no clock, no nesting stack).
  /// Works on disabled tracers; tests use it for deterministic output.
  void record(SpanRecord span_record);

  /// Completed spans in recording order (oldest surviving first).
  std::vector<SpanRecord> snapshot() const;

  /// Records overwritten because the ring wrapped.
  std::int64_t dropped() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Drops all records and resets the epoch and id counter.
  void clear();

  /// Chrome trace_event JSON: an object with a "traceEvents" array of
  /// complete ("X") events, timestamps in microseconds (span nanoseconds
  /// rendered with 3 decimals). Span id/parent/depth ride in "args".
  std::string render_chrome_json() const;

  /// Nanoseconds since the tracer's epoch (construction or last clear()).
  std::int64_t now_ns() const;

 private:
  void push_locked(SpanRecord&& span_record);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{0};
  const std::size_t capacity_;

  mutable std::mutex mutex_;
  std::int64_t epoch_ns_ = 0;  ///< steady_clock origin of span times
  std::vector<SpanRecord> ring_;
  std::size_t next_slot_ = 0;        ///< overwrite cursor once full
  std::int64_t total_recorded_ = 0;  ///< includes overwritten records
};

}  // namespace scl::support::obs
