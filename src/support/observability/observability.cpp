#include "support/observability/observability.hpp"

namespace scl::support::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
  tracer().set_enabled(on);
}

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

SpanTracer& tracer() {
  static SpanTracer* span_tracer = new SpanTracer();
  return *span_tracer;
}

}  // namespace scl::support::obs
