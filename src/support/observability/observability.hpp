// Process-global observability: one MetricsRegistry and one SpanTracer
// shared by every layer of the pipeline, behind a single enabled flag.
//
// Observability is OFF by default. Instrumentation sites guard their
// work with enabled() — one relaxed atomic load — so a binary that never
// opts in pays no clock reads, no metric lookups and no allocations:
//
//   auto span = support::obs::tracer().span("codegen/emit", "codegen");
//   if (support::obs::enabled()) {
//     static auto& emits = support::obs::metrics().counter(
//         "scl_codegen_emits_total", "generated OpenCL source bundles");
//     emits.increment();
//   }
//
// (span() checks the flag internally and returns an inert scope when
// tracing is off; the function-local static caches the registry lookup.)
//
// The CLI tools flip the flag on under --trace-out/--metrics-out and
// render the global tracer/registry to files on exit. The singletons are
// intentionally leaked so instrumented worker threads can still touch
// them during static destruction.
//
// Components that need always-on, isolated counters (the serve
// SynthesisService) own a private MetricsRegistry instance instead of
// the global one; the global flag does not gate registry *use*, only the
// pipeline instrumentation around it.
#pragma once

#include "support/observability/metrics.hpp"
#include "support/observability/span_tracer.hpp"

namespace scl::support::obs {

/// True when pipeline instrumentation should record. One relaxed load.
bool enabled();

/// Turns global instrumentation (metrics guards + span tracing) on/off.
void set_enabled(bool on);

/// The process-global registry; created on first use, never destroyed.
MetricsRegistry& metrics();

/// The process-global tracer; created on first use, never destroyed.
SpanTracer& tracer();

}  // namespace scl::support::obs
