#include "support/observability/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/error.hpp"

namespace scl::support::obs {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  auto tail = [&](char c) { return head(c) || (c >= '0' && c <= '9'); };
  if (!head(name[0])) return false;
  return std::all_of(name.begin() + 1, name.end(), tail);
}

/// Exposition value formatting: integers render without a point, other
/// values with up to 10 significant digits — deterministic for the
/// counter/gauge magnitudes the framework produces.
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

int thread_index() {
  static std::atomic<int> next{0};
  thread_local const int index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

std::int64_t Counter::value() const {
  std::int64_t total = 0;
  for (const detail::CounterCell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::add(double delta) {
  value_.fetch_add(delta, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  SCL_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  SCL_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                    bounds_.end(),
            "histogram bucket bounds must be strictly ascending");
  shards_.reserve(detail::kShards);
  for (std::size_t s = 0; s < detail::kShards; ++s) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

void Histogram::observe(double value) {
  // First bound >= value (`le` semantics); past-the-end = +Inf bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  Shard& shard =
      *shards_[static_cast<std::size_t>(thread_index()) % detail::kShards];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
      snap.counts[b] += shard->counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard->sum.load(std::memory_order_relaxed);
  }
  for (const std::int64_t c : snap.counts) snap.count += c;
  return snap;
}

double Histogram::Snapshot::percentile(double p) const {
  if (count <= 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Nearest-rank target, then linear interpolation inside the bucket
  // that holds it.
  const auto target = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(p * static_cast<double>(count))));
  std::int64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    cumulative += counts[b];
    if (cumulative < target) continue;
    if (b >= bounds.size()) {
      // Overflow bucket: clamp to the last finite bound.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lower = b == 0 ? 0.0 : bounds[b - 1];
    const double upper = bounds[b];
    const auto into_bucket =
        static_cast<double>(target - (cumulative - counts[b]));
    const double fraction = into_bucket / static_cast<double>(counts[b]);
    return lower + fraction * (upper - lower);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

const std::vector<double>& default_latency_ms_buckets() {
  static const std::vector<double> buckets{
      0.25, 0.5,  1.0,    2.5,    5.0,    10.0,    25.0,    50.0,
      100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0};
  return buckets;
}

MetricsRegistry::Metric& MetricsRegistry::find_or_register(
    std::string_view name, Kind kind, std::string_view help,
    std::vector<double>* bounds) {
  if (!valid_metric_name(name)) {
    throw Error("invalid metric name '" + std::string(name) + "'");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(
      metrics_.begin(), metrics_.end(), name,
      [](const auto& entry, std::string_view n) { return entry.first < n; });
  if (it != metrics_.end() && it->first == name) {
    if (it->second->kind != kind) {
      throw Error("metric '" + std::string(name) +
                  "' already registered under a different kind");
    }
    return *it->second;
  }
  auto metric = std::make_unique<Metric>();
  metric->kind = kind;
  metric->help = std::string(help);
  switch (kind) {
    case Kind::kCounter:
      metric->counter.reset(new Counter());
      break;
    case Kind::kGauge:
      metric->gauge.reset(new Gauge());
      break;
    case Kind::kHistogram:
      metric->histogram.reset(new Histogram(std::move(*bounds)));
      break;
  }
  Metric& ref = *metric;
  metrics_.insert(it, {std::string(name), std::move(metric)});
  return ref;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  return *find_or_register(name, Kind::kCounter, help, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  return *find_or_register(name, Kind::kGauge, help, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      std::string_view help) {
  return *find_or_register(name, Kind::kHistogram, help, &bounds).histogram;
}

std::size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.size();
}

std::string MetricsRegistry::render_exposition() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, metric] : metrics_) {
    if (!metric->help.empty()) {
      out += "# HELP " + name + " " + metric->help + "\n";
    }
    switch (metric->kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " +
               format_value(static_cast<double>(metric->counter->value())) +
               "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + format_value(metric->gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        const Histogram::Snapshot snap = metric->histogram->snapshot();
        std::int64_t cumulative = 0;
        for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
          cumulative += snap.counts[b];
          out += name + "_bucket{le=\"" + format_value(snap.bounds[b]) +
                 "\"} " + format_value(static_cast<double>(cumulative)) +
                 "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " +
               format_value(static_cast<double>(snap.count)) + "\n";
        out += name + "_sum " + format_value(snap.sum) + "\n";
        out += name + "_count " +
               format_value(static_cast<double>(snap.count)) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace scl::support::obs
