// Text/CSV table rendering for benchmark harness output.
//
// Every bench binary regenerating a paper table or figure prints through
// TableWriter so the rows line up with the paper's layout and can also be
// dumped as CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace scl {

/// Accumulates rows of string cells and renders an aligned text table,
/// a Markdown table, or CSV.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Renders with space padding and a rule under the header.
  std::string to_text() const;

  /// Renders as GitHub-flavored Markdown.
  std::string to_markdown() const;

  /// Renders as RFC-4180-ish CSV (cells containing comma/quote are quoted).
  std::string to_csv() const;

  /// Writes `to_text()` to the stream.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace scl
