#include "support/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace scl {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

namespace detail {

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  // Serialize whole lines: pool workers may log concurrently.
  static std::mutex output_mutex;
  std::lock_guard<std::mutex> lock(output_mutex);
  std::cerr << "[stencilcl " << level_name(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace scl
