#include "support/diagnostics.hpp"

#include "support/json.hpp"
#include "support/strings.hpp"

namespace scl::support {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

const std::vector<CatalogEntry>& diagnostic_catalog() {
  static const std::vector<CatalogEntry> kCatalog = {
      {"SCL001", Severity::kError, "source-structure",
       "generated source has unbalanced delimiters"},
      {"SCL002", Severity::kError, "source-structure",
       "generated source contains an unexpanded template placeholder"},
      {"SCL010", Severity::kError, "source-structure",
       "pipe declared but never written"},
      {"SCL011", Severity::kError, "source-structure",
       "pipe declared but never read"},
      {"SCL012", Severity::kError, "source-structure",
       "pipe written but not declared"},
      {"SCL013", Severity::kError, "source-structure",
       "pipe read but not declared"},
      {"SCL014", Severity::kError, "source-structure",
       "pipe written by multiple kernels"},
      {"SCL015", Severity::kError, "source-structure",
       "pipe read by multiple kernels"},
      {"SCL016", Severity::kError, "source-structure",
       "pipe read and written by the same kernel"},
      {"SCL101", Severity::kError, "pipe-graph",
       "halo face is never delivered: no pipe from the neighbor tile"},
      {"SCL102", Severity::kError, "pipe-graph",
       "pipe FIFO depth is below the boundary-layer volume one exchange "
       "phase pushes"},
      {"SCL103", Severity::kError, "pipe-graph",
       "blocked-write cycle in the pipe schedule deadlocks the region pass"},
      {"SCL104", Severity::kWarning, "pipe-graph",
       "pipe carries no boundary data: no stage reads across that face"},
      {"SCL105", Severity::kError, "pipe-graph",
       "pipe connects an invalid kernel pair (non-adjacent, duplicate, or "
       "missing neighbor)"},
      {"SCL106", Severity::kWarning, "pipe-graph",
       "pipe depth is not a power of two as xcl_reqd_pipe_depth requires"},
      {"SCL201", Severity::kError, "halo-bounds",
       "burst-read bounds escape the grid at some region origin"},
      {"SCL202", Severity::kError, "halo-bounds",
       "stage reads a field offset outside the local buffer box"},
      {"SCL203", Severity::kError, "halo-bounds",
       "burst write covers cells outside the updatable region"},
      {"SCL209", Severity::kWarning, "halo-bounds",
       "loop bound is outside the affine bound language; interval analysis "
       "skipped it"},
      {"SCL301", Severity::kError, "resource-model",
       "declared pipe-channel count disagrees with the resource model"},
      {"SCL302", Severity::kError, "resource-model",
       "generated local-buffer elements disagree with the resource model"},
      {"SCL303", Severity::kError, "resource-model",
       "charged FIFO elements disagree with the exchange schedule's "
       "in-flight volume"},
      {"SCL310", Severity::kWarning, "resource-model",
       "design demand exceeds the selected device's capacity"},
      {"SCL401", Severity::kError, "kernel-ir",
       "local-buffer index provably escapes the buffer extent"},
      {"SCL402", Severity::kError, "kernel-ir",
       "global-memory index provably escapes [0, grid cells)"},
      {"SCL403", Severity::kError, "kernel-ir",
       "local-buffer read no store can have initialized"},
      {"SCL404", Severity::kError, "kernel-ir",
       "local buffer is stored but never loaded (dead stores)"},
      {"SCL405", Severity::kError, "kernel-ir",
       "index arithmetic overflows 32-bit signed int"},
      {"SCL406", Severity::kError, "kernel-ir",
       "pipe writes and reads are unbalanced over one region pass"},
      {"SCL407", Severity::kWarning, "kernel-ir",
       "loop body never executes at any sampled region origin"},
      {"SCL408", Severity::kError, "kernel-ir",
       "__global output buffer is never stored"},
      {"SCL409", Severity::kWarning, "kernel-ir",
       "kernel-IR analysis incomplete: construct outside the modeled "
       "subset (error when lowering fails entirely)"},
  };
  return kCatalog;
}

Diagnostic& DiagnosticEngine::add(std::string code, Severity severity,
                                  std::string message) {
  Diagnostic diag;
  diag.code = std::move(code);
  diag.severity = severity;
  diag.message = std::move(message);
  diagnostics_.push_back(std::move(diag));
  return diagnostics_.back();
}

void DiagnosticEngine::merge(const DiagnosticEngine& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

std::int64_t DiagnosticEngine::count(Severity severity) const {
  std::int64_t n = 0;
  for (const Diagnostic& diag : diagnostics_) {
    if (diag.severity == severity) ++n;
  }
  return n;
}

std::string DiagnosticEngine::render_text() const {
  std::string out;
  for (const Diagnostic& diag : diagnostics_) {
    out += str_cat(diag.code, " ", to_string(diag.severity));
    if (!diag.location.empty()) {
      out += " [";
      out += diag.location.component;
      if (!diag.location.detail.empty()) {
        if (!diag.location.component.empty()) out += " ";
        out += diag.location.detail;
      }
      if (diag.location.line >= 0) {
        out += str_cat(":", diag.location.line);
      }
      out += "]";
    }
    out += str_cat(": ", diag.message, "\n");
    for (const std::string& note : diag.notes) {
      out += str_cat("  note: ", note, "\n");
    }
  }
  return out;
}

std::string DiagnosticEngine::render_json() const {
  JsonWriter json(JsonStyle::kSpaced);
  json.begin_object();
  json.key("diagnostics").begin_array();
  for (const Diagnostic& diag : diagnostics_) {
    json.begin_object();
    json.member("code", diag.code);
    json.member("severity", to_string(diag.severity));
    json.member("message", diag.message);
    if (!diag.location.empty()) {
      json.key("location").begin_object();
      json.member("component", diag.location.component);
      json.member("detail", diag.location.detail);
      if (diag.location.line >= 0) json.member("line", diag.location.line);
      json.end_object();
    }
    if (!diag.notes.empty()) {
      json.key("notes").begin_array();
      for (const std::string& note : diag.notes) json.value(note);
      json.end_array();
    }
    json.end_object();
  }
  json.end_array();
  json.member("errors", error_count());
  json.member("warnings", warning_count());
  json.end_object();
  return json.take();
}

}  // namespace scl::support
