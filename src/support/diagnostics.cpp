#include "support/diagnostics.hpp"

#include "support/json.hpp"
#include "support/strings.hpp"

namespace scl::support {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

Diagnostic& DiagnosticEngine::add(std::string code, Severity severity,
                                  std::string message) {
  Diagnostic diag;
  diag.code = std::move(code);
  diag.severity = severity;
  diag.message = std::move(message);
  diagnostics_.push_back(std::move(diag));
  return diagnostics_.back();
}

void DiagnosticEngine::merge(const DiagnosticEngine& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

std::int64_t DiagnosticEngine::count(Severity severity) const {
  std::int64_t n = 0;
  for (const Diagnostic& diag : diagnostics_) {
    if (diag.severity == severity) ++n;
  }
  return n;
}

std::string DiagnosticEngine::render_text() const {
  std::string out;
  for (const Diagnostic& diag : diagnostics_) {
    out += str_cat(diag.code, " ", to_string(diag.severity));
    if (!diag.location.empty()) {
      out += " [";
      out += diag.location.component;
      if (!diag.location.detail.empty()) {
        if (!diag.location.component.empty()) out += " ";
        out += diag.location.detail;
      }
      if (diag.location.line >= 0) {
        out += str_cat(":", diag.location.line);
      }
      out += "]";
    }
    out += str_cat(": ", diag.message, "\n");
    for (const std::string& note : diag.notes) {
      out += str_cat("  note: ", note, "\n");
    }
  }
  return out;
}

std::string DiagnosticEngine::render_json() const {
  JsonWriter json(JsonStyle::kSpaced);
  json.begin_object();
  json.key("diagnostics").begin_array();
  for (const Diagnostic& diag : diagnostics_) {
    json.begin_object();
    json.member("code", diag.code);
    json.member("severity", to_string(diag.severity));
    json.member("message", diag.message);
    if (!diag.location.empty()) {
      json.key("location").begin_object();
      json.member("component", diag.location.component);
      json.member("detail", diag.location.detail);
      if (diag.location.line >= 0) json.member("line", diag.location.line);
      json.end_object();
    }
    if (!diag.notes.empty()) {
      json.key("notes").begin_array();
      for (const std::string& note : diag.notes) json.value(note);
      json.end_array();
    }
    json.end_object();
  }
  json.end_array();
  json.member("errors", error_count());
  json.member("warnings", warning_count());
  json.end_object();
  return json.take();
}

}  // namespace scl::support
