#include "support/diagnostics.hpp"

#include "support/strings.hpp"

namespace scl::support {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

Diagnostic& DiagnosticEngine::add(std::string code, Severity severity,
                                  std::string message) {
  Diagnostic diag;
  diag.code = std::move(code);
  diag.severity = severity;
  diag.message = std::move(message);
  diagnostics_.push_back(std::move(diag));
  return diagnostics_.back();
}

void DiagnosticEngine::merge(const DiagnosticEngine& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

std::int64_t DiagnosticEngine::count(Severity severity) const {
  std::int64_t n = 0;
  for (const Diagnostic& diag : diagnostics_) {
    if (diag.severity == severity) ++n;
  }
  return n;
}

std::string DiagnosticEngine::render_text() const {
  std::string out;
  for (const Diagnostic& diag : diagnostics_) {
    out += str_cat(diag.code, " ", to_string(diag.severity));
    if (!diag.location.empty()) {
      out += " [";
      out += diag.location.component;
      if (!diag.location.detail.empty()) {
        if (!diag.location.component.empty()) out += " ";
        out += diag.location.detail;
      }
      if (diag.location.line >= 0) {
        out += str_cat(":", diag.location.line);
      }
      out += "]";
    }
    out += str_cat(": ", diag.message, "\n");
    for (const std::string& note : diag.notes) {
      out += str_cat("  note: ", note, "\n");
    }
  }
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string DiagnosticEngine::render_json() const {
  std::string out = "{\"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& diag : diagnostics_) {
    if (!first) out += ", ";
    first = false;
    out += str_cat("{\"code\": \"", json_escape(diag.code),
                   "\", \"severity\": \"", to_string(diag.severity),
                   "\", \"message\": \"", json_escape(diag.message), "\"");
    if (!diag.location.empty()) {
      out += str_cat(", \"location\": {\"component\": \"",
                     json_escape(diag.location.component),
                     "\", \"detail\": \"", json_escape(diag.location.detail),
                     "\"");
      if (diag.location.line >= 0) {
        out += str_cat(", \"line\": ", diag.location.line);
      }
      out += "}";
    }
    if (!diag.notes.empty()) {
      out += ", \"notes\": [";
      for (std::size_t i = 0; i < diag.notes.size(); ++i) {
        if (i > 0) out += ", ";
        out += str_cat("\"", json_escape(diag.notes[i]), "\"");
      }
      out += "]";
    }
    out += "}";
  }
  out += str_cat("], \"errors\": ", error_count(),
                 ", \"warnings\": ", warning_count(), "}");
  return out;
}

}  // namespace scl::support
