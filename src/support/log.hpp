// Minimal leveled logger.
//
// The framework logs design-space-exploration progress at Info and detailed
// per-candidate evaluations at Debug. Output goes to stderr so that bench
// tables on stdout stay machine-readable.
#pragma once

#include <sstream>
#include <string>

namespace scl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);

/// Current global threshold.
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace scl

#define SCL_LOG(level) ::scl::detail::LogMessage(::scl::LogLevel::level)
#define SCL_DEBUG() SCL_LOG(kDebug)
#define SCL_INFO() SCL_LOG(kInfo)
#define SCL_WARN() SCL_LOG(kWarning)
#define SCL_ERROR() SCL_LOG(kError)
