// Small string formatting helpers (GCC 12 lacks <format>).
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace scl {

/// Concatenates the stream representations of all arguments.
template <typename... Args>
std::string str_cat(const Args&... args) {
  std::ostringstream os;
  ((os << args), ...);
  return os.str();
}

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` at every occurrence of `sep` (keeps empty fields).
std::vector<std::string> split(std::string_view text, char sep);

/// Returns `text` with leading and trailing whitespace removed.
std::string trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Returns `value` formatted with exactly `digits` digits after the point.
std::string format_fixed(double value, int digits);

/// Formats a value like "1.65x" for speedup reporting.
std::string format_speedup(double value);

/// Formats an integer with thousands separators, e.g. 1234567 -> "1,234,567".
std::string format_thousands(long long value);

/// Replaces every occurrence of `from` in `text` with `to`.
std::string replace_all(std::string text, std::string_view from,
                        std::string_view to);

/// Repeats `unit` `count` times.
std::string repeat(std::string_view unit, std::size_t count);

/// Counts non-overlapping occurrences of `needle` in `haystack`.
std::size_t count_occurrences(std::string_view haystack,
                              std::string_view needle);

}  // namespace scl
