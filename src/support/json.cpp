#include "support/json.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl::support {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- writer ------------------------------------------------------------------

JsonWriter::JsonWriter(JsonStyle style) : style_(style) {}

void JsonWriter::begin_value(bool is_key) {
  SCL_CHECK(!root_done_, "JsonWriter: value after the root value closed");
  if (stack_.empty()) return;
  Scope& top = stack_.back();
  if (top.kind == '{') {
    if (is_key) {
      SCL_CHECK(!top.after_key, "JsonWriter: key directly after key");
      if (top.count > 0) {
        out_ += style_ == JsonStyle::kSpaced ? ", " : ",";
      }
    } else {
      SCL_CHECK(top.after_key,
                "JsonWriter: object member value without a key");
      top.after_key = false;
    }
  } else {
    SCL_CHECK(!is_key, "JsonWriter: key inside an array");
    if (top.count > 0) {
      out_ += style_ == JsonStyle::kSpaced ? ", " : ",";
    }
  }
  if (is_key || top.kind == '[') ++top.count;
}

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  out_ += '{';
  stack_.push_back({'{'});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  SCL_CHECK(!stack_.empty() && stack_.back().kind == '{',
            "JsonWriter: end_object without matching begin_object");
  SCL_CHECK(!stack_.back().after_key,
            "JsonWriter: end_object after a dangling key");
  stack_.pop_back();
  out_ += '}';
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  out_ += '[';
  stack_.push_back({'['});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  SCL_CHECK(!stack_.empty() && stack_.back().kind == '[',
            "JsonWriter: end_array without matching begin_array");
  stack_.pop_back();
  out_ += ']';
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  SCL_CHECK(!stack_.empty() && stack_.back().kind == '{',
            "JsonWriter: key outside an object");
  begin_value(/*is_key=*/true);
  out_ += '"';
  out_ += json_escape(std::string(name));
  out_ += style_ == JsonStyle::kSpaced ? "\": " : "\":";
  stack_.back().after_key = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  begin_value();
  out_ += '"';
  out_ += json_escape(std::string(v));
  out_ += '"';
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  begin_value();
  out_ += v ? "true" : "false";
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  begin_value();
  out_ += std::to_string(v);
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  begin_value();
  out_ += std::to_string(v);
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  begin_value();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value_fixed(double v, int digits) {
  begin_value();
  out_ += format_fixed(v, digits);
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  begin_value();
  out_ += "null";
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  begin_value();
  out_ += json;
  if (stack_.empty()) root_done_ = true;
  return *this;
}

std::string JsonWriter::take() {
  SCL_CHECK(stack_.empty(), "JsonWriter: take() with open containers");
  root_done_ = false;
  return std::move(out_);
}

// --- reader ------------------------------------------------------------------

struct JsonValue::Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw Error(str_cat("JSON parse error at offset ", pos, ": ", what));
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (pos >= text.size() || text[pos] != c) {
      fail(str_cat("expected '", c, "'"));
    }
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  void append_utf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          append_utf8(&out, code);
          break;
        }
        default:
          fail(str_cat("unknown escape '\\", esc, "'"));
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
            text[pos] == '-')) {
      ++pos;
    }
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.scalar_ = std::string(text.substr(start, pos - start));
    // Validate eagerly so load-time errors carry an offset.
    char* end = nullptr;
    std::strtod(v.scalar_.c_str(), &end);
    if (end == v.scalar_.c_str() || *end != '\0') fail("malformed number");
    // strtod is laxer than JSON: reject leading zeros ("01") like a
    // strict parser would.
    const std::string_view digits =
        v.scalar_[0] == '-' ? std::string_view(v.scalar_).substr(1)
                            : std::string_view(v.scalar_);
    if (digits.size() > 1 && digits[0] == '0' && digits[1] >= '0' &&
        digits[1] <= '9') {
      fail("leading zero in number");
    }
    return v;
  }

  JsonValue parse_value(int depth) {
    if (depth > 128) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      ++pos;
      v.kind_ = Kind::kObject;
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return v;
      }
      while (true) {
        skip_ws();
        std::string name = parse_string();
        skip_ws();
        expect(':');
        v.members_.emplace_back(std::move(name), parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos;
      v.kind_ = Kind::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return v;
      }
      while (true) {
        v.items_.push_back(parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind_ = Kind::kString;
      v.scalar_ = parse_string();
      return v;
    }
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      v.kind_ = Kind::kBool;
      v.bool_ = true;
      return v;
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      v.kind_ = Kind::kBool;
      v.bool_ = false;
      return v;
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      v.kind_ = Kind::kNull;
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail(str_cat("unexpected character '", c, "'"));
  }
};

JsonValue JsonValue::parse(std::string_view text) {
  Parser parser{text};
  JsonValue v = parser.parse_value(0);
  parser.skip_ws();
  if (parser.pos != text.size()) parser.fail("trailing garbage");
  return v;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw Error("JSON value is not a bool");
  return bool_;
}

std::int64_t JsonValue::as_int64() const {
  if (kind_ != Kind::kNumber) throw Error("JSON value is not a number");
  char* end = nullptr;
  const long long v = std::strtoll(scalar_.c_str(), &end, 10);
  if (end != scalar_.c_str() && *end == '\0') return v;
  // Fractional or exponent spelling: round through double.
  return static_cast<std::int64_t>(std::strtod(scalar_.c_str(), nullptr));
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) throw Error("JSON value is not a number");
  return std::strtod(scalar_.c_str(), nullptr);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw Error("JSON value is not a string");
  return scalar_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  throw Error("JSON value is not a container");
}

const JsonValue& JsonValue::operator[](std::size_t i) const {
  if (kind_ != Kind::kArray) throw Error("JSON value is not an array");
  if (i >= items_.size()) throw Error("JSON array index out of range");
  return items_[i];
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) throw Error("JSON value is not an array");
  return items_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (kind_ != Kind::kObject) throw Error("JSON value is not an object");
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw Error(str_cat("JSON object has no member \"", key, "\""));
  }
  return *v;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) throw Error("JSON value is not an object");
  return members_;
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::move(fallback);
}

std::int64_t JsonValue::get_int64(std::string_view key,
                                  std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_int64() : fallback;
}

double JsonValue::get_double(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

}  // namespace scl::support
