#include "support/table.hpp"

#include <algorithm>
#include <ostream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace scl {

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  // Built up with += (not an operator+ chain): GCC 12's -O3 restrict
  // checker misfires on the temporary-insert pattern under -Werror.
  std::string out = "\"";
  out += replace_all(cell, "\"", "\"\"");
  out += "\"";
  return out;
}

}  // namespace

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  SCL_CHECK(!header_.empty(), "table needs at least one column");
}

void TableWriter::add_row(std::vector<std::string> row) {
  SCL_CHECK(row.size() == header_.size(),
            str_cat("row has ", row.size(), " cells, header has ",
                    header_.size()));
  rows_.push_back(std::move(row));
}

std::string TableWriter::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += "  ";
      line += row[c];
      line += repeat(" ", widths[c] - row[c].size());
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c != 0 ? 2 : 0);
  }
  out += repeat("-", rule) + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TableWriter::to_markdown() const {
  auto render_row = [](const std::vector<std::string>& row) {
    std::string line = "|";
    for (const auto& cell : row) {
      line += " " + cell + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  out += "|";
  for (std::size_t c = 0; c < header_.size(); ++c) out += "---|";
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TableWriter::to_csv() const {
  auto render_row = [](const std::vector<std::string>& row) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& cell : row) cells.push_back(csv_escape(cell));
    return join(cells, ",") + "\n";
  };
  std::string out = render_row(header_);
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TableWriter::print(std::ostream& os) const { os << to_text(); }

}  // namespace scl
