#include "support/strings.hpp"

#include <cctype>
#include <cstdio>

#include "support/error.hpp"

namespace scl {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double value, int digits) {
  SCL_CHECK(digits >= 0 && digits <= 17, "digits out of range");
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string format_speedup(double value) { return format_fixed(value, 2) + "x"; }

std::string format_thousands(long long value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return negative ? "-" + out : out;
}

std::string replace_all(std::string text, std::string_view from,
                        std::string_view to) {
  SCL_CHECK(!from.empty(), "replace_all: empty pattern");
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

std::string repeat(std::string_view unit, std::size_t count) {
  std::string out;
  out.reserve(unit.size() * count);
  for (std::size_t i = 0; i < count; ++i) out.append(unit);
  return out;
}

std::size_t count_occurrences(std::string_view haystack,
                              std::string_view needle) {
  if (needle.empty()) return 0;
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string_view::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

}  // namespace scl
