// Deterministic pseudo-random number generation (splitmix64 core).
//
// The framework never consumes OS entropy: every randomized test, workload
// generator and fuzz sweep derives from an explicit seed so runs reproduce.
#pragma once

#include <cstdint>

namespace scl {

/// splitmix64: tiny, fast, well-distributed 64-bit generator.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  constexpr std::uint64_t next_u64() {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * uniform_double();
  }

 private:
  std::uint64_t state_;
};

}  // namespace scl
