// Shared JSON writing and (minimal) reading.
//
// Every JSON document the framework emits — diagnostics (--analyze-json),
// Chrome-tracing exports, synthesis artifacts, service statistics — goes
// through JsonWriter, so string escaping and structural bookkeeping live in
// exactly one place. The writer is a forward-only streaming builder with a
// container stack; it throws scl::ContractError on structural misuse
// (value without key inside an object, unbalanced end_*, ...), which turns
// malformed-emitter bugs into loud test failures instead of corrupt files.
//
// Two surface styles:
//   * kSpaced  — ", " between elements, ": " after keys. The diagnostics
//                schema (docs/ARCHITECTURE.md §8) is rendered this way.
//   * kCompact — no whitespace at all; used for trace exports and
//                artifacts where bytes matter.
//
// JsonValue is the matching reader: a small recursive-descent parser for
// the subset of JSON the framework itself produces (plus standard escapes
// and \uXXXX for the Basic Multilingual Plane). It keeps numbers as raw
// text so integer payloads round-trip exactly; callers pick as_int64() or
// as_double(). It is the loader for stencild job manifests and stored
// synthesis artifacts — both of which are machine-written, so the parser
// favors strictness over leniency (trailing garbage is an error).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace scl::support {

/// Escapes `text` for inclusion inside a JSON string literal.
std::string json_escape(const std::string& text);

enum class JsonStyle { kCompact, kSpaced };

class JsonWriter {
 public:
  explicit JsonWriter(JsonStyle style = JsonStyle::kSpaced);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts the next member of the enclosing object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) {
    return value(std::string_view(v));
  }
  JsonWriter& value(bool v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  /// Shortest-round-trip formatting ("%.17g"): deserializing reproduces
  /// the bit pattern, which the artifact determinism contract relies on.
  JsonWriter& value(double v);
  /// Fixed-point formatting for human-facing statistics documents.
  JsonWriter& value_fixed(double v, int digits);
  JsonWriter& null_value();

  /// Splices a pre-serialized JSON fragment as the next value. The
  /// fragment is trusted verbatim.
  JsonWriter& raw(std::string_view json);

  /// Convenience: key(name) + value(v).
  template <typename V>
  JsonWriter& member(std::string_view name, const V& v) {
    key(name);
    return value(v);
  }

  /// Finishes the document; throws if containers are still open.
  std::string take();

 private:
  void begin_value(bool is_key = false);

  struct Scope {
    char kind;  ///< '{' or '['
    bool after_key = false;
    std::int64_t count = 0;
  };

  JsonStyle style_;
  std::string out_;
  std::vector<Scope> stack_;
  bool root_done_ = false;
};

/// Parsed JSON document node. Numbers keep their raw spelling; strings are
/// unescaped. Accessors throw scl::Error on kind mismatches so artifact /
/// manifest loaders fail with a message instead of reading garbage.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete JSON document (trailing whitespace allowed,
  /// trailing garbage is an error). Throws scl::Error with an offset on
  /// malformed input.
  static JsonValue parse(std::string_view text);

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  bool as_bool() const;
  std::int64_t as_int64() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Array accessors.
  std::size_t size() const;
  const JsonValue& operator[](std::size_t i) const;
  const std::vector<JsonValue>& items() const;

  /// Object accessors. `find` returns nullptr when absent; `at` throws.
  const JsonValue* find(std::string_view key) const;
  const JsonValue& at(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Defaulted lookups for optional object members.
  std::string get_string(std::string_view key, std::string fallback) const;
  std::int64_t get_int64(std::string_view key, std::int64_t fallback) const;
  double get_double(std::string_view key, double fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;

 private:
  struct Parser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  ///< raw number text or unescaped string
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace scl::support
