#include "support/shutdown.hpp"

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

#include "support/error.hpp"

namespace scl::support {

ShutdownLatch::ShutdownLatch() {
  if (::pipe(pipe_fds_) != 0) {
    throw Error("ShutdownLatch: cannot create self-pipe");
  }
  for (const int fd : pipe_fds_) {
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
  }
}

ShutdownLatch::~ShutdownLatch() {
  for (const int fd : pipe_fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void ShutdownLatch::trigger() noexcept {
  // exchange() makes the wake-byte write one-shot: repeated signals can
  // never fill the (non-blocking) pipe, and the write side stays
  // readable until reset() drains it.
  if (triggered_.exchange(true, std::memory_order_acq_rel)) return;
  const char byte = 1;
  // The return value is deliberately unused: on the impossible full-pipe
  // path the atomic flag already carries the state.
  [[maybe_unused]] const auto n = ::write(pipe_fds_[1], &byte, 1);
}

void ShutdownLatch::reset() noexcept {
  char drain[16];
  while (::read(pipe_fds_[0], drain, sizeof drain) > 0) {
  }
  triggered_.store(false, std::memory_order_release);
}

ShutdownLatch& ShutdownLatch::instance() {
  // Leaked on purpose: signal handlers may fire during static
  // destruction and must still find a live latch.
  static ShutdownLatch* latch = new ShutdownLatch();
  return *latch;
}

namespace {
extern "C" void scl_shutdown_signal_handler(int) {
  ShutdownLatch::instance().trigger();
}
}  // namespace

void ShutdownLatch::install(std::initializer_list<int> signals) {
  instance();  // force construction outside any handler
  struct sigaction action = {};
  action.sa_handler = scl_shutdown_signal_handler;
  ::sigemptyset(&action.sa_mask);
  for (const int signo : signals) {
    ::sigaction(signo, &action, nullptr);
  }
  // Broken-pipe writes (a client that hung up mid-drain) must surface as
  // EPIPE on the write call, not kill the process.
  ::signal(SIGPIPE, SIG_IGN);
}

}  // namespace scl::support
