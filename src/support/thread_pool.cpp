#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "support/error.hpp"
#include "support/observability/observability.hpp"

namespace scl {

namespace {

thread_local bool tls_in_worker = false;
thread_local int tls_worker_slot = 0;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

support::obs::Gauge& queue_depth_gauge() {
  static auto& gauge = support::obs::metrics().gauge(
      "scl_pool_queue_depth", "fire-and-forget jobs waiting in the pool");
  return gauge;
}

support::obs::Histogram& task_wait_histogram() {
  static auto& histogram = support::obs::metrics().histogram(
      "scl_pool_task_wait_ms", support::obs::default_latency_ms_buckets(),
      "submit-to-start latency of fire-and-forget pool jobs");
  return histogram;
}

support::obs::Histogram& task_run_histogram() {
  static auto& histogram = support::obs::metrics().histogram(
      "scl_pool_task_run_ms", support::obs::default_latency_ms_buckets(),
      "execution time of fire-and-forget pool jobs");
  return histogram;
}

support::obs::Histogram& parallel_for_histogram() {
  static auto& histogram = support::obs::metrics().histogram(
      "scl_pool_parallel_for_ms",
      support::obs::default_latency_ms_buckets(),
      "wall time of top-level parallel_for calls (queue wait included)");
  return histogram;
}

/// Shared state of one parallel_for / parallel_for_chunked: the index
/// cursor (advanced in grain-sized strides), the helper completion count,
/// and the lowest-begin exception.
struct LoopState {
  std::int64_t n = 0;
  std::int64_t grain = 1;
  const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
  std::atomic<std::int64_t> cursor{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  int helpers_pending = 0;
  std::int64_t error_index = std::numeric_limits<std::int64_t>::max();
  std::exception_ptr error;

  void drain() {
    while (true) {
      const std::int64_t begin =
          cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::int64_t end = std::min<std::int64_t>(begin + grain, n);
      try {
        (*fn)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (begin < error_index) {
          error_index = begin;
          error = std::current_exception();
        }
      }
    }
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  bool stop = false;

  void worker_main(int slot) {
    tls_in_worker = true;
    tls_worker_slot = slot;
    while (true) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stop || !queue.empty(); });
        if (queue.empty()) {
          if (stop) return;
          continue;
        }
        job = std::move(queue.front());
        queue.pop_front();
        if (support::obs::enabled()) {
          queue_depth_gauge().set(static_cast<double>(queue.size()));
        }
      }
      // Jobs are fire-and-forget at this layer: parallel_for helpers
      // report exceptions through LoopState, submit() jobs own their
      // error channel (serve::Scheduler completes a promise). An escaping
      // exception would std::terminate the process, so swallow
      // defensively.
      try {
        job();
      } catch (...) {
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(new Impl), threads_(threads) {
  SCL_CHECK(threads >= 1, "thread pool needs at least one thread");
  impl_->workers.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) {
    impl_->workers.emplace_back([this, t] { impl_->worker_main(t); });
  }
}

ThreadPool::~ThreadPool() {
  shutdown();
  delete impl_;
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& worker : impl_->workers) {
    if (worker.joinable()) worker.join();
  }
}

int ThreadPool::resolve_threads(int requested) {
  // Oversubscription beyond this never helps the DSE and would fail
  // thread creation with an obscure system error; clamp instead.
  constexpr int kMaxThreads = 256;
  if (requested >= 1) return std::min(requested, kMaxThreads);
  if (const char* env = std::getenv("SCL_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<int>(std::min<long>(parsed, kMaxThreads));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

bool ThreadPool::in_worker() { return tls_in_worker; }

void ThreadPool::submit(std::function<void()> job) {
  SCL_CHECK(job != nullptr, "submit needs a callable job");
  if (threads_ <= 1) {
    throw Error(
        "ThreadPool::submit needs at least one worker thread "
        "(thread_count() >= 2); a 1-thread pool only supports "
        "parallel_for");
  }
  if (support::obs::enabled()) {
    // Queue-time and run-time land in the global histograms; the gauge
    // tracks instantaneous depth (refreshed again on dequeue).
    job = [inner = std::move(job),
           enqueued = std::chrono::steady_clock::now()] {
      task_wait_histogram().observe(ms_since(enqueued));
      const auto started = std::chrono::steady_clock::now();
      inner();
      task_run_histogram().observe(ms_since(started));
    };
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    // The enqueue-during-shutdown race: once `stop` is set the workers
    // finish the jobs already queued and exit. A job slipped in behind
    // them would sit in the queue forever and its completion signal
    // (promise, latch, ...) would never fire — so fail loudly instead.
    if (impl_->stop) {
      throw Error("ThreadPool::submit after shutdown began");
    }
    impl_->queue.emplace_back(std::move(job));
    if (support::obs::enabled()) {
      queue_depth_gauge().set(static_cast<double>(impl_->queue.size()));
    }
  }
  impl_->work_cv.notify_one();
}

int ThreadPool::worker_slot() { return tls_worker_slot; }

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& fn) {
  parallel_for_chunked(n, 1,
                       [&fn](std::int64_t begin, std::int64_t end) {
                         for (std::int64_t i = begin; i < end; ++i) fn(i);
                       });
}

void ThreadPool::parallel_for_chunked(
    std::int64_t n, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  SCL_CHECK(grain >= 1, "parallel_for_chunked needs grain >= 1");
  const std::int64_t blocks = (n + grain - 1) / grain;
  if (threads_ <= 1 || blocks == 1 || tls_in_worker) {
    // Serial fallback — also the nested case: a parallel_for from inside
    // pool work must not wait on the pool it occupies. One contiguous
    // call keeps per-block bookkeeping (counter flushes etc.) minimal.
    fn(0, n);
    return;
  }

  const bool observe = support::obs::enabled();
  const auto loop_start = observe ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};

  LoopState state;
  state.n = n;
  state.grain = grain;
  state.fn = &fn;
  const int helpers =
      static_cast<int>(std::min<std::int64_t>(threads_ - 1, blocks - 1));
  state.helpers_pending = helpers;
  bool pool_down = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    pool_down = impl_->stop;
    for (int h = 0; !pool_down && h < helpers; ++h) {
      impl_->queue.emplace_back([&state] {
        state.drain();
        std::lock_guard<std::mutex> state_lock(state.mutex);
        if (--state.helpers_pending == 0) state.done_cv.notify_one();
      });
    }
  }
  if (pool_down) {
    // shutdown() already ran: no worker would ever pick the helper jobs
    // up, so fall back to the serial loop.
    fn(0, n);
    return;
  }
  impl_->work_cv.notify_all();

  // The submitting thread drains too; flag it so nested calls serialize.
  tls_in_worker = true;
  state.drain();
  tls_in_worker = false;

  std::unique_lock<std::mutex> lock(state.mutex);
  state.done_cv.wait(lock, [&] { return state.helpers_pending == 0; });
  if (observe) parallel_for_histogram().observe(ms_since(loop_start));
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace scl
