// Tests for the coalescing async scheduler (serve/scheduler.hpp).
//
// Synchronization discipline: gates are std::latch (a pump parked on a
// latch is *provably* parked once `started` trips — no sleep can race),
// and deadline tests spin a clock condition past a timestamp captured
// after submit instead of sleeping and hoping the scheduler caught up.
#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace scl::serve {
namespace {

using namespace std::chrono_literals;

/// Busy-waits until steady_clock is strictly past `when`: every queue
/// deadline captured at or before the call site's submit has then
/// objectively expired.
void spin_past(std::chrono::steady_clock::time_point when) {
  while (std::chrono::steady_clock::now() <= when) {
    std::this_thread::yield();
  }
}

TEST(SchedulerTest, RunsSubmittedWork) {
  Scheduler<int> scheduler(2);
  auto submission = scheduler.submit("", [] { return 41 + 1; });
  EXPECT_FALSE(submission.coalesced);
  EXPECT_EQ(submission.future.get(), 42);
}

TEST(SchedulerTest, PropagatesExceptionsThroughTheFuture) {
  Scheduler<int> scheduler(2);
  auto submission =
      scheduler.submit("", []() -> int { throw Error("boom"); });
  EXPECT_THROW(submission.future.get(), Error);
  scheduler.drain();
  EXPECT_EQ(scheduler.stats().failed, 1);
}

TEST(SchedulerTest, CoalescesIdenticalConcurrentRequests) {
  Scheduler<int> scheduler(4);
  std::atomic<int> executions{0};
  std::latch release{1};

  // First request under the key parks in a pump until released, so the
  // next N requests are guaranteed to find it in flight.
  auto first = scheduler.submit("stencil-key", [&] {
    ++executions;
    release.wait();
    return 7;
  });
  EXPECT_FALSE(first.coalesced);

  constexpr int kTwins = 16;
  std::vector<Scheduler<int>::Submission> twins;
  for (int i = 0; i < kTwins; ++i) {
    twins.push_back(scheduler.submit("stencil-key", [&] {
      ++executions;
      return -1;  // must never run
    }));
  }
  release.count_down();

  for (auto& twin : twins) {
    EXPECT_TRUE(twin.coalesced);
    EXPECT_EQ(twin.future.get(), 7);
  }
  EXPECT_EQ(first.future.get(), 7);
  EXPECT_EQ(executions.load(), 1) << "N identical requests, 1 execution";

  // The future is fulfilled before the pump's bookkeeping; drain() is
  // the barrier that makes the stats read race-free.
  scheduler.drain();
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, kTwins + 1);
  EXPECT_EQ(stats.coalesced, kTwins);
  EXPECT_EQ(stats.executed, 1);
}

TEST(SchedulerTest, EmptyKeyNeverCoalesces) {
  Scheduler<int> scheduler(2);
  std::atomic<int> executions{0};
  std::vector<Scheduler<int>::Submission> submissions;
  for (int i = 0; i < 8; ++i) {
    submissions.push_back(scheduler.submit("", [&] {
      return ++executions;
    }));
  }
  for (auto& submission : submissions) {
    EXPECT_FALSE(submission.coalesced);
    submission.future.get();
  }
  EXPECT_EQ(executions.load(), 8);
}

TEST(SchedulerTest, DistinctKeysDoNotCoalesce) {
  Scheduler<int> scheduler(2);
  auto a = scheduler.submit("key-a", [] { return 1; });
  auto b = scheduler.submit("key-b", [] { return 2; });
  EXPECT_FALSE(b.coalesced);
  EXPECT_EQ(a.future.get(), 1);
  EXPECT_EQ(b.future.get(), 2);
}

TEST(SchedulerTest, CompletedKeyRunsAgain) {
  // Coalescing spans the in-flight window only; a key resubmitted after
  // completion is fresh work (the artifact store handles caching).
  Scheduler<int> scheduler(2);
  std::atomic<int> executions{0};
  EXPECT_EQ(scheduler.submit("key", [&] { return ++executions; })
                .future.get(),
            1);
  scheduler.drain();
  EXPECT_EQ(scheduler.submit("key", [&] { return ++executions; })
                .future.get(),
            2);
}

TEST(SchedulerTest, HigherPriorityDispatchesFirst) {
  // One pump, blocked; everything else queues behind it so dispatch
  // order is fully observable.
  Scheduler<int> scheduler(1);
  std::latch started{1};
  std::latch release{1};
  std::mutex order_mutex;
  std::vector<int> order;
  auto note = [&](int id) {
    std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(id);
    return id;
  };

  auto gate = scheduler.submit("", [&] {
    started.count_down();
    release.wait();
    return 0;
  });
  started.wait();  // the single pump is now provably occupied
  auto low1 = scheduler.submit("", [&] { return note(1); }, /*priority=*/0);
  auto high = scheduler.submit("", [&] { return note(2); }, /*priority=*/5);
  auto low2 = scheduler.submit("", [&] { return note(3); }, /*priority=*/0);
  release.count_down();
  gate.future.get();
  low1.future.get();
  high.future.get();
  low2.future.get();

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2) << "priority 5 before priority 0";
  EXPECT_EQ(order[1], 1) << "FIFO within a priority";
  EXPECT_EQ(order[2], 3);
}

TEST(SchedulerTest, QueueTimeoutExpiresRequests) {
  Scheduler<int> scheduler(1);
  std::latch started{1};
  std::latch release{1};
  auto gate = scheduler.submit("", [&] {
    started.count_down();
    release.wait();
    return 0;
  });
  started.wait();
  auto doomed = scheduler.submit(
      "doomed", [] { return 1; }, /*priority=*/0, /*timeout=*/1ms);
  // Captured *after* submit, so the internal deadline is <= this one;
  // once we spin past it the request has objectively expired.
  spin_past(std::chrono::steady_clock::now() + 1ms);
  release.count_down();
  gate.future.get();
  EXPECT_THROW(doomed.future.get(), Error);
  scheduler.drain();
  EXPECT_EQ(scheduler.stats().timed_out, 1);
}

TEST(SchedulerTest, ShedExpiredFailsOnlyOverDeadlineQueuedWork) {
  Scheduler<int> scheduler(1);
  std::latch started{1};
  std::latch release{1};
  auto gate = scheduler.submit("", [&] {
    started.count_down();
    release.wait();
    return 0;
  });
  started.wait();
  auto doomed = scheduler.submit(
      "doomed", [] { return 1; }, /*priority=*/0, /*timeout=*/1ms);
  auto healthy = scheduler.submit(
      "healthy", [] { return 2; }, /*priority=*/0, /*timeout=*/60s);
  auto eternal = scheduler.submit("eternal", [] { return 3; });
  spin_past(std::chrono::steady_clock::now() + 1ms);

  // Load shedding is selective: only the over-deadline request dies; a
  // far-future deadline and a no-deadline request ride out the purge.
  EXPECT_EQ(scheduler.shed_expired(), 1u);
  EXPECT_EQ(scheduler.shed_expired(), 0u) << "idempotent once shed";

  release.count_down();
  gate.future.get();
  EXPECT_THROW(doomed.future.get(), Error);
  EXPECT_EQ(healthy.future.get(), 2);
  EXPECT_EQ(eternal.future.get(), 3);
  scheduler.drain();
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.timed_out, 0)
      << "shed work is accounted as shed, not timed out";
}

TEST(SchedulerTest, ShedReleasesTheCoalescingKey) {
  Scheduler<int> scheduler(1);
  std::latch started{1};
  std::latch release{1};
  auto gate = scheduler.submit("", [&] {
    started.count_down();
    release.wait();
    return 0;
  });
  started.wait();
  auto doomed = scheduler.submit(
      "key", [] { return 1; }, /*priority=*/0, /*timeout=*/1ms);
  spin_past(std::chrono::steady_clock::now() + 1ms);
  ASSERT_EQ(scheduler.shed_expired(), 1u);

  // The key is free again: a resubmit is fresh work, not a twin riding
  // a corpse.
  auto retry = scheduler.submit("key", [] { return 2; });
  EXPECT_FALSE(retry.coalesced);
  release.count_down();
  gate.future.get();
  EXPECT_THROW(doomed.future.get(), Error);
  EXPECT_EQ(retry.future.get(), 2);
}

TEST(SchedulerTest, DepthCountsQueuedAndRunningWork) {
  Scheduler<int> scheduler(1);
  EXPECT_EQ(scheduler.depth(), 0);
  std::latch started{1};
  std::latch release{1};
  auto gate = scheduler.submit("", [&] {
    started.count_down();
    release.wait();
    return 0;
  });
  started.wait();
  auto queued = scheduler.submit("", [] { return 1; });
  EXPECT_EQ(scheduler.depth(), 2) << "1 running + 1 queued";
  release.count_down();
  gate.future.get();
  queued.future.get();
  scheduler.drain();
  EXPECT_EQ(scheduler.depth(), 0);
}

TEST(SchedulerTest, DrainWaitsForAllWork) {
  Scheduler<int> scheduler(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    scheduler.submit("", [&] { return ++done; });
  }
  scheduler.drain();
  EXPECT_EQ(done.load(), 32);
}

TEST(SchedulerTest, ShutdownDrainsQueuedWork) {
  std::atomic<int> done{0};
  std::vector<std::shared_future<int>> futures;
  {
    Scheduler<int> scheduler(2);
    for (int i = 0; i < 16; ++i) {
      futures.push_back(scheduler.submit("", [&] { return ++done; }).future);
    }
    // Destructor shuts down gracefully: queued work still runs.
  }
  EXPECT_EQ(done.load(), 16);
  for (auto& future : futures) EXPECT_GT(future.get(), 0);
}

TEST(SchedulerTest, SubmitAfterShutdownThrows) {
  Scheduler<int> scheduler(2);
  scheduler.shutdown();
  EXPECT_THROW(scheduler.submit("", [] { return 1; }), Error);
}

TEST(SchedulerTest, ShutdownIsIdempotent) {
  Scheduler<int> scheduler(2);
  scheduler.shutdown();
  scheduler.shutdown();  // second call is a no-op
}

TEST(SchedulerTest, StressManyKeysManyTwins) {
  Scheduler<int> scheduler(8);
  std::atomic<int> executions{0};
  std::vector<Scheduler<int>::Submission> submissions;
  for (int round = 0; round < 50; ++round) {
    const std::string key = "key-" + std::to_string(round % 10);
    submissions.push_back(scheduler.submit(key, [&] {
      return ++executions;
    }));
  }
  for (auto& submission : submissions) {
    EXPECT_GT(submission.future.get(), 0);
  }
  scheduler.drain();
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.executed + stats.coalesced, 50);
  EXPECT_EQ(executions.load(), stats.executed);
}

}  // namespace
}  // namespace scl::serve
