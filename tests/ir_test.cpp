// Tests for the pass-4 kernel-IR verifier (analysis/ir/): lowering the
// emitted OpenCL subset, interval evaluation of IR expressions, golden
// SCL4xx diagnostics on seeded-defect mini-kernels and on tampered real
// emitter output, the analyzer-clean guarantee over the paper suite, and
// the DSE-optimum invariance of the opt-in deep per-candidate mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

#include "analysis/ir/dataflow.hpp"
#include "analysis/ir/ir.hpp"
#include "analysis/ir/lower.hpp"
#include "codegen/opencl_emitter.hpp"
#include "core/optimizer.hpp"
#include "core/verify.hpp"
#include "fpga/device.hpp"
#include "sim/design.hpp"
#include "stencil/kernels.hpp"
#include "support/diagnostics.hpp"
#include "support/error.hpp"

namespace scl::analysis::ir {
namespace {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;
using scl::support::DiagnosticEngine;
using scl::support::Severity;

bool has_code(const DiagnosticEngine& diags, const char* code) {
  const auto& all = diags.diagnostics();
  return std::any_of(all.begin(), all.end(),
                     [&](const auto& d) { return d.code == code; });
}

/// A one-dimensional runtime context for the hand-written mini-kernels:
/// grid of 64 cells swept in regions of 32, pass depth 4.
IrContext mini_ctx() {
  IrContext ctx;
  ctx.dims = 1;
  ctx.grid_extents = {64, 1, 1};
  ctx.region_extents = {32, 1, 1};
  ctx.fused_iterations = 4;
  ctx.iterations = 8;
  return ctx;
}

DiagnosticEngine analyze(const std::string& source) {
  DiagnosticEngine diags;
  analyze_kernel_source(source, mini_ctx(), &diags);
  return diags;
}

/// The shared mini-kernel prologue: one input, one output, the host's
/// sweep parameters.
constexpr const char* kParams =
    "(__global const float* restrict A_in, __global float* restrict A_out, "
    "const int r0, const int pass_h)";

// --- lowering ---------------------------------------------------------------

TEST(IrLowerTest, LowersPipesKernelsParamsAndLocals) {
  const std::string src =
      "pipe float p_k0_k1 __attribute__((xcl_reqd_pipe_depth(512)));\n"
      "__kernel __attribute__((reqd_work_group_size(1, 1, 1)))\n"
      "void stencil_k0" +
      std::string(kParams) +
      " {\n"
      "  __local float buf[24];\n"
      "  for (int i = 0; i < 8; ++i) {\n"
      "    buf[i] = A_in[i];\n"
      "  }\n"
      "  for (int it = 1; it <= pass_h; ++it) {\n"
      "    float v = buf[0];\n"
      "    write_pipe_block(p_k0_k1, &v);\n"
      "    barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  }\n"
      "  A_out[r0] = buf[1];\n"
      "}\n";
  const Module module = lower_kernel_source(src);
  EXPECT_TRUE(module.unmodeled.empty());
  ASSERT_EQ(module.pipes.size(), 1u);
  EXPECT_EQ(module.pipes[0].name, "p_k0_k1");
  EXPECT_EQ(module.pipes[0].depth, 512);
  ASSERT_EQ(module.kernels.size(), 1u);
  const Kernel& k = module.kernels[0];
  EXPECT_EQ(k.name, "stencil_k0");
  EXPECT_EQ(k.global_inputs, std::vector<std::string>{"A_in"});
  EXPECT_EQ(k.global_outputs, std::vector<std::string>{"A_out"});
  EXPECT_EQ(k.int_params, (std::vector<std::string>{"r0", "pass_h"}));
  ASSERT_EQ(k.locals.size(), 1u);
  EXPECT_EQ(k.locals[0].name, "buf");
  ASSERT_EQ(k.body.size(), 3u);
  EXPECT_EQ(k.body[0].kind, Stmt::Kind::kLoop);
  EXPECT_FALSE(k.body[0].inclusive);
  EXPECT_EQ(k.body[1].kind, Stmt::Kind::kLoop);
  EXPECT_TRUE(k.body[1].inclusive);  // `it <= pass_h`
  ASSERT_EQ(k.body[1].body.size(), 3u);
  EXPECT_EQ(k.body[1].body[0].kind, Stmt::Kind::kStore);  // carrier decl
  EXPECT_EQ(k.body[1].body[1].kind, Stmt::Kind::kPipeWrite);
  EXPECT_EQ(k.body[1].body[1].pipe, "p_k0_k1");
  EXPECT_EQ(k.body[1].body[2].kind, Stmt::Kind::kBarrier);
  EXPECT_EQ(k.body[2].kind, Stmt::Kind::kStore);
  ASSERT_TRUE(k.body[2].store.has_value());
  EXPECT_EQ(k.body[2].store->array, "A_out");
  ASSERT_EQ(k.body[2].loads.size(), 1u);
  EXPECT_EQ(k.body[2].loads[0].array, "buf");
}

TEST(IrLowerTest, ExpandsFunctionLikeMacrosAtUseSite) {
  const std::string src =
      "#define IDX(i) ((i) * 2 + 1)\n"
      "#define EXT 24\n"
      "__kernel void k" +
      std::string(kParams) +
      " {\n"
      "  __local float buf[EXT];\n"
      "  for (int i = 0; i < 4; ++i) {\n"
      "    buf[IDX(i)] = A_in[i];\n"
      "  }\n"
      "  A_out[0] = buf[1];\n"
      "}\n";
  const Module module = lower_kernel_source(src);
  ASSERT_EQ(module.kernels.size(), 1u);
  const Kernel& k = module.kernels[0];
  const Interval size = eval_expr(k.locals[0].size, IntervalEnv{});
  EXPECT_EQ(size, Interval::point(24));
  // buf[IDX(i)] with i = 3 must evaluate to 7 after expansion.
  IntervalEnv env;
  env["i"] = Interval::point(3);
  const Stmt& store = k.body[0].body[0];
  ASSERT_TRUE(store.store.has_value());
  EXPECT_EQ(eval_expr(store.store->index, env), Interval::point(7));
}

TEST(IrLowerTest, UnmodeledStatementsAreRecordedNotFatal) {
  const std::string src =
      "__kernel void k" + std::string(kParams) +
      " {\n"
      "  int z = 3;\n"
      "  A_out[0] = A_in[0];\n"
      "}\n";
  const Module module = lower_kernel_source(src);
  ASSERT_EQ(module.unmodeled.size(), 1u);
  ASSERT_EQ(module.kernels.size(), 1u);
  // The store after the unmodeled statement is still lowered.
  EXPECT_EQ(module.kernels[0].body.back().kind, Stmt::Kind::kStore);
}

TEST(IrLowerTest, StructurallyBrokenSourceThrows) {
  EXPECT_THROW(lower_kernel_source("__kernel void k("), Error);
  EXPECT_THROW(
      lower_kernel_source("__kernel void k() { for (int i = 0; i > 1; --i) "
                          "{ } }"),
      Error);  // unsupported loop condition
}

// --- expression evaluation --------------------------------------------------

TEST(IrExprTest, EvaluatesWithIntervalSemantics) {
  IntervalEnv env;
  env["it"] = Interval{1, 4};
  const Module module = lower_kernel_source(
      "__kernel void k(const int it) { __local float b[64]; "
      "b[max(0, it * 3 - 2)] = 1.0f; }");
  const Stmt& store = module.kernels[0].body[0];
  EXPECT_EQ(eval_expr(store.store->index, env), (Interval{1, 10}));
  EXPECT_THROW(eval_expr(Expr::var("mystery"), env), Error);
}

TEST(IrExprTest, FlagsInt32OverflowWithoutSaturatingInt64) {
  const Expr big = Expr::make(
      Expr::Kind::kMul,
      {Expr::literal(1'000'000'000), Expr::literal(1'000'000)});
  bool overflow = false;
  const Interval v = eval_expr(big, IntervalEnv{}, &overflow);
  EXPECT_TRUE(overflow);
  EXPECT_EQ(v, Interval::point(1'000'000'000'000'000));
  overflow = false;
  eval_expr(Expr::literal(1'000'000), IntervalEnv{}, &overflow);
  EXPECT_FALSE(overflow);
}

TEST(IrExprTest, Cast64WidensTheResultButNotTheOperands) {
  // (long)(a) * b is 64-bit device arithmetic: no int32 flag even though
  // the product is huge.
  const Expr widened = Expr::make(
      Expr::Kind::kMul,
      {Expr::make(Expr::Kind::kCast64, {Expr::literal(1'000'000'000)}),
       Expr::literal(1'000'000)});
  bool overflow = false;
  EXPECT_EQ(eval_expr(widened, IntervalEnv{}, &overflow),
            Interval::point(1'000'000'000'000'000));
  EXPECT_FALSE(overflow);

  // But arithmetic *inside* the cast argument is still `int` on the
  // device and still checked.
  const Expr inner_wraps = Expr::make(
      Expr::Kind::kCast64,
      {Expr::make(Expr::Kind::kMul, {Expr::literal(1'000'000'000),
                                     Expr::literal(1'000'000)})});
  overflow = false;
  eval_expr(inner_wraps, IntervalEnv{}, &overflow);
  EXPECT_TRUE(overflow);
}

// --- golden SCL4xx diagnostics on seeded-defect mini-kernels ----------------

TEST(IrDataflowTest, CleanMiniKernelHasNoDiagnostics) {
  const DiagnosticEngine diags = analyze(
      "__kernel void k" + std::string(kParams) +
      " {\n"
      "  __local float buf[64];\n"
      "  for (int i = 0; i < 16; ++i) { buf[i] = A_in[i]; }\n"
      "  for (int i = 0; i < 16; ++i) { A_out[i] = buf[i]; }\n"
      "}\n");
  EXPECT_TRUE(diags.empty()) << diags.render_text();
}

TEST(IrDataflowTest, Scl401LocalBufferOverrun) {
  // Off-by-one: `<= 16` stores index 16 into a 16-element buffer.
  const DiagnosticEngine diags = analyze(
      "__kernel void k" + std::string(kParams) +
      " {\n"
      "  __local float buf[16];\n"
      "  for (int i = 0; i <= 16; ++i) { buf[i] = A_in[i]; }\n"
      "  for (int i = 0; i < 16; ++i) { A_out[i] = buf[i]; }\n"
      "}\n");
  EXPECT_TRUE(has_code(diags, "SCL401"));
  EXPECT_TRUE(diags.has_errors());
}

TEST(IrDataflowTest, Scl402GlobalIndexEscapesGrid) {
  // The mini context's grid holds 64 cells; index 64 is out of range.
  const DiagnosticEngine diags = analyze(
      "__kernel void k" + std::string(kParams) +
      " {\n"
      "  for (int i = 0; i < 65; ++i) { A_out[i] = A_in[0]; }\n"
      "}\n");
  EXPECT_TRUE(has_code(diags, "SCL402"));
  EXPECT_TRUE(diags.has_errors());
}

TEST(IrDataflowTest, Scl403UninitializedLocalRead) {
  // Stores cover [0, 8); the loads read [8, 16) — provably disjoint.
  const DiagnosticEngine diags = analyze(
      "__kernel void k" + std::string(kParams) +
      " {\n"
      "  __local float buf[16];\n"
      "  for (int i = 0; i < 8; ++i) { buf[i] = A_in[i]; }\n"
      "  for (int i = 0; i < 8; ++i) { A_out[i] = buf[i + 8]; }\n"
      "}\n");
  EXPECT_TRUE(has_code(diags, "SCL403"));
  EXPECT_FALSE(has_code(diags, "SCL401")) << diags.render_text();
}

TEST(IrDataflowTest, Scl404DeadLocalStores) {
  const DiagnosticEngine diags = analyze(
      "__kernel void k" + std::string(kParams) +
      " {\n"
      "  __local float buf[16];\n"
      "  for (int i = 0; i < 16; ++i) { buf[i] = A_in[i]; }\n"
      "  for (int i = 0; i < 16; ++i) { A_out[i] = A_in[i]; }\n"
      "}\n");
  EXPECT_TRUE(has_code(diags, "SCL404"));
}

TEST(IrDataflowTest, Scl405Int32IndexOverflow) {
  const DiagnosticEngine diags = analyze(
      "__kernel void k" + std::string(kParams) +
      " {\n"
      "  for (int i = 0; i < 8; ++i) { A_out[i * 1000000000] = A_in[0]; }\n"
      "}\n");
  EXPECT_TRUE(has_code(diags, "SCL405"));
}

TEST(IrDataflowTest, Scl406PipeTokenImbalance) {
  // The writer pushes 4 tokens per pass, the reader drains 3.
  const std::string src =
      "pipe float p __attribute__((xcl_reqd_pipe_depth(16)));\n"
      "__kernel void k0" + std::string(kParams) +
      " {\n"
      "  for (int i = 0; i < 4; ++i) {\n"
      "    float v = A_in[i];\n"
      "    write_pipe_block(p, &v);\n"
      "  }\n"
      "  A_out[0] = A_in[0];\n"
      "}\n"
      "__kernel void k1" + std::string(kParams) +
      " {\n"
      "  for (int i = 0; i < 3; ++i) {\n"
      "    float v;\n"
      "    read_pipe_block(p, &v);\n"
      "  }\n"
      "  A_out[1] = A_in[1];\n"
      "}\n";
  const DiagnosticEngine diags = analyze(src);
  EXPECT_TRUE(has_code(diags, "SCL406"));

  // Balancing the trip counts clears the diagnostic.
  std::string balanced = src;
  balanced.replace(balanced.find("i < 3"), 5, "i < 4");
  EXPECT_FALSE(has_code(analyze(balanced), "SCL406"));
}

TEST(IrDataflowTest, Scl407ProvablyEmptyLoop) {
  const DiagnosticEngine diags = analyze(
      "__kernel void k" + std::string(kParams) +
      " {\n"
      "  __local float buf[16];\n"
      "  for (int i = 8; i < 4; ++i) { buf[i] = A_in[i]; }\n"
      "  A_out[0] = A_in[0];\n"
      "}\n");
  EXPECT_TRUE(has_code(diags, "SCL407"));
  EXPECT_EQ(diags.error_count(), 0) << diags.render_text();
}

TEST(IrDataflowTest, Scl408OutputNeverStored) {
  const DiagnosticEngine diags = analyze(
      "__kernel void k" + std::string(kParams) +
      " {\n"
      "  __local float buf[16];\n"
      "  for (int i = 0; i < 16; ++i) { buf[i] = A_in[i]; }\n"
      "}\n");
  EXPECT_TRUE(has_code(diags, "SCL408"));
}

TEST(IrDataflowTest, Scl409UnmodeledConstructWarns) {
  const DiagnosticEngine diags = analyze(
      "__kernel void k" + std::string(kParams) +
      " {\n"
      "  int z = 3;\n"
      "  A_out[0] = A_in[0];\n"
      "}\n");
  EXPECT_TRUE(has_code(diags, "SCL409"));
  EXPECT_EQ(diags.error_count(), 0);
}

TEST(IrDataflowTest, Scl409LoweringFailureIsAnError) {
  const DiagnosticEngine diags = analyze("__kernel void k(");
  EXPECT_TRUE(has_code(diags, "SCL409"));
  EXPECT_TRUE(diags.has_errors());
}

// --- tampered real emitter output -------------------------------------------

struct Emitted {
  scl::stencil::StencilProgram program;
  DesignConfig config;
  std::string source;
};

/// Emits the heterogeneous Jacobi-2D kernels at test scale.
Emitted emit_jacobi2d() {
  Emitted out{scl::stencil::make_jacobi2d(64, 64, 16), DesignConfig{}, ""};
  out.config.kind = DesignKind::kHeterogeneous;
  out.config.fused_iterations = 4;
  out.config.parallelism = {2, 2, 1};
  out.config.tile_size = {16, 16, 1};
  out.source = codegen::generate_opencl(out.program, out.config,
                                        fpga::virtex7_690t())
                   .kernel_source;
  return out;
}

DiagnosticEngine analyze_emitted(const Emitted& emitted) {
  DiagnosticEngine diags;
  analyze_kernel_source(emitted.source,
                        make_ir_context(emitted.program, emitted.config),
                        &diags);
  return diags;
}

TEST(IrTamperTest, PristineEmitterOutputIsClean) {
  const Emitted emitted = emit_jacobi2d();
  const DiagnosticEngine diags = analyze_emitted(emitted);
  EXPECT_EQ(diags.error_count(), 0) << diags.render_text();
  EXPECT_EQ(diags.warning_count(), 0) << diags.render_text();
}

TEST(IrTamperTest, OffsetLocalIndexFiresScl401) {
  Emitted emitted = emit_jacobi2d();
  // Shift every kernel-0 local index far past the buffer: the classic
  // wrong-origin-macro emitter bug.
  const std::string needle = "- K0_B0_LO";
  std::size_t pos = emitted.source.find(needle);
  ASSERT_NE(pos, std::string::npos);
  while (pos != std::string::npos) {
    emitted.source.replace(pos, needle.size(), "- K0_B0_LO + 1000000");
    pos = emitted.source.find(needle, pos + needle.size() + 10);
  }
  EXPECT_TRUE(has_code(analyze_emitted(emitted), "SCL401"));
}

TEST(IrTamperTest, DroppedPipeWriteFiresScl406) {
  Emitted emitted = emit_jacobi2d();
  const std::size_t call = emitted.source.find("write_pipe_block(");
  ASSERT_NE(call, std::string::npos);
  const std::size_t end = emitted.source.find(';', call);
  ASSERT_NE(end, std::string::npos);
  emitted.source.erase(call, end - call + 1);
  EXPECT_TRUE(has_code(analyze_emitted(emitted), "SCL406"));
}

TEST(IrTamperTest, SwappedIterationBoundFiresScl407) {
  Emitted emitted = emit_jacobi2d();
  const std::string needle = "it <= pass_h";
  const std::size_t pos = emitted.source.find(needle);
  ASSERT_NE(pos, std::string::npos);
  emitted.source.replace(pos, needle.size(), "it <= 0");
  EXPECT_TRUE(has_code(analyze_emitted(emitted), "SCL407"));
}

TEST(IrTamperTest, BlownUpGlobalIndexMacroFiresScl405) {
  Emitted emitted = emit_jacobi2d();
  const std::size_t macro = emitted.source.find("#define GIDX");
  ASSERT_NE(macro, std::string::npos);
  // Drop the emitter's 64-bit widening so the index is `int` again, then
  // blow up the row stride: classic silent device-side wrap.
  const std::size_t cast = emitted.source.find("(long)", macro);
  ASSERT_NE(cast, std::string::npos);
  emitted.source.erase(cast, 6);
  const std::size_t mul = emitted.source.find("* 64", macro);
  ASSERT_NE(mul, std::string::npos);
  emitted.source.replace(mul, 4, "* 1000000000");
  const DiagnosticEngine diags = analyze_emitted(emitted);
  EXPECT_TRUE(has_code(diags, "SCL405"));
  EXPECT_TRUE(has_code(diags, "SCL402"));
}

TEST(IrTamperTest, PaperScaleFlatIndexNeedsTheLongCast) {
  // The regression that motivated the 64-bit GIDX: at paper-scale grids
  // the row-major flat index exceeds INT32_MAX, so without the widening
  // cast the emitted `int` arithmetic wraps on the device.
  Emitted emitted{scl::stencil::make_jacobi2d(65536, 65536, 4),
                  DesignConfig{}, ""};
  emitted.config.kind = DesignKind::kHeterogeneous;
  emitted.config.fused_iterations = 4;
  emitted.config.parallelism = {2, 2, 1};
  emitted.config.tile_size = {16, 16, 1};
  emitted.source = codegen::generate_opencl(emitted.program, emitted.config,
                                            fpga::virtex7_690t())
                       .kernel_source;
  EXPECT_FALSE(has_code(analyze_emitted(emitted), "SCL405"));

  const std::size_t macro = emitted.source.find("#define GIDX");
  ASSERT_NE(macro, std::string::npos);
  const std::size_t cast = emitted.source.find("(long)", macro);
  ASSERT_NE(cast, std::string::npos);
  emitted.source.erase(cast, 6);
  EXPECT_TRUE(has_code(analyze_emitted(emitted), "SCL405"));
}

// --- the analyzer-clean guarantee over the paper suite ----------------------

TEST(IrSuiteTest, EveryBundledBenchmarkLowersAndAnalyzesClean) {
  for (const auto& bench : scl::stencil::paper_benchmarks()) {
    SCOPED_TRACE(bench.name);
    const scl::stencil::StencilProgram program =
        bench.make_scaled({64, 64, 64}, 16);
    DesignConfig config;
    config.kind = DesignKind::kHeterogeneous;
    config.fused_iterations = 4;
    config.parallelism = {2, 1, 1};
    config.tile_size = {16, 1, 1};
    for (int d = 1; d < program.dims(); ++d) {
      config.parallelism[static_cast<std::size_t>(d)] = 2;
      config.tile_size[static_cast<std::size_t>(d)] = 16;
    }
    const codegen::GeneratedCode code =
        codegen::generate_opencl(program, config, fpga::virtex7_690t());
    const Module module = lower_kernel_source(code.kernel_source);
    EXPECT_TRUE(module.unmodeled.empty())
        << module.unmodeled.front() << " (+" << module.unmodeled.size() - 1
        << " more)";
    DiagnosticEngine diags;
    analyze_module(module, make_ir_context(program, config), &diags);
    EXPECT_EQ(diags.error_count(), 0) << diags.render_text();
    EXPECT_EQ(diags.warning_count(), 0) << diags.render_text();
  }
}

// --- deep per-candidate mode ------------------------------------------------

TEST(IrDeepDseTest, OptimaAreBitIdenticalWithDeepIrOnAndOff) {
  const scl::stencil::StencilProgram program =
      scl::stencil::make_jacobi2d(64, 64, 16);

  core::OptimizerOptions shallow;
  shallow.analyze_candidates = true;
  const core::Optimizer a(program, shallow);
  const core::DesignPoint base_a = a.optimize_baseline();
  const core::DesignPoint het_a = a.optimize_heterogeneous(base_a);

  core::OptimizerOptions deep = shallow;
  deep.deep_ir_analysis = true;
  const core::Optimizer b(program, deep);
  const core::DesignPoint base_b = b.optimize_baseline();
  const core::DesignPoint het_b = b.optimize_heterogeneous(base_b);

  // A healthy emitter never trips the per-candidate IR filter, so the
  // search must select the same optima with the deep mode on or off.
  EXPECT_EQ(base_a.config, base_b.config);
  EXPECT_EQ(het_a.config, het_b.config);
  EXPECT_EQ(base_a.prediction.total_cycles, base_b.prediction.total_cycles);
  EXPECT_EQ(het_a.prediction.total_cycles, het_b.prediction.total_cycles);
}

// --- core wiring ------------------------------------------------------------

TEST(IrVerifyTest, VerifyGeneratedIrReportsStats) {
  const Emitted emitted = emit_jacobi2d();
  DiagnosticEngine diags;
  codegen::GeneratedCode code;
  code.kernel_source = emitted.source;
  const core::IrVerifyStats stats = core::verify_generated_ir(
      emitted.program, emitted.config, code, &diags);
  EXPECT_TRUE(stats.ran);
  EXPECT_GT(stats.kernels_lowered, 0);
  EXPECT_GT(stats.pipes_checked, 0);
  EXPECT_EQ(stats.unmodeled_constructs, 0);
  EXPECT_EQ(stats.errors, 0);
  EXPECT_EQ(stats.warnings, 0);
  EXPECT_TRUE(diags.empty()) << diags.render_text();
}

TEST(IrVerifyTest, VerificationErrorCarriesStructuredDiagnostics) {
  DiagnosticEngine diags;
  diags.error("SCL406", "pipe 'p' is unbalanced");
  diags.warning("SCL409", "one construct skipped");
  const core::VerificationError error("analysis failed",
                                      diags.diagnostics());
  EXPECT_STREQ(error.what(), "analysis failed");
  ASSERT_EQ(error.diagnostics().size(), 2u);
  EXPECT_EQ(error.diagnostics()[0].code, "SCL406");
  // The serve layer catches it as scl::Error too (scheduler rethrow).
  try {
    throw core::VerificationError("x", diags.diagnostics());
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "x");
  }
}

}  // namespace
}  // namespace scl::analysis::ir
