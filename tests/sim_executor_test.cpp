// Functional correctness of the tiled designs against the golden reference,
// plus timing-path invariants. These are the load-bearing tests of the
// whole reproduction: if the overlapped cones, the validity calculus, or
// the pipe protocol were wrong anywhere, the bit-exact comparisons here
// would fail.
#include <gtest/gtest.h>

#include "fpga/device.hpp"
#include "sim/executor.hpp"
#include "stencil/kernels.hpp"
#include "stencil/reference.hpp"

namespace scl::sim {
namespace {

using scl::stencil::BenchmarkInfo;
using scl::stencil::FieldSet;
using scl::stencil::ReferenceExecutor;
using scl::stencil::StencilProgram;
using scl::stencil::for_each_cell;
using scl::stencil::Index;

fpga::DeviceSpec test_device() { return fpga::virtex7_690t(); }

/// Runs `config` functionally and requires every field to match the
/// reference executor bit-exactly on the whole grid.
void expect_bit_exact(const StencilProgram& program,
                      const DesignConfig& config) {
  const Executor exec(test_device());
  const SimResult result = exec.run(program, config, SimMode::kFunctional);
  ASSERT_TRUE(result.fields.has_value());

  ReferenceExecutor ref(program);
  ref.run(program.iterations());

  for (int f = 0; f < program.field_count(); ++f) {
    std::int64_t mismatches = 0;
    Index first{-1, -1, -1};
    for_each_cell(program.grid_box(), [&](const Index& p) {
      const float got = (*result.fields)[static_cast<std::size_t>(f)].at(p);
      const float want = ref.field(f).at(p);
      if (got != want && mismatches++ == 0) first = p;
    });
    EXPECT_EQ(mismatches, 0)
        << program.name() << " field " << f << " ("
        << program.field(f).name << ") first mismatch at " << first[0] << ","
        << first[1] << "," << first[2] << " under " << config.summary(program.dims());
  }
}

DesignConfig make_config(DesignKind kind, int dims, std::int64_t h,
                         std::array<int, 3> par,
                         std::array<std::int64_t, 3> tile,
                         std::array<std::int64_t, 3> shrink = {0, 0, 0}) {
  DesignConfig c;
  c.kind = kind;
  c.fused_iterations = h;
  for (int d = 0; d < 3; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    c.parallelism[ds] = d < dims ? par[ds] : 1;
    c.tile_size[ds] = d < dims ? tile[ds] : 1;
    c.edge_shrink[ds] = d < dims ? shrink[ds] : 0;
  }
  return c;
}

// --- directed functional tests ---------------------------------------------

TEST(FunctionalTest, BaselineJacobi2dSingleTile) {
  const auto p = scl::stencil::make_jacobi2d(16, 16, 6);
  expect_bit_exact(p, make_config(DesignKind::kBaseline, 2, 3, {1, 1, 1},
                                  {16, 16, 1}));
}

TEST(FunctionalTest, BaselineJacobi2dFourTilesFused) {
  const auto p = scl::stencil::make_jacobi2d(24, 24, 8);
  expect_bit_exact(p, make_config(DesignKind::kBaseline, 2, 4, {2, 2, 1},
                                  {12, 12, 1}));
}

TEST(FunctionalTest, HeteroJacobi2dFourTilesFused) {
  const auto p = scl::stencil::make_jacobi2d(24, 24, 8);
  expect_bit_exact(p, make_config(DesignKind::kHeterogeneous, 2, 4, {2, 2, 1},
                                  {12, 12, 1}));
}

TEST(FunctionalTest, HeteroJacobi2dBalanced) {
  const auto p = scl::stencil::make_jacobi2d(32, 32, 9);
  expect_bit_exact(p, make_config(DesignKind::kHeterogeneous, 2, 3, {4, 4, 1},
                                  {8, 8, 1}, {2, 2, 0}));
}

TEST(FunctionalTest, RemainderRegionsAndRemainderPass) {
  // 26 is not divisible by the region extent 16, 7 not by h=3.
  const auto p = scl::stencil::make_jacobi2d(26, 26, 7);
  expect_bit_exact(p, make_config(DesignKind::kBaseline, 2, 3, {2, 2, 1},
                                  {8, 8, 1}));
  expect_bit_exact(p, make_config(DesignKind::kHeterogeneous, 2, 3, {2, 2, 1},
                                  {8, 8, 1}));
}

TEST(FunctionalTest, EmptyTilesInRemainderRegion) {
  // Second region column has extent 4 < one tile, so trailing tiles clip
  // to empty and their neighbors' faces turn exterior.
  const auto p = scl::stencil::make_jacobi2d(20, 20, 4);
  expect_bit_exact(p, make_config(DesignKind::kHeterogeneous, 2, 2, {2, 2, 1},
                                  {4, 4, 1}));
}

TEST(FunctionalTest, Jacobi1dDeepFusion) {
  const auto p = scl::stencil::make_jacobi1d(64, 12);
  expect_bit_exact(p, make_config(DesignKind::kBaseline, 1, 6, {4, 1, 1},
                                  {8, 1, 1}));
  expect_bit_exact(p, make_config(DesignKind::kHeterogeneous, 1, 6, {4, 1, 1},
                                  {8, 1, 1}));
}

TEST(FunctionalTest, Jacobi3dBothDesigns) {
  const auto p = scl::stencil::make_jacobi3d(12, 12, 12, 4);
  expect_bit_exact(p, make_config(DesignKind::kBaseline, 3, 2, {2, 2, 2},
                                  {6, 6, 6}));
  expect_bit_exact(p, make_config(DesignKind::kHeterogeneous, 3, 2, {2, 2, 2},
                                  {6, 6, 6}));
}

TEST(FunctionalTest, HotspotConstantPowerField) {
  const auto p = scl::stencil::make_hotspot2d(20, 20, 6);
  expect_bit_exact(p, make_config(DesignKind::kHeterogeneous, 2, 3, {2, 2, 1},
                                  {10, 10, 1}));
}

TEST(FunctionalTest, MultiStageFdtd2d) {
  const auto p = scl::stencil::make_fdtd2d(24, 24, 6);
  expect_bit_exact(p, make_config(DesignKind::kBaseline, 2, 3, {2, 2, 1},
                                  {12, 12, 1}));
  expect_bit_exact(p, make_config(DesignKind::kHeterogeneous, 2, 3, {2, 2, 1},
                                  {12, 12, 1}));
}

TEST(FunctionalTest, MultiStageFdtd3d) {
  const auto p = scl::stencil::make_fdtd3d(10, 10, 10, 4);
  expect_bit_exact(p, make_config(DesignKind::kHeterogeneous, 3, 2, {2, 2, 1},
                                  {5, 5, 10}));
}

// --- property sweep over all benchmarks x design points --------------------

struct SweepCase {
  const char* benchmark;
  DesignKind kind;
  std::int64_t h;
  std::array<int, 3> par;
  std::array<std::int64_t, 3> shrink;
};

class FunctionalSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FunctionalSweep, MatchesReferenceBitExact) {
  const SweepCase& sc = GetParam();
  const BenchmarkInfo& info = scl::stencil::find_benchmark(sc.benchmark);
  // Small instance: ~18 cells per active dimension, 3..8 iterations.
  std::array<std::int64_t, 3> extents{1, 1, 1};
  std::array<std::int64_t, 3> tile{1, 1, 1};
  for (int d = 0; d < info.dims; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    extents[ds] = 18;
    tile[ds] = 18 / (2 * sc.par[ds]) * 2;  // two regions-ish per dim
    if (tile[ds] < 1) tile[ds] = 1;
  }
  const std::int64_t iterations = sc.h * 2 + 1;  // force a remainder pass
  const StencilProgram p = info.make_scaled(extents, iterations);
  expect_bit_exact(p, make_config(sc.kind, info.dims, sc.h, sc.par, tile,
                                  sc.shrink));
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  const char* benchmarks[] = {"Jacobi-1D",  "Jacobi-2D",  "Jacobi-3D",
                              "HotSpot-2D", "HotSpot-3D", "FDTD-2D",
                              "FDTD-3D"};
  for (const char* b : benchmarks) {
    const int dims = scl::stencil::find_benchmark(b).dims;
    for (const DesignKind kind :
         {DesignKind::kBaseline, DesignKind::kHeterogeneous}) {
      for (const std::int64_t h : {1, 2, 3}) {
        std::array<int, 3> par{1, 1, 1};
        for (int d = 0; d < dims; ++d) par[static_cast<std::size_t>(d)] = 2;
        cases.push_back({b, kind, h, par, {0, 0, 0}});
      }
    }
    // A balanced heterogeneous point (needs K_d >= 3).
    std::array<int, 3> par3{1, 1, 1};
    par3[0] = 3;
    cases.push_back({b, DesignKind::kHeterogeneous, 2, par3, {1, 0, 0}});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, FunctionalSweep,
                         ::testing::ValuesIn(sweep_cases()),
                         [](const ::testing::TestParamInfo<SweepCase>& param_info) {
                           const SweepCase& sc = param_info.param;
                           std::string name = sc.benchmark;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           name += sc.kind == DesignKind::kBaseline ? "_base"
                                                                    : "_het";
                           name += "_h" + std::to_string(sc.h);
                           name += "_k" + std::to_string(sc.par[0]);
                           if (sc.shrink[0] > 0) name += "_bal";
                           return name;
                         });

// --- timing-path invariants --------------------------------------------------

TEST(TimingTest, TimingOnlyMatchesFunctionalCycleCount) {
  // Cycle accounting has no data dependence, so the timing-only fast path
  // (one representative region per shape) must reproduce the functional
  // run's total exactly.
  const auto p = scl::stencil::make_jacobi2d(26, 26, 7);
  for (const DesignKind kind :
       {DesignKind::kBaseline, DesignKind::kHeterogeneous}) {
    const DesignConfig c =
        make_config(kind, 2, 3, {2, 2, 1}, {8, 8, 1});
    const Executor exec(test_device());
    const SimResult functional = exec.run(p, c, SimMode::kFunctional);
    const SimResult timing = exec.run(p, c, SimMode::kTimingOnly);
    EXPECT_EQ(functional.total_cycles, timing.total_cycles)
        << to_string(kind);
    EXPECT_EQ(functional.cells_owned, timing.cells_owned);
    EXPECT_EQ(functional.cells_redundant, timing.cells_redundant);
    EXPECT_EQ(functional.pipe_elements, timing.pipe_elements);
    EXPECT_EQ(functional.global_memory_bytes, timing.global_memory_bytes);
  }
}

TEST(TimingTest, HeteroEliminatesIntraRegionRedundancy) {
  const auto p = scl::stencil::make_jacobi2d(64, 64, 16);
  const Executor exec(test_device());
  const DesignConfig base =
      make_config(DesignKind::kBaseline, 2, 8, {2, 2, 1}, {32, 32, 1});
  const DesignConfig het =
      make_config(DesignKind::kHeterogeneous, 2, 8, {2, 2, 1}, {32, 32, 1});
  const SimResult rb = exec.run(p, base, SimMode::kTimingOnly);
  const SimResult rh = exec.run(p, het, SimMode::kTimingOnly);
  EXPECT_LT(rh.cells_redundant, rb.cells_redundant);
  EXPECT_GT(rh.pipe_elements, 0);
  EXPECT_EQ(rb.pipe_elements, 0);
  // Owned updates are identical: every cell of every iteration.
  EXPECT_EQ(rh.cells_owned, rb.cells_owned);
}

TEST(TimingTest, HeteroBeatsBaselineOnDeepFusion) {
  const auto p = scl::stencil::make_jacobi2d(64, 64, 32);
  const Executor exec(test_device());
  const DesignConfig base =
      make_config(DesignKind::kBaseline, 2, 8, {2, 2, 1}, {16, 16, 1});
  const DesignConfig het =
      make_config(DesignKind::kHeterogeneous, 2, 8, {2, 2, 1}, {16, 16, 1});
  const SimResult rb = exec.run(p, base, SimMode::kTimingOnly);
  const SimResult rh = exec.run(p, het, SimMode::kTimingOnly);
  EXPECT_LT(rh.total_cycles, rb.total_cycles);
}

TEST(TimingTest, SingleTileDesignsTie) {
  // With one tile per region there are no pipes and no overlap to remove:
  // both designs must take exactly the same time.
  const auto p = scl::stencil::make_jacobi2d(32, 32, 8);
  const Executor exec(test_device());
  const DesignConfig base =
      make_config(DesignKind::kBaseline, 2, 4, {1, 1, 1}, {16, 16, 1});
  DesignConfig het = base;
  het.kind = DesignKind::kHeterogeneous;
  EXPECT_EQ(exec.run(p, base, SimMode::kTimingOnly).total_cycles,
            exec.run(p, het, SimMode::kTimingOnly).total_cycles);
}

TEST(TimingTest, MoreFusionReducesMemoryTraffic) {
  const auto p = scl::stencil::make_jacobi2d(64, 64, 32);
  const Executor exec(test_device());
  const DesignConfig h2 =
      make_config(DesignKind::kHeterogeneous, 2, 2, {2, 2, 1}, {16, 16, 1});
  const DesignConfig h8 =
      make_config(DesignKind::kHeterogeneous, 2, 8, {2, 2, 1}, {16, 16, 1});
  EXPECT_GT(exec.run(p, h2, SimMode::kTimingOnly).global_memory_bytes,
            exec.run(p, h8, SimMode::kTimingOnly).global_memory_bytes);
}

TEST(TimingTest, LaunchDelayAppearsInBreakdown) {
  const auto p = scl::stencil::make_jacobi2d(32, 32, 4);
  const Executor exec(test_device());
  const DesignConfig c =
      make_config(DesignKind::kBaseline, 2, 2, {2, 2, 1}, {16, 16, 1});
  const SimResult r = exec.run(p, c, SimMode::kTimingOnly);
  EXPECT_GT(r.phases.launch, 0);
  EXPECT_GT(r.phases.mem_read, 0);
  EXPECT_GT(r.phases.mem_write, 0);
  EXPECT_GT(r.phases.compute_own, 0);
  EXPECT_GT(r.phases.barrier_wait, 0);  // staggered launches leave waiters
}

TEST(TimingTest, ModestBalancingReducesBarrierWait) {
  // Needs regions with interior corners (multiple regions per pass) so the
  // edge tiles actually carry cone work that balancing can offload.
  const auto p = scl::stencil::make_jacobi2d(288, 288, 24);
  const Executor exec(test_device());
  const DesignConfig flat =
      make_config(DesignKind::kHeterogeneous, 2, 8, {3, 3, 1}, {32, 32, 1});
  const DesignConfig balanced = make_config(
      DesignKind::kHeterogeneous, 2, 8, {3, 3, 1}, {32, 32, 1}, {2, 2, 0});
  const SimResult rf = exec.run(p, flat, SimMode::kTimingOnly);
  const SimResult rb = exec.run(p, balanced, SimMode::kTimingOnly);
  EXPECT_LT(rb.phases.barrier_wait, rf.phases.barrier_wait);
  EXPECT_LT(rb.total_cycles, rf.total_cycles);
}

TEST(TimingTest, OverBalancingBackfires) {
  // Shrinking the edge tiles too far makes the grown interior tiles the
  // critical path every iteration — the optimizer must pick the factor,
  // not max it out.
  const auto p = scl::stencil::make_jacobi2d(288, 288, 24);
  const Executor exec(test_device());
  const DesignConfig modest = make_config(
      DesignKind::kHeterogeneous, 2, 8, {3, 3, 1}, {32, 32, 1}, {2, 2, 0});
  const DesignConfig extreme = make_config(
      DesignKind::kHeterogeneous, 2, 8, {3, 3, 1}, {32, 32, 1}, {12, 12, 0});
  EXPECT_LT(exec.run(p, modest, SimMode::kTimingOnly).total_cycles,
            exec.run(p, extreme, SimMode::kTimingOnly).total_cycles);
}

TEST(TimingTest, RedundancyGrowsWithDimension) {
  // The paper's explanation for why 3-D stencils gain more: cone overlap
  // grows exponentially with dimensionality.
  const Executor exec(test_device());
  const auto p2 = scl::stencil::make_jacobi2d(64, 64, 8);
  const auto p3 = scl::stencil::make_jacobi3d(16, 16, 16, 8);
  const DesignConfig c2 =
      make_config(DesignKind::kBaseline, 2, 4, {2, 2, 1}, {16, 16, 1});
  const DesignConfig c3 =
      make_config(DesignKind::kBaseline, 3, 4, {2, 2, 2}, {8, 8, 8});
  EXPECT_GT(exec.run(p3, c3, SimMode::kTimingOnly).redundancy_ratio(),
            exec.run(p2, c2, SimMode::kTimingOnly).redundancy_ratio());
}

TEST(TimingTest, PaperScaleTimingOnlyIsTractable) {
  // Jacobi-2D at the paper's full input scale (2048^2, 1024 iterations)
  // must simulate via shape-dedup in well under a second.
  const auto p = scl::stencil::make_jacobi2d(2048, 2048, 1024);
  const Executor exec(test_device());
  DesignConfig c =
      make_config(DesignKind::kBaseline, 2, 32, {4, 4, 1}, {128, 128, 1});
  c.unroll = 8;
  const SimResult r = exec.run(p, c, SimMode::kTimingOnly);
  EXPECT_GT(r.total_cycles, 0);
  EXPECT_EQ(r.region_executions, 32 * 16);
  // Every interior cell updated once per iteration.
  EXPECT_EQ(r.cells_owned, 2046ll * 2046ll * 1024ll);
}

}  // namespace
}  // namespace scl::sim
