#include <gtest/gtest.h>

#include "stencil/grid.hpp"

namespace scl::stencil {
namespace {

Box box2d(std::int64_t lo0, std::int64_t hi0, std::int64_t lo1,
          std::int64_t hi1) {
  Box b;
  b.lo = {lo0, lo1, 0};
  b.hi = {hi0, hi1, 1};
  return b;
}

TEST(GridTest, ValueInitialized) {
  Grid<float> g(Box::from_extents(2, {4, 4, 1}));
  for_each_cell(g.domain(), [&](const Index& p) { EXPECT_EQ(g.at(p), 0.0f); });
}

TEST(GridTest, FillConstructor) {
  Grid<int> g(Box::from_extents(1, {5, 1, 1}), 7);
  for_each_cell(g.domain(), [&](const Index& p) { EXPECT_EQ(g.at(p), 7); });
}

TEST(GridTest, AbsoluteCoordinateAddressing) {
  // A grid whose domain does not start at the origin — the tile buffer case.
  Grid<int> g(box2d(10, 14, 20, 23));
  int v = 0;
  for_each_cell(g.domain(), [&](const Index& p) { g.at(p) = v++; });
  EXPECT_EQ(g.at(Index{10, 20, 0}), 0);
  EXPECT_EQ(g.at(Index{10, 22, 0}), 2);
  EXPECT_EQ(g.at(Index{13, 22, 0}), 11);
}

TEST(GridTest, EmptyDomainRejected) {
  EXPECT_THROW(Grid<float>(Box{}), ContractError);
}

TEST(GridTest, CopyBoxFromTransfersSharedRegion) {
  Grid<int> src(box2d(0, 8, 0, 8));
  for_each_cell(src.domain(), [&](const Index& p) {
    src.at(p) = static_cast<int>(p[0] * 100 + p[1]);
  });
  Grid<int> dst(box2d(2, 6, 2, 6), -1);
  const Box shared = box2d(3, 5, 3, 5);
  dst.copy_box_from(src, shared);
  for_each_cell(dst.domain(), [&](const Index& p) {
    if (shared.contains(p)) {
      EXPECT_EQ(dst.at(p), static_cast<int>(p[0] * 100 + p[1]));
    } else {
      EXPECT_EQ(dst.at(p), -1);
    }
  });
}

TEST(GridTest, CopyBoxValidatesContainment) {
  Grid<int> src(box2d(0, 4, 0, 4));
  Grid<int> dst(box2d(0, 2, 0, 2));
  EXPECT_THROW(dst.copy_box_from(src, box2d(0, 4, 0, 4)), ContractError);
  EXPECT_THROW(src.copy_box_from(dst, box2d(0, 4, 0, 4)), ContractError);
}

TEST(GridTest, FillBox) {
  Grid<int> g(box2d(0, 4, 0, 4), 0);
  g.fill_box(box2d(1, 3, 1, 3), 9);
  EXPECT_EQ(g.at(Index{1, 1, 0}), 9);
  EXPECT_EQ(g.at(Index{2, 2, 0}), 9);
  EXPECT_EQ(g.at(Index{0, 0, 0}), 0);
  EXPECT_EQ(g.at(Index{3, 3, 0}), 0);
}

TEST(GridTest, ReadWriteBoxRoundTrip) {
  Grid<float> g(box2d(0, 4, 0, 4));
  for_each_cell(g.domain(), [&](const Index& p) {
    g.at(p) = static_cast<float>(p[0] + 10 * p[1]);
  });
  const Box strip = box2d(1, 3, 0, 4);
  const std::vector<float> data = g.read_box(strip);
  EXPECT_EQ(data.size(), 8u);

  Grid<float> h(box2d(0, 4, 0, 4), -1.0f);
  h.write_box(strip, data);
  EXPECT_TRUE(h.equals_on(g, strip));
  EXPECT_EQ(h.at(Index{0, 0, 0}), -1.0f);
}

TEST(GridTest, WriteBoxSizeMismatchThrows) {
  Grid<float> g(box2d(0, 4, 0, 4));
  EXPECT_THROW(g.write_box(box2d(0, 2, 0, 2), {1.0f}), ContractError);
}

TEST(GridTest, EqualsOnDetectsDifference) {
  Grid<int> a(box2d(0, 3, 0, 3), 1);
  Grid<int> b(box2d(0, 3, 0, 3), 1);
  EXPECT_TRUE(a.equals_on(b, a.domain()));
  b.at(Index{2, 2, 0}) = 5;
  EXPECT_FALSE(a.equals_on(b, a.domain()));
  EXPECT_TRUE(a.equals_on(b, box2d(0, 2, 0, 2)));
}

}  // namespace
}  // namespace scl::stencil
