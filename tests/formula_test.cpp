#include <gtest/gtest.h>

#include "stencil/formula.hpp"

namespace scl::stencil {
namespace {

const std::vector<std::string> kFields{"A", "B"};

/// CellReader returning field*1000 + a hash of the offset, so tests can
/// verify exactly which reads the formula performs.
class FakeReader final : public CellReader {
 public:
  float read(int field, const Offset& off) const override {
    return static_cast<float>(field * 1000 + off[0] * 100 + off[1] * 10 +
                              off[2]);
  }
};

TEST(FormulaTest, ParsesNumberLiterals) {
  const Formula f = Formula::parse("1.5f", kFields, 1);
  FakeReader r;
  EXPECT_FLOAT_EQ(f.evaluate(r), 1.5f);
  EXPECT_EQ(f.op_counts().total(), 0);
  EXPECT_TRUE(f.reads().empty());
}

TEST(FormulaTest, ParsesScientificNotation) {
  const Formula f = Formula::parse("2.5e-1f", kFields, 1);
  FakeReader r;
  EXPECT_FLOAT_EQ(f.evaluate(r), 0.25f);
}

TEST(FormulaTest, ReadsAndArithmetic) {
  const Formula f = Formula::parse("$A(1) + $B(-1) * 2.0f", kFields, 1);
  FakeReader r;
  // A(1)=100, B(-1)=900 -> 100 + 900*2.
  EXPECT_FLOAT_EQ(f.evaluate(r), 1900.0f);
  EXPECT_EQ(f.op_counts().adds, 1);
  EXPECT_EQ(f.op_counts().muls, 1);
  ASSERT_EQ(f.reads().size(), 2u);
  EXPECT_EQ(f.reads()[0].field, 0);
  EXPECT_EQ(f.reads()[0].offset, (Offset{1, 0, 0}));
  EXPECT_EQ(f.reads()[1].field, 1);
  EXPECT_EQ(f.reads()[1].offset, (Offset{-1, 0, 0}));
}

TEST(FormulaTest, PrecedenceAndParentheses) {
  const Formula a = Formula::parse("2.0f + 3.0f * 4.0f", kFields, 1);
  const Formula b = Formula::parse("(2.0f + 3.0f) * 4.0f", kFields, 1);
  FakeReader r;
  EXPECT_FLOAT_EQ(a.evaluate(r), 14.0f);
  EXPECT_FLOAT_EQ(b.evaluate(r), 20.0f);
}

TEST(FormulaTest, LeftAssociativeSubtraction) {
  const Formula f = Formula::parse("10.0f - 4.0f - 3.0f", kFields, 1);
  FakeReader r;
  EXPECT_FLOAT_EQ(f.evaluate(r), 3.0f);
}

TEST(FormulaTest, UnaryNegation) {
  const Formula f = Formula::parse("-$A(0) + 5.0f", kFields, 1);
  FakeReader r;
  EXPECT_FLOAT_EQ(f.evaluate(r), 5.0f);  // A(0)=0
  const Formula g = Formula::parse("-(2.0f) * -3.0f", kFields, 1);
  EXPECT_FLOAT_EQ(g.evaluate(r), 6.0f);
}

TEST(FormulaTest, Division) {
  const Formula f = Formula::parse("$B(0) / 4.0f", kFields, 1);
  FakeReader r;
  EXPECT_FLOAT_EQ(f.evaluate(r), 250.0f);
  EXPECT_EQ(f.op_counts().divs, 1);
}

TEST(FormulaTest, MultiDimOffsets) {
  const Formula f = Formula::parse("$A(1,-2,3)", kFields, 3);
  ASSERT_EQ(f.reads().size(), 1u);
  EXPECT_EQ(f.reads()[0].offset, (Offset{1, -2, 3}));
}

TEST(FormulaTest, DeduplicatesRepeatedReads) {
  const Formula f = Formula::parse("$A(0) + $A(0) + $A(1)", kFields, 1);
  EXPECT_EQ(f.reads().size(), 2u);
  EXPECT_EQ(f.op_counts().adds, 2);
}

TEST(FormulaTest, SyntaxErrors) {
  EXPECT_THROW(Formula::parse("$C(0)", kFields, 1), Error);     // unknown field
  EXPECT_THROW(Formula::parse("$A(0,0)", kFields, 1), Error);   // arity
  EXPECT_THROW(Formula::parse("$A(0) +", kFields, 1), Error);   // trailing op
  EXPECT_THROW(Formula::parse("$A(0))", kFields, 1), Error);    // extra paren
  EXPECT_THROW(Formula::parse("(1.0f", kFields, 1), Error);     // open paren
  EXPECT_THROW(Formula::parse("$A 0)", kFields, 1), Error);     // missing (
  EXPECT_THROW(Formula::parse("1.0f 2.0f", kFields, 1), Error); // juxtaposed
  EXPECT_THROW(Formula::parse("$A(x)", kFields, 1), Error);     // bad offset
}

TEST(FormulaTest, RenderSubstitutesReads) {
  const Formula f = Formula::parse("0.5f * ($A(0) - $B(1))", kFields, 1);
  const std::string rendered =
      f.render([](int field, const Offset& off) {
        return "FIELD" + std::to_string(field) + "_" +
               std::to_string(off[0]);
      });
  EXPECT_NE(rendered.find("FIELD0_0"), std::string::npos);
  EXPECT_NE(rendered.find("FIELD1_1"), std::string::npos);
  EXPECT_NE(rendered.find("0.5f"), std::string::npos);
  EXPECT_EQ(rendered.find('$'), std::string::npos);
}

TEST(FormulaTest, RenderPreservesFloatLiteralSpelling) {
  const Formula f = Formula::parse("0.33333f * $A(0)", kFields, 1);
  const std::string rendered =
      f.render([](int, const Offset&) { return std::string("x"); });
  EXPECT_NE(rendered.find("0.33333f"), std::string::npos);
}

TEST(MakeStageTest, PopulatesEverything) {
  const Stage s =
      make_stage("test", 0, "$A(0) + 0.25f * $B(-1)", kFields, 1);
  EXPECT_EQ(s.name, "test");
  EXPECT_EQ(s.output_field, 0);
  EXPECT_EQ(s.reads.size(), 2u);
  EXPECT_EQ(s.ops.adds, 1);
  EXPECT_EQ(s.ops.muls, 1);
  ASSERT_NE(s.formula, nullptr);
  ASSERT_TRUE(static_cast<bool>(s.update));
  FakeReader r;
  EXPECT_FLOAT_EQ(s.update(r), 0.0f + 0.25f * 900.0f);
}

TEST(MakeStageTest, EvaluationMatchesFormulaObject) {
  const Stage s = make_stage(
      "j", 0, "0.2f * ($A(0) + $A(-1) + $A(1) + $B(0) + $B(1))", kFields, 1);
  FakeReader r;
  EXPECT_EQ(s.update(r), s.formula->evaluate(r));
}

}  // namespace
}  // namespace scl::stencil
