// Temporal-shift family plumbing: layout calculus invariants, the
// DesignConfig validation rules of the family, admissibility of the
// temporal lower bound against the exact model/estimator, and the
// pruning-correctness of optimize_temporal.
#include "arch/temporal_layout.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/optimizer.hpp"
#include "model/lower_bound.hpp"
#include "model/perf_model.hpp"
#include "stencil/kernels.hpp"
#include "support/error.hpp"

namespace scl::arch {
namespace {

using scl::core::CandidateChain;
using scl::core::Optimizer;
using scl::core::OptimizerOptions;
using scl::sim::DesignConfig;
using scl::sim::DesignKind;
using scl::stencil::StencilProgram;

DesignConfig temporal_config(const StencilProgram& program, std::int64_t strip,
                             std::int64_t t_deg, int v) {
  DesignConfig config;
  config.family = DesignFamily::kTemporalShift;
  config.kind = DesignKind::kBaseline;
  config.fused_iterations = t_deg;
  config.unroll = v;
  for (int d = 0; d < program.dims(); ++d) {
    config.tile_size[static_cast<std::size_t>(d)] =
        program.grid_box().extent(d);
  }
  config.tile_size[static_cast<std::size_t>(program.dims() - 1)] = strip;
  return config;
}

TEST(TemporalLayout, Jacobi2dGeometry) {
  const StencilProgram prog = scl::stencil::make_jacobi2d(64, 64, 8);
  const DesignConfig config = temporal_config(prog, 16, 4, 2);
  config.validate(prog);
  const TemporalLayout lay = make_temporal_layout(prog, config);

  EXPECT_EQ(lay.strip_dim, 1);
  EXPECT_EQ(lay.strip[0], 64);  // full extent along the outer dimension
  EXPECT_EQ(lay.strip[1], 16);
  // Jacobi radius 1 per side: the strip pads T cells of halo per side.
  EXPECT_EQ(lay.pad_lo[1], 4);
  EXPECT_EQ(lay.pad_hi[1], 4);
  EXPECT_EQ(lay.pad_lo[0], 0);
  EXPECT_EQ(lay.ext[1], 24);
  EXPECT_EQ(lay.cells, 64 * 24);
  EXPECT_EQ(lay.owned_cells, 64 * 16);

  // One stage reading a 5-point star: forward reach is one full row
  // (+1 along dim 0 = stride ext[1]).
  ASSERT_EQ(lay.stage_span.size(), 1u);
  EXPECT_EQ(lay.stage_span[0], lay.ext[1]);
  EXPECT_EQ(lay.step_delay, lay.ext[1]);
  EXPECT_EQ(lay.max_store_delay, lay.compute_delay(4, 0));
  EXPECT_EQ(lay.walk_ticks, lay.cells + lay.max_store_delay);

  // States 0..T-1 materialized (passthrough), each register holds at
  // least the step delay + 1 once it has a one-step-behind reader.
  for (int k = 0; k < 4; ++k) {
    const int idx = lay.reg_index(0, k);
    ASSERT_GE(idx, 0) << "state " << k;
    EXPECT_GE(lay.regs[static_cast<std::size_t>(idx)].len,
              k + 1 < 4 ? lay.step_delay + 1 : 1);
  }
  EXPECT_EQ(lay.reg_index(0, 4), -1);  // the final state streams to DDR
  std::int64_t total = 0;
  for (const TemporalReg& reg : lay.regs) total += reg.len;
  EXPECT_EQ(total, lay.sr_elements);

  EXPECT_EQ(lay.n_strips, 4);
  EXPECT_EQ(lay.n_passes, 2);
}

TEST(TemporalLayout, MultiFieldProgramsMaterializeEveryMutableState) {
  const StencilProgram prog = scl::stencil::make_fdtd2d(32, 32, 6);
  const DesignConfig config = temporal_config(prog, 8, 3, 1);
  config.validate(prog);
  const TemporalLayout lay = make_temporal_layout(prog, config);
  for (int f = 0; f < prog.field_count(); ++f) {
    if (prog.is_constant_field(f)) continue;
    for (int k = 0; k < 3; ++k) {
      EXPECT_GE(lay.reg_index(f, k), 0) << "field " << f << " state " << k;
    }
  }
  // Shift-register state grows monotonically with the temporal degree
  // (the resource chain cut depends on this).
  const TemporalLayout deeper = make_temporal_layout(
      prog, temporal_config(prog, 8, 6, 1));
  EXPECT_GT(deeper.sr_elements, lay.sr_elements);
  EXPECT_GT(deeper.max_store_delay, lay.max_store_delay);
}

TEST(TemporalLayout, ValidateRejectsMalformedTemporalConfigs) {
  const StencilProgram prog = scl::stencil::make_jacobi2d(64, 64, 10);
  DesignConfig config = temporal_config(prog, 16, 5, 1);
  EXPECT_NO_THROW(config.validate(prog));
  config.fused_iterations = 3;  // does not divide H = 10
  EXPECT_THROW(config.validate(prog), Error);
  config = temporal_config(prog, 16, 5, 1);
  config.parallelism = {2, 1, 1};
  EXPECT_THROW(config.validate(prog), Error);
  config = temporal_config(prog, 16, 5, 1);
  config.tile_size[0] = 32;  // outer dimensions keep the full extent
  EXPECT_THROW(config.validate(prog), Error);
  config = temporal_config(prog, 128, 5, 1);  // strip wider than the grid
  EXPECT_THROW(config.validate(prog), Error);
}

TEST(TemporalLayout, SpatialTwinIsAValidBaseline) {
  const StencilProgram prog = scl::stencil::make_hotspot2d(64, 64, 8);
  const DesignConfig config = temporal_config(prog, 16, 4, 2);
  const DesignConfig twin = spatial_twin(config);
  EXPECT_EQ(twin.family, DesignFamily::kPipeTiling);
  EXPECT_EQ(twin.kind, DesignKind::kBaseline);
  EXPECT_NO_THROW(twin.validate(prog));
  // The family word is the only key difference, and it leads the key.
  EXPECT_NE(config.key(), twin.key());
  EXPECT_LT(twin.key(), config.key());
}

TEST(TemporalLayout, LowerBoundAdmissibleAcrossTemporalSpace) {
  for (const char* name : {"Jacobi-2D", "HotSpot-2D", "FDTD-2D"}) {
    const auto& info = scl::stencil::find_benchmark(name);
    const StencilProgram prog = info.make_scaled({96, 96, 1}, 12);
    OptimizerOptions options;
    const Optimizer optimizer(prog, options);
    const model::LowerBoundModel bound_model(prog, options.device);
    const model::PerfModel exact(prog, options.device, options.cone_mode);
    for (const CandidateChain& chain : optimizer.space().temporal_chains()) {
      for (const DesignConfig& config : chain.configs) {
        const model::LowerBound lb = bound_model.bound(config);
        const auto point = optimizer.evaluate(config);
        EXPECT_LE(lb.cycles, exact.predict(config).total_cycles * 1.0000001)
            << name << " " << config.summary(prog.dims());
        EXPECT_LE(lb.bram18, point.resources.total.bram18)
            << name << " " << config.summary(prog.dims());
      }
    }
  }
}

TEST(TemporalLayout, OptimizeTemporalPruneInvariant) {
  const StencilProgram prog = scl::stencil::make_jacobi2d(128, 128, 16);
  OptimizerOptions pruned_opts;
  pruned_opts.prune = true;
  OptimizerOptions exhaustive_opts;
  exhaustive_opts.prune = false;
  const Optimizer pruned(prog, pruned_opts);
  const Optimizer exhaustive(prog, exhaustive_opts);
  const auto a = pruned.optimize_temporal();
  const auto b = exhaustive.optimize_temporal();
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.config.family, DesignFamily::kTemporalShift);
  EXPECT_EQ(0, std::memcmp(&a.prediction, &b.prediction,
                           sizeof(model::Prediction)));
}

}  // namespace
}  // namespace scl::arch
