// Tests for the shared JSON writer/reader (support/json.hpp).
#include "support/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "support/error.hpp"

namespace scl::support {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonWriter, CompactObject) {
  JsonWriter json(JsonStyle::kCompact);
  json.begin_object();
  json.member("name", "jacobi");
  json.member("dims", 2);
  json.member("ok", true);
  json.key("ratio").value(1.5);
  json.end_object();
  EXPECT_EQ(json.take(),
            R"({"name":"jacobi","dims":2,"ok":true,"ratio":1.5})");
}

TEST(JsonWriter, SpacedStyleMatchesDiagnosticsFormat) {
  JsonWriter json(JsonStyle::kSpaced);
  json.begin_object();
  json.key("diagnostics").begin_array();
  json.value(1);
  json.value(2);
  json.end_array();
  json.member("errors", 0);
  json.end_object();
  EXPECT_EQ(json.take(), R"({"diagnostics": [1, 2], "errors": 0})");
}

TEST(JsonWriter, NestedContainersAndNull) {
  JsonWriter json(JsonStyle::kCompact);
  json.begin_array();
  json.begin_object();
  json.key("inner").begin_array().value(false).end_array();
  json.key("nothing").null_value();
  json.end_object();
  json.end_array();
  EXPECT_EQ(json.take(), R"([{"inner":[false],"nothing":null}])");
}

TEST(JsonWriter, RawSplicesFragmentVerbatim) {
  JsonWriter json(JsonStyle::kCompact);
  json.begin_object();
  json.key("spliced").raw(R"([1,{"x":2}])");
  json.end_object();
  EXPECT_EQ(json.take(), R"({"spliced":[1,{"x":2}]})");
}

TEST(JsonWriter, DoubleRoundTripsAtFullPrecision) {
  const double value = 0.1 + 0.2;  // classic non-representable sum
  JsonWriter json(JsonStyle::kCompact);
  json.begin_array().value(value).end_array();
  const JsonValue parsed = JsonValue::parse(json.take());
  EXPECT_EQ(parsed[0].as_double(), value);
}

TEST(JsonWriter, FixedFormatsWithRequestedDigits) {
  JsonWriter json(JsonStyle::kCompact);
  json.begin_array().value_fixed(1.23456, 2).end_array();
  EXPECT_EQ(json.take(), "[1.23]");
}

TEST(JsonWriter, Int64ExtremesPrintCanonically) {
  JsonWriter json(JsonStyle::kCompact);
  json.begin_array();
  json.value(std::numeric_limits<std::int64_t>::min());
  json.value(std::numeric_limits<std::int64_t>::max());
  json.end_array();
  EXPECT_EQ(json.take(),
            "[-9223372036854775808,9223372036854775807]");
}

TEST(JsonWriter, StructuralMisuseThrows) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value(1), Error);  // value without key
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.end_object(), Error);  // mismatched close
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.take(), Error);  // unterminated container
  }
}

TEST(JsonValue, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_EQ(JsonValue::parse("-42").as_int64(), -42);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(JsonValue::parse(R"("text")").as_string(), "text");
}

TEST(JsonValue, KeepsIntegersExact) {
  // A double would lose the low bits of this int64.
  const JsonValue v = JsonValue::parse("9223372036854775807");
  EXPECT_EQ(v.as_int64(), 9223372036854775807ll);
}

TEST(JsonValue, UnescapesStandardEscapes) {
  const JsonValue v = JsonValue::parse(R"("a\"b\\c\nd\te\/f")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\te/f");
}

TEST(JsonValue, UnescapesUnicodeEscapesToUtf8) {
  // U+0041 (1 UTF-8 byte), U+00E9 (2 bytes), U+20AC (3 bytes).
  const JsonValue v = JsonValue::parse(R"("\u0041\u00e9\u20ac")");
  EXPECT_EQ(v.as_string(), "A\xc3\xa9\xe2\x82\xac");
}

TEST(JsonValue, ObjectAndArrayAccessors) {
  const JsonValue v = JsonValue::parse(
      R"({"name": "fdtd", "grid": [8, 16], "nested": {"deep": true}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").as_string(), "fdtd");
  ASSERT_EQ(v.at("grid").size(), 2u);
  EXPECT_EQ(v.at("grid")[1].as_int64(), 16);
  EXPECT_TRUE(v.at("nested").at("deep").as_bool());
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_THROW(v.at("absent"), Error);
}

TEST(JsonValue, DefaultedLookups) {
  const JsonValue v = JsonValue::parse(R"({"n": 3, "s": "x"})");
  EXPECT_EQ(v.get_int64("n", -1), 3);
  EXPECT_EQ(v.get_int64("missing", -1), -1);
  EXPECT_EQ(v.get_string("s", "fb"), "x");
  EXPECT_EQ(v.get_string("missing", "fb"), "fb");
  EXPECT_EQ(v.get_bool("missing", true), true);
  EXPECT_DOUBLE_EQ(v.get_double("missing", 0.5), 0.5);
}

TEST(JsonValue, KindMismatchThrows) {
  const JsonValue v = JsonValue::parse("[1]");
  EXPECT_THROW(v.as_string(), Error);
  EXPECT_THROW(v.at("k"), Error);
  EXPECT_THROW(JsonValue::parse("\"s\"").as_int64(), Error);
}

TEST(JsonValue, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse(""), Error);
  EXPECT_THROW(JsonValue::parse("{"), Error);
  EXPECT_THROW(JsonValue::parse("[1,]"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), Error);
  EXPECT_THROW(JsonValue::parse("01"), Error);
  EXPECT_THROW(JsonValue::parse("nul"), Error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), Error);
  EXPECT_THROW(JsonValue::parse("1 trailing"), Error);
}

TEST(JsonValue, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  EXPECT_THROW(JsonValue::parse(deep), Error);
}

TEST(JsonRoundTrip, WriterOutputParsesBackIdentically) {
  JsonWriter json(JsonStyle::kSpaced);
  json.begin_object();
  json.key("values").begin_array();
  json.value(1);
  json.value("two\n");
  json.value(3.25);
  json.end_array();
  json.member("flag", false);
  json.end_object();
  const JsonValue v = JsonValue::parse(json.take());
  EXPECT_EQ(v.at("values")[0].as_int64(), 1);
  EXPECT_EQ(v.at("values")[1].as_string(), "two\n");
  EXPECT_DOUBLE_EQ(v.at("values")[2].as_double(), 3.25);
  EXPECT_FALSE(v.at("flag").as_bool());
}

}  // namespace
}  // namespace scl::support
