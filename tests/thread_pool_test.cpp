#include "support/thread_pool.hpp"

#include "support/error.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace scl {
namespace {

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::int64_t) { ++calls; });
  pool.parallel_for(-3, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::int64_t n = 10000;
  std::vector<std::atomic<int>> counts(static_cast<std::size_t>(n));
  pool.parallel_for(n, [&](std::int64_t i) {
    counts[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ParallelMapPreservesInputOrder) {
  ThreadPool pool(8);
  std::vector<int> items(513);
  std::iota(items.begin(), items.end(), 0);
  const std::vector<int> out =
      pool.parallel_map(items, [](int v) { return v * v; });
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsSerially) {
  ThreadPool pool(1);
  std::vector<std::int64_t> order;
  pool.parallel_for(16, [&](std::int64_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, ExceptionsPropagateToTheCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::int64_t i) {
                          if (i == 42) throw std::runtime_error("boom 42");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, LowestIndexExceptionWins) {
  // Several indices throw; the rethrown one must be the lowest index so
  // serial and parallel runs report the same failure.
  ThreadPool pool(4);
  std::string what;
  try {
    pool.parallel_for(1000, [](std::int64_t i) {
      if (i % 250 == 7) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    what = e.what();
  }
  EXPECT_EQ(what, "boom 7");
}

TEST(ThreadPoolTest, ExceptionDoesNotAbortRemainingIndices) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  try {
    pool.parallel_for(64, [&](std::int64_t i) {
      executed.fetch_add(1);
      if (i == 0) throw std::runtime_error("early");
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForRunsSeriallyWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::int64_t) {
    EXPECT_TRUE(ThreadPool::in_worker());
    // Nested call must not wait on the pool it occupies.
    pool.parallel_for(8, [&](std::int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
  EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPoolTest, WorkerSlotsAreWithinPoolSize) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(4);
  pool.parallel_for(256, [&](std::int64_t) {
    const int slot = ThreadPool::worker_slot();
    ASSERT_GE(slot, 0);
    ASSERT_LT(slot, 4);
    seen[static_cast<std::size_t>(slot)].fetch_add(1);
  });
  int covered = 0;
  for (const auto& s : seen) covered += s.load();
  EXPECT_EQ(covered, 256);
}

TEST(ThreadPoolTest, ResolveThreadsPrefersExplicitCount) {
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1);
}

TEST(ThreadPoolTest, ResolveThreadsReadsEnvironment) {
  ::setenv("SCL_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 5);
  ::setenv("SCL_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);  // falls back to hardware
  ::setenv("SCL_THREADS", "0", 1);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
  ::setenv("SCL_THREADS", "100000", 1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 256);  // clamped, not fatal
  EXPECT_EQ(ThreadPool::resolve_threads(100000), 256);
  ::unsetenv("SCL_THREADS");
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
}

TEST(ThreadPoolTest, SubmitRunsJobsOnWorkers) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::promise<void> all;
  for (int i = 0; i < 32; ++i) {
    pool.submit([&] {
      if (done.fetch_add(1) + 1 == 32) all.set_value();
    });
  }
  all.get_future().wait();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, SubmitRequiresAWorkerThread) {
  ThreadPool pool(1);  // no workers: submitted jobs could never run
  EXPECT_THROW(pool.submit([] {}), Error);
}

TEST(ThreadPoolTest, DestructorDrainsSubmittedJobs) {
  // The enqueue-during-shutdown contract, half one: every job accepted
  // before shutdown begins runs to completion, even when the destructor
  // races the enqueue closely. TSan runs this in CI.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> done{0};
    constexpr int kJobs = 64;
    {
      ThreadPool pool(4);
      for (int i = 0; i < kJobs; ++i) {
        pool.submit([&done] { done.fetch_add(1); });
      }
      // Destructor runs immediately: stop flag + drain + join.
    }
    EXPECT_EQ(done.load(), kJobs);
  }
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(4);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), Error);
  pool.shutdown();  // idempotent
}

TEST(ThreadPoolTest, SubmitDuringShutdownThrowsInsteadOfLosingJobs) {
  // The enqueue-during-shutdown contract, half two: a submit that loses
  // the race against shutdown() must fail loudly, not enqueue a job
  // nobody will ever run (its completion signal would never fire). TSan
  // runs this in CI.
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> ran{0};
    std::atomic<int> accepted{0};
    std::atomic<bool> go{false};
    ThreadPool pool(4);
    std::thread submitter([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < 1000; ++i) {
        try {
          pool.submit([&ran] { ran.fetch_add(1); });
          accepted.fetch_add(1);
        } catch (const Error&) {
          break;  // shutdown began; everything later would throw too
        }
      }
    });
    go = true;
    pool.shutdown();  // races the live submitter
    submitter.join();
    // shutdown() has joined the workers and the submitter is done, so
    // the counters are final: every accepted job ran, none vanished.
    EXPECT_EQ(ran.load(), accepted.load());
  }
}

TEST(ThreadPoolTest, ParallelForAfterShutdownRunsSerially) {
  ThreadPool pool(4);
  pool.shutdown();
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(100, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 100ll * 99 / 2);
}

TEST(ThreadPoolTest, SubmittedJobExceptionsDoNotKillWorkers) {
  ThreadPool pool(2);
  std::promise<void> threw;
  pool.submit([&] {
    threw.set_value();
    throw std::runtime_error("escaping");
  });
  threw.get_future().wait();
  // The worker survives and still runs new jobs.
  std::promise<void> after;
  pool.submit([&] { after.set_value(); });
  after.get_future().wait();
}

TEST(ThreadPoolTest, SubmitAndParallelForInterleave) {
  ThreadPool pool(4);
  std::atomic<int> submitted_done{0};
  std::promise<void> all;
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      if (submitted_done.fetch_add(1) + 1 == 8) all.set_value();
    });
  }
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(1000, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 1000ll * 999 / 2);
  all.get_future().wait();
  EXPECT_EQ(submitted_done.load(), 8);
}

TEST(ThreadPoolTest, ChunkedCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::int64_t n = 10001;  // not a multiple of the grain
  std::vector<std::atomic<int>> counts(static_cast<std::size_t>(n));
  std::atomic<int> blocks{0};
  pool.parallel_for_chunked(n, 64, [&](std::int64_t begin, std::int64_t end) {
    EXPECT_LT(begin, end);
    EXPECT_LE(end - begin, 64);
    EXPECT_EQ(begin % 64, 0);
    blocks.fetch_add(1);
    for (std::int64_t i = begin; i < end; ++i) {
      counts[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  EXPECT_EQ(blocks.load(), (n + 63) / 64);
}

TEST(ThreadPoolTest, ChunkedSingleBlockRunsSerially) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for_chunked(50, 64, [&](std::int64_t begin, std::int64_t end) {
    ++calls;
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 50);
    EXPECT_FALSE(ThreadPool::in_worker());
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ChunkedLowestBeginExceptionWins) {
  ThreadPool pool(4);
  std::string what;
  try {
    pool.parallel_for_chunked(
        1024, 32, [](std::int64_t begin, std::int64_t) {
          if (begin == 32 || begin == 512 || begin == 960) {
            throw std::runtime_error("boom " + std::to_string(begin));
          }
        });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    what = e.what();
  }
  EXPECT_EQ(what, "boom 32");
}

TEST(ThreadPoolTest, ChunkedNestedRunsAsOneSerialBlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_blocks{0};
  pool.parallel_for(8, [&](std::int64_t) {
    pool.parallel_for_chunked(256, 16,
                              [&](std::int64_t begin, std::int64_t end) {
                                EXPECT_EQ(begin, 0);
                                EXPECT_EQ(end, 256);
                                inner_blocks.fetch_add(1);
                              });
  });
  EXPECT_EQ(inner_blocks.load(), 8);
}

TEST(ThreadPoolTest, ChunkedRejectsBadGrain) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_chunked(10, 0, [](std::int64_t, std::int64_t) {}),
      Error);
}

TEST(ThreadPoolTest, ManyIterationsStress) {
  ThreadPool pool(8);
  std::atomic<std::int64_t> sum{0};
  const std::int64_t n = 100000;
  pool.parallel_for(n, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace scl
