#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace scl {
namespace {

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::int64_t) { ++calls; });
  pool.parallel_for(-3, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::int64_t n = 10000;
  std::vector<std::atomic<int>> counts(static_cast<std::size_t>(n));
  pool.parallel_for(n, [&](std::int64_t i) {
    counts[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ParallelMapPreservesInputOrder) {
  ThreadPool pool(8);
  std::vector<int> items(513);
  std::iota(items.begin(), items.end(), 0);
  const std::vector<int> out =
      pool.parallel_map(items, [](int v) { return v * v; });
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsSerially) {
  ThreadPool pool(1);
  std::vector<std::int64_t> order;
  pool.parallel_for(16, [&](std::int64_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, ExceptionsPropagateToTheCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::int64_t i) {
                          if (i == 42) throw std::runtime_error("boom 42");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, LowestIndexExceptionWins) {
  // Several indices throw; the rethrown one must be the lowest index so
  // serial and parallel runs report the same failure.
  ThreadPool pool(4);
  std::string what;
  try {
    pool.parallel_for(1000, [](std::int64_t i) {
      if (i % 250 == 7) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    what = e.what();
  }
  EXPECT_EQ(what, "boom 7");
}

TEST(ThreadPoolTest, ExceptionDoesNotAbortRemainingIndices) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  try {
    pool.parallel_for(64, [&](std::int64_t i) {
      executed.fetch_add(1);
      if (i == 0) throw std::runtime_error("early");
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForRunsSeriallyWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::int64_t) {
    EXPECT_TRUE(ThreadPool::in_worker());
    // Nested call must not wait on the pool it occupies.
    pool.parallel_for(8, [&](std::int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
  EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPoolTest, WorkerSlotsAreWithinPoolSize) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(4);
  pool.parallel_for(256, [&](std::int64_t) {
    const int slot = ThreadPool::worker_slot();
    ASSERT_GE(slot, 0);
    ASSERT_LT(slot, 4);
    seen[static_cast<std::size_t>(slot)].fetch_add(1);
  });
  int covered = 0;
  for (const auto& s : seen) covered += s.load();
  EXPECT_EQ(covered, 256);
}

TEST(ThreadPoolTest, ResolveThreadsPrefersExplicitCount) {
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1);
}

TEST(ThreadPoolTest, ResolveThreadsReadsEnvironment) {
  ::setenv("SCL_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 5);
  ::setenv("SCL_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);  // falls back to hardware
  ::setenv("SCL_THREADS", "0", 1);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
  ::setenv("SCL_THREADS", "100000", 1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 256);  // clamped, not fatal
  EXPECT_EQ(ThreadPool::resolve_threads(100000), 256);
  ::unsetenv("SCL_THREADS");
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
}

TEST(ThreadPoolTest, ManyIterationsStress) {
  ThreadPool pool(8);
  std::atomic<std::int64_t> sum{0};
  const std::int64_t n = 100000;
  pool.parallel_for(n, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace scl
