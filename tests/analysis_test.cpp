// Tests for the design verifier: the diagnostics engine, the interval
// evaluator, golden diagnostics on seeded broken designs, and the
// clean-design guarantee over every bundled benchmark.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>

#include "analysis/analyzer.hpp"
#include "analysis/interval.hpp"
#include "core/resource_estimator.hpp"
#include "core/verify.hpp"
#include "fpga/device.hpp"
#include "stencil/kernels.hpp"
#include "support/diagnostics.hpp"

namespace scl::analysis {
namespace {

using scl::sim::DesignConfig;
using scl::sim::DesignKind;
using scl::support::DiagnosticEngine;
using scl::support::Severity;

DesignConfig hetero2d(std::int64_t h, int k, std::int64_t tile) {
  DesignConfig config;
  config.kind = DesignKind::kHeterogeneous;
  config.fused_iterations = h;
  config.parallelism = {k, k, 1};
  config.tile_size = {tile, tile, 1};
  return config;
}

AnalysisInput jacobi2d_input() {
  static const scl::stencil::StencilProgram program =
      scl::stencil::make_jacobi2d(256, 256, 64);
  return make_analysis_input(program, hetero2d(4, 2, 32),
                             fpga::virtex7_690t());
}

bool has_code(const DiagnosticEngine& diags, const char* code) {
  const auto& all = diags.diagnostics();
  return std::any_of(all.begin(), all.end(), [&](const auto& d) {
    return d.code == code;
  });
}

// --- diagnostics engine -----------------------------------------------------

TEST(DiagnosticsTest, CountsAndSeverities) {
  DiagnosticEngine diags;
  EXPECT_TRUE(diags.empty());
  diags.error("SCL101", "missing channel");
  diags.warning("SCL104", "orphan pipe");
  EXPECT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags.error_count(), 1);
  EXPECT_EQ(diags.warning_count(), 1);
  EXPECT_TRUE(diags.has_errors());
}

TEST(DiagnosticsTest, RenderTextIncludesLocationAndNotes) {
  DiagnosticEngine diags;
  auto& diag = diags.error("SCL102", "FIFO too small");
  diag.location = {"pipe", "p_k0_k1", -1};
  diag.notes.push_back("required 64 elements");
  const std::string text = diags.render_text();
  EXPECT_NE(text.find("SCL102"), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("p_k0_k1"), std::string::npos);
  EXPECT_NE(text.find("note: required 64 elements"), std::string::npos);
}

TEST(DiagnosticsTest, RenderJsonMatchesDocumentedSchema) {
  DiagnosticEngine diags;
  auto& diag = diags.error("SCL201", "burst \"escapes\" grid");
  diag.location = {"kernel", "stencil_k0", 12};
  diag.notes.push_back("lower bound: r0 - 1");
  diags.warning("SCL106", "depth not a power of two");
  const std::string json = diags.render_json();
  // Top-level keys of the documented schema.
  EXPECT_NE(json.find("\"diagnostics\": ["), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
  // Per-diagnostic keys.
  for (const char* key :
       {"\"code\"", "\"severity\"", "\"message\"", "\"location\"",
        "\"component\"", "\"detail\"", "\"line\"", "\"notes\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Quotes inside messages must be escaped.
  EXPECT_NE(json.find("burst \\\"escapes\\\" grid"), std::string::npos);
  EXPECT_EQ(json.find("burst \"escapes\""), std::string::npos);
}

TEST(DiagnosticsTest, MergePreservesOrder) {
  DiagnosticEngine a;
  a.error("SCL101", "first");
  DiagnosticEngine b;
  b.warning("SCL104", "second");
  a.merge(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.diagnostics()[0].code, "SCL101");
  EXPECT_EQ(a.diagnostics()[1].code, "SCL104");
}

// --- interval evaluator -----------------------------------------------------

TEST(IntervalTest, EvaluatesAffineClampExpressions) {
  IntervalEnv env;
  env["r0"] = Interval::point(128);
  env["dt"] = Interval::point(3);
  EXPECT_EQ(eval_bound_expr("max(0, r0 - 2 * dt)", env),
            Interval::point(122));
  EXPECT_EQ(eval_bound_expr("min(256, (r0 + 32) + 1 * dt)", env),
            Interval::point(163));
  EXPECT_EQ(eval_bound_expr("-3 + r0", env), Interval::point(125));
}

TEST(IntervalTest, WideIntervalsPropagate) {
  IntervalEnv env;
  env["x"] = Interval{0, 10};
  EXPECT_EQ(eval_bound_expr("2 * x + 1", env), (Interval{1, 21}));
  EXPECT_EQ(eval_bound_expr("max(5, x)", env), (Interval{5, 10}));
}

TEST(IntervalTest, RejectsUnknownVariableAndSyntaxErrors) {
  IntervalEnv env;
  EXPECT_THROW(eval_bound_expr("mystery + 1", env), Error);
  EXPECT_THROW(eval_bound_expr("max(1,", env), Error);
  EXPECT_THROW(eval_bound_expr("1 ? 2 : 3", env), Error);
}

// Analysis inputs are untrusted (seeded-defect tests feed absurd
// magnitudes); wrapping at the int64 edges would be UB and could flip an
// out-of-bounds interval back into range, masking the defect.
TEST(IntervalTest, ArithmeticSaturatesAtInt64Edges) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  const Interval top = Interval::point(kMax);
  const Interval bottom = Interval::point(kMin);
  EXPECT_EQ(top + Interval::point(1), Interval::point(kMax));
  EXPECT_EQ(bottom + Interval::point(-1), Interval::point(kMin));
  EXPECT_EQ(bottom - Interval::point(1), Interval::point(kMin));
  EXPECT_EQ(top - Interval::point(-1), Interval::point(kMax));
  EXPECT_EQ(top * Interval::point(2), Interval::point(kMax));
  EXPECT_EQ(top * Interval::point(-2), Interval::point(kMin));
  EXPECT_EQ(bottom * Interval::point(2), Interval::point(kMin));
  EXPECT_EQ(bottom * Interval::point(-2), Interval::point(kMax));
  // Saturation must keep lo <= hi on mixed-sign wide intervals.
  const Interval wide{kMin, kMax};
  const Interval squared = wide * wide;
  EXPECT_LE(squared.lo, squared.hi);
  EXPECT_EQ(squared.hi, kMax);
}

TEST(IntervalTest, OverlongLiteralSaturatesInsteadOfWrapping) {
  IntervalEnv env;
  // 2^63 - 1 is the largest parseable value; one digit more must clamp,
  // not wrap negative.
  const Interval v =
      eval_bound_expr("99999999999999999999999", env);
  EXPECT_EQ(v, Interval::point(std::numeric_limits<std::int64_t>::max()));
  const Interval product = eval_bound_expr(
      "9223372036854775807 * 9223372036854775807", env);
  EXPECT_EQ(product,
            Interval::point(std::numeric_limits<std::int64_t>::max()));
}

// --- golden diagnostics on seeded broken designs ----------------------------

TEST(AnalyzerTest, UndersizedFifoDepthIsReported) {
  AnalysisInput input = jacobi2d_input();
  ASSERT_FALSE(input.pipes.empty());
  input.pipes[0].depth = 1;  // far below one exchange phase's strip volume
  DiagnosticEngine diags;
  analyze_pipe_graph(input, &diags);
  EXPECT_TRUE(has_code(diags, "SCL102"));
  EXPECT_TRUE(diags.has_errors());
}

TEST(AnalyzerTest, AllFifosUndersizedDeadlocks) {
  AnalysisInput input = jacobi2d_input();
  for (auto& pipe : input.pipes) pipe.depth = 1;
  DiagnosticEngine diags;
  analyze_pipe_graph(input, &diags);
  // Symmetric blocked writes between adjacent kernels form a cycle.
  EXPECT_TRUE(has_code(diags, "SCL102"));
  EXPECT_TRUE(has_code(diags, "SCL103"));
}

TEST(AnalyzerTest, MissingHaloChannelIsReported) {
  AnalysisInput input = jacobi2d_input();
  ASSERT_FALSE(input.pipes.empty());
  input.pipes.erase(input.pipes.begin());  // drop one delivering channel
  DiagnosticEngine diags;
  analyze_pipe_graph(input, &diags);
  EXPECT_TRUE(has_code(diags, "SCL101"));
  EXPECT_TRUE(diags.has_errors());
}

TEST(AnalyzerTest, MalformedPipeEndpointsAreReported) {
  AnalysisInput input = jacobi2d_input();
  codegen::PipeDecl self;
  self.from_kernel = 0;
  self.to_kernel = 0;
  self.name = "p_k0_k0";
  self.depth = 512;
  input.pipes.push_back(self);
  codegen::PipeDecl diagonal;
  diagonal.from_kernel = 0;
  diagonal.to_kernel = 3;  // coords (0,0) and (1,1): not face-adjacent
  diagonal.name = "p_k0_k3";
  diagonal.depth = 512;
  input.pipes.push_back(diagonal);
  DiagnosticEngine diags;
  analyze_pipe_graph(input, &diags);
  std::int64_t malformed = 0;
  for (const auto& diag : diags.diagnostics()) {
    if (diag.code == "SCL105") ++malformed;
  }
  EXPECT_EQ(malformed, 2);
}

TEST(AnalyzerTest, NonPowerOfTwoDepthWarns) {
  AnalysisInput input = jacobi2d_input();
  ASSERT_FALSE(input.pipes.empty());
  input.pipes[0].depth = 1000;  // large enough, but not a power of two
  DiagnosticEngine diags;
  analyze_pipe_graph(input, &diags);
  EXPECT_TRUE(has_code(diags, "SCL106"));
  EXPECT_FALSE(has_code(diags, "SCL102"));
}

TEST(AnalyzerTest, BurstBoundsOutsideGridAreReported) {
  const AnalysisInput input = jacobi2d_input();
  codegen::LoopBounds bounds;
  bounds.lo = {"r0 - 5", "0", "0"};
  bounds.hi = {"r0 + 300", "1", "1"};  // grid is 256 wide
  DiagnosticEngine diags;
  check_buffer_bounds(input, 0, bounds, &diags);
  EXPECT_TRUE(has_code(diags, "SCL201"));
  EXPECT_TRUE(diags.has_errors());
}

TEST(AnalyzerTest, UnparsableBoundDowngradesToWarning) {
  const AnalysisInput input = jacobi2d_input();
  codegen::LoopBounds bounds;
  bounds.lo = {"r0 ? 0 : 1", "0", "0"};
  bounds.hi = {"r0 + 1", "1", "1"};
  DiagnosticEngine diags;
  check_buffer_bounds(input, 0, bounds, &diags);
  EXPECT_TRUE(has_code(diags, "SCL209"));
  EXPECT_FALSE(diags.has_errors());
}

TEST(AnalyzerTest, OwnedWriteOutsideUpdatableRegionIsReported) {
  const AnalysisInput input = jacobi2d_input();
  // Jacobi's border is Dirichlet: the updatable region starts at 1, so a
  // burst write covering [0, 10) along dim 0 touches boundary cells.
  codegen::LoopBounds bounds;
  bounds.lo = {"0", "1", "0"};
  bounds.hi = {"10", "2", "1"};
  DiagnosticEngine diags;
  check_owned_bounds(input, 0, 0, bounds, &diags);
  EXPECT_TRUE(has_code(diags, "SCL203"));
  EXPECT_TRUE(diags.has_errors());
}

TEST(AnalyzerTest, HealthyOwnedBoundsStayClean) {
  const AnalysisInput input = jacobi2d_input();
  DiagnosticEngine diags;
  check_owned_bounds(input, 0, 0, codegen::owned_bounds(input.ctx, 0, 0),
                     &diags);
  EXPECT_TRUE(diags.empty()) << diags.render_text();
}

TEST(AnalyzerTest, StageAccessOutsideBufferBoxIsReported) {
  const AnalysisInput input = jacobi2d_input();
  // Compute bounds widened far past the kernel's local-buffer box: the
  // ±1 neighbor reads then land outside both the dynamic window and the
  // static array extent.
  codegen::LoopBounds bounds;
  bounds.lo = {"r0 - 200", "1", "0"};
  bounds.hi = {"r0 + 300", "2", "1"};
  DiagnosticEngine diags;
  check_stage_accesses(input, 0, 0, bounds, &diags);
  EXPECT_TRUE(has_code(diags, "SCL202"));
  EXPECT_TRUE(diags.has_errors());
}

TEST(AnalyzerTest, HealthyStageAccessesStayClean) {
  const AnalysisInput input = jacobi2d_input();
  DiagnosticEngine diags;
  check_stage_accesses(input, 0, 0,
                       codegen::stage_compute_bounds(input.ctx, 0, 0),
                       &diags);
  EXPECT_TRUE(diags.empty()) << diags.render_text();
}

// --- resource cross-check ---------------------------------------------------

class ResourcePassTest : public ::testing::Test {
 protected:
  ResourcePassTest()
      : program_(scl::stencil::make_jacobi2d(256, 256, 64)),
        config_(hetero2d(4, 2, 32)),
        device_(fpga::virtex7_690t()),
        input_(make_analysis_input(program_, config_, device_)) {
    const fpga::ResourceModel model(device_);
    charged_ = core::charged_resources(
        core::estimate_design_resources(program_, config_, model));
  }

  scl::stencil::StencilProgram program_;
  DesignConfig config_;
  fpga::DeviceSpec device_;
  AnalysisInput input_;
  ChargedResources charged_;
};

TEST_F(ResourcePassTest, HonestChargeIsClean) {
  DiagnosticEngine diags;
  analyze_resources(input_, charged_, &diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render_text();
}

TEST_F(ResourcePassTest, PipeCountDriftIsReported) {
  ChargedResources charged = charged_;
  charged.pipe_count -= 1;
  DiagnosticEngine diags;
  analyze_resources(input_, charged, &diags);
  EXPECT_TRUE(has_code(diags, "SCL301"));
}

TEST_F(ResourcePassTest, BufferElementDriftIsReported) {
  ChargedResources charged = charged_;
  charged.buffer_elements /= 2;
  DiagnosticEngine diags;
  analyze_resources(input_, charged, &diags);
  EXPECT_TRUE(has_code(diags, "SCL302"));
}

TEST_F(ResourcePassTest, FifoUnderchargeIsReported) {
  ChargedResources charged = charged_;
  charged.pipe_fifo_elements = 1;
  DiagnosticEngine diags;
  analyze_resources(input_, charged, &diags);
  EXPECT_TRUE(has_code(diags, "SCL303"));
}

TEST_F(ResourcePassTest, OverCapacityWarns) {
  ChargedResources charged = charged_;
  charged.total.bram18 = device_.capacity.bram18 + 1;
  DiagnosticEngine diags;
  analyze_resources(input_, charged, &diags);
  EXPECT_TRUE(has_code(diags, "SCL310"));
  EXPECT_FALSE(diags.has_errors());
}

// --- clean designs stay clean -----------------------------------------------

TEST(AnalyzerTest, AllBundledBenchmarksVerifyClean) {
  const fpga::DeviceSpec device = fpga::virtex7_690t();
  const fpga::ResourceModel model(device);
  for (const auto& info : scl::stencil::paper_benchmarks()) {
    std::array<std::int64_t, 3> extents{1, 1, 1};
    DesignConfig config;
    config.kind = DesignKind::kHeterogeneous;
    config.fused_iterations = 4;
    for (int d = 0; d < info.dims; ++d) {
      const auto ds = static_cast<std::size_t>(d);
      extents[ds] = 128;
      config.parallelism[ds] = 2;
      config.tile_size[ds] = 32;
    }
    const scl::stencil::StencilProgram program =
        info.make_scaled(extents, 64);
    // These hand-picked tile sizes can overrun the device capacity for
    // the 3-D benchmarks (a correct SCL310 warning); the semantic passes
    // must stay silent regardless.
    auto expect_clean = [&](const DiagnosticEngine& diags,
                            const char* label) {
      EXPECT_FALSE(diags.has_errors())
          << info.name << " " << label << ":\n" << diags.render_text();
      for (const auto& diag : diags.diagnostics()) {
        EXPECT_EQ(diag.code, "SCL310")
            << info.name << " " << label << ": " << diag.message;
      }
    };
    const auto resources =
        core::estimate_design_resources(program, config, model);
    expect_clean(core::verify_design(program, config, device, resources),
                 "heterogeneous");

    // The overlapped baseline (no pipes at all) must verify clean too.
    DesignConfig baseline = config;
    baseline.kind = DesignKind::kBaseline;
    const auto base_resources =
        core::estimate_design_resources(program, baseline, model);
    expect_clean(
        core::verify_design(program, baseline, device, base_resources),
        "baseline");
  }
}

TEST(AnalyzerTest, DeeperFusionAndBalancingStayClean) {
  const fpga::DeviceSpec device = fpga::virtex7_690t();
  const auto program = scl::stencil::make_jacobi2d(512, 512, 128);
  DesignConfig config = hetero2d(16, 4, 32);
  config.edge_shrink = {4, 4, 0};
  const fpga::ResourceModel model(device);
  const auto resources =
      core::estimate_design_resources(program, config, model);
  const DiagnosticEngine diags =
      core::verify_design(program, config, device, resources);
  EXPECT_TRUE(diags.empty()) << diags.render_text();
}

}  // namespace
}  // namespace scl::analysis
