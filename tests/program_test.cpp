#include <gtest/gtest.h>

#include <cmath>

#include "stencil/kernels.hpp"
#include "stencil/program.hpp"

namespace scl::stencil {
namespace {

// --- construction validation -------------------------------------------

Stage trivial_stage(int out_field, std::vector<ReadAccess> reads) {
  Stage s;
  s.name = "s";
  s.output_field = out_field;
  s.reads = std::move(reads);
  s.update = [](const CellReader&) { return 0.0f; };
  return s;
}

TEST(ProgramValidationTest, RejectsEmptyStages) {
  EXPECT_THROW(StencilProgram("p", 1, {8, 1, 1}, 10, {{"A", nullptr, ""}}, {}),
               Error);
}

TEST(ProgramValidationTest, RejectsNonPositiveIterations) {
  EXPECT_THROW(StencilProgram("p", 1, {8, 1, 1}, 0, {{"A", nullptr, ""}},
                              {trivial_stage(0, {})}),
               Error);
}

TEST(ProgramValidationTest, RejectsUnknownOutputField) {
  EXPECT_THROW(StencilProgram("p", 1, {8, 1, 1}, 1, {{"A", nullptr, ""}},
                              {trivial_stage(3, {})}),
               Error);
}

TEST(ProgramValidationTest, RejectsUnknownReadField) {
  EXPECT_THROW(
      StencilProgram("p", 1, {8, 1, 1}, 1, {{"A", nullptr, ""}},
                     {trivial_stage(0, {{7, Offset{0, 0, 0}}})}),
      Error);
}

TEST(ProgramValidationTest, RejectsTwoWritersOfOneField) {
  EXPECT_THROW(StencilProgram("p", 1, {8, 1, 1}, 1, {{"A", nullptr, ""}},
                              {trivial_stage(0, {}), trivial_stage(0, {})}),
               Error);
}

TEST(ProgramValidationTest, RejectsDiagonalOffsets) {
  EXPECT_THROW(
      StencilProgram("p", 2, {8, 8, 1}, 1, {{"A", nullptr, ""}},
                     {trivial_stage(0, {{0, Offset{1, 1, 0}}})}),
      Error);
}

TEST(ProgramValidationTest, RejectsOffsetBeyondDims) {
  EXPECT_THROW(
      StencilProgram("p", 1, {8, 1, 1}, 1, {{"A", nullptr, ""}},
                     {trivial_stage(0, {{0, Offset{0, 1, 0}}})}),
      Error);
}

TEST(ProgramValidationTest, RejectsMissingUpdateFn) {
  Stage s;
  s.name = "broken";
  s.output_field = 0;
  EXPECT_THROW(
      StencilProgram("p", 1, {8, 1, 1}, 1, {{"A", nullptr, ""}}, {std::move(s)}),
      Error);
}

// --- derived structure on the benchmark kernels -------------------------

TEST(ProgramStructureTest, Jacobi2dBasics) {
  const StencilProgram p = make_jacobi2d(16, 16, 8);
  EXPECT_EQ(p.name(), "Jacobi-2D");
  EXPECT_EQ(p.dims(), 2);
  EXPECT_EQ(p.field_count(), 1);
  EXPECT_EQ(p.stage_count(), 1);
  EXPECT_EQ(p.iterations(), 8);
  EXPECT_EQ(p.grid_box(), Box::from_extents(2, {16, 16, 1}));
}

TEST(ProgramStructureTest, Jacobi2dNeedsDoubleBuffer) {
  const StencilProgram p = make_jacobi2d(16, 16, 8);
  EXPECT_TRUE(p.stage_needs_double_buffer(0));
}

TEST(ProgramStructureTest, FdtdStagesAreInPlace) {
  const StencilProgram p = make_fdtd2d(16, 16, 8);
  EXPECT_EQ(p.stage_count(), 3);
  for (int s = 0; s < 3; ++s) {
    EXPECT_FALSE(p.stage_needs_double_buffer(s)) << "stage " << s;
  }
}

TEST(ProgramStructureTest, Jacobi2dIterRadii) {
  const StencilProgram p = make_jacobi2d(16, 16, 8);
  const SideRadii& r = p.iter_radii();
  EXPECT_EQ(r[0][0], 1);
  EXPECT_EQ(r[0][1], 1);
  EXPECT_EQ(r[1][0], 1);
  EXPECT_EQ(r[1][1], 1);
  EXPECT_EQ(r[2][0], 0);
  EXPECT_EQ(r[2][1], 0);
  EXPECT_EQ(p.delta_w(0), 2);
  EXPECT_EQ(p.delta_w(1), 2);
  EXPECT_EQ(p.max_radius(), 1);
}

TEST(ProgramStructureTest, Fdtd2dIterRadiiComposeAcrossStages) {
  // hz reads the ex/ey values produced earlier in the same iteration, so
  // the composed per-iteration radius is 1 on every side even though each
  // individual stage is one-sided.
  const StencilProgram p = make_fdtd2d(16, 16, 8);
  const SideRadii& r = p.iter_radii();
  for (int d = 0; d < 2; ++d) {
    EXPECT_EQ(r[static_cast<std::size_t>(d)][0], 1) << "dim " << d;
    EXPECT_EQ(r[static_cast<std::size_t>(d)][1], 1) << "dim " << d;
  }
  EXPECT_EQ(p.delta_w(0), 2);
}

TEST(ProgramStructureTest, Fdtd2dPerStageRadiiAreOneSided) {
  const StencilProgram p = make_fdtd2d(16, 16, 8);
  // Stage 0 (ey) reads hz at (-1,0): low side of dim 0 only.
  const SideRadii& ey = p.stage_radii(0);
  EXPECT_EQ(ey[0][0], 1);
  EXPECT_EQ(ey[0][1], 0);
  EXPECT_EQ(ey[1][0], 0);
  EXPECT_EQ(ey[1][1], 0);
  // Stage 2 (hz) reads ex at (0,+1) and ey at (+1,0): high sides only.
  const SideRadii& hz = p.stage_radii(2);
  EXPECT_EQ(hz[0][0], 0);
  EXPECT_EQ(hz[0][1], 1);
  EXPECT_EQ(hz[1][0], 0);
  EXPECT_EQ(hz[1][1], 1);
}

TEST(ProgramStructureTest, HotspotPowerIsConstantField) {
  const StencilProgram p = make_hotspot2d(16, 16, 8);
  EXPECT_EQ(p.field_count(), 2);
  EXPECT_FALSE(p.is_constant_field(0));
  EXPECT_TRUE(p.is_constant_field(1));
  EXPECT_EQ(p.writing_stage(1), -1);
  EXPECT_EQ(p.mutable_field_count(), 1);
  EXPECT_TRUE(p.updated_box(1).empty());
}

TEST(ProgramStructureTest, UpdatedBoxShrinksByStageRadii) {
  const StencilProgram p = make_jacobi2d(16, 12, 8);
  const Box ub = p.updated_box(0);
  EXPECT_EQ(ub.lo, (Index{1, 1, 0}));
  EXPECT_EQ(ub.hi, (Index{15, 11, 1}));
}

TEST(ProgramStructureTest, Fdtd2dUpdatedBoxesMatchPolybenchLoopBounds) {
  const StencilProgram p = make_fdtd2d(8, 8, 4);
  // ey: i in [1,N), j in [0,N)
  EXPECT_EQ(p.updated_box(1).lo, (Index{1, 0, 0}));
  EXPECT_EQ(p.updated_box(1).hi, (Index{8, 8, 1}));
  // ex: i in [0,N), j in [1,N)
  EXPECT_EQ(p.updated_box(0).lo, (Index{0, 1, 0}));
  EXPECT_EQ(p.updated_box(0).hi, (Index{8, 8, 1}));
  // hz: i,j in [0,N-1)
  EXPECT_EQ(p.updated_box(2).lo, (Index{0, 0, 0}));
  EXPECT_EQ(p.updated_box(2).hi, (Index{7, 7, 1}));
}

TEST(ProgramStructureTest, OpsPerCellSumsStages) {
  const StencilProgram p = make_fdtd2d(8, 8, 4);
  const OpCounts ops = p.ops_per_cell();
  EXPECT_EQ(ops.adds, 2 + 2 + 4);
  EXPECT_EQ(ops.muls, 3);
  EXPECT_EQ(ops.total(), 11);
}

TEST(ProgramStructureTest, Fdtd3dHasSixInPlaceStages) {
  const StencilProgram p = make_fdtd3d(8, 8, 8, 4);
  EXPECT_EQ(p.stage_count(), 6);
  EXPECT_EQ(p.field_count(), 6);
  for (int s = 0; s < 6; ++s) {
    EXPECT_FALSE(p.stage_needs_double_buffer(s));
  }
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(p.delta_w(d), 2);
  }
}

TEST(ProgramStructureTest, ElementBytesIsFloat) {
  EXPECT_EQ(StencilProgram::element_bytes(), 4);
}

// --- benchmark registry --------------------------------------------------

TEST(RegistryTest, HasSevenBenchmarksInPaperOrder) {
  const auto& suite = paper_benchmarks();
  ASSERT_EQ(suite.size(), 7u);
  EXPECT_EQ(suite[0].name, "Jacobi-1D");
  EXPECT_EQ(suite[1].name, "Jacobi-2D");
  EXPECT_EQ(suite[2].name, "Jacobi-3D");
  EXPECT_EQ(suite[3].name, "HotSpot-2D");
  EXPECT_EQ(suite[4].name, "HotSpot-3D");
  EXPECT_EQ(suite[5].name, "FDTD-2D");
  EXPECT_EQ(suite[6].name, "FDTD-3D");
}

TEST(RegistryTest, Table2InputSizes) {
  EXPECT_EQ(find_benchmark("Jacobi-1D").input_size,
            (std::array<std::int64_t, 3>{131072, 1, 1}));
  EXPECT_EQ(find_benchmark("Jacobi-3D").input_size,
            (std::array<std::int64_t, 3>{1024, 1024, 1024}));
  EXPECT_EQ(find_benchmark("HotSpot-3D").input_size,
            (std::array<std::int64_t, 3>{4096, 4096, 128}));
  EXPECT_EQ(find_benchmark("FDTD-2D").iterations, 500);
  EXPECT_EQ(find_benchmark("HotSpot-2D").iterations, 1000);
  EXPECT_EQ(find_benchmark("Jacobi-2D").iterations, 1024);
}

TEST(RegistryTest, UnknownBenchmarkThrows) {
  EXPECT_THROW(find_benchmark("Gauss-Seidel"), Error);
}

TEST(RegistryTest, ScaledFactoryProducesRequestedSize) {
  const StencilProgram p =
      find_benchmark("Jacobi-3D").make_scaled({12, 10, 8}, 5);
  EXPECT_EQ(p.grid_box(), Box::from_extents(3, {12, 10, 8}));
  EXPECT_EQ(p.iterations(), 5);
}

TEST(RegistryTest, InitialConditionsAreDeterministic) {
  const StencilProgram a = make_hotspot2d(8, 8, 4);
  const StencilProgram b = make_hotspot2d(8, 8, 4);
  for (int f = 0; f < a.field_count(); ++f) {
    for_each_cell(a.grid_box(), [&](const Index& p) {
      EXPECT_EQ(a.field(f).init(p), b.field(f).init(p));
    });
  }
}

TEST(RegistryTest, InitialConditionsAreFinite) {
  for (const BenchmarkInfo& info : paper_benchmarks()) {
    const StencilProgram p = info.make_scaled({6, 6, 6}, 2);
    for (int f = 0; f < p.field_count(); ++f) {
      for_each_cell(p.grid_box(), [&](const Index& idx) {
        EXPECT_TRUE(std::isfinite(p.field(f).init(idx)))
            << info.name << " field " << f;
      });
    }
  }
}

}  // namespace
}  // namespace scl::stencil
