#include <gtest/gtest.h>

#include "fpga/device.hpp"
#include "fpga/hls.hpp"
#include "fpga/power.hpp"
#include "fpga/resource_model.hpp"
#include "stencil/kernels.hpp"

namespace scl::fpga {
namespace {

using scl::stencil::make_fdtd2d;
using scl::stencil::make_hotspot2d;
using scl::stencil::make_jacobi1d;
using scl::stencil::make_jacobi2d;
using scl::stencil::make_jacobi3d;

TEST(ResourceVectorTest, Arithmetic) {
  const ResourceVector a{1, 2, 3, 4};
  const ResourceVector b{10, 20, 30, 40};
  EXPECT_EQ(a + b, (ResourceVector{11, 22, 33, 44}));
  EXPECT_EQ(a * 3, (ResourceVector{3, 6, 9, 12}));
  ResourceVector c = a;
  c += b;
  EXPECT_EQ(c, a + b);
}

TEST(ResourceVectorTest, FitsWithin) {
  const ResourceVector budget{100, 100, 100, 100};
  EXPECT_TRUE((ResourceVector{100, 1, 1, 1}).fits_within(budget));
  EXPECT_FALSE((ResourceVector{101, 1, 1, 1}).fits_within(budget));
  EXPECT_FALSE((ResourceVector{1, 1, 1, 101}).fits_within(budget));
}

TEST(ResourceVectorTest, MaxUtilization) {
  const ResourceVector cap{100, 200, 100, 100};
  const ResourceVector used{50, 100, 80, 10};
  EXPECT_DOUBLE_EQ(used.max_utilization(cap), 0.8);
  EXPECT_DOUBLE_EQ(ResourceVector{}.max_utilization(cap), 0.0);
}

TEST(ResourceVectorTest, ToStringMentionsAllAxes) {
  const std::string s = ResourceVector{1, 2, 3, 4}.to_string();
  EXPECT_NE(s.find("FF=1"), std::string::npos);
  EXPECT_NE(s.find("LUT=2"), std::string::npos);
  EXPECT_NE(s.find("DSP=3"), std::string::npos);
  EXPECT_NE(s.find("BRAM18=4"), std::string::npos);
}

TEST(DeviceTest, PaperBoardCapacities) {
  const DeviceSpec d = virtex7_690t();
  EXPECT_EQ(d.name, "xc7vx690t");
  EXPECT_EQ(d.capacity.dsp, 3600);
  EXPECT_EQ(d.capacity.bram18, 2940);
  EXPECT_DOUBLE_EQ(d.clock_mhz, 200.0);
}

TEST(DeviceTest, CatalogAndLookup) {
  EXPECT_EQ(device_catalog().size(), 5u);
  EXPECT_EQ(find_device("xcku115").name, "xcku115");
  EXPECT_EQ(find_device("xcu280").name, "xcu280");
  EXPECT_EQ(find_device("s10mx").name, "s10mx");
  EXPECT_THROW(find_device("xc7z020"), Error);
}

TEST(DeviceTest, DdrPartsStayOnTheSingleBankModel) {
  // DDR boards keep the pre-HBM memory model: one bank whose capacity is
  // derived from the aggregate numbers, so every replica-bandwidth query
  // at R=1 reproduces mem_bytes_per_cycle exactly.
  for (const DeviceSpec& d :
       {virtex7_690t(), virtex7_485t(), kintex_ku115()}) {
    EXPECT_EQ(d.memory.banks, 1) << d.name;
    EXPECT_DOUBLE_EQ(d.replica_bytes_per_cycle(1), d.mem_bytes_per_cycle)
        << d.name;
  }
}

TEST(DeviceTest, HbmBanksAggregateToDeviceBandwidth) {
  for (const DeviceSpec& d : {alveo_u280(), stratix10_mx()}) {
    EXPECT_GT(d.memory.banks, 1) << d.name;
    EXPECT_DOUBLE_EQ(
        d.memory.banks * d.effective_bank_bytes_per_cycle(),
        d.mem_bytes_per_cycle)
        << d.name;
    // One replica owning every bank sees the full aggregate bandwidth.
    EXPECT_DOUBLE_EQ(d.replica_bytes_per_cycle(1), d.mem_bytes_per_cycle)
        << d.name;
  }
}

TEST(DeviceTest, ReplicaBandwidthPartitionsWholeBankGroups) {
  const DeviceSpec d = alveo_u280();  // 32 banks
  const double bank = d.effective_bank_bytes_per_cycle();
  // Replicas bind disjoint bank groups: floor(banks / R) banks each.
  EXPECT_DOUBLE_EQ(d.replica_bytes_per_cycle(2), 16 * bank);
  EXPECT_DOUBLE_EQ(d.replica_bytes_per_cycle(32), bank);
  // Non-divisors round the group size down (the critical replica's view).
  EXPECT_DOUBLE_EQ(d.replica_bytes_per_cycle(3), 10 * bank);
}

TEST(DeviceTest, OversubscribedBanksPayTheConflictPenalty) {
  const DeviceSpec d = stratix10_mx();  // 16 banks, conflict factor 2.5
  const double bank = d.effective_bank_bytes_per_cycle();
  // R > banks: replicas share banks; the fair share is divided by the
  // conflict factor to model interleaved-access thrash.
  EXPECT_DOUBLE_EQ(d.replica_bytes_per_cycle(32),
                   (16 * bank / 32) / d.memory.bank_conflict_factor);
  // The penalized share is strictly worse than a conflict-free split.
  EXPECT_LT(d.replica_bytes_per_cycle(32), 16 * bank / 32);
  // Monotone: more replicas never means more per-replica bandwidth.
  double prev = d.replica_bytes_per_cycle(1);
  for (int r = 2; r <= 64; r *= 2) {
    const double cur = d.replica_bytes_per_cycle(r);
    EXPECT_LE(cur, prev) << "R=" << r;
    prev = cur;
  }
}

TEST(DeviceTest, CyclesToMs) {
  const DeviceSpec d = virtex7_690t();  // 200 MHz -> 200k cycles per ms
  EXPECT_DOUBLE_EQ(d.cycles_to_ms(200000.0), 1.0);
}

TEST(HlsTest, JacobiIiGatedByFieldPorts) {
  // Jacobi-2D reads its field five times per element; dual-ported banks
  // sustain two reads per cycle, so II = ceil(5/2) = 3.
  const auto p = make_jacobi2d(32, 32, 8);
  const HlsEstimate est = estimate_program(p, 4);
  EXPECT_EQ(est.ii, 3);
}

TEST(HlsTest, Jacobi3dHasHigherIi) {
  const auto p = make_jacobi3d(16, 16, 16, 8);
  EXPECT_EQ(estimate_program(p, 1).ii, 4);  // 7 reads -> ceil(7/2)
}

TEST(HlsTest, HotspotConstantFieldDoesNotRaiseIi) {
  // HotSpot reads temp 5x and power 1x; power lives in its own array.
  const auto p = make_hotspot2d(32, 32, 8);
  EXPECT_EQ(estimate_program(p, 1).ii, 3);
}

TEST(HlsTest, FdtdStagesAreIiOne) {
  // Every FDTD stage reads each field at most twice -> II = 1.
  const auto p = make_fdtd2d(32, 32, 8);
  EXPECT_EQ(estimate_program(p, 1).ii, 1);
}

TEST(HlsTest, DepthGrowsWithStages) {
  const auto j = make_jacobi2d(32, 32, 8);
  const auto f = make_fdtd2d(32, 32, 8);
  // FDTD has three stages back to back; its pipeline is deeper.
  EXPECT_GT(estimate_program(f, 1).depth, estimate_program(j, 1).depth);
}

TEST(HlsTest, IiIndependentOfUnroll) {
  const auto p = make_jacobi2d(32, 32, 8);
  EXPECT_EQ(estimate_program(p, 1).ii, estimate_program(p, 16).ii);
}

TEST(HlsTest, CyclesPerElementDividesByUnroll) {
  const auto p = make_jacobi2d(32, 32, 8);
  const HlsEstimate est = estimate_program(p, 1);
  EXPECT_DOUBLE_EQ(cycles_per_element(est, 1), 3.0);
  EXPECT_DOUBLE_EQ(cycles_per_element(est, 6), 0.5);
}

TEST(HlsTest, RejectsBadUnroll) {
  const auto p = make_jacobi1d(32, 8);
  EXPECT_THROW(estimate_program(p, 0), ContractError);
  EXPECT_THROW(cycles_per_element(HlsEstimate{}, 0), ContractError);
}

TEST(ResourceModelTest, BramBlocksForBytes) {
  const ResourceModel m(virtex7_690t());
  EXPECT_EQ(m.bram_blocks_for(0), 0);
  // One float fits in one block; 2304 bytes = 576 floats exactly.
  EXPECT_EQ(m.bram_blocks_for(1), 1);
  EXPECT_EQ(m.bram_blocks_for(576), 1);
  EXPECT_EQ(m.bram_blocks_for(577), 2);
}

TEST(ResourceModelTest, DspScalesWithUnrollOnly) {
  const ResourceModel m(virtex7_690t());
  const auto p = make_jacobi2d(64, 64, 8);
  KernelShape small;
  small.local_buffer_elements = 1000;
  small.unroll = 2;
  KernelShape big = small;
  big.local_buffer_elements = 100000;  // much more BRAM
  const ResourceVector rs = m.estimate_kernel(p, small);
  const ResourceVector rb = m.estimate_kernel(p, big);
  EXPECT_EQ(rs.dsp, rb.dsp);
  EXPECT_GT(rb.bram18, rs.bram18);

  KernelShape unrolled = small;
  unrolled.unroll = 4;
  EXPECT_EQ(m.estimate_kernel(p, unrolled).dsp, 2 * rs.dsp);
}

TEST(ResourceModelTest, JacobiDspMatchesSevenSeriesCosts) {
  // Jacobi-2D: 4 adds x 2 DSP + 1 mul x 3 DSP = 11 DSP per lane.
  const ResourceModel m(virtex7_690t());
  const auto p = make_jacobi2d(64, 64, 8);
  KernelShape shape;
  shape.unroll = 10;
  EXPECT_EQ(m.estimate_kernel(p, shape).dsp, 110);
}

TEST(ResourceModelTest, LutAndFfTrackBram) {
  // The paper attributes the FF/LUT drop of the heterogeneous design to the
  // smaller BRAM arrays (fewer banking muxes). The model must reproduce
  // that coupling.
  const ResourceModel m(virtex7_690t());
  const auto p = make_jacobi2d(64, 64, 8);
  KernelShape fat;
  fat.local_buffer_elements = 200000;
  fat.unroll = 8;
  KernelShape slim = fat;
  slim.local_buffer_elements = 80000;
  const ResourceVector rf = m.estimate_kernel(p, fat);
  const ResourceVector rs = m.estimate_kernel(p, slim);
  EXPECT_GT(rf.lut, rs.lut);
  EXPECT_GT(rf.ff, rs.ff);
}

TEST(ResourceModelTest, PipesCostBramAndLogic)  {
  const ResourceModel m(virtex7_690t());
  const auto p = make_jacobi2d(64, 64, 8);
  KernelShape without;
  without.local_buffer_elements = 50000;
  without.unroll = 4;
  KernelShape with_pipes = without;
  with_pipes.pipe_endpoints = 4;
  with_pipes.pipe_fifos = 2;
  with_pipes.pipe_depth_elements = 512;
  const ResourceVector r0 = m.estimate_kernel(p, without);
  const ResourceVector r1 = m.estimate_kernel(p, with_pipes);
  EXPECT_GT(r1.bram18, r0.bram18);
  EXPECT_GT(r1.lut, r0.lut);
  EXPECT_GT(r1.ff, r0.ff);
  EXPECT_EQ(r1.dsp, r0.dsp);
}

TEST(ResourceModelTest, RejectsInvalidShape) {
  const ResourceModel m(virtex7_690t());
  const auto p = make_jacobi1d(64, 8);
  KernelShape bad;
  bad.unroll = 0;
  EXPECT_THROW(m.estimate_kernel(p, bad), ContractError);
  bad.unroll = 1;
  bad.pipe_endpoints = -1;
  EXPECT_THROW(m.estimate_kernel(p, bad), ContractError);
}

}  // namespace
}  // namespace scl::fpga

namespace scl::fpga {
namespace {

TEST(PowerModelTest, StaticFloorAndActivityScaling) {
  const PowerModel model(virtex7_690t());
  const ResourceVector design{400000, 300000, 2000, 2000};
  const double idle = model.average_watts(design, 0.0, 0.0);
  const double busy = model.average_watts(design, 1.0, 1.0);
  EXPECT_GT(idle, 0.0);      // leakage floor
  EXPECT_GT(busy, idle);     // dynamic power on top
  const double half = model.average_watts(design, 0.5, 0.5);
  EXPECT_GT(half, idle);
  EXPECT_LT(half, busy);
}

TEST(PowerModelTest, MoreResourcesMorePower) {
  const PowerModel model(virtex7_690t());
  const ResourceVector small{100000, 80000, 500, 500};
  const ResourceVector large{400000, 300000, 2000, 2000};
  EXPECT_LT(model.average_watts(small, 1.0, 0.5),
            model.average_watts(large, 1.0, 0.5));
}

TEST(PowerModelTest, EnergyScalesWithTime) {
  const PowerModel model(virtex7_690t());
  const ResourceVector design{400000, 300000, 2000, 2000};
  const double e1 = model.energy_joules(design, 0.8, 0.5, 1000.0);
  const double e2 = model.energy_joules(design, 0.8, 0.5, 2000.0);
  EXPECT_NEAR(e2, 2.0 * e1, 1e-9);
}

TEST(PowerModelTest, RejectsBadActivity) {
  const PowerModel model(virtex7_690t());
  EXPECT_THROW(model.average_watts({}, -0.1, 0.0), ContractError);
  EXPECT_THROW(model.average_watts({}, 0.0, 1.5), ContractError);
}

}  // namespace
}  // namespace scl::fpga
